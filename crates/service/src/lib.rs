//! The service: an end-to-end sharded session/KV workload harness over
//! the STM runtime — the closest thing in this repo to the north star's
//! production system, and (at small scale, re-expressed over plain
//! registers in `tm_litmus::concrete::Scenario::Service`) its largest
//! conformance scenario.
//!
//! * [`ShardedKv`] — N [`tm_stm::map::TxMap`] shards, each owning a
//!   contiguous key range; transactional point ops abort-and-retry while
//!   a shard is frozen, bulk ops privatize first (freeze flag + one
//!   grace-period fence) and double-read for stability — the paper's
//!   safe-privatization discipline at store scale.
//! * [`Zipf`] / [`spread`] / [`SplitMix64`] — skewed key popularity,
//!   deterministic in the seed.
//! * [`run_service`] — the closed-loop client fleet: mixed
//!   get / put / rmw / privatize-and-scan / publish-back traffic, one
//!   typed [`tm_stm::tvar::TVar`] session per client, a background
//!   freeze/snapshot cycle riding the grace engine, and per-op-class
//!   p50/p99/p999 via `tm_telemetry`'s histograms.
//! * [`Op`] — the op taxonomy as data, for the property-based
//!   differential test against a sequential `HashMap` model.
//!
//! ```
//! use tm_service::{run_service, ServiceCfg};
//! use tm_stm::prelude::*;
//!
//! let cfg = ServiceCfg::small();
//! let stm = Tl2Stm::with_config(StmConfig::new(cfg.nregs(), cfg.nthreads()));
//! let report = run_service(&stm, &cfg);
//! assert_eq!(report.scan_anomalies, 0, "privatized reads must be stable");
//! assert_eq!(report.session_ops, report.op_counts);
//! assert!(report.snapshots >= 1);
//! ```

#![warn(missing_docs)]

pub mod store;
pub mod workload;
pub mod zipf;

pub use store::{FrozenShard, Op, ShardedKv};
pub use workload::{run_service, OpMix, ServiceCfg, ServiceReport};
pub use zipf::{spread, SplitMix64, Zipf};
