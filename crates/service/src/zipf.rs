//! Skewed key popularity: a YCSB-style zipfian rank sampler, a
//! rank-to-key spreading permutation (so the hottest ranks don't all land
//! in shard 0), and the seeded splitmix64 generator the client fleet
//! draws from. Everything here is deterministic in the seed — the
//! property-based differential test and the recorded conformance scenario
//! both rely on replayable op sequences.

/// Seeded splitmix64: the fleet's per-client PRNG. Deterministic,
/// `Copy`-cheap, and the same mixer `TxMap` hashes keys with.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed` (any value, including 0).
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Zipfian rank sampler over `0..n` (rank 0 most popular), YCSB's
/// `ZipfianGenerator` construction: one O(n) harmonic precomputation,
/// then O(1) per sample from a raw uniform draw.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: usize,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// A sampler over `n ≥ 1` ranks with skew `theta` in `[0, 1)`
    /// (0 = uniform-ish, 0.99 = the classic YCSB hot-spot).
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n >= 1, "zipf over an empty rank space");
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0, 1), got {theta}"
        );
        let zetan = zeta(n, theta);
        let zeta2 = zeta(n.min(2), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = if n > 1 {
            (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan)
        } else {
            0.0
        };
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Map one raw uniform draw (e.g. from [`SplitMix64`]) to a rank in
    /// `0..n`.
    pub fn sample(&self, raw: u64) -> usize {
        if self.n == 1 {
            return 0;
        }
        // Top 53 bits → uniform in [0, 1).
        let u = (raw >> 11) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        rank.min(self.n - 1)
    }
}

fn zeta(n: usize, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Bijective rank→key permutation over `0..n`: popular ranks spread
/// across the whole key space (and therefore across shards) instead of
/// clustering at the low keys. Multiplicative with a unit multiplier —
/// deterministic, and its own inverse exists (it is a permutation), which
/// the unit test asserts by exhaustion.
pub fn spread(rank: u64, n: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    let mut m = 0x9E37_79B9_7F4A_7C15u64 % n;
    if m == 0 {
        m = 1;
    }
    while gcd(m, n) != 1 {
        m = (m + 1) % n;
        if m == 0 {
            m = 1;
        }
    }
    ((rank as u128 * m as u128 + n as u128 / 2) % n as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_moves() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), xs.len(), "draws must not repeat immediately");
    }

    #[test]
    fn zipf_ranks_are_in_range_and_skewed() {
        let z = Zipf::new(100, 0.9);
        let mut rng = SplitMix64::new(7);
        let mut counts = [0u64; 100];
        for _ in 0..20_000 {
            let r = z.sample(rng.next_u64());
            assert!(r < 100);
            counts[r] += 1;
        }
        // Rank 0 must dominate the tail decisively at theta = 0.9.
        assert!(
            counts[0] > 10 * counts[50].max(1),
            "rank 0 drew {} vs rank 50's {}",
            counts[0],
            counts[50]
        );
        // And the tail is still reachable.
        assert!(counts.iter().filter(|&&c| c > 0).count() > 50);
    }

    #[test]
    fn zipf_single_rank_and_uniformish_theta_zero() {
        let one = Zipf::new(1, 0.5);
        assert_eq!(one.sample(u64::MAX), 0);
        let z = Zipf::new(16, 0.0);
        let mut rng = SplitMix64::new(3);
        let mut seen = [false; 16];
        for _ in 0..4_000 {
            seen[z.sample(rng.next_u64())] = true;
        }
        assert!(seen.iter().all(|&s| s), "theta 0 must reach every rank");
    }

    #[test]
    fn spread_is_a_permutation() {
        for n in [1u64, 2, 5, 6, 16, 48, 100] {
            let mut seen = vec![false; n as usize];
            for r in 0..n {
                let k = spread(r, n);
                assert!(k < n, "spread({r}, {n}) = {k} out of range");
                assert!(!seen[k as usize], "spread collides at n={n}, rank {r}");
                seen[k as usize] = true;
            }
        }
    }
}
