//! The sharded session/KV store: N [`TxMap`] shards, each owning a
//! contiguous key range, plus the privatize-and-scan surface the paper's
//! discipline is about. Point ops (`get`/`put`/`rmw`/`remove`) are
//! transactional and abort-and-retry while their shard is frozen (the
//! freeze flag sits in every transaction's read set — `TxMap`'s
//! `check_open` contract). Bulk ops privatize first: freeze-flag
//! transaction, one grace-period fence, then uninstrumented reads — the
//! exact `xpo;txpriv` pattern of the paper, at service scale.
//!
//! A host-side `Mutex` per shard serializes *privatizers* (a client's
//! scan vs the background snapshot cycle); it is never held across point
//! ops, so transactional traffic keeps flowing and only competing bulk
//! owners queue.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

use tm_stm::prelude::*;

/// The sharded KV store over one STM register region: shard `s` owns
/// global keys `[s*keys_per_shard, (s+1)*keys_per_shard)` and lives in
/// its own [`TxMap`] (capacity = its key range, so probe loops stay
/// bounded and inserts of in-range keys cannot fail).
pub struct ShardedKv {
    shards: Vec<TxMap>,
    guards: Vec<Mutex<()>>,
    keys_per_shard: u64,
}

/// A privatized shard: proof that the freeze fence resolved and that the
/// caller holds the shard's bulk-owner guard. Bulk reads happened at
/// construction ([`ShardedKv::privatize_and_scan`]); the shard returns to
/// transactional traffic on [`FrozenShard::publish_back`].
pub struct FrozenShard<'a> {
    kv: &'a ShardedKv,
    shard: usize,
    _guard: MutexGuard<'a, ()>,
}

impl FrozenShard<'_> {
    /// Which shard is privatized.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Thaw the shard — one flag transaction, no fence needed
    /// (publication is safe by `xpo;txwr`, paper Fig 2) — and release the
    /// bulk-owner guard.
    pub fn publish_back<H: StmHandle>(self, h: &mut H) {
        self.kv.shards[self.shard].thaw(h);
    }
}

impl ShardedKv {
    /// A store of `nshards` shards of `keys_per_shard` keys each, laid
    /// out from register `base` upward.
    pub fn new(base: usize, nshards: usize, keys_per_shard: u64) -> Self {
        assert!(nshards > 0 && keys_per_shard > 0);
        let per_shard = TxMap::regs_needed(keys_per_shard as usize);
        let shards = (0..nshards)
            .map(|s| TxMap::new(base + s * per_shard, keys_per_shard as usize))
            .collect();
        let guards = (0..nshards).map(|_| Mutex::new(())).collect();
        ShardedKv {
            shards,
            guards,
            keys_per_shard,
        }
    }

    /// Registers a store of this shape occupies.
    pub fn regs_needed(nshards: usize, keys_per_shard: u64) -> usize {
        nshards * TxMap::regs_needed(keys_per_shard as usize)
    }

    /// Number of shards.
    pub fn nshards(&self) -> usize {
        self.shards.len()
    }

    /// Size of the global key space (`nshards * keys_per_shard`).
    pub fn key_space(&self) -> u64 {
        self.shards.len() as u64 * self.keys_per_shard
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: u64) -> usize {
        assert!(key < self.key_space(), "key {key} outside the store");
        (key / self.keys_per_shard) as usize
    }

    /// Transactional point lookup.
    pub fn get<H: StmHandle>(&self, h: &mut H, key: u64) -> Option<u64> {
        let m = &self.shards[self.shard_of(key)];
        h.atomic(|tx| m.get(tx, key))
    }

    /// Transactional insert-or-update.
    pub fn put<H: StmHandle>(&self, h: &mut H, key: u64, val: u64) {
        let m = &self.shards[self.shard_of(key)];
        h.atomic(|tx| {
            let stored = m.insert(tx, key, val)?;
            debug_assert!(stored, "in-range key must always store");
            Ok(())
        })
    }

    /// Transactional read-modify-write: one transaction reads the current
    /// value (0 when absent), adds `delta` (wrapping), stores the result,
    /// and returns it.
    pub fn rmw<H: StmHandle>(&self, h: &mut H, key: u64, delta: u64) -> u64 {
        let m = &self.shards[self.shard_of(key)];
        h.atomic(|tx| {
            let new = m.get(tx, key)?.unwrap_or(0).wrapping_add(delta);
            m.insert(tx, key, new)?;
            Ok(new)
        })
    }

    /// Transactional removal; returns the removed value.
    pub fn remove<H: StmHandle>(&self, h: &mut H, key: u64) -> Option<u64> {
        let m = &self.shards[self.shard_of(key)];
        h.atomic(|tx| m.remove(tx, key))
    }

    /// Privatize shard `s` and scan it: take the bulk-owner guard, freeze
    /// (flag transaction + one grace-period fence), then read every slot
    /// uninstrumented — **twice**, because under the paper's discipline
    /// the privatized snapshot must be stable; any slot that changes
    /// between the two passes is a privatization-safety violation and is
    /// counted as an anomaly. Returns the frozen shard (still privatized
    /// — caller publishes back), the entries, and the anomaly count.
    pub fn privatize_and_scan<'a, H: StmHandle>(
        &'a self,
        h: &mut H,
        s: usize,
    ) -> (FrozenShard<'a>, Vec<(u64, u64)>, u64) {
        let guard = self.guards[s].lock().expect("shard guard poisoned");
        self.shards[s].freeze(h);
        let (entries, anomalies) = self.stable_read(h, s);
        (
            FrozenShard {
                kv: self,
                shard: s,
                _guard: guard,
            },
            entries,
            anomalies,
        )
    }

    /// One consistent snapshot of the whole store behind a single grace
    /// period: take every bulk-owner guard (in shard order — the one
    /// lock-ordering rule), batch-freeze all shards
    /// ([`freeze_all_async`] → one epoch-table scan), double-read each,
    /// thaw everything. Returns all entries plus the anomaly count.
    pub fn snapshot_all<H: StmHandle>(&self, h: &mut H) -> (Vec<(u64, u64)>, u64) {
        let guards: Vec<_> = self
            .guards
            .iter()
            .map(|g| g.lock().expect("shard guard poisoned"))
            .collect();
        let ticket = freeze_all_async(&self.shards, h);
        h.fence_join(ticket);
        let mut entries = Vec::new();
        let mut anomalies = 0;
        for s in 0..self.shards.len() {
            let (mut e, a) = self.stable_read(h, s);
            entries.append(&mut e);
            anomalies += a;
        }
        for m in &self.shards {
            m.thaw(h);
        }
        drop(guards);
        (entries, anomalies)
    }

    /// Full contents sorted by key — the differential test's observation
    /// of final state (one [`Self::snapshot_all`], anomalies must be 0
    /// for the caller to trust it; they are returned alongside).
    pub fn dump_all<H: StmHandle>(&self, h: &mut H) -> (Vec<(u64, u64)>, u64) {
        let (mut entries, anomalies) = self.snapshot_all(h);
        entries.sort_unstable();
        (entries, anomalies)
    }

    /// Double uninstrumented read of a frozen shard; the passes must
    /// agree entry-for-entry or the count of disagreements comes back as
    /// anomalies. Entries outside the shard's key range also count — a
    /// shard can only ever hold its own keys.
    fn stable_read<H: StmHandle>(&self, h: &mut H, s: usize) -> (Vec<(u64, u64)>, u64) {
        let first = self.shards[s].iter_frozen(h);
        let second = self.shards[s].iter_frozen(h);
        let mut anomalies = 0;
        if first != second {
            anomalies += 1;
        }
        let lo = s as u64 * self.keys_per_shard;
        let hi = lo + self.keys_per_shard;
        for &(k, _) in &first {
            if k < lo || k >= hi {
                anomalies += 1;
            }
        }
        (first, anomalies)
    }
}

/// One request of the service's op taxonomy, as data — the unit the
/// property-based differential test generates and replays against both
/// the real store and the sequential model.
#[derive(Clone, Copy, Debug)]
pub enum Op {
    /// Point lookup of `key`.
    Get {
        /// Global key.
        key: u64,
    },
    /// Insert-or-update `key` to `val`.
    Put {
        /// Global key.
        key: u64,
        /// New value.
        val: u64,
    },
    /// Read-modify-write: add `delta` (wrapping) to `key`'s value
    /// (0 when absent).
    Rmw {
        /// Global key.
        key: u64,
        /// Wrapping-add delta.
        delta: u64,
    },
    /// Remove `key`.
    Remove {
        /// Global key.
        key: u64,
    },
    /// Privatize-and-scan shard `shard`, then publish it back.
    Scan {
        /// Shard index.
        shard: usize,
    },
}

impl Op {
    /// Apply to the real store through `h`.
    pub fn apply<H: StmHandle>(&self, kv: &ShardedKv, h: &mut H) {
        match *self {
            Op::Get { key } => {
                kv.get(h, key);
            }
            Op::Put { key, val } => kv.put(h, key, val),
            Op::Rmw { key, delta } => {
                kv.rmw(h, key, delta);
            }
            Op::Remove { key } => {
                kv.remove(h, key);
            }
            Op::Scan { shard } => {
                let (frozen, _entries, _anomalies) = kv.privatize_and_scan(h, shard);
                frozen.publish_back(h);
            }
        }
    }

    /// Apply to the sequential reference model.
    pub fn apply_model(&self, model: &mut HashMap<u64, u64>) {
        match *self {
            Op::Get { .. } | Op::Scan { .. } => {}
            Op::Put { key, val } => {
                model.insert(key, val);
            }
            Op::Rmw { key, delta } => {
                let new = model.get(&key).copied().unwrap_or(0).wrapping_add(delta);
                model.insert(key, new);
            }
            Op::Remove { key } => {
                model.remove(&key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_stm::tl2::Tl2Stm;

    fn store_and_stm(nshards: usize, kps: u64) -> (ShardedKv, Tl2Stm) {
        let kv = ShardedKv::new(0, nshards, kps);
        let stm = Tl2Stm::with_config(
            StmConfig::new(ShardedKv::regs_needed(nshards, kps), 2)
                .grace_driver(DriverMode::Cooperative),
        );
        (kv, stm)
    }

    #[test]
    fn point_ops_round_trip_across_shards() {
        let (kv, stm) = store_and_stm(4, 8);
        let mut h = stm.handle(0);
        for key in [0u64, 7, 8, 15, 24, 31] {
            assert_eq!(kv.get(&mut h, key), None);
            kv.put(&mut h, key, key * 3);
            assert_eq!(kv.get(&mut h, key), Some(key * 3));
            assert_eq!(kv.rmw(&mut h, key, 10), key * 3 + 10);
            assert_eq!(kv.remove(&mut h, key), Some(key * 3 + 10));
            assert_eq!(kv.get(&mut h, key), None);
        }
        assert_eq!(kv.shard_of(0), 0);
        assert_eq!(kv.shard_of(31), 3);
    }

    #[test]
    fn privatize_scan_publish_cycle_sees_exact_contents() {
        let (kv, stm) = store_and_stm(2, 8);
        let mut h = stm.handle(0);
        for key in 0..6u64 {
            kv.put(&mut h, key, 100 + key);
        }
        let (frozen, entries, anomalies) = kv.privatize_and_scan(&mut h, 0);
        assert_eq!(anomalies, 0);
        let mut sorted = entries;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).map(|k| (k, 100 + k)).collect::<Vec<_>>());
        frozen.publish_back(&mut h);
        // Transactional traffic resumes after publish-back.
        kv.put(&mut h, 3, 999);
        assert_eq!(kv.get(&mut h, 3), Some(999));
    }

    #[test]
    fn snapshot_all_batches_one_grace_scan() {
        let (kv, stm) = store_and_stm(3, 4);
        let mut h = stm.handle(0);
        for key in [0u64, 5, 9] {
            kv.put(&mut h, key, key + 1);
        }
        let scans_before = stm.runtime().grace().scans();
        let (mut entries, anomalies) = kv.snapshot_all(&mut h);
        assert_eq!(anomalies, 0);
        entries.sort_unstable();
        assert_eq!(entries, vec![(0, 1), (5, 6), (9, 10)]);
        assert_eq!(
            stm.runtime().grace().scans() - scans_before,
            1,
            "3 shard freezes must share one epoch-table scan"
        );
    }

    #[test]
    fn ops_replay_identically_on_store_and_model() {
        let (kv, stm) = store_and_stm(2, 8);
        let mut h = stm.handle(0);
        let mut model = HashMap::new();
        let ops = [
            Op::Put { key: 1, val: 10 },
            Op::Rmw { key: 1, delta: 5 },
            Op::Rmw { key: 9, delta: 7 },
            Op::Scan { shard: 1 },
            Op::Remove { key: 1 },
            Op::Put { key: 14, val: 3 },
            Op::Get { key: 9 },
        ];
        for op in ops {
            op.apply(&kv, &mut h);
            op.apply_model(&mut model);
        }
        let (dump, anomalies) = kv.dump_all(&mut h);
        assert_eq!(anomalies, 0);
        let mut expect: Vec<(u64, u64)> = model.into_iter().collect();
        expect.sort_unstable();
        assert_eq!(dump, expect);
    }
}
