//! The closed-loop workload: a client fleet issuing the mixed op class
//! against [`ShardedKv`] under zipfian key popularity, one typed
//! [`TVar`] session per client (every request bumps the client's
//! per-class session counters through `atomically` — the cross-check
//! that the typed and untyped surfaces compose), and a background
//! freeze/snapshot cycle riding the grace engine. Latency is recorded
//! per op class into [`OpClassHistograms`]; the fleet-wide report merges
//! client views exactly like the runtime merges per-slot telemetry.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use tm_stm::prelude::*;
use tm_stm::runtime::{PolicyKind, Stm};
use tm_stm::telemetry::{OpClass, OpClassHistograms};

use crate::store::ShardedKv;
use crate::zipf::{spread, SplitMix64, Zipf};

/// Request mix in percent; the four directly-issued classes must sum to
/// 100 (publish-back is never issued alone — it is the tail of every
/// scan).
#[derive(Clone, Copy, Debug)]
pub struct OpMix {
    /// Point-lookup share.
    pub get_pct: u32,
    /// Insert-or-update share.
    pub put_pct: u32,
    /// Read-modify-write share.
    pub rmw_pct: u32,
    /// Privatize-and-scan share (each also issues one publish-back).
    pub scan_pct: u32,
}

impl OpMix {
    /// The default service mix: read-dominated with a steady trickle of
    /// bulk maintenance, the shape the paper's discipline targets.
    pub fn read_heavy() -> Self {
        OpMix {
            get_pct: 55,
            put_pct: 25,
            rmw_pct: 15,
            scan_pct: 5,
        }
    }

    /// Pick a class from one raw uniform draw.
    pub fn pick(&self, raw: u64) -> OpClass {
        let total = self.get_pct + self.put_pct + self.rmw_pct + self.scan_pct;
        assert_eq!(total, 100, "op mix must sum to 100");
        let r = (raw % 100) as u32;
        if r < self.get_pct {
            OpClass::Get
        } else if r < self.get_pct + self.put_pct {
            OpClass::Put
        } else if r < self.get_pct + self.put_pct + self.rmw_pct {
            OpClass::Rmw
        } else {
            OpClass::Scan
        }
    }
}

/// Shape of one service run. [`ServiceCfg::nregs`]/[`ServiceCfg::nthreads`]
/// tell the caller how big an STM instance to build — the store's
/// registers sit at the bottom, the typed session region above them
/// (`TypedStm::over` at base [`ServiceCfg::kv_regs`]), one thread slot
/// per client plus one for the snapshotter.
#[derive(Clone, Copy, Debug)]
pub struct ServiceCfg {
    /// Number of shards.
    pub shards: usize,
    /// Keys per shard (shard capacity; in-range keys always store).
    pub keys_per_shard: u64,
    /// Closed-loop clients (one thread slot each).
    pub clients: usize,
    /// Requests each client issues.
    pub ops_per_client: u64,
    /// Zipfian skew over the global key space, in `[0, 1)`.
    pub theta: f64,
    /// Request mix.
    pub mix: OpMix,
    /// Fleet seed; every run with the same seed issues the same
    /// per-client op sequences.
    pub seed: u64,
    /// Pause between background snapshot cycles.
    pub snapshot_pause: Duration,
}

impl ServiceCfg {
    /// Conformance/differential scale: small enough to run across all
    /// backends × driver modes in a test, large enough that freezes,
    /// fences, and cross-shard traffic all actually happen.
    pub fn small() -> Self {
        ServiceCfg {
            shards: 2,
            keys_per_shard: 8,
            clients: 2,
            ops_per_client: 150,
            theta: 0.9,
            mix: OpMix::read_heavy(),
            seed: 0xC0FFEE,
            snapshot_pause: Duration::from_micros(200),
        }
    }

    /// Bench scale: the unrecorded full-size run `BENCH_service.json`
    /// reports on.
    pub fn full() -> Self {
        ServiceCfg {
            shards: 8,
            keys_per_shard: 1024,
            clients: 4,
            ops_per_client: 10_000,
            theta: 0.9,
            mix: OpMix::read_heavy(),
            seed: 0xC0FFEE,
            snapshot_pause: Duration::from_micros(500),
        }
    }

    /// Registers the store occupies (the typed session region starts
    /// here).
    pub fn kv_regs(&self) -> usize {
        ShardedKv::regs_needed(self.shards, self.keys_per_shard)
    }

    /// Total registers a run needs: the store plus one typed session
    /// variable per client.
    pub fn nregs(&self) -> usize {
        self.kv_regs() + self.clients
    }

    /// Thread slots a run needs: the clients plus the snapshotter.
    pub fn nthreads(&self) -> usize {
        self.clients + 1
    }

    /// Global key space.
    pub fn key_space(&self) -> u64 {
        self.shards as u64 * self.keys_per_shard
    }
}

/// What one service run measured.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Wall-clock run time in seconds.
    pub elapsed_secs: f64,
    /// Requests completed across the fleet (scans and their publish-backs
    /// count separately — every histogram sample is one op).
    pub total_ops: u64,
    /// Throughput (total ops / elapsed).
    pub ops_per_sec: f64,
    /// Completed ops per class, indexed by [`OpClass::index`].
    pub op_counts: [u64; 5],
    /// Fleet-wide latency distributions per class.
    pub hists: OpClassHistograms,
    /// Background snapshot cycles completed.
    pub snapshots: u64,
    /// Privatization-safety violations observed by any bulk reader
    /// (double-read mismatches or out-of-range keys). Must be 0.
    pub scan_anomalies: u64,
    /// Per-class op counts as accumulated in the clients' typed session
    /// [`TVar`]s — must equal `op_counts` (the typed/untyped cross-check).
    pub session_ops: [u64; 5],
    /// Merged runtime stats across the fleet.
    pub stats: Stats,
    /// Keys resident in the store at the end of the run.
    pub resident_keys: usize,
}

struct ClientOutcome {
    hists: OpClassHistograms,
    counts: [u64; 5],
    anomalies: u64,
    stats: Stats,
}

/// Run the service on an existing STM instance. The caller builds the
/// instance from [`ServiceCfg::nregs`]/[`ServiceCfg::nthreads`] (any
/// backend, clock, storage, driver mode, or chaos setting — the harness
/// is an STM client like any other). Runs are unrecorded by design: the
/// typed session registers hold run-dependent heap addresses, which can
/// never satisfy the checker's unique-value rule — the recorded
/// conformance variant lives in `tm_litmus::concrete::Scenario::Service`.
pub fn run_service<K: PolicyKind>(stm: &Stm<K>, cfg: &ServiceCfg) -> ServiceReport {
    let kv = ShardedKv::new(0, cfg.shards, cfg.keys_per_shard);
    let typed = TypedStm::over(stm.clone(), cfg.kv_regs());
    let sessions: Vec<TVar<[u64; 5]>> = (0..cfg.clients)
        .map(|_| typed.new_tvar([0u64; 5]))
        .collect();
    let zipf = Zipf::new(cfg.key_space() as usize, cfg.theta);

    let outcomes: Mutex<Vec<ClientOutcome>> = Mutex::new(Vec::new());
    let mut snapshots = 0u64;
    let mut snap_anomalies = 0u64;
    let start = Instant::now();

    std::thread::scope(|s| {
        for (client, session) in sessions.iter().enumerate() {
            let typed = typed.clone();
            let session = session.clone();
            let kv = &kv;
            let zipf = &zipf;
            let outcomes = &outcomes;
            s.spawn(move || {
                let outcome = run_client(cfg, client, typed, session, kv, zipf);
                outcomes.lock().expect("outcome sink").push(outcome);
            });
        }
        // The background freeze/snapshot cycle: whole-store snapshots
        // behind one grace period each, until the fleet drains. At least
        // one cycle always runs, so even the shortest run exercises the
        // batched-freeze path concurrently with live traffic.
        let mut h = stm.handle(cfg.clients);
        loop {
            let (_entries, anomalies) = kv.snapshot_all(&mut h);
            snapshots += 1;
            snap_anomalies += anomalies;
            // The fleet's drain is the stop signal: each client pushes
            // its outcome as its last act, so a full sink means no more
            // traffic — take one final snapshot and stop.
            if outcomes.lock().expect("outcome sink").len() >= cfg.clients {
                break;
            }
            std::thread::sleep(cfg.snapshot_pause);
        }
    });
    let elapsed = start.elapsed();

    let mut hists = OpClassHistograms::default();
    let mut op_counts = [0u64; 5];
    let mut scan_anomalies = snap_anomalies;
    let mut stats = Stats::default();
    for o in outcomes.into_inner().expect("outcome sink") {
        hists.merge(&o.hists);
        for (acc, c) in op_counts.iter_mut().zip(o.counts) {
            *acc += c;
        }
        scan_anomalies += o.anomalies;
        stats.merge(&o.stats);
    }

    // Fold the typed sessions back out — the cross-check that every op
    // the fleet timed was also committed through the typed surface.
    let mut th = typed.handle(0);
    let session_ops = th.atomically(|tx| {
        let mut sum = [0u64; 5];
        for session in &sessions {
            let v = tx.read(session)?;
            for (acc, c) in sum.iter_mut().zip(v) {
                *acc += c;
            }
        }
        Ok(sum)
    });

    let (dump, dump_anomalies) = kv.dump_all(th.inner());
    scan_anomalies += dump_anomalies;

    let total_ops: u64 = op_counts.iter().sum();
    let elapsed_secs = elapsed.as_secs_f64().max(f64::EPSILON);
    ServiceReport {
        elapsed_secs,
        total_ops,
        ops_per_sec: total_ops as f64 / elapsed_secs,
        op_counts,
        hists,
        snapshots,
        scan_anomalies,
        session_ops,
        stats,
        resident_keys: dump.len(),
    }
}

fn run_client<K: PolicyKind>(
    cfg: &ServiceCfg,
    client: usize,
    typed: TypedStm<K>,
    session: TVar<[u64; 5]>,
    kv: &ShardedKv,
    zipf: &Zipf,
) -> ClientOutcome {
    let mut th = typed.handle(client);
    let mut rng =
        SplitMix64::new(cfg.seed ^ (client as u64 + 1).wrapping_mul(0x5851_F42D_4C95_7F2D));
    let mut hists = OpClassHistograms::default();
    let mut counts = [0u64; 5];
    let mut anomalies = 0u64;
    for _ in 0..cfg.ops_per_client {
        let class = cfg.mix.pick(rng.next_u64());
        let key = spread(zipf.sample(rng.next_u64()) as u64, cfg.key_space());
        let mut bump = [0u64; 5];
        match class {
            OpClass::Get => {
                let t0 = Instant::now();
                kv.get(th.inner(), key);
                hists.record(OpClass::Get, t0.elapsed().as_nanos() as u64);
            }
            OpClass::Put => {
                let val = rng.next_u64();
                let t0 = Instant::now();
                kv.put(th.inner(), key, val);
                hists.record(OpClass::Put, t0.elapsed().as_nanos() as u64);
            }
            OpClass::Rmw => {
                let delta = rng.next_u64() >> 56;
                let t0 = Instant::now();
                kv.rmw(th.inner(), key, delta);
                hists.record(OpClass::Rmw, t0.elapsed().as_nanos() as u64);
            }
            OpClass::Scan => {
                let shard = kv.shard_of(key);
                let t0 = Instant::now();
                let (frozen, _entries, anom) = kv.privatize_and_scan(th.inner(), shard);
                hists.record(OpClass::Scan, t0.elapsed().as_nanos() as u64);
                anomalies += anom;
                let t1 = Instant::now();
                frozen.publish_back(th.inner());
                hists.record(OpClass::Publish, t1.elapsed().as_nanos() as u64);
                counts[OpClass::Publish.index()] += 1;
                bump[OpClass::Publish.index()] = 1;
            }
            OpClass::Publish => unreachable!("publish is never issued directly"),
        }
        counts[class.index()] += 1;
        bump[class.index()] += 1;
        // The session write: every request commits through the typed
        // surface too, on the same handle the untyped op just used.
        th.atomically(|tx| {
            let mut v = tx.read(&session)?;
            for (acc, b) in v.iter_mut().zip(bump) {
                *acc += b;
            }
            tx.write(&session, v)
        });
    }
    let stats = th.inner().stats();
    ClientOutcome {
        hists,
        counts,
        anomalies,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_stm::tl2::Tl2Stm;

    #[test]
    fn op_mix_picks_cover_the_issued_classes() {
        let mix = OpMix::read_heavy();
        let mut rng = SplitMix64::new(11);
        let mut seen = [false; 5];
        for _ in 0..2_000 {
            seen[mix.pick(rng.next_u64()).index()] = true;
        }
        assert_eq!(
            seen,
            [true, true, true, true, false],
            "all four issued classes drawn, publish never drawn directly"
        );
    }

    #[test]
    fn small_service_run_balances_and_stays_anomaly_free() {
        let cfg = ServiceCfg::small();
        let stm = Tl2Stm::with_config(StmConfig::new(cfg.nregs(), cfg.nthreads()));
        let report = run_service(&stm, &cfg);
        let issued = cfg.clients as u64 * cfg.ops_per_client;
        let scans = report.op_counts[OpClass::Scan.index()];
        assert_eq!(
            report.total_ops,
            issued + scans,
            "every issued op plus one publish per scan"
        );
        assert_eq!(
            report.op_counts[OpClass::Publish.index()],
            scans,
            "every scan published back"
        );
        assert_eq!(report.session_ops, report.op_counts, "typed sessions agree");
        assert_eq!(report.scan_anomalies, 0, "privatized reads must be stable");
        assert_eq!(report.hists.total_count(), report.total_ops);
        assert!(report.snapshots >= 1, "the background cycle must run");
        assert!(report.resident_keys > 0, "puts must land");
        assert!(report.ops_per_sec > 0.0);
    }

    /// Determinism of the *issue* side: two runs with one seed issue
    /// identical per-client op sequences (the differential test's
    /// foundation). Interleavings differ; the sequences must not.
    #[test]
    fn same_seed_same_op_counts() {
        let cfg = ServiceCfg {
            clients: 1,
            ops_per_client: 300,
            ..ServiceCfg::small()
        };
        let stm = Tl2Stm::with_config(StmConfig::new(cfg.nregs(), cfg.nthreads()));
        let a = run_service(&stm, &cfg);
        let stm2 = Tl2Stm::with_config(StmConfig::new(cfg.nregs(), cfg.nthreads()));
        let b = run_service(&stm2, &cfg);
        assert_eq!(a.op_counts, b.op_counts);
        assert_eq!(a.resident_keys, b.resident_keys);
    }
}
