//! Integration tests for the governor's *shrink* side of the adaptive
//! striped orec table: the grow-side migration protocol run in reverse.
//! Calm traffic (false-conflict rate under the low-water mark for the
//! required run of windows) halves the table; the halved generation is
//! published through the same probe-then-issue protocol as a grow, the
//! parent retires through the grace engine, and — the epoch-safety
//! regression — a transaction still pinned to the parent generation keeps
//! conflicting correctly across the shrink. Mirrors
//! `adaptive_stripes.rs`'s grow coverage.
//!
//! Shrink is armed by selecting [`ClockKind::Auto`] (the governor) on an
//! adaptive-storage instance; all tests construct through that path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use tm_stm::prelude::*;
use tm_stm::runtime::DriverMode;

/// A governed (shrink-armed) configuration: adaptive storage + Auto clock.
/// `threshold` is set high so the grow side stays out of the way and every
/// observed resize is a shrink.
fn governed(nregs: usize, nthreads: usize, policy: AdaptivePolicy) -> StmConfig {
    StmConfig::new(nregs, nthreads)
        .adaptive_stripes(policy)
        .clock(ClockKind::Auto)
}

/// Calm traffic shrinks the table to the floor — under BOTH driver modes —
/// and once there, further calm windows publish nothing.
#[test]
fn calm_commits_shrink_to_the_floor_in_both_driver_modes() {
    for mode in DriverMode::ALL {
        let policy = AdaptivePolicy {
            start: 4,
            max: 8,
            threshold: 50,
            window: 4,
        };
        let stm = Tl2Stm::with_config(governed(4, 2, policy).grace_driver(mode));
        assert_eq!(stm.nstripes(), 4, "{}", mode.label());
        let mut h = stm.handle(0);
        // Disjoint single-register writes: zero false conflicts, so every
        // window is calm and every `calm_windows`-th boundary halves the
        // table (4 -> 2 -> 1). Cooperative begins (or the background
        // driver) retire each migration before the next can publish.
        let mut spins = 0u64;
        while stm.nstripes() > 1 || stm.migration_pending() {
            h.atomic(|tx| tx.write(0, spins + 1));
            spins += 1;
            assert!(
                spins < 100_000,
                "{}: table must reach the floor (stuck at {} stripes)",
                mode.label(),
                stm.nstripes()
            );
        }
        let s = h.stats();
        assert!(
            s.stripe_resizes >= 2,
            "{}: 4 -> 2 -> 1 takes two shrink publications: {s:?}",
            mode.label()
        );
        assert_eq!(stm.stripe_resizes(), s.stripe_resizes, "{}", mode.label());
        assert_eq!(
            stm.locked_stripes(),
            0,
            "{}: no lock may be stranded in a retired parent",
            mode.label()
        );
        // At the floor, calm windows must stop publishing generations.
        let before = stm.stripe_resizes();
        for i in 0..64u64 {
            h.atomic(|tx| tx.write(1, i + 1));
        }
        assert_eq!(
            stm.stripe_resizes(),
            before,
            "{}: a single-stripe table must never shrink again",
            mode.label()
        );
    }
}

/// THE epoch-safety regression, shrink edition: a transaction pinned to the
/// pre-shrink parent generation and still mid-flight when the halved
/// generation publishes must still conflict with a post-shrink writer. The
/// parked transaction holds its epoch open, so the parent cannot retire
/// under it, and every new-generation commit locks and stamps both tables.
#[test]
fn pinned_generation_still_conflicts_across_a_shrink() {
    let policy = AdaptivePolicy {
        start: 4,
        max: 8,
        threshold: 50,
        window: 2,
    };
    let stm = Tl2Stm::with_config(governed(4, 2, policy));
    assert_eq!(stm.nstripes(), 4);
    let parked = Arc::new(Barrier::new(2));
    let resume = Arc::new(Barrier::new(2));
    let observed = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        let straddler = {
            let stm = stm.clone();
            let (b1, b2) = (Arc::clone(&parked), Arc::clone(&resume));
            let observed = Arc::clone(&observed);
            s.spawn(move || {
                let mut h = stm.handle(1);
                let mut first = true;
                h.atomic(|tx| {
                    // Read register 0 under the pinned 4-stripe generation,
                    // then park while the other thread's calm traffic
                    // shrinks the table and overwrites register 0.
                    let v = tx.read(0)?;
                    if first {
                        first = false;
                        b1.wait();
                        b2.wait();
                    }
                    observed.store(v, Ordering::SeqCst);
                    tx.write(1, v + 1)
                });
                h.stats()
            })
        };
        parked.wait();
        let mut w = stm.handle(0);
        // Two calm windows of two disjoint commits publish the 4 -> 2
        // shrink while the straddler is parked on the parent...
        for i in 1..=8u64 {
            w.atomic(|tx| tx.write(2, i));
        }
        assert!(
            stm.stripe_resizes() >= 1,
            "calm traffic must have published a shrink under the parked txn"
        );
        assert!(
            stm.migration_pending(),
            "the parked epoch must pin the parent's retirement open"
        );
        // ...then commit to the straddler's read register through the NEW
        // (halved) generation. The parked transaction must abort, retry,
        // and observe the new value.
        w.atomic(|tx| tx.write(0, 7777));
        resume.wait();
        let stats = straddler.join().unwrap();
        assert!(
            stats.retries >= 1,
            "a post-shrink commit must still invalidate a pinned-parent \
             transaction: {stats:?}"
        );
    });
    assert_eq!(
        observed.load(Ordering::SeqCst),
        7777,
        "the retry must observe the post-shrink write"
    );
    assert_eq!(stm.peek(1), 7778);
    assert_eq!(stm.locked_stripes(), 0);
}

/// Shrinks under live concurrent commit traffic: no committed increment is
/// lost, no lock word in any generation stays held, and the table really
/// does come down from its oversized start.
#[test]
fn shrink_under_concurrent_commits_loses_nothing() {
    const THREADS: usize = 4;
    const INCS: u64 = 300;
    let policy = AdaptivePolicy {
        start: 8,
        max: 16,
        threshold: 90,
        window: 8,
    };
    let stm = Tl2Stm::with_config(governed(THREADS, THREADS, policy));
    let mut total = Stats::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let stm = stm.clone();
                s.spawn(move || {
                    let mut h = stm.handle(t);
                    for _ in 0..INCS {
                        h.atomic(|tx| {
                            let v = tx.read(t)?;
                            tx.write(t, v + 1)
                        });
                    }
                    h.stats()
                })
            })
            .collect();
        for h in handles {
            total.merge(&h.join().unwrap());
        }
    });
    for t in 0..THREADS {
        assert_eq!(stm.peek(t), INCS, "thread {t} lost increments");
    }
    assert_eq!(total.commits, THREADS as u64 * INCS);
    assert!(
        total.stripe_resizes >= 1,
        "calm disjoint traffic must shrink the oversized table: {total:?}"
    );
    assert!(
        stm.nstripes() < 8,
        "with a 90% grow threshold every resize is a shrink"
    );
    assert_eq!(
        stm.locked_stripes(),
        0,
        "no lock may be stranded in any generation after a shrink"
    );
    // Retirement rides real grace periods, driven home by plain begins.
    assert!(stm.runtime().grace().issued() >= 1);
    let mut h = stm.handle(0);
    for _ in 0..8 {
        h.atomic(|tx| tx.read(0));
    }
    assert!(
        !stm.migration_pending(),
        "begin-time polling must retire the final shrink migration"
    );
}

/// The background driver owns shrink-migration liveness exactly as it owns
/// grow liveness: after the last transaction, the pending parent retires
/// with zero pollers.
#[test]
fn shrink_retires_under_the_background_driver_with_zero_pollers() {
    let policy = AdaptivePolicy {
        start: 2,
        max: 4,
        threshold: 50,
        window: 2,
    };
    let stm = Tl2Stm::with_config(governed(2, 1, policy).grace_driver(DriverMode::Background));
    let mut h = stm.handle(0);
    // Enough calm commits to publish the 2 -> 1 shrink, then go quiet.
    for i in 0..12u64 {
        h.atomic(|tx| tx.write(0, i + 1));
    }
    assert_eq!(stm.peek(0), 12);
    assert!(stm.stripe_resizes() >= 1, "the shrink must have published");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while stm.migration_pending() {
        assert!(
            std::time::Instant::now() < deadline,
            "driver must retire the shrink migration with zero pollers"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert_eq!(stm.nstripes(), 1);
    assert_eq!(stm.locked_stripes(), 0);
    let s = h.stats();
    assert!(s.stripe_resizes >= 1, "{s:?}");
    assert_eq!(
        s.current_stripes,
        stm.nstripes() as u64,
        "the gauge tracks the table the latest transaction ran against"
    );
}
