//! Integration tests for the contention governor: telemetry-driven clock
//! switching under both driver modes, handoff liveness with zero
//! transaction traffic (the background driver's tick hook), and the
//! hot-path cost contract — a steady-state commit performs no governor
//! work another thread could observe.

use tm_stm::prelude::*;
use tm_stm::runtime::DriverMode;
use tm_stm::tl2::GOVERNOR_WINDOW;

/// The clock governor adapts to a read-heavy -> write-heavy -> read-heavy
/// phase shift under both driver modes, and every switch is visible in
/// `Stats::clock_switches` and the instance-level introspection.
#[test]
fn clock_governor_follows_phase_shifts_in_both_driver_modes() {
    for mode in DriverMode::ALL {
        let stm = Tl2Stm::with_config(StmConfig::auto(16, 1).grace_driver(mode));
        assert_eq!(stm.clock_mode_label(), "gv1", "{}", mode.label());
        assert_eq!(stm.clock_switches(), 0, "{}", mode.label());
        let mut h = stm.handle(0);
        // Write-heavy phase: one full governor window of writing commits
        // folds into a GV5 request.
        for i in 0..GOVERNOR_WINDOW {
            h.atomic(|tx| tx.write(0, i + 1));
        }
        assert_eq!(
            h.stats().clock_switches,
            1,
            "{}: the write-heavy fold must switch to GV5",
            mode.label()
        );
        assert_eq!(stm.clock_mode_label(), "gv5", "{}", mode.label());
        // Read-heavy phase: folds keep requesting GV1; the first one to
        // land after the handoff settles wins.
        let mut folds = 0;
        while stm.clock_mode_label() == "gv5" {
            for _ in 0..GOVERNOR_WINDOW {
                h.atomic(|tx| tx.read(0));
            }
            folds += 1;
            assert!(
                folds < 64,
                "{}: read-heavy folds must re-install GV1",
                mode.label()
            );
        }
        assert_eq!(stm.clock_mode_label(), "gv1", "{}", mode.label());
        assert_eq!(h.stats().clock_switches, 2, "{}", mode.label());
        assert_eq!(stm.clock_switches(), 2, "{}", mode.label());
        // The mix telemetry the folds fed on is also externally visible.
        let s = h.stats();
        assert!(s.write_commits >= GOVERNOR_WINDOW, "{s:?}");
        assert!(s.read_only_commits >= GOVERNOR_WINDOW, "{s:?}");
    }
}

/// Handoff liveness with ZERO transaction traffic: under the background
/// driver, the grace-fenced clock handoff settles on the driver's tick
/// hook alone. (Cooperatively, settlement rides later begins — which the
/// phase-shift test above exercises.)
#[test]
fn background_driver_settles_a_handoff_without_traffic() {
    let stm = Tl2Stm::with_config(StmConfig::auto(16, 1).grace_driver(DriverMode::Background));
    let mut h = stm.handle(0);
    for i in 0..GOVERNOR_WINDOW {
        h.atomic(|tx| tx.write(0, i + 1));
    }
    assert_eq!(stm.clock_switches(), 1);
    // No more transactions: only the driver's tick hook can drive the
    // handoff's grace ticket home and re-arm the elision fast path.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while stm.clock_handoff_pending() {
        assert!(
            std::time::Instant::now() < deadline,
            "the driver tick hook must settle the handoff with zero pollers"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert_eq!(stm.clock_mode_label(), "gv5");
}

/// The hot-path cost contract (the governor must be *cheap*): in steady
/// state — discipline settled, table at its floor, commits not crossing a
/// fold boundary — a commit performs ZERO additional shared-line writes
/// beyond the pre-governor TL2 baseline. The governor's window counters
/// are plain handle-local fields folded only at window boundaries, so the
/// only shared mutations left are the baseline's: data, orecs, and (under
/// GV1) the clock bump. Observable shared governor state — grace tickets
/// issued, clock switches, generation publications — must not move.
#[test]
fn steady_state_commits_touch_no_governor_shared_state() {
    let stm = Tl2Stm::with_config(StmConfig::auto(16, 1).grace_driver(DriverMode::Cooperative));
    // nregs = 16 seeds a single stripe: the table starts at the shrink
    // floor, so calm windows cannot publish.
    assert_eq!(stm.nstripes(), 1);
    let mut h = stm.handle(0);
    // Warm-up: one full governor window of strictly alternating
    // write/read commits. A 50% write share lands in the hysteresis band,
    // so the fold never requests a switch — the discipline stays GV1 and
    // settled, which is the steady state.
    for i in 0..GOVERNOR_WINDOW {
        if i % 2 == 0 {
            h.atomic(|tx| tx.write(0, i + 1));
        } else {
            h.atomic(|tx| tx.read(0));
        }
    }
    assert_eq!(stm.clock_mode_label(), "gv1");
    assert!(!stm.clock_handoff_pending());
    // Measure a second full window against every shared governor output.
    let issued_before = stm.runtime().grace().issued();
    let switches_before = stm.clock_switches();
    let resizes_before = stm.stripe_resizes();
    let bumps_before = h.stats().clock_bumps;
    for i in 0..GOVERNOR_WINDOW {
        if i % 2 == 0 {
            h.atomic(|tx| tx.write(0, i + 1));
        } else {
            h.atomic(|tx| tx.read(0));
        }
    }
    assert_eq!(
        stm.runtime().grace().issued(),
        issued_before,
        "steady-state commits must issue no grace tickets"
    );
    assert_eq!(stm.clock_switches(), switches_before, "no clock switches");
    assert_eq!(stm.stripe_resizes(), resizes_before, "no publications");
    assert_eq!(
        h.stats().clock_bumps - bumps_before,
        GOVERNOR_WINDOW / 2,
        "exactly the GV1 baseline: one shared-clock write per writing \
         commit and none at all from the governor"
    );
    // The telemetry that fed the folds is handle-local only.
    let s = h.stats();
    assert_eq!(s.read_only_commits + s.write_commits, s.commits);
}
