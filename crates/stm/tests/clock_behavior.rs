//! Cross-clock behavior of the TL2 runtime: the GV5 zero-shared-traffic
//! guarantee on disjoint-write workloads, clock-bump accounting under GV1
//! vs GV4 vs GV5, and cross-clock agreement on final states.

use std::sync::{Arc, Barrier};
use tm_stm::prelude::*;

const THREADS: usize = 4;
const REGS_PER_THREAD: usize = 8;
const TXNS: u64 = 300;

/// Every thread blind-writes only its own register block — the global
/// version clock is the *only* shared metadata the workload could touch.
/// (Blind writes, not read-modify-writes: under GV5 a thread re-*reading*
/// a register it just committed would chase its own slot-local stamps and
/// pay the documented one-false-abort refresh per stamp — see
/// `gv5_trailing_reader_pays_one_false_abort_then_validates` in `tl2` —
/// which is precisely the traffic a disjoint-write workload avoids.)
/// Returns the merged stats of all threads.
fn disjoint_writes(stm: &Tl2Stm) -> Stats {
    let start = Arc::new(Barrier::new(THREADS));
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let stm = stm.clone();
                let start = Arc::clone(&start);
                s.spawn(move || {
                    let mut h = stm.handle(t);
                    let base = t * REGS_PER_THREAD;
                    start.wait();
                    for i in 0..TXNS {
                        h.atomic(|tx| {
                            for r in 0..REGS_PER_THREAD {
                                tx.write(base + r, (i + 1) * 1000 + r as u64)?;
                            }
                            Ok(())
                        });
                    }
                    h.stats()
                })
            })
            .collect();
        let mut total = Stats::default();
        for w in workers {
            total.merge(&w.join().unwrap());
        }
        total
    })
}

fn stm_with(clock: ClockKind) -> Tl2Stm {
    // chaos_off: these tests pin exact commit/bump/abort counters, which a
    // TM_STM_CHAOS env seed (the fault-injection CI pass) would perturb.
    Tl2Stm::with_config(
        StmConfig::new(THREADS * REGS_PER_THREAD, THREADS)
            .clock(clock)
            .chaos_off(),
    )
}

/// The tentpole acceptance criterion: on a disjoint-write multi-thread
/// workload, GV5 commits must record **zero** writes to the shared clock
/// line. (Per-register storage, so no stripe collisions; disjoint register
/// blocks, so no read conflicts; hence no reader refreshes either.)
#[test]
fn gv5_disjoint_writes_record_zero_clock_bumps() {
    let stm = stm_with(ClockKind::Gv5);
    let stats = disjoint_writes(&stm);
    assert_eq!(stats.commits, THREADS as u64 * TXNS);
    assert_eq!(
        stats.clock_bumps, 0,
        "gv5 disjoint-write commits must never touch the shared clock: {stats:?}"
    );
    assert_eq!(stats.aborts_total(), 0, "disjoint writes cannot conflict");
}

/// GV1 pays one shared-line RMW per writing commit on the same workload;
/// GV4 pays at most that (losing CASes adopt instead of bumping).
#[test]
fn gv1_and_gv4_bump_accounting_on_disjoint_writes() {
    let commits = THREADS as u64 * TXNS;

    let gv1 = disjoint_writes(&stm_with(ClockKind::Gv1));
    assert_eq!(gv1.commits, commits);
    assert_eq!(gv1.clock_bumps, commits, "gv1: one bump per writing commit");

    let gv4 = disjoint_writes(&stm_with(ClockKind::Gv4));
    assert_eq!(gv4.commits, commits);
    assert!(
        gv4.clock_bumps <= commits,
        "gv4 must not bump more than once per commit: {gv4:?}"
    );
    assert!(gv4.clock_bumps > 0, "someone must win the first CAS");
}

/// All three clocks must produce the identical (deterministic) final state
/// on the disjoint-write workload, and GV5's laziness must never cost
/// correctness under contention either: a shared-counter stress yields the
/// exact total under every clock.
#[test]
fn final_states_agree_across_clocks() {
    let mut finals: Vec<Vec<u64>> = Vec::new();
    for clock in ClockKind::ALL {
        let stm = stm_with(clock);
        let stats = disjoint_writes(&stm);
        assert_eq!(stats.commits, THREADS as u64 * TXNS, "{}", clock.label());
        finals.push(
            (0..THREADS * REGS_PER_THREAD)
                .map(|x| stm.peek(x))
                .collect(),
        );
    }
    assert_eq!(finals[0], finals[1], "gv1 vs gv4");
    assert_eq!(finals[0], finals[2], "gv1 vs gv5");

    for clock in ClockKind::ALL {
        let stm = Tl2Stm::with_config(StmConfig::new(1, THREADS).clock(clock));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let stm = stm.clone();
                s.spawn(move || {
                    let mut h = stm.handle(t);
                    for _ in 0..500 {
                        h.atomic(|tx| {
                            let v = tx.read(0)?;
                            tx.write(0, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(
            stm.peek(0),
            THREADS as u64 * 500,
            "{}: lost increments",
            clock.label()
        );
    }
}

/// Clock choice composes with storage choice: GV5 over a striped orec
/// table still commits correctly and stays off the shared clock line when
/// writes are stripe-disjoint (one thread, so stripe sharing is harmless).
#[test]
fn clocks_compose_with_striped_storage() {
    for clock in ClockKind::ALL {
        let stm = Tl2Stm::with_config(StmConfig::new(1 << 16, 2).striped(64).clock(clock));
        let mut h = stm.handle(0);
        for i in 0..32u64 {
            let x = (i as usize) * 1021;
            h.atomic(|tx| tx.write(x, i + 1));
        }
        for i in 0..32u64 {
            assert_eq!(stm.peek((i as usize) * 1021), i + 1, "{}", clock.label());
        }
        if clock == ClockKind::Gv5 {
            assert_eq!(h.stats().clock_bumps, 0, "single-threaded gv5 never bumps");
        }
    }
}
