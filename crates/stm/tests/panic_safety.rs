//! Hardening conformance: a panic unwinding out of a transaction body or
//! commit must leave the runtime fully healthy — every write-set lock
//! released, the epoch slot exited, the abort recorded — on **every**
//! backend under **both** driver modes. Plus the poisoning contract (only
//! an unwind through commit condemns the handle) and the retry-budget
//! escalation fallback.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;
use tm_stm::chaos::Site;
use tm_stm::prelude::*;
use tm_stm::runtime::DriverMode;
use tm_stm::storage::AdaptivePolicy;

/// After `f` panicked out of `atomic` on slot 0 of a runtime reachable via
/// `rt`, assert the invariants the hardening layer promises: the panic
/// really propagated, the epoch slot is free (a leaked slot would wedge
/// every later grace period), and a fence completes in bounded time.
fn assert_unwound_clean<H: StmHandle>(rt: &tm_stm::runtime::Runtime, h: &mut H) {
    assert!(
        !rt.epochs().is_active(0),
        "a panicking transaction must exit its epoch slot"
    );
    // The follow-up transaction must commit — nothing is wedged.
    let v = h.atomic(|tx| {
        tx.write(1, 77)?;
        tx.read(1)
    });
    assert_eq!(v, 77);
    // And a fence must complete: no stranded epoch entry, no stuck period.
    h.fence();
}

/// Drive one backend through the body-panic scenario. `locked` samples the
/// backend's held-lock diagnostic (TL2 variants) or returns 0 (NOrec and
/// glock hold no lock words outside their commit window).
fn body_panic_scenario<F, H>(make: F, locked: impl Fn(&F) -> usize, label: &str)
where
    F: StmFactory<Handle = H>,
    H: StmHandle,
{
    let mut h = make.handle(0);
    // A committed transaction first, so the panic lands on a warm handle.
    h.atomic(|tx| tx.write(0, 5));
    let unwound = catch_unwind(AssertUnwindSafe(|| {
        h.atomic(|tx| -> Result<(), Abort> {
            tx.write(0, 999)?;
            panic!("injected body panic");
        })
    }));
    assert!(unwound.is_err(), "[{label}] the panic must propagate");
    assert_eq!(
        locked(&make),
        0,
        "[{label}] a panicking body must leave zero lock words held"
    );
    assert_eq!(
        make.peek(0),
        5,
        "[{label}] the panicked attempt's buffered write must not land"
    );
    let stats_panics = h.stats().panics_unwound;
    assert_eq!(stats_panics, 1, "[{label}] the unwind is counted");
    // A body-panicked handle is NOT poisoned: further attempts run (a
    // poisoned handle would panic on entry, not retry). `atomic` rather
    // than `try_atomic` because GV5 legitimately aborts one stale reader.
    let v = h.atomic(|tx| tx.read(0));
    assert_eq!(v, 5, "[{label}] reads the committed value");
}

/// The tentpole conformance matrix: a panicking closure on every backend ×
/// both driver modes releases everything and the runtime stays usable.
#[test]
fn body_panic_releases_everything_all_backends_both_modes() {
    for mode in DriverMode::ALL {
        // `chaos_off`: this matrix asserts exact counters (one unwind, no
        // spurious try_atomic failure), so it pins injection off even when
        // the CI chaos pass sets `TM_STM_CHAOS` for the whole suite.
        let tl2_cfgs: Vec<(&str, StmConfig)> = vec![
            ("tl2/per-register", StmConfig::new(8, 2)),
            ("tl2/striped", StmConfig::new(8, 2).striped(4)),
            (
                "tl2/adaptive",
                StmConfig::new(8, 2).adaptive_stripes(AdaptivePolicy::default()),
            ),
            ("tl2/gv4", StmConfig::new(8, 2).clock(ClockKind::Gv4)),
            ("tl2/gv5", StmConfig::new(8, 2).clock(ClockKind::Gv5)),
            ("tl2/auto", StmConfig::auto(8, 2)),
        ];
        for (label, cfg) in tl2_cfgs {
            let stm = Tl2Stm::with_config(cfg.grace_driver(mode).chaos_off());
            let rt_epoch_free = {
                body_panic_scenario(stm.clone(), |s: &Tl2Stm| s.locked_stripes(), label);
                !stm.runtime().epochs().is_active(0)
            };
            assert!(rt_epoch_free, "[{label}] epoch slot must be exited");
            let mut h = stm.handle(0);
            assert_unwound_clean(stm.runtime(), &mut h);
        }
        let norec = NorecStm::with_config(StmConfig::new(8, 2).grace_driver(mode).chaos_off());
        body_panic_scenario(norec.clone(), |_| 0, "norec");
        let mut h = norec.handle(0);
        assert_unwound_clean(norec.runtime(), &mut h);

        let glock = GlockStm::with_config(StmConfig::new(8, 2).grace_driver(mode).chaos_off());
        body_panic_scenario(glock.clone(), |_| 0, "glock");
        let mut h = glock.handle(0);
        assert_unwound_clean(glock.runtime(), &mut h);
    }
}

/// Glock is the sharpest body-panic case: `begin` takes the global spin
/// lock, so a leaked unwind would deadlock the whole runtime, not just a
/// stripe. The follow-up commit in the scenario proves the lock was
/// released; this narrows it to "released by the unwind path, promptly".
#[test]
fn glock_body_panic_releases_the_global_lock() {
    let stm = GlockStm::with_config(StmConfig::new(4, 2).chaos_off());
    let mut h = stm.handle(0);
    let r = catch_unwind(AssertUnwindSafe(|| {
        h.atomic(|tx| -> Result<(), Abort> {
            tx.write(0, 1)?;
            panic!("under the global lock");
        })
    }));
    assert!(r.is_err());
    // Another handle commits immediately — the global lock is free.
    let mut h2 = stm.handle(1);
    h2.atomic(|tx| tx.write(0, 2));
    assert_eq!(stm.peek(0), 2);
}

/// The poisoning contract: a panic injected *inside commit, after the
/// write-set locks are taken* (armed at the clock-bump site) unwinds with
/// every lock released and the epoch slot exited — but the handle is
/// condemned, because its write-back may be half applied.
#[test]
fn panic_through_commit_poisons_the_handle_but_not_the_runtime() {
    let stm = Tl2Stm::with_config(StmConfig::new(8, 2).striped(4).chaos_off());
    let mut h = stm.handle(0);
    h.atomic(|tx| tx.write(0, 1));
    assert!(!h.is_poisoned());
    // The next writing commit panics at the clock bump — strictly after
    // lock acquisition, strictly before write-back.
    stm.runtime().chaos().arm_panic(Site::ClockBump, 1);
    let r = catch_unwind(AssertUnwindSafe(|| h.atomic(|tx| tx.write(0, 2))));
    assert!(r.is_err(), "the armed panic must propagate");
    assert!(
        h.is_poisoned(),
        "an unwind through commit condemns the handle"
    );
    assert_eq!(h.stats().panics_unwound, 1);
    assert_eq!(
        stm.locked_stripes(),
        0,
        "the commit guard must release every lock word on unwind"
    );
    assert!(!stm.runtime().epochs().is_active(0), "epoch slot exited");
    // The runtime is untouched: another handle commits and fences.
    let mut h2 = stm.handle(1);
    h2.atomic(|tx| tx.write(0, 3));
    h2.fence();
    assert_eq!(stm.peek(0), 3);
    // Using the condemned handle is a clear error, not UB.
    let reuse = catch_unwind(AssertUnwindSafe(|| h.try_atomic(|tx| tx.read(0))));
    assert!(reuse.is_err(), "a poisoned handle refuses further attempts");
}

/// The retry budget: a transaction that keeps losing escalates to the
/// irrevocable serial fallback after `max_attempts`, then commits. The
/// interference runs from *inside the victim's own closure* (the 1-core
/// deterministic technique) and stops once escalation is reached — an
/// escalated body must never start a nested transaction on a gated handle.
#[test]
fn retry_budget_escalates_and_commits() {
    let stm = Tl2Stm::with_config(StmConfig::new(4, 2).chaos_off());
    let mut victim = stm.handle(0);
    victim.set_retry_policy(RetryPolicy::attempts(2));
    let mut rival = stm.handle(1);
    let mut calls = 0u32;
    victim.atomic(|tx| {
        calls += 1;
        let v = tx.read(0)?;
        if calls <= 2 {
            // Invalidate the read the victim just made.
            rival.atomic(|tx2| {
                let w = tx2.read(0)?;
                tx2.write(0, w + 10)
            });
        }
        tx.write(0, v + 1)
    });
    assert_eq!(calls, 3, "two doomed attempts, one escalated");
    assert_eq!(victim.stats().escalations, 1, "counted once");
    assert_eq!(victim.stats().commits, 1);
    assert_eq!(stm.peek(0), 21, "2 interferences + 1 increment");
    assert!(
        stm.runtime().escalated().is_none(),
        "the token is released after the escalated commit"
    );
    // The runtime serves everyone again.
    rival.atomic(|tx| tx.write(1, 5));
    assert_eq!(stm.peek(1), 5);
}

/// NOrec escalates through the same machinery (the budget lives in the
/// shared retry loop, not in any one policy).
#[test]
fn norec_escalates_too() {
    let stm = NorecStm::with_config(StmConfig::new(4, 2).chaos_off());
    let mut victim = stm.handle(0);
    victim.set_retry_policy(RetryPolicy::attempts(1));
    let mut rival = stm.handle(1);
    let mut calls = 0u32;
    victim.atomic(|tx| {
        calls += 1;
        let v = tx.read(0)?;
        if calls == 1 {
            rival.atomic(|tx2| {
                let w = tx2.read(0)?;
                tx2.write(0, w + 10)
            });
        }
        tx.write(0, v + 1)
    });
    assert_eq!(victim.stats().escalations, 1);
    assert_eq!(stm.peek(0), 11);
}

/// The satellite fix: an exhausted budget escalates *without* paying one
/// final backoff pause. With `max_attempts = 1` the single abort goes
/// straight to the fallback, so `backoff_ns` stays exactly zero even with
/// spinning configured.
#[test]
fn exhausted_budget_skips_the_final_backoff_pause() {
    let stm = Tl2Stm::with_config(StmConfig::new(4, 2).chaos_off());
    let mut victim = stm.handle(0);
    victim.set_retry_policy(RetryPolicy::attempts(1));
    let mut rival = stm.handle(1);
    let mut calls = 0u32;
    victim.atomic(|tx| {
        calls += 1;
        let v = tx.read(0)?;
        if calls == 1 {
            rival.atomic(|tx2| {
                let w = tx2.read(0)?;
                tx2.write(0, w + 1)
            });
        }
        tx.write(0, v + 1)
    });
    assert_eq!(victim.stats().escalations, 1);
    assert_eq!(
        victim.stats().backoff_ns,
        0,
        "no backoff pause may run between exhaustion and escalation"
    );
}

/// A deadline-based budget escalates as well, and the escalation is traced
/// with `deadline_expired = true`.
#[test]
fn deadline_budget_escalates_with_trace() {
    let stm = Tl2Stm::with_config(
        StmConfig::new(4, 2)
            .chaos_off()
            .trace(tm_stm::telemetry::TraceConfig::with_capacity(64)),
    );
    let mut victim = stm.handle(0);
    victim.set_retry_policy(RetryPolicy::deadline(Duration::ZERO));
    let mut rival = stm.handle(1);
    let mut calls = 0u32;
    victim.atomic(|tx| {
        calls += 1;
        let v = tx.read(0)?;
        if calls == 1 {
            rival.atomic(|tx2| {
                let w = tx2.read(0)?;
                tx2.write(0, w + 1)
            });
        }
        tx.write(0, v + 1)
    });
    assert_eq!(victim.stats().escalations, 1);
    let snap = stm.telemetry_snapshot();
    let esc: Vec<_> = snap
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Escalation {
                attempts,
                deadline_expired,
            } => Some((attempts, deadline_expired)),
            _ => None,
        })
        .collect();
    assert_eq!(esc, vec![(1, true)], "traced with the expired deadline");
}

/// Escalation under real multi-thread contention: tiny budgets on every
/// thread force the token to bounce, yet every increment lands and the
/// token ends free. (Yield-based gates and drains keep this 1-core safe.)
#[test]
fn escalation_token_bounces_safely_under_contention() {
    const THREADS: usize = 3;
    const TXNS: u64 = 200;
    let stm = Tl2Stm::with_config(StmConfig::new(2, THREADS).striped(2).chaos_off());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let stm = stm.clone();
            s.spawn(move || {
                let mut h = stm.handle(t);
                h.set_retry_policy(RetryPolicy::attempts(1));
                for _ in 0..TXNS {
                    h.atomic(|tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)
                    });
                }
            });
        }
    });
    assert_eq!(stm.peek(0), THREADS as u64 * TXNS);
    assert!(stm.runtime().escalated().is_none());
}

/// A panicking *escalated* body must release the runtime-wide token on its
/// way out — leaking it would park every other handle forever.
#[test]
fn panic_inside_escalated_body_releases_the_token() {
    let stm = Tl2Stm::with_config(StmConfig::new(4, 2).chaos_off());
    let mut victim = stm.handle(0);
    victim.set_retry_policy(RetryPolicy::attempts(1));
    let mut rival = stm.handle(1);
    let mut calls = 0u32;
    let r = catch_unwind(AssertUnwindSafe(|| {
        victim.atomic(|tx| {
            calls += 1;
            let v = tx.read(0)?;
            if calls == 1 {
                rival.atomic(|tx2| {
                    let w = tx2.read(0)?;
                    tx2.write(0, w + 1)
                });
            } else {
                panic!("panic while escalated");
            }
            tx.write(0, v + 1)
        })
    }));
    assert!(r.is_err());
    assert!(
        stm.runtime().escalated().is_none(),
        "the token guard must release on unwind"
    );
    // Everyone else proceeds.
    rival.atomic(|tx| tx.write(1, 9));
    assert_eq!(stm.peek(1), 9);
}
