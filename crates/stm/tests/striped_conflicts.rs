//! The stripe-granularity scenario space opened by the striped orec table:
//! programs whose transactions touch *disjoint* registers, yet conflict
//! (and must conservatively abort) when those registers share a stripe —
//! and provably don't under per-register storage. Deterministic via
//! barriers, so the interleaving is forced even on one core.

use std::sync::{Arc, Barrier};
use tm_stm::prelude::*;

/// Drive the interleaving: t1 opens a transaction and reads `read_reg`;
/// t0 then commits a write to `write_reg`; t1 resumes and tries to finish.
/// Returns t1's stats after exactly one `try_atomic` attempt.
fn disjoint_interleaving(
    stm: &Tl2Stm,
    read_reg: usize,
    write_reg: usize,
) -> (Result<(), Abort>, Stats) {
    let after_read = Arc::new(Barrier::new(2));
    let after_commit = Arc::new(Barrier::new(2));
    std::thread::scope(|s| {
        let stm1 = stm.clone();
        let (b1, b2) = (Arc::clone(&after_read), Arc::clone(&after_commit));
        let t1 = s.spawn(move || {
            let mut h = stm1.handle(1);
            let r = h.try_atomic(|tx| {
                let v = tx.read(read_reg)?;
                b1.wait();
                b2.wait();
                // A second read forces post-commit validation of the stripe
                // even when the first read's sample was still clean.
                let w = tx.read(read_reg)?;
                assert_eq!(v, w);
                Ok(())
            });
            (r, h.stats())
        });
        let mut h0 = stm.handle(0);
        after_read.wait();
        h0.atomic(|tx| {
            let v = tx.read(write_reg)?;
            tx.write(write_reg, v + 1)
        });
        after_commit.wait();
        t1.join().unwrap()
    })
}

/// Two registers that the striped table maps to the same stripe, plus one
/// mapped elsewhere (exists for any stripe count ≥ 2 by pigeonhole on a
/// large enough register range).
fn colliding_and_free(stm: &Tl2Stm, nregs: usize) -> (usize, usize, usize) {
    let s0 = stm.stripe_of(0);
    let colliding = (1..nregs)
        .find(|&x| stm.stripe_of(x) == s0)
        .expect("collision must exist");
    let free = (1..nregs)
        .find(|&x| stm.stripe_of(x) != s0)
        .expect("free register must exist");
    (0, colliding, free)
}

#[test]
fn disjoint_registers_conflict_only_under_striping() {
    const NREGS: usize = 64;

    // Striped: reading reg a while a stripe-sharing reg b is committed to
    // must abort — the false conflict the footprint trade buys.
    let striped = Tl2Stm::with_config(StmConfig::new(NREGS, 2).striped(4));
    let (a, b, free) = colliding_and_free(&striped, NREGS);
    assert_ne!(a, b, "distinct registers");
    assert_eq!(striped.stripe_of(a), striped.stripe_of(b));
    let (r, stats) = disjoint_interleaving(&striped, a, b);
    assert_eq!(
        r,
        Err(Abort),
        "stripe-sharing disjoint write must abort the reader"
    );
    assert_eq!(stats.aborts_read + stats.aborts_validate, 1, "{stats:?}");

    // Striped, non-colliding registers: no conflict.
    let (r, stats) = disjoint_interleaving(&striped, a, free);
    assert_eq!(r, Ok(()), "disjoint stripes must not conflict: {stats:?}");
    assert_eq!(stats.commits, 1);

    // Per-register: the same disjoint program never conflicts, even for the
    // register pair that collided under striping.
    let per_reg = Tl2Stm::new(NREGS, 2);
    let (r, stats) = disjoint_interleaving(&per_reg, a, b);
    assert_eq!(
        r,
        Ok(()),
        "per-register storage has no false conflicts: {stats:?}"
    );
    assert_eq!(stats.commits, 1);
}

#[test]
fn striping_preserves_real_conflicts() {
    // Same register on both sides: every backend must abort the reader.
    for stm in [
        Tl2Stm::new(8, 2),
        Tl2Stm::with_config(StmConfig::new(8, 2).striped(2)),
        Tl2Stm::with_config(StmConfig::new(8, 2).striped(1)),
    ] {
        let (r, stats) = disjoint_interleaving(&stm, 3, 3);
        assert_eq!(r, Err(Abort), "true conflict must abort ({stats:?})");
    }
}

#[test]
fn striped_instance_serves_registers_beyond_stripe_count() {
    // A million-register file over 8 lock words: reads/writes/fences all
    // work; metadata did not grow with the register file.
    let stm = Tl2Stm::with_config(StmConfig::new(1 << 20, 2).striped(8));
    assert_eq!(stm.nstripes(), 8);
    let mut h = stm.handle(0);
    for i in 0..64 {
        let x = i * 16_384;
        h.atomic(|tx| tx.write(x, i as u64 + 1));
    }
    h.fence();
    for i in 0..64 {
        assert_eq!(stm.peek(i * 16_384), i as u64 + 1);
    }
}
