//! Integration tests for asynchronous, batched fences on the real STMs:
//! ticket coalescing (the acceptance criterion: N tickets issued in one
//! open grace period resolve on ONE epoch-table scan), overlap with
//! transaction traffic, recorded-history validity, and the batch helper.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use tm_stm::prelude::*;

/// A TL2 instance pinned to cooperative driving: the exact-scan-count
/// assertions below are deterministic only when no background driver can
/// close a period between our issues (`TM_STM_DRIVER=background` makes
/// `Tl2Stm::new` spawn one). The driver-mode batching counterpart lives in
/// `fence_driver.rs`.
fn cooperative_stm(nregs: usize, nthreads: usize) -> Tl2Stm {
    Tl2Stm::with_config(StmConfig::new(nregs, nthreads).grace_driver(DriverMode::Cooperative))
}

/// The coalescing acceptance test: N tickets, one scan.
#[test]
fn tickets_in_same_open_period_share_one_scan() {
    let stm = cooperative_stm(4, 4);
    let mut handles: Vec<_> = (0..4).map(|t| stm.handle(t)).collect();
    assert_eq!(stm.runtime().grace().scans(), 0);
    let tickets: Vec<FenceTicket> = handles.iter_mut().map(|h| h.fence_async()).collect();
    for t in &tickets {
        assert_eq!(t.period(), Some(1), "all tickets share the open period");
    }
    for (h, t) in handles.iter_mut().zip(tickets) {
        h.fence_join(t);
    }
    assert_eq!(
        stm.runtime().grace().scans(),
        1,
        "4 concurrent fences must be batched behind a single scan"
    );
    for h in &handles {
        assert_eq!(h.stats().fences, 1);
    }
}

/// Sequential blocking fences pay one scan each — the baseline the batch
/// path beats.
#[test]
fn sequential_fences_pay_one_scan_each() {
    let stm = cooperative_stm(4, 4);
    let mut handles: Vec<_> = (0..4).map(|t| stm.handle(t)).collect();
    for h in handles.iter_mut() {
        h.fence();
    }
    assert_eq!(stm.runtime().grace().scans(), 4);
}

/// `fence_all` batches a whole handle set behind one grace period.
#[test]
fn fence_all_batches_handle_sets() {
    let stm = cooperative_stm(4, 8);
    let mut handles: Vec<_> = (0..8).map(|t| stm.handle(t)).collect();
    fence_all(handles.iter_mut());
    assert_eq!(stm.runtime().grace().scans(), 1);
    for h in &handles {
        assert_eq!(h.stats().fences, 1);
    }
}

/// A ticket must not resolve while a transaction active at issue is still
/// running, and must resolve once it commits.
#[test]
fn ticket_waits_for_inflight_transaction() {
    let stm = Tl2Stm::new(2, 2);
    let in_txn = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let stm = stm.clone();
            let in_txn = Arc::clone(&in_txn);
            let release = Arc::clone(&release);
            s.spawn(move || {
                let mut h = stm.handle(1);
                h.atomic(|tx| {
                    tx.write(0, 7)?;
                    in_txn.store(true, Ordering::SeqCst);
                    while !release.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                    Ok(())
                });
            });
        }
        while !in_txn.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        let mut h = stm.handle(0);
        let mut ticket = h.fence_async();
        assert!(
            !ticket.poll(),
            "ticket resolved with a pre-issue transaction in flight"
        );
        release.store(true, Ordering::SeqCst);
        h.fence_join(ticket);
    });
    assert_eq!(stm.peek(0), 7, "the awaited transaction committed");
}

/// Polling alone must drive the grace period to completion (cooperative
/// advance without any blocking waiter).
#[test]
fn polling_drives_completion() {
    let stm = Tl2Stm::new(1, 2);
    stm.runtime().epochs().enter(1);
    let mut h = stm.handle(0);
    let mut ticket = h.fence_async();
    assert!(!ticket.poll(), "peer slot is active");
    stm.runtime().epochs().exit(1);
    let mut polls = 0;
    while !ticket.poll() {
        polls += 1;
        assert!(polls < 100, "polling must converge once the peer exits");
    }
    assert!(ticket.is_resolved());
}

/// `on_complete` fires exactly once, from whichever thread completes the
/// period.
#[test]
fn on_complete_callback_fires() {
    let stm = cooperative_stm(1, 2);
    let fired = Arc::new(AtomicUsize::new(0));
    let mut h0 = stm.handle(0);
    let mut h1 = stm.handle(1);
    let ticket = h0.fence_async();
    {
        let fired = Arc::clone(&fired);
        ticket.on_complete(move || {
            fired.fetch_add(1, Ordering::SeqCst);
        });
    }
    // h1's blocking fence shares the open period and drives it home.
    h1.fence();
    assert_eq!(fired.load(Ordering::SeqCst), 1);
    assert_eq!(stm.runtime().grace().scans(), 1, "callback rode h1's scan");
}

/// Dropping an unresolved ticket waits the fence out — with a recorder
/// attached, the FEnd is still emitted and the history stays well-formed.
#[test]
fn dropped_ticket_resolves_and_records() {
    let rec = Arc::new(Recorder::new(1));
    let stm = Tl2Stm::with_recorder(2, 1, Some(Arc::clone(&rec)));
    let mut h = stm.handle(0);
    h.atomic(|tx| tx.write(0, 1));
    {
        let _ticket = h.fence_async();
        // dropped unresolved: resolves (and records FEnd) here
    }
    h.write_direct(1, 2);
    let hist = rec.snapshot_history();
    assert_eq!(hist.validate(), Ok(()));
    assert_eq!(h.stats().fences, 1);
}

/// An async fence recorded around real transaction traffic produces a
/// well-formed history: FBegin at issue, FEnd at resolution, and every
/// transaction recorded before FBegin completes before FEnd.
#[test]
fn recorded_async_fence_history_validates() {
    let rec = Arc::new(Recorder::new(2));
    let stm = Tl2Stm::with_recorder(4, 2, Some(Arc::clone(&rec)));
    let mut h0 = stm.handle(0);
    let mut h1 = stm.handle(1);
    h1.atomic(|tx| tx.write(0, 1));
    let ticket = h0.fence_async();
    // Overlapped work under an open ticket must be non-transactional on
    // this handle; plain local computation stands in for it here.
    let overlap: u64 = (1..=10).sum();
    assert_eq!(overlap, 55);
    h0.fence_join(ticket);
    h0.write_direct(1, 2);
    h1.atomic(|tx| tx.write(2, 3));
    let hist = rec.snapshot_history();
    assert_eq!(hist.validate(), Ok(()));
}

/// Fences keep completing while transaction traffic never stops — the
/// liveness property the engine's precise epoch snapshots buy (regression
/// test for the yield-based wait loop on single-core hosts).
#[test]
fn fences_complete_under_continuous_traffic() {
    let stm = Tl2Stm::new(2, 2);
    let stop = Arc::new(AtomicBool::new(false));
    let mut h = stm.handle(0);
    std::thread::scope(|s| {
        {
            let stm = stm.clone();
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut w = stm.handle(1);
                while !stop.load(Ordering::SeqCst) {
                    w.atomic(|tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)
                    });
                }
            });
        }
        for _ in 0..50 {
            let t = h.fence_async();
            h.fence_join(t);
        }
        stop.store(true, Ordering::SeqCst);
    });
    assert_eq!(h.stats().fences, 50);
}
