//! Integration tests for the background grace-period driver on the real
//! STMs — the regression suite for the fire-and-forget fence liveness bug:
//! without a driver, a `FenceTicket::on_complete` callback with no
//! poller/waiter never fires (nobody drives the engine), even though
//! `on_complete` has already disarmed the ticket's blocking drop.
//!
//! Assertion style: tests *sleep*-wait on callback flags. Polling a ticket
//! or waiting on the engine would itself drive the grace period and mask
//! exactly the liveness hole these tests guard.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tm_stm::prelude::*;

fn background_stm(nregs: usize, nthreads: usize) -> Tl2Stm {
    Tl2Stm::with_config(StmConfig::new(nregs, nthreads).grace_driver(DriverMode::Background))
}

/// Sleep (never poll) until `cond`, bounded so a broken driver fails the
/// test instead of hanging CI.
fn sleep_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// THE acceptance regression: a fire-and-forget `on_complete` ticket with
/// zero pollers and zero waiters fires within bounded time under the
/// driver. (Cooperatively this callback is lost: `on_complete` disarms the
/// blocking drop and nobody ever drives the engine again.)
#[test]
fn fire_and_forget_on_complete_fires_with_zero_pollers() {
    let stm = background_stm(1, 2);
    let mut h = stm.handle(0);
    let fired = Arc::new(AtomicBool::new(false));
    {
        let fired = Arc::clone(&fired);
        h.fence_async().on_complete(move || {
            fired.store(true, Ordering::SeqCst);
        });
    }
    // No further TM traffic of any kind: only the driver can retire this.
    sleep_until("fire-and-forget callback", || fired.load(Ordering::SeqCst));
}

/// Same, but with a transaction genuinely in flight at issue: the driver
/// must wait the transaction out (never retire the period early), then
/// fire the callback promptly once it commits — while the issuing thread
/// does nothing at all.
#[test]
fn fire_and_forget_waits_for_inflight_transaction() {
    let stm = background_stm(2, 2);
    let in_txn = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let fired = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let stm = stm.clone();
            let in_txn = Arc::clone(&in_txn);
            let release = Arc::clone(&release);
            s.spawn(move || {
                let mut h = stm.handle(1);
                h.atomic(|tx| {
                    tx.write(0, 7)?;
                    in_txn.store(true, Ordering::SeqCst);
                    while !release.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                    Ok(())
                });
            });
        }
        while !in_txn.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        let mut h = stm.handle(0);
        {
            let fired = Arc::clone(&fired);
            h.fence_async().on_complete(move || {
                fired.store(true, Ordering::SeqCst);
            });
        }
        // Ample time for a buggy driver to retire the period early.
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            !fired.load(Ordering::SeqCst),
            "callback fired with the awaited transaction still active"
        );
        release.store(true, Ordering::SeqCst);
        sleep_until("callback after commit", || fired.load(Ordering::SeqCst));
    });
    assert_eq!(stm.peek(0), 7, "the awaited transaction committed");
}

/// Batching is preserved under the driver (the acceptance criterion):
/// N tickets issued in one open period still resolve on ONE epoch-table
/// scan, with the driver — not any poller — doing the resolving.
///
/// Determinism: a pinned epoch slot keeps the driver's first scan (for a
/// sacrificial ticket's period) in progress, and the engine cannot close
/// the next period while a scan is in progress — so every ticket issued
/// meanwhile lands in that period, however the driver is scheduled.
#[test]
fn driver_preserves_fence_ticket_batching() {
    const N: usize = 5;
    let stm = background_stm(4, N + 1);
    let eng = Arc::clone(stm.runtime().grace());
    stm.runtime().epochs().enter(N); // pins the first scan
    let mut handles: Vec<_> = (0..N).map(|t| stm.handle(t)).collect();
    let sacrificial = handles[0].fence_async();
    assert_eq!(sacrificial.period(), Some(1));
    // Wait for the driver to close period 1 (its scan now pends on slot N).
    sleep_until("driver to open period 2", || eng.open_period() == 2);
    let tickets: Vec<FenceTicket> = handles.iter_mut().map(|h| h.fence_async()).collect();
    for t in &tickets {
        assert_eq!(t.period(), Some(2), "period 2 is pinned open");
    }
    assert_eq!(eng.scans(), 0, "first scan still in progress");
    stm.runtime().epochs().exit(N);
    // Zero pollers: only the driver resolves the batch.
    sleep_until("driver to retire period 2", || eng.is_complete(2));
    assert_eq!(
        eng.scans(),
        2,
        "{N} tickets must coalesce behind one scan (plus the sacrificial one)"
    );
    // The tickets are now all resolved claims; dropping them must not scan
    // again.
    drop(tickets);
    drop(sacrificial);
    assert_eq!(eng.scans(), 2);
}

/// Cross-thread `FEnd` recording (satellite audit): under the driver the
/// completing thread records the issuing slot's `FEnd`. With the
/// documented discipline — the issuing handle records nothing until the
/// callback has been observed — the history is well-formed, carries
/// exactly one FBegin/FEnd pair, and every pre-issue transaction completes
/// before the FEnd.
#[test]
fn on_complete_records_fend_under_driver() {
    use tm_core::action::Kind;
    let rec = Arc::new(Recorder::new(2));
    let stm = Tl2Stm::with_config(
        StmConfig::new(2, 2)
            .recorder(Arc::clone(&rec))
            .grace_driver(DriverMode::Background),
    );
    let in_txn = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let fired = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let stm = stm.clone();
            let in_txn = Arc::clone(&in_txn);
            let release = Arc::clone(&release);
            s.spawn(move || {
                let mut h = stm.handle(1);
                h.atomic(|tx| {
                    tx.write(0, 1)?;
                    in_txn.store(true, Ordering::SeqCst);
                    while !release.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                    Ok(())
                });
            });
        }
        while !in_txn.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        let mut h = stm.handle(0);
        {
            let fired = Arc::clone(&fired);
            h.fence_async().on_complete(move || {
                fired.store(true, Ordering::SeqCst);
            });
        }
        release.store(true, Ordering::SeqCst);
        // The driver's thread records slot 0's FEnd; we record nothing on
        // slot 0 until the callback is observed (the documented rule).
        sleep_until("driver-recorded FEnd", || fired.load(Ordering::SeqCst));
        h.write_direct(1, 2);
    });
    let hist = rec.snapshot_history();
    assert_eq!(
        hist.validate(),
        Ok(()),
        "cross-thread FEnd must stay well-formed"
    );
    let fbegins = hist
        .actions()
        .iter()
        .filter(|a| a.kind == Kind::FBegin)
        .count();
    let fends = hist
        .actions()
        .iter()
        .filter(|a| a.kind == Kind::FEnd)
        .count();
    assert_eq!((fbegins, fends), (1, 1), "exactly one recorded fence");
}

/// Many fire-and-forget tickets from many threads, no poller anywhere:
/// every callback fires, and the runtime's drop drains any stragglers.
#[test]
fn many_fire_and_forget_tickets_all_fire() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 8;
    let fired = Arc::new(AtomicUsize::new(0));
    {
        let stm = background_stm(THREADS, THREADS);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let stm = stm.clone();
                let fired = Arc::clone(&fired);
                s.spawn(move || {
                    let mut h = stm.handle(t);
                    for i in 0..PER_THREAD {
                        h.atomic(|tx| tx.write(t, (t * PER_THREAD + i) as u64 + 1));
                        let fired = Arc::clone(&fired);
                        // No recorder attached, so the loop may keep
                        // issuing TM ops while tickets are outstanding —
                        // only recorded histories need the
                        // observe-the-callback rule.
                        h.fence_async().on_complete(move || {
                            fired.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        // stm drops here: runtime shutdown drains outstanding periods.
    }
    assert_eq!(
        fired.load(Ordering::SeqCst),
        THREADS * PER_THREAD,
        "no fire-and-forget callback may be lost, even across shutdown"
    );
}

/// The driver mode is a per-instance knob: cooperative instances never
/// spawn a thread and still work exactly as before.
#[test]
fn cooperative_mode_remains_default_and_functional() {
    let cfg = StmConfig::new(1, 1);
    // (Under TM_STM_DRIVER=background the env default flips; force it.)
    let stm = Tl2Stm::with_config(cfg.grace_driver(DriverMode::Cooperative));
    assert_eq!(stm.runtime().driver_mode(), DriverMode::Cooperative);
    let mut h = stm.handle(0);
    h.fence();
    assert_eq!(h.stats().fences, 1);
    let stm = background_stm(1, 1);
    assert_eq!(stm.runtime().driver_mode(), DriverMode::Background);
}
