//! Stall detection: the grace engine notices an epoch slot pinned past a
//! wall-clock threshold, surfaces it as telemetry and through bounded
//! fence waits, and the runtime survives the stall ending.

use std::time::{Duration, Instant};
use tm_stm::prelude::*;
use tm_stm::runtime::DriverMode;

/// A pinned epoch slot makes a bounded fence wait time out with the
/// offender *named*; unpinning lets the same ticket resolve.
#[test]
fn stalled_slot_is_detected_named_and_survivable() {
    let stm = Tl2Stm::with_config(
        StmConfig::new(4, 4)
            .grace_driver(DriverMode::Cooperative)
            .trace(TraceConfig::with_capacity(64))
            .chaos_off(),
    );
    let rt = stm.runtime();
    rt.grace().set_stall_threshold(Duration::from_millis(5));
    // Park slot 3 "inside a transaction": a manual epoch entry is exactly
    // what a thread parked (or dead) mid-transaction looks like.
    rt.epochs().enter(3);
    let mut h = stm.handle(0);
    h.atomic(|tx| tx.write(0, 1));
    let mut ticket = h.fence_async();
    let err = h
        .fence_join_timeout(&mut ticket, Duration::from_millis(40))
        .expect_err("the fence cannot complete over a pinned slot");
    assert!(
        err.stalled.iter().any(|s| s.slot == 3),
        "the report names the pinned slot: {err}"
    );
    assert!(
        err.stalled
            .iter()
            .all(|s| s.pinned >= Duration::from_millis(5)),
        "pinned time is at least the threshold"
    );
    assert!(err.to_string().contains("stalled slots"));
    assert!(
        h.stats().stalls_detected >= 1,
        "the timed-out join counts the offenders it saw"
    );
    assert!(rt.grace().stall_reports() >= 1, "engine-side dedup counter");
    // The stall is traced (once per slot per scan, on the engine slot).
    let snap = stm.telemetry_snapshot();
    assert!(
        snap.events.iter().any(|e| matches!(
            e.kind,
            EventKind::StallReport { stalled_slot, .. } if stalled_slot == 3
        )),
        "a StallReport event reaches the flight recorder"
    );
    // A timeout bounds the wait, not the fence: the ticket is still
    // pending, and once the stall ends it resolves normally.
    assert!(!ticket.is_resolved());
    rt.epochs().exit(3);
    h.fence_join(ticket);
}

/// The success path: with nothing pinned, `fence_join_timeout` completes
/// well inside a generous bound and resolves the ticket.
#[test]
fn fence_join_timeout_ok_path_resolves() {
    let stm = Tl2Stm::with_config(
        StmConfig::new(4, 2)
            .grace_driver(DriverMode::Cooperative)
            .chaos_off(),
    );
    let mut h = stm.handle(0);
    h.atomic(|tx| tx.write(0, 1));
    let mut ticket = h.fence_async();
    h.fence_join_timeout(&mut ticket, Duration::from_secs(5))
        .expect("no contention: the fence completes");
    assert!(ticket.is_resolved());
}

/// Immediate-fence backends (NOrec) resolve at issue; the bounded join is
/// trivially `Ok` and charges nothing.
#[test]
fn immediate_fences_never_time_out() {
    let stm = NorecStm::with_config(StmConfig::new(4, 1).chaos_off());
    let mut h = stm.handle(0);
    h.atomic(|tx| tx.write(0, 1));
    let mut ticket = h.fence_async();
    assert!(ticket.is_resolved());
    h.fence_join_timeout(&mut ticket, Duration::from_millis(1))
        .expect("an already-resolved ticket cannot time out");
}

/// Driver-side detection: under [`DriverMode::Background`] the stall is
/// reported by the driver thread itself — no waiter anywhere — so a
/// fire-and-forget fence behind a wedged slot still becomes visible.
#[test]
fn background_driver_reports_stalls_with_zero_pollers() {
    let stm = Tl2Stm::with_config(
        StmConfig::new(4, 2)
            .grace_driver(DriverMode::Background)
            .chaos_off(),
    );
    let rt = stm.runtime();
    rt.grace().set_stall_threshold(Duration::from_millis(5));
    rt.epochs().enter(1);
    let mut h = stm.handle(0);
    h.atomic(|tx| tx.write(0, 1));
    // Fire and forget: nobody waits, nobody polls; only the driver runs.
    h.fence_async().on_complete(|| {});
    let deadline = Instant::now() + Duration::from_secs(10);
    while rt.grace().stall_reports() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        rt.grace().stall_reports() > 0,
        "the background driver's tick must notice the pinned slot"
    );
    // End the stall so runtime drop can drain the outstanding period.
    rt.epochs().exit(1);
}
