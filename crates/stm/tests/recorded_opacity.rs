//! Record real concurrent TL2 executions and validate them against the
//! paper's theory: well-formedness (Def 2.1), DRF (Def 3.2), and strong
//! opacity with a verified atomic witness (Theorem 6.5 / Lemma 6.4).

use std::sync::Arc;
use tm_core::hb::is_drf;
use tm_core::opacity::{check_strong_opacity, CheckOptions};
use tm_core::textio;
use tm_stm::prelude::*;

/// Unique nonzero value: slot in the high bits, counter below.
fn val(slot: usize, counter: u64) -> u64 {
    ((slot as u64 + 1) << 40) | (counter + 1)
}

fn check_history(rec: &Recorder, expect_drf: bool) {
    let h = rec.snapshot_history();
    assert_eq!(
        h.validate(),
        Ok(()),
        "recorded history ill-formed:\n{}",
        textio::to_text(&h)
    );
    let drf = is_drf(&h);
    assert_eq!(
        drf,
        expect_drf,
        "DRF verdict mismatch:\n{}",
        textio::to_text(&h)
    );
    if drf {
        if let Err(e) = check_strong_opacity(&h, &CheckOptions::default()) {
            panic!(
                "recorded TL2 history not strongly opaque: {e:?}\n{}",
                textio::to_text(&h)
            );
        }
    }
}

/// Purely transactional workload: always DRF (no non-transactional
/// accesses), must be strongly opaque.
#[test]
fn transactional_only_history_is_opaque() {
    let rec = Arc::new(Recorder::new(3));
    let stm = Tl2Stm::with_recorder(6, 3, Some(Arc::clone(&rec)));
    std::thread::scope(|s| {
        for t in 0..3 {
            let stm = stm.clone();
            s.spawn(move || {
                let mut h = stm.handle(t);
                for i in 0..4u64 {
                    let _ = h.try_atomic(|tx| {
                        let a = tx.read(i as usize % 6)?;
                        tx.write(t, val(t, i * 2))?;
                        tx.write(3 + t % 3, val(t, i * 2 + 1))?;
                        Ok(a)
                    });
                }
            });
        }
    });
    check_history(&rec, true);
}

/// Fenced privatization (Fig 1(a) discipline) on the real STM: recorded
/// histories are DRF and strongly opaque.
#[test]
fn fenced_privatization_history_is_drf_and_opaque() {
    const FLAG: usize = 0;
    const DATA: usize = 1;
    let rec = Arc::new(Recorder::new(2));
    let stm = Tl2Stm::with_recorder(2, 2, Some(Arc::clone(&rec)));
    std::thread::scope(|s| {
        let stm0 = stm.clone();
        s.spawn(move || {
            let mut h = stm0.handle(0);
            for i in 0..3u64 {
                h.atomic(|tx| tx.write(FLAG, val(0, i * 3)));
                h.fence();
                // Private phase: uninstrumented accesses.
                h.write_direct(DATA, val(0, i * 3 + 1));
                let _ = h.read_direct(DATA);
                // Publish back: flag value with low bit pattern 2 ≠ "private".
                h.atomic(|tx| tx.write(FLAG, val(0, i * 3 + 2)));
                h.fence();
            }
        });
        let stm1 = stm.clone();
        s.spawn(move || {
            let mut h = stm1.handle(1);
            for i in 0..6u64 {
                h.atomic(|tx| {
                    let flag = tx.read(FLAG)?;
                    // "Private" iff the owner's last flag write has
                    // counter ≡ 1 (mod 3) — i.e. value v with (v-1) % 3 == 0.
                    let private = flag != 0 && (flag & 0xFF_FFFF_FFFF) % 3 == 1;
                    if !private {
                        tx.write(DATA, val(1, i))?;
                    }
                    Ok(())
                });
            }
        });
    });
    check_history(&rec, true);
}

/// Unfenced mixed access: the recorded history is racy (the DRF checker must
/// flag it), and strong opacity is then not required of the TM.
#[test]
fn unfenced_mixed_access_history_is_racy() {
    let rec = Arc::new(Recorder::new(2));
    let stm = Tl2Stm::with_recorder(1, 2, Some(Arc::clone(&rec)));
    std::thread::scope(|s| {
        let stm0 = stm.clone();
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let b0 = Arc::clone(&barrier);
        s.spawn(move || {
            let mut h = stm0.handle(0);
            b0.wait();
            for i in 0..5u64 {
                h.write_direct(0, val(0, i)); // uninstrumented, unguarded
            }
        });
        let stm1 = stm.clone();
        let b1 = Arc::clone(&barrier);
        s.spawn(move || {
            let mut h = stm1.handle(1);
            b1.wait();
            for i in 0..5u64 {
                let _ = h.try_atomic(|tx| tx.write(0, val(1, i)));
            }
        });
    });
    let h = rec.snapshot_history();
    assert_eq!(h.validate(), Ok(()));
    assert!(!is_drf(&h), "concurrent tx/non-tx writes must race");
}

/// Read-only auditors over transactional writers: DRF, opaque, and the
/// recorder round-trips through the text format.
#[test]
fn audit_history_roundtrip() {
    let rec = Arc::new(Recorder::new(2));
    let stm = Tl2Stm::with_recorder(4, 2, Some(Arc::clone(&rec)));
    std::thread::scope(|s| {
        let stm0 = stm.clone();
        s.spawn(move || {
            let mut h = stm0.handle(0);
            for i in 0..5u64 {
                h.atomic(|tx| {
                    tx.write(i as usize % 4, val(0, i))?;
                    Ok(())
                });
            }
        });
        let stm1 = stm.clone();
        s.spawn(move || {
            let mut h = stm1.handle(1);
            for _ in 0..5 {
                let _ = h.try_atomic(|tx| {
                    let mut acc = 0u64;
                    for x in 0..4 {
                        acc ^= tx.read(x)?;
                    }
                    Ok(acc)
                });
            }
        });
    });
    let h = rec.snapshot_history();
    let h2 = textio::from_text(&textio::to_text(&h)).unwrap();
    assert_eq!(h.actions(), h2.actions());
    check_history(&rec, true);
}
