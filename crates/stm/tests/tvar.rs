//! EBR correctness for the typed frontend: every `TVar` payload instance
//! ever created — initial values, committed replacements, buffered writes
//! of aborted or panicking bodies, boxes freed on failed commits — is
//! dropped exactly once, under both driver modes. A leak leaves
//! `created > dropped`; a double-drop overshoots (or crashes outright).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tm_stm::prelude::*;
use tm_stm::tl2::Tl2Kind;
use tm_stm::tvar::TypedStm;

/// A payload that counts its instances: `new` and `Clone` bump `created`,
/// `Drop` bumps `dropped`. Balanced counters at the end mean no instance
/// leaked and none was freed twice.
#[derive(Debug)]
struct Counted {
    n: u64,
    created: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
}

impl Counted {
    fn new(n: u64, created: &Arc<AtomicU64>, dropped: &Arc<AtomicU64>) -> Self {
        created.fetch_add(1, Ordering::SeqCst);
        Counted {
            n,
            created: Arc::clone(created),
            dropped: Arc::clone(dropped),
        }
    }
}

impl Clone for Counted {
    fn clone(&self) -> Self {
        Counted::new(self.n, &self.created, &self.dropped)
    }
}

impl Drop for Counted {
    fn drop(&mut self) {
        self.dropped.fetch_add(1, Ordering::SeqCst);
    }
}

fn config(mode: DriverMode) -> StmConfig {
    let mut cfg = StmConfig::new(16, 3);
    cfg.driver = mode;
    cfg
}

/// The full lifecycle mix: contended increments (commit-time aborts retire
/// and free boxes on both paths), explicit conflict re-runs, and bodies
/// that panic before and after buffering writes. Every `Counted` instance
/// must come back.
fn lifecycle_drops_every_instance_once(mode: DriverMode) {
    let created = Arc::new(AtomicU64::new(0));
    let dropped = Arc::new(AtomicU64::new(0));
    {
        let stm: TypedStm<Tl2Kind> = TypedStm::with_config(config(mode));
        let var = stm.new_tvar(Counted::new(0, &created, &dropped));
        let other = stm.new_tvar(Counted::new(100, &created, &dropped));

        std::thread::scope(|s| {
            for slot in 0..2 {
                let stm = stm.clone();
                let var = var.clone();
                let created = Arc::clone(&created);
                let dropped = Arc::clone(&dropped);
                s.spawn(move || {
                    let mut h = stm.handle(slot);
                    for i in 0..200u64 {
                        h.atomically(|tx| {
                            let cur = tx.read(&var)?;
                            tx.write(&var, Counted::new(cur.n + 1, &created, &dropped))
                        });
                        // A few bodies unwind mid-flight: before any write
                        // (no buffered payloads) and after one (the
                        // buffered `Counted` must still be dropped).
                        if i % 50 == 7 {
                            let r = catch_unwind(AssertUnwindSafe(|| {
                                h.atomically(|tx| -> StmResult<()> {
                                    if i % 100 == 7 {
                                        let cur = tx.read(&var)?;
                                        tx.write(&var, Counted::new(cur.n, &created, &dropped))?;
                                    }
                                    panic!("injected body panic");
                                })
                            }));
                            assert!(r.is_err(), "the body panic must surface");
                        }
                    }
                });
            }
            // A third thread exercises the read/retry path against `other`.
            let stm2 = stm.clone();
            let other2 = other.clone();
            s.spawn(move || {
                let mut h = stm2.handle(2);
                h.set_retry_strategy(RetryStrategy::Spin);
                let seen = h.atomically(|tx| {
                    let v = tx.read(&other2)?;
                    if v.n < 100 {
                        tx.retry()
                    } else {
                        Ok(v.n)
                    }
                });
                assert_eq!(seen, 100);
            });
        });

        let final_n = stm.handle(0).atomically(|tx| Ok(tx.read(&var)?.n));
        assert_eq!(
            final_n, 400,
            "every committed increment applied exactly once"
        );

        let grace = stm.stm().runtime().grace();
        assert!(
            grace.retired_boxes() >= 400,
            "each committed replacement retires the displaced box (saw {})",
            grace.retired_boxes()
        );
    }
    // Everything is dropped: instance, vars, handles — the runtime and its
    // grace engine drained (pending retirements freed at engine drop).
    assert_eq!(
        created.load(Ordering::SeqCst),
        dropped.load(Ordering::SeqCst),
        "every payload instance dropped exactly once (no leak, no double-drop)"
    );
    assert!(created.load(Ordering::SeqCst) > 0, "the workload ran");
}

#[test]
fn lifecycle_drops_every_instance_once_cooperative() {
    lifecycle_drops_every_instance_once(DriverMode::Cooperative);
}

#[test]
fn lifecycle_drops_every_instance_once_background() {
    lifecycle_drops_every_instance_once(DriverMode::Background);
}

/// Under the background driver, retirements are collected *during* the run
/// (amortized under the driver tick), not just at engine drop: after a
/// fence the displaced boxes of earlier commits are free.
#[test]
fn background_driver_collects_while_running() {
    let created = Arc::new(AtomicU64::new(0));
    let dropped = Arc::new(AtomicU64::new(0));
    let stm: TypedStm<Tl2Kind> = TypedStm::with_config(config(DriverMode::Background));
    let var = stm.new_tvar(Counted::new(0, &created, &dropped));
    let mut h = stm.handle(0);
    for _ in 0..32 {
        h.atomically(|tx| {
            let cur = tx.read(&var)?;
            tx.write(&var, Counted::new(cur.n + 1, &created, &dropped))
        });
    }
    // A fence shares (at latest) the open period of the last retirement,
    // so joining it guarantees that period completed — and the completing
    // scan collects everything retired under it.
    h.inner().fence();
    let grace = stm.stm().runtime().grace();
    assert_eq!(grace.retired_boxes(), 32, "one retirement per replacement");
    assert_eq!(
        grace.collected_boxes(),
        32,
        "post-fence, every retirement is collected"
    );
    assert_eq!(grace.retired_pending(), 0);
}

/// The cooperative path: with no background driver, a polled fence is what
/// advances periods — and its completing scan collects the retirements.
#[test]
fn cooperative_fence_collects_retirements() {
    let created = Arc::new(AtomicU64::new(0));
    let dropped = Arc::new(AtomicU64::new(0));
    let stm: TypedStm<Tl2Kind> = TypedStm::with_config(config(DriverMode::Cooperative));
    let var = stm.new_tvar(Counted::new(0, &created, &dropped));
    let mut h = stm.handle(0);
    for _ in 0..8 {
        h.atomically(|tx| {
            let cur = tx.read(&var)?;
            tx.write(&var, Counted::new(cur.n + 1, &created, &dropped))
        });
    }
    h.inner().fence();
    let grace = stm.stm().runtime().grace();
    assert_eq!(grace.retired_boxes(), 8);
    assert_eq!(grace.collected_boxes(), 8);
    // The freed boxes' payloads really dropped (8 displaced values; reads
    // cloned more instances, so compare through the retire accounting, not
    // the raw counters).
    assert!(dropped.load(Ordering::SeqCst) >= 8);
}

/// The nested-`atomically` guard holds across handle and instance
/// boundaries: any second typed transaction on the same thread panics.
#[test]
fn nested_atomically_is_rejected_across_instances() {
    let stm: TypedStm<Tl2Kind> = TypedStm::new(8, 2);
    let inner_stm: TypedStm<Tl2Kind> = TypedStm::new(8, 2);
    let v = stm.new_tvar(1u64);
    let w = inner_stm.new_tvar(2u64);
    let mut h = stm.handle(0);
    let r = catch_unwind(AssertUnwindSafe(|| {
        h.atomically(|tx| {
            let mut h2 = inner_stm.handle(0);
            let w2 = w.clone();
            h2.atomically(move |tx2| tx2.read(&w2)); // must panic
            tx.read(&v)
        })
    }));
    let payload = r.expect_err("nested atomically must panic");
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("nested atomically"), "unexpected panic: {msg}");
    // The guard reset on unwind: this thread can transact again.
    assert_eq!(stm.handle(1).atomically(|tx| tx.read(&v)), 1);
}
