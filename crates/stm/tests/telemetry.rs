//! Integration tests for the telemetry subsystem: the flight recorder and
//! latency histograms threaded through the runtime, the governor's traced
//! decisions, the `Stats` ↔ histogram sum identity, snapshot JSON shape,
//! the periodic export hook, and the disabled-path cost contract.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tm_stm::prelude::*;
use tm_stm::runtime::DriverMode;
use tm_stm::tl2::GOVERNOR_WINDOW;

/// The tentpole promise of the flight recorder: a governor decision is
/// recorded *with the counters that justified it*. One write-heavy fold
/// must trace a GV1→GV5 switch request carrying the fold's read/write
/// commit split.
#[test]
fn governor_switch_event_carries_the_fold_counters() {
    let stm = Tl2Stm::with_config(
        StmConfig::new(16, 1)
            .clock(ClockKind::Auto)
            .trace(TraceConfig::with_capacity(1024)),
    );
    let mut h = stm.handle(0);
    for i in 0..GOVERNOR_WINDOW {
        h.atomic(|tx| tx.write(0, i + 1));
    }
    assert_eq!(h.stats().clock_switches, 1);
    let snap = stm.telemetry_snapshot();
    let requests: Vec<_> = snap
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ClockSwitchRequest { .. }))
        .collect();
    assert_eq!(requests.len(), 1, "one granted request, one trace event");
    assert_eq!(requests[0].slot, 0, "attributed to the deciding handle");
    match requests[0].kind {
        EventKind::ClockSwitchRequest {
            to_gv5,
            read_commits,
            write_commits,
        } => {
            assert!(to_gv5, "a write-heavy fold requests GV5");
            assert_eq!(read_commits, 0);
            assert_eq!(write_commits, GOVERNOR_WINDOW);
        }
        _ => unreachable!(),
    }
    // The decision is also reachable through the dedicated iterator.
    assert!(snap.governor_decisions().count() >= 1);
}

/// The grace-fenced handoff's *settlement* is traced too (engine slot),
/// and under the background driver the settle event appears with zero
/// transaction traffic after the request.
#[test]
fn clock_switch_settle_is_traced_in_both_driver_modes() {
    for mode in DriverMode::ALL {
        let stm = Tl2Stm::with_config(
            StmConfig::auto(16, 1)
                .grace_driver(mode)
                .trace(TraceConfig::with_capacity(1024)),
        );
        let mut h = stm.handle(0);
        for i in 0..GOVERNOR_WINDOW {
            h.atomic(|tx| tx.write(0, i + 1));
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        while stm.clock_handoff_pending() {
            assert!(Instant::now() < deadline, "{}: handoff stuck", mode.label());
            match mode {
                DriverMode::Background => std::thread::sleep(Duration::from_millis(1)),
                DriverMode::Cooperative => {
                    h.atomic(|tx| tx.read(1));
                }
            }
        }
        let snap = stm.telemetry_snapshot();
        let settled = snap.events.iter().any(|e| {
            matches!(e.kind, EventKind::ClockSwitchSettle { to_gv5: true })
                && e.slot == stm.runtime().telemetry().engine_slot()
        });
        assert!(settled, "{}: no settle event in {:?}", mode.label(), snap);
        assert_eq!(snap.driver_mode, Some(mode.label()));
    }
}

/// Satellite (f): `Stats::fence_wait_ns` is the fence-wait histogram's sum
/// — `fence_join` feeds the same measured wait to both sinks.
#[test]
fn fence_wait_counter_equals_histogram_sum() {
    let stm = Tl2Stm::with_config(StmConfig::new(2, 2).trace(TraceConfig::with_capacity(256)));
    let mut h = stm.handle(0);
    // One uncontended fence, then one genuinely blocked fence.
    h.fence();
    let rt = stm.runtime();
    rt.epochs().enter(1);
    let release = {
        let grace = Arc::clone(rt.grace());
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            grace.epochs().exit(1);
        })
    };
    h.fence();
    release.join().unwrap();
    let s = h.stats();
    let snap = stm.telemetry_snapshot();
    assert_eq!(s.fences, 2);
    assert_eq!(snap.hists.fence_wait.count(), 2, "one sample per join");
    assert_eq!(
        snap.hists.fence_wait.sum(),
        s.fence_wait_ns,
        "the Stats counter must be exactly the histogram's sum"
    );
    assert!(
        s.fence_wait_ns > 1_000_000,
        "the blocked fence charged time"
    );
    // The ring carries the issue/retire pair for each fence, with matching
    // grace periods.
    for kind in ["fence-issue", "fence-retire"] {
        let n = snap
            .events
            .iter()
            .filter(|e| e.kind.label() == kind)
            .count();
        assert_eq!(n, 2, "expected 2 {kind} events");
    }
    // Grace scans completed by those fences feed the grace histogram.
    assert!(snap.hists.grace.count() >= 1, "{:?}", snap.hists.grace);
    assert!(snap
        .events
        .iter()
        .any(|e| matches!(e.kind, EventKind::GraceScan { .. })));
}

/// Commits, aborts (with cause), and retry gaps all land in the snapshot:
/// the commit histogram counts exactly the committed transactions, a
/// body-requested abort is traced as `user`, and a failed-validation retry
/// records an abort-gap sample.
#[test]
fn commit_abort_and_retry_telemetry_lands_in_the_snapshot() {
    let stm = Tl2Stm::with_config(StmConfig::new(8, 2).trace(TraceConfig::with_capacity(1024)));
    let mut h = stm.handle(0);
    for i in 0..10u64 {
        h.atomic(|tx| tx.write(0, i));
    }
    let _ = h.try_atomic(|tx| {
        tx.read(0)?;
        Err::<(), Abort>(Abort)
    });
    let snap = stm.telemetry_snapshot();
    assert_eq!(snap.hists.commit.count(), h.stats().commits);
    assert!(snap.hists.commit.quantiles().p999 >= snap.hists.commit.quantiles().p50);
    let user_aborts = snap
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::TxAbort {
                    cause: AbortCause::User
                }
            )
        })
        .count();
    assert_eq!(user_aborts as u64, h.stats().aborts_user);
    // Force exactly one validation abort: handle `b` commits a conflicting
    // write between `a`'s read and `a`'s commit (first attempt only), so
    // `a` retries once and the retry loop records one abort-gap sample.
    let mut a = stm.handle(0);
    let mut b = stm.handle(1);
    let mut interfered = false;
    a.atomic(|tx| {
        let v = tx.read(1)?;
        if !interfered {
            interfered = true;
            b.atomic(|t| t.write(1, v + 100));
        }
        tx.write(2, v + 1)
    });
    assert_eq!(a.stats().retries, 1, "the interference forces one retry");
    let snap = stm.telemetry_snapshot();
    assert_eq!(
        snap.hists.abort_gap.count(),
        1,
        "one abort-gap sample per retry-loop pass"
    );
    assert!(snap.events.iter().any(|e| {
        e.slot == 0
            && matches!(
                e.kind,
                EventKind::TxAbort {
                    cause: AbortCause::Validate
                }
            )
    }));
}

/// Satellite (c): structural validation of the snapshot JSON under both
/// driver modes — balanced objects/arrays/strings/numbers, the
/// `bench_telemetry/v1` schema stamp, and the driver block.
#[test]
fn snapshot_json_is_structurally_valid_in_both_driver_modes() {
    for mode in DriverMode::ALL {
        let stm = Tl2Stm::with_config(
            StmConfig::auto(32, 2)
                .grace_driver(mode)
                .trace(TraceConfig::with_capacity(64)),
        );
        let mut h = stm.handle(0);
        for i in 0..GOVERNOR_WINDOW {
            h.atomic(|tx| tx.write((i % 8) as usize, i + 1));
        }
        h.fence();
        let snap = stm.telemetry_snapshot();
        let json = snap.to_json();
        assert_valid_json(&json);
        assert!(
            json.contains("\"schema\": \"bench_telemetry/v1\""),
            "schema stamp missing:\n{json}"
        );
        assert!(
            json.contains(&format!("\"mode\": \"{}\"", mode.label())),
            "driver mode missing:\n{json}"
        );
        match mode {
            DriverMode::Background => {
                assert!(json.contains("\"idle_wakeups\""), "{json}");
                assert!(snap.driver_idle_wakeups.is_some());
            }
            DriverMode::Cooperative => {
                assert!(!json.contains("\"idle_wakeups\""), "{json}");
                assert_eq!(snap.driver_idle_wakeups, None);
            }
        }
        // Every histogram class renders a row.
        for label in ["commit", "abort-gap", "fence-wait", "grace"] {
            assert!(json.contains(&format!("\"class\": \"{label}\"")), "{json}");
        }
    }
}

/// Satellite (a) + tentpole export hook: `driver_idle_wakeups` surfaces
/// through the runtime, and `set_telemetry_export` clocks snapshots off
/// the background driver's tick (and refuses cooperatively, where no
/// thread exists to clock it).
#[test]
fn export_hook_fires_on_the_driver_tick() {
    let coop = Tl2Stm::with_config(StmConfig::new(4, 1).grace_driver(DriverMode::Cooperative));
    assert_eq!(coop.driver_idle_wakeups(), None);
    assert!(
        !coop.set_telemetry_export(Duration::ZERO, |_| {}),
        "cooperative runtimes have no tick to export on"
    );

    let stm = Tl2Stm::with_config(
        StmConfig::new(4, 1)
            .grace_driver(DriverMode::Background)
            .trace(TraceConfig::with_capacity(64)),
    );
    let mut h = stm.handle(0);
    h.atomic(|tx| tx.write(0, 7));
    let exports = Arc::new(AtomicU64::new(0));
    let seen_commits = Arc::new(AtomicU64::new(0));
    {
        let exports = Arc::clone(&exports);
        let seen = Arc::clone(&seen_commits);
        assert!(stm.set_telemetry_export(Duration::ZERO, move |snap| {
            exports.fetch_add(1, Ordering::SeqCst);
            seen.fetch_max(snap.hists.commit.count(), Ordering::SeqCst);
        }));
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while exports.load(Ordering::SeqCst) == 0 {
        assert!(
            Instant::now() < deadline,
            "the export hook must fire on the driver tick"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        seen_commits.load(Ordering::SeqCst),
        1,
        "exported snapshots carry the merged histograms"
    );
    // The driver's duty cycle is visible through the same runtime.
    assert!(stm.driver_idle_wakeups().is_some());
}

/// Satellite (b): the `TM_STM_TRACE`-shaped capacity knob bounds each
/// slot's ring — overflow overwrites the oldest events and is accounted in
/// `dropped`, never grows memory.
#[test]
fn ring_capacity_bounds_the_flight_recorder() {
    let stm = Tl2Stm::with_config(StmConfig::new(4, 1).trace(TraceConfig::with_capacity(4)));
    let mut h = stm.handle(0);
    for i in 0..32u64 {
        h.atomic(|tx| tx.write(0, i));
    }
    let snap = stm.telemetry_snapshot();
    assert!(snap.enabled);
    assert_eq!(snap.capacity, 4);
    // 32 commits × (TxBegin + TxCommit) = 64 events pushed at slot 0; only
    // the newest `capacity` survive.
    let slot0 = snap.events.iter().filter(|e| e.slot == 0).count();
    assert_eq!(slot0, 4);
    assert_eq!(snap.dropped, 60);
    // The survivors are the *newest* events (ring overwrites oldest): the
    // final commit of the loop must still be there.
    assert!(snap
        .events
        .iter()
        .any(|e| matches!(e.kind, EventKind::TxCommit { .. })));
}

/// The disabled-path cost contract (the telemetry twin of
/// `governor.rs::steady_state_commits_touch_no_governor_shared_state`):
/// with tracing off, a steady-state commit performs ZERO shared-line
/// writes on behalf of telemetry — every event site is exactly one relaxed
/// load of the `enabled` flag, after which nothing is locked, pushed, or
/// counted. Pinned observably: no slot cell is ever locked for writing, so
/// the snapshot stays identically empty, and the begin path never samples
/// the clock (`Instant::now`) for a commit-latency it would never record.
#[test]
fn disabled_telemetry_costs_one_relaxed_load_per_event_site() {
    let stm = Tl2Stm::with_config(
        StmConfig::auto(16, 1)
            .grace_driver(DriverMode::Cooperative)
            .trace(TraceConfig::off()),
    );
    assert!(!stm.runtime().telemetry().enabled());
    let mut h = stm.handle(0);
    // A busy, governor-active workload: commits, a fold boundary, fences.
    for i in 0..GOVERNOR_WINDOW {
        h.atomic(|tx| tx.write(0, i + 1));
    }
    h.fence();
    let snap = stm.telemetry_snapshot();
    assert!(!snap.enabled);
    assert_eq!(snap.capacity, 0);
    assert_eq!(snap.dropped, 0, "disabled rings never even count drops");
    assert!(snap.events.is_empty(), "no event reached any ring");
    for class in LatencyClass::ALL {
        assert_eq!(
            snap.hists.get(class).count(),
            0,
            "{}: no sample reached any histogram",
            class.label()
        );
        assert_eq!(snap.hists.get(class).sum(), 0);
    }
    // The runtime stays fully functional — the counters the paper's
    // experiments rely on are untouched by the off switch.
    assert_eq!(h.stats().commits, GOVERNOR_WINDOW);
    assert_eq!(h.stats().fences, 1);
}

/// Minimal structural JSON check (no serde in this build): validates
/// balanced objects/arrays, quoted strings, and bare numbers — the same
/// validator the bench crate runs over its reports, so the telemetry JSON
/// stays consumable by the same tooling (no `true`/`false`/`null` tokens).
fn assert_valid_json(s: &str) {
    fn skip_ws(b: &[u8], mut i: usize) -> usize {
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        i
    }
    fn value(b: &[u8], i: usize) -> Result<usize, String> {
        let i = skip_ws(b, i);
        match b.get(i) {
            Some(b'{') => {
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b'}') {
                    return Ok(i + 1);
                }
                loop {
                    i = string(b, skip_ws(b, i))?;
                    i = skip_ws(b, i);
                    if b.get(i) != Some(&b':') {
                        return Err(format!("expected ':' at {i}"));
                    }
                    i = value(b, i + 1)?;
                    i = skip_ws(b, i);
                    match b.get(i) {
                        Some(b',') => i += 1,
                        Some(b'}') => return Ok(i + 1),
                        _ => return Err(format!("expected ',' or '}}' at {i}")),
                    }
                }
            }
            Some(b'[') => {
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b']') {
                    return Ok(i + 1);
                }
                loop {
                    i = value(b, i)?;
                    i = skip_ws(b, i);
                    match b.get(i) {
                        Some(b',') => i += 1,
                        Some(b']') => return Ok(i + 1),
                        _ => return Err(format!("expected ',' or ']' at {i}")),
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_ascii_digit() || b"+-.eE".contains(&b[j])) {
                    j += 1;
                }
                Ok(j)
            }
            _ => Err(format!("unexpected byte at {i}")),
        }
    }
    fn string(b: &[u8], i: usize) -> Result<usize, String> {
        if b.get(i) != Some(&b'"') {
            return Err(format!("expected '\"' at {i}"));
        }
        let mut i = i + 1;
        while let Some(&c) = b.get(i) {
            match c {
                b'"' => return Ok(i + 1),
                b'\\' => i += 2,
                _ => i += 1,
            }
        }
        Err("unterminated string".into())
    }
    let b = s.as_bytes();
    let end = value(b, 0).unwrap_or_else(|e| panic!("invalid JSON ({e}):\n{s}"));
    assert_eq!(skip_ws(b, end), b.len(), "trailing garbage:\n{s}");
}
