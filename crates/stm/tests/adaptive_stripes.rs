//! Integration tests for the contention-aware adaptive striped orec table:
//! growth is driven by *false* conflicts, the generation rehash is
//! epoch-safe (a transaction pinned to the old generation still conflicts
//! correctly with new-generation transactions), the old table retires
//! through the grace engine, and no lock state is ever lost across a
//! resize.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use tm_stm::prelude::*;
use tm_stm::runtime::DriverMode;

/// A hair-trigger policy: grow at every window boundary (threshold 0).
fn eager(start: usize, max: usize, window: u64) -> AdaptivePolicy {
    AdaptivePolicy {
        start,
        max,
        threshold: 0,
        window,
    }
}

/// Deterministically force one *false* conflict: the reader samples
/// register 0 and parks; the writer commits to register 1 (stripe-sharing
/// under a 1-stripe table); the reader's commit-time validation fails on a
/// stripe whose last committed writer is register 1 — a false conflict by
/// the writer-hint classification.
#[test]
fn false_conflicts_are_counted_and_grow_the_table() {
    let stm = Tl2Stm::with_config(StmConfig::new(4, 2).adaptive_stripes(AdaptivePolicy {
        start: 1,
        max: 8,
        threshold: 10,
        window: 4,
    }));
    assert_eq!(stm.nstripes(), 1);
    // Seed a hint for register 1's stripe so the very first forced abort
    // classifies (hints only exist after a commit through the stripe).
    {
        let mut h = stm.handle(0);
        h.atomic(|tx| tx.write(1, 1));
    }
    let rounds = 8;
    let stats = std::thread::scope(|s| {
        let after_read = Arc::new(Barrier::new(2));
        let after_commit = Arc::new(Barrier::new(2));
        let reader = {
            let stm = stm.clone();
            let (b1, b2) = (Arc::clone(&after_read), Arc::clone(&after_commit));
            s.spawn(move || {
                let mut h = stm.handle(1);
                for _ in 0..rounds {
                    let mut first = true;
                    h.atomic(|tx| {
                        let v = tx.read(0)?;
                        if first {
                            first = false;
                            b1.wait();
                            b2.wait();
                        }
                        tx.write(3, v + 1)
                    });
                }
                h.stats()
            })
        };
        let mut w = stm.handle(0);
        for i in 0..rounds {
            after_read.wait();
            w.atomic(|tx| tx.write(1, 100 + i));
            after_commit.wait();
        }
        reader.join().unwrap()
    });
    assert!(
        stats.false_conflicts >= 1,
        "forced stripe-sharing aborts must classify as false: {stats:?}"
    );
    assert!(
        stats.retries >= 1,
        "the reader must have been forced to retry: {stats:?}"
    );
    assert!(
        stm.stripe_resizes() >= 1,
        "a high false-conflict rate must grow the table (resizes = {}, stats = {stats:?})",
        stm.stripe_resizes()
    );
    assert!(stm.nstripes() > 1, "growth doubles the stripe count");
    assert_eq!(stm.locked_stripes(), 0, "quiescent table holds no locks");
}

/// THE epoch-safety regression: a transaction that pinned the old
/// generation and is still mid-flight when a resize publishes must still
/// conflict with a post-resize writer — the migration window makes every
/// new-generation commit lock and stamp *both* tables, so the pinned
/// transaction's validation still observes it.
#[test]
fn pinned_generation_still_conflicts_across_a_resize() {
    let stm = Tl2Stm::with_config(StmConfig::new(4, 2).adaptive_stripes(eager(1, 16, 2)));
    let parked = Arc::new(Barrier::new(2));
    let resume = Arc::new(Barrier::new(2));
    let observed = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        let straddler = {
            let stm = stm.clone();
            let (b1, b2) = (Arc::clone(&parked), Arc::clone(&resume));
            let observed = Arc::clone(&observed);
            s.spawn(move || {
                let mut h = stm.handle(1);
                let mut first = true;
                h.atomic(|tx| {
                    // Read register 0 under the pinned (pre-resize)
                    // generation, then park while the other thread grows
                    // the table and overwrites register 0.
                    let v = tx.read(0)?;
                    if first {
                        first = false;
                        b1.wait();
                        b2.wait();
                    }
                    observed.store(v, Ordering::SeqCst);
                    tx.write(1, v + 1)
                });
                h.stats()
            })
        };
        parked.wait();
        let mut w = stm.handle(0);
        // Enough commits to cross several window boundaries (threshold 0 =>
        // unconditional growth) while the straddler is parked on gen 1...
        for i in 1..=8u64 {
            w.atomic(|tx| tx.write(2, i));
        }
        assert!(
            stm.stripe_resizes() >= 1,
            "growth must have happened while the transaction was parked"
        );
        // ...then commit to the straddler's read register through the NEW
        // generation. The parked transaction must abort and re-read.
        w.atomic(|tx| tx.write(0, 7777));
        resume.wait();
        let stats = straddler.join().unwrap();
        assert!(
            stats.retries >= 1,
            "a post-resize commit must still invalidate a pinned-generation \
             transaction: {stats:?}"
        );
    });
    assert_eq!(
        observed.load(Ordering::SeqCst),
        7777,
        "the retry must observe the new-generation write"
    );
    assert_eq!(stm.peek(1), 7778);
    assert_eq!(stm.locked_stripes(), 0);
}

/// Rehash under live concurrent commit traffic: with an unconditional
/// growth policy the table resizes repeatedly mid-run, and (a) not one
/// committed increment is lost, (b) no lock word in any generation stays
/// held, (c) migrations all retire through the grace engine.
#[test]
fn rehash_under_concurrent_commits_loses_nothing() {
    const THREADS: usize = 4;
    const INCS: u64 = 300;
    let stm =
        Tl2Stm::with_config(StmConfig::new(THREADS, THREADS).adaptive_stripes(eager(1, 64, 8)));
    let mut total = Stats::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let stm = stm.clone();
                s.spawn(move || {
                    let mut h = stm.handle(t);
                    for _ in 0..INCS {
                        // Disjoint per-thread counters: every cross-thread
                        // abort under the small table is a false conflict.
                        h.atomic(|tx| {
                            let v = tx.read(t)?;
                            tx.write(t, v + 1)
                        });
                    }
                    h.stats()
                })
            })
            .collect();
        for h in handles {
            total.merge(&h.join().unwrap());
        }
    });
    for t in 0..THREADS {
        assert_eq!(stm.peek(t), INCS, "thread {t} lost increments");
    }
    assert_eq!(total.commits, THREADS as u64 * INCS);
    assert!(
        stm.stripe_resizes() >= 2,
        "unconditional growth must resize repeatedly under traffic"
    );
    assert_eq!(
        stm.locked_stripes(),
        0,
        "no lock may be stranded in any generation after a rehash"
    );
    assert!(
        total.current_stripes > 1,
        "the stripe gauge must report the grown table: {total:?}"
    );
    // Migrations retire through the grace engine even with zero fences:
    // plain begins drive the pending ticket home.
    assert!(stm.runtime().grace().issued() >= 1);
    let mut h = stm.handle(0);
    for _ in 0..4 {
        h.atomic(|tx| tx.read(0));
    }
    assert!(
        !stm.migration_pending(),
        "begin-time polling must retire the final migration"
    );
    assert!(
        stm.runtime().grace().scans() >= 1,
        "retirement must ride real epoch-table scans"
    );
}

/// The same growth machinery must behave under the background grace-period
/// driver: the driver retires migration periods with zero pollers, and the
/// stripe gauge/resize counters agree with the cooperative run.
#[test]
fn adaptive_growth_works_under_the_background_driver() {
    let stm = Tl2Stm::with_config(
        StmConfig::new(2, 1)
            .adaptive_stripes(eager(1, 8, 2))
            .grace_driver(DriverMode::Background),
    );
    let mut h = stm.handle(0);
    for i in 0..12u64 {
        h.atomic(|tx| tx.write(0, i + 1));
    }
    assert_eq!(stm.peek(0), 12);
    assert!(stm.stripe_resizes() >= 1);
    // The driver owns migration liveness: wait for it to drain without
    // issuing any more transactions.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while stm.migration_pending() {
        assert!(
            std::time::Instant::now() < deadline,
            "driver must retire the migration with zero pollers"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert_eq!(stm.locked_stripes(), 0);
    let s = h.stats();
    assert!(s.stripe_resizes >= 1, "{s:?}");
    assert_eq!(s.current_stripes, stm.nstripes() as u64);
}

/// Growth is capped: the table never exceeds `max` stripes, and once at
/// the cap the window machinery stops publishing generations.
#[test]
fn growth_respects_the_configured_cap() {
    let stm = Tl2Stm::with_config(StmConfig::new(2, 1).adaptive_stripes(eager(2, 4, 1)));
    let mut h = stm.handle(0);
    for i in 0..32u64 {
        h.atomic(|tx| tx.write(0, i + 1));
    }
    // Drain any pending migration so nstripes is final.
    for _ in 0..8 {
        h.atomic(|tx| tx.read(0));
    }
    assert_eq!(stm.nstripes(), 4, "the cap bounds growth");
    assert_eq!(stm.stripe_resizes(), 1, "2 -> 4 is the only legal resize");
    assert!(!stm.migration_pending());
}

/// Fixed-storage instances must be entirely unaffected by the new
/// machinery: no resizes, no migrations, gauge = configured stripe count.
#[test]
fn fixed_storage_reports_no_adaptivity() {
    let stm = Tl2Stm::with_config(StmConfig::new(8, 1).striped(4));
    let mut h = stm.handle(0);
    h.atomic(|tx| tx.write(0, 1));
    assert_eq!(stm.stripe_resizes(), 0);
    assert!(!stm.migration_pending());
    let s = h.stats();
    assert_eq!(s.stripe_resizes, 0);
    assert_eq!(s.current_stripes, 4);
    assert_eq!(s.false_conflicts, 0);

    let per_reg = Tl2Stm::new(8, 1);
    let mut h = per_reg.handle(0);
    h.atomic(|tx| tx.write(0, 1));
    assert_eq!(h.stats().current_stripes, 8, "per-register: one per reg");
}
