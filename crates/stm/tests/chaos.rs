//! Deterministic fault injection (`tm-chaos`) end to end: seeded runs
//! inject real faults yet change no observable final state or checker
//! verdict; the disabled path costs nothing observable; seeded decisions
//! are reproducible; and the escalated fallback is exempt by contract.

use std::sync::Arc;
use tm_core::opacity::{check_strong_opacity, CheckOptions};
use tm_stm::chaos::Site;
use tm_stm::prelude::*;
use tm_stm::tl2::GOVERNOR_WINDOW;

const SEEDS: [u64; 3] = [7, 0xC0FFEE, 424_242];
const THREADS: usize = 3;
const NREGS: usize = 8;
const TXNS: u64 = 200;

/// The commutative-increment workload: whatever the interleaving (and
/// whatever faults are injected), the final register file is exactly
/// `THREADS` increments per (thread-iteration, register) pairing — so a
/// chaos run must reproduce the fault-free finals bit for bit.
fn run_workload<F: StmFactory>(stm: &F) -> Vec<u64> {
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let stm = stm.clone();
            s.spawn(move || {
                let mut h = stm.handle(t);
                for i in 0..TXNS {
                    let r = (i as usize) % NREGS;
                    h.atomic(|tx| {
                        let v = tx.read(r)?;
                        tx.write(r, v + 1)
                    });
                }
                h.fence();
            });
        }
    });
    (0..NREGS).map(|r| stm.peek(r)).collect()
}

/// The recorded variant: the history checkers require globally *unique*
/// written values (well-formedness clause 3 counts every attempt, aborted
/// ones included), so each thread writes a thread-tagged per-**attempt**
/// counter into its own register while reading the registers everyone
/// writes — plenty of real conflicts for injection to amplify.
fn run_recorded<F: StmFactory>(stm: &F) {
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let stm = stm.clone();
            s.spawn(move || {
                let mut h = stm.handle(t);
                let mut attempt = 0u64;
                for i in 0..TXNS {
                    let r = (i as usize) % NREGS;
                    h.atomic(|tx| {
                        attempt += 1;
                        let _ = tx.read(r)?;
                        tx.write(t, ((t as u64 + 1) << 40) | attempt)
                    });
                }
                h.fence();
            });
        }
    });
}

/// Tentpole acceptance: the conformance workload under ≥3 chaos seeds
/// produces finals identical to the fault-free baseline, and its recorded
/// history still passes the checker, on TL2 (striped + per-register) and
/// NOrec. Forced aborts must be semantically invisible.
#[test]
fn seeded_injection_preserves_finals_and_verdicts() {
    let expected: Vec<u64> = {
        let stm = Tl2Stm::with_config(StmConfig::new(NREGS, THREADS).chaos_off());
        run_workload(&stm)
    };
    for seed in SEEDS {
        // TL2 striped, recorded: the history must draw the *same verdicts*
        // as any fault-free run — well-formed, DRF (purely transactional),
        // and strongly opaque — with injection demonstrably active.
        let rec = Arc::new(Recorder::new(THREADS));
        let stm = Tl2Stm::with_config(
            StmConfig::new(NREGS, THREADS)
                .striped(4)
                .chaos_seed(seed)
                .recorder(Arc::clone(&rec)),
        );
        run_recorded(&stm);
        assert!(
            stm.runtime().chaos().injected_total() > 0,
            "seed {seed}: the run must actually have been perturbed"
        );
        let hist = rec.snapshot_history();
        assert_eq!(
            hist.validate(),
            Ok(()),
            "seed {seed}: the recorded history stays well-formed"
        );
        assert!(
            tm_core::hb::is_drf(&hist),
            "seed {seed}: a transactional-only history is DRF"
        );
        check_strong_opacity(&hist, &CheckOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed}: not strongly opaque: {e:?}"));

        // TL2 per-register.
        let stm = Tl2Stm::with_config(StmConfig::new(NREGS, THREADS).chaos_seed(seed));
        assert_eq!(run_workload(&stm), expected, "seed {seed}: tl2");

        // NOrec.
        let stm = NorecStm::with_config(StmConfig::new(NREGS, THREADS).chaos_seed(seed));
        assert_eq!(run_workload(&stm), expected, "seed {seed}: norec");
    }
}

/// The disabled-cost contract (the PR 7 telemetry technique): with no
/// seed, every site is one relaxed load — observable as *zero* injected
/// faults, zero forced aborts, and untouched commit accounting over a
/// full governor window.
#[test]
fn disabled_chaos_costs_one_relaxed_load_per_site() {
    let stm = Tl2Stm::with_config(
        StmConfig::auto(16, 1)
            .grace_driver(tm_stm::runtime::DriverMode::Cooperative)
            .trace(TraceConfig::off())
            .chaos_off(),
    );
    let chaos = stm.runtime().chaos();
    assert!(
        !chaos.enabled(),
        "chaos_off really is off, whatever the env"
    );
    let mut h = stm.handle(0);
    for i in 0..GOVERNOR_WINDOW {
        h.atomic(|tx| tx.write((i % 16) as usize, i));
    }
    h.fence();
    assert_eq!(chaos.injected_total(), 0);
    for site in Site::ALL {
        assert_eq!(chaos.injected_aborts(site), 0, "{}", site.label());
        assert_eq!(chaos.injected_delays(site), 0, "{}", site.label());
    }
    assert_eq!(h.stats().commits, GOVERNOR_WINDOW);
    assert_eq!(
        h.stats().aborts_total(),
        0,
        "a single-threaded run with injection off never aborts"
    );
}

/// Same seed, same single-threaded workload ⇒ bit-identical fault plan and
/// abort accounting. (That *different* seeds draw different decision
/// sequences is asserted at the `tm-chaos` unit level, where the raw
/// sequences — not just their counts — are comparable.)
#[test]
fn same_seed_is_deterministic() {
    fn run(seed: u64) -> (u64, u64, u64, Vec<u64>) {
        let stm = Tl2Stm::with_config(
            StmConfig::new(NREGS, 1)
                .striped(4)
                .chaos_seed(seed)
                .trace(TraceConfig::off()),
        );
        let mut h = stm.handle(0);
        for i in 0..400u64 {
            let r = (i as usize) % NREGS;
            h.atomic(|tx| {
                let v = tx.read(r)?;
                tx.write(r, v + 1)
            });
        }
        let s = h.stats();
        let injected = Site::ALL
            .iter()
            .map(|&site| {
                stm.runtime().chaos().injected_aborts(site)
                    + stm.runtime().chaos().injected_delays(site)
            })
            .collect();
        (
            s.retries,
            s.aborts_read + s.aborts_lock + s.aborts_validate,
            s.commits,
            injected,
        )
    }
    let a = run(99);
    assert_eq!(a, run(99), "a seed fully determines a single-threaded run");
    assert!(a.3.iter().sum::<u64>() > 0, "the plan actually fires");
}

/// The escalated fallback is exempt from injection: with a one-attempt
/// budget under a seeded plan, every injected abort escalates — and the
/// escalated (irrevocable) attempt must then commit instead of being
/// re-aborted by chaos, or the progress guarantee is gone.
#[test]
fn escalated_attempts_are_exempt_from_injection() {
    let stm = Tl2Stm::with_config(
        StmConfig::new(4, 1)
            .chaos_seed(3)
            .retry(RetryPolicy::attempts(1)),
    );
    let mut h = stm.handle(0);
    for _ in 0..500u64 {
        h.atomic(|tx| {
            let v = tx.read(0)?;
            tx.write(0, v + 1)
        });
    }
    assert_eq!(stm.peek(0), 500, "every increment lands");
    assert!(
        h.stats().escalations > 0,
        "a 1-attempt budget under seeded chaos must escalate"
    );
    assert_eq!(h.stats().commits, 500);
    assert!(stm.runtime().escalated().is_none(), "token released");
}

/// The `TM_STM_CHAOS` knob parser (the config path reads it through
/// [`tm_stm::chaos::seed_from_env`] at construction; the parse rules are
/// testable directly).
#[test]
fn chaos_env_knob_parse_rules() {
    assert_eq!(tm_stm::chaos::parse("42"), Some(42));
    assert_eq!(tm_stm::chaos::parse("0xBEEF"), Some(0xBEEF));
    assert_eq!(tm_stm::chaos::parse("off"), None);
    assert_eq!(tm_stm::chaos::parse(""), None);
    assert_eq!(tm_stm::chaos::parse("nonsense"), None);
}
