//! Versioned write-locks (TL2's `ver[x]` + `lock[x]`, packed into one
//! atomic word so version and lock state are read consistently). The
//! building block of both [`crate::storage`] backends: per-register arrays
//! and striped orec tables are just different ways of mapping registers
//! onto these words.
//!
//! Layout: bits 16..64 hold the version, bits 0..16 hold the owner slot + 1
//! (0 = unlocked). 48 version bits outlast any realistic run; 16 owner bits
//! support 65534 threads.

use std::sync::atomic::{AtomicU64, Ordering};

const OWNER_MASK: u64 = 0xFFFF;
const VERSION_SHIFT: u32 = 16;

/// A snapshot of a versioned lock word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VLockState {
    /// The stripe's version at the sample.
    pub version: u64,
    /// Owner slot if locked.
    pub owner: Option<u16>,
}

impl VLockState {
    #[inline]
    fn decode(word: u64) -> Self {
        let owner = (word & OWNER_MASK) as u16;
        VLockState {
            version: word >> VERSION_SHIFT,
            owner: owner.checked_sub(1),
        }
    }

    /// Was the word locked (by anyone) at the sample?
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.owner.is_some()
    }

    /// Was the word locked by a thread other than `me` at the sample?
    #[inline]
    pub fn is_locked_by_other(&self, me: u16) -> bool {
        self.owner.is_some_and(|o| o != me)
    }
}

/// The versioned lock word.
#[derive(Debug, Default)]
pub struct VLock {
    word: AtomicU64,
}

impl VLock {
    /// An unlocked word at version 0.
    pub fn new() -> Self {
        VLock {
            word: AtomicU64::new(0),
        }
    }

    /// Read the current (version, owner) pair.
    #[inline]
    pub fn sample(&self) -> VLockState {
        VLockState::decode(self.word.load(Ordering::SeqCst))
    }

    /// Try to acquire the lock for `owner`, keeping the version. Fails if
    /// locked (by anyone). Returns the version on success.
    #[inline]
    pub fn try_lock(&self, owner: u16) -> Result<u64, VLockState> {
        let cur = self.word.load(Ordering::SeqCst);
        if cur & OWNER_MASK != 0 {
            return Err(VLockState::decode(cur));
        }
        let locked = cur | (u64::from(owner) + 1);
        match self
            .word
            .compare_exchange(cur, locked, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => Ok(cur >> VERSION_SHIFT),
            Err(now) => Err(VLockState::decode(now)),
        }
    }

    /// Release the lock, installing a new version (TL2 write-back: the store
    /// of `ver[x] := wver` and `lock[x].unlock()` as one atomic step).
    #[inline]
    pub fn unlock_set_version(&self, version: u64) {
        self.word.store(version << VERSION_SHIFT, Ordering::SeqCst);
    }

    /// Release the lock, keeping the version (abort path).
    #[inline]
    pub fn unlock(&self) {
        let cur = self.word.load(Ordering::SeqCst);
        debug_assert_ne!(cur & OWNER_MASK, 0, "unlock of unlocked vlock");
        self.word.store(cur & !OWNER_MASK, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_cycle() {
        let l = VLock::new();
        assert_eq!(
            l.sample(),
            VLockState {
                version: 0,
                owner: None
            }
        );
        assert_eq!(l.try_lock(3), Ok(0));
        let s = l.sample();
        assert_eq!(s.owner, Some(3));
        assert!(s.is_locked());
        assert!(s.is_locked_by_other(2));
        assert!(!s.is_locked_by_other(3));
        assert!(l.try_lock(4).is_err());
        l.unlock_set_version(9);
        let s = l.sample();
        assert_eq!(
            s,
            VLockState {
                version: 9,
                owner: None
            }
        );
    }

    #[test]
    fn abort_unlock_keeps_version() {
        let l = VLock::new();
        l.unlock_set_version(5);
        l.try_lock(0).unwrap();
        l.unlock();
        assert_eq!(
            l.sample(),
            VLockState {
                version: 5,
                owner: None
            }
        );
    }

    #[test]
    fn owner_zero_distinct_from_unlocked() {
        let l = VLock::new();
        l.try_lock(0).unwrap();
        assert_eq!(l.sample().owner, Some(0));
    }

    #[test]
    fn concurrent_trylock_single_winner() {
        use std::sync::Arc;
        let l = Arc::new(VLock::new());
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let mut handles = Vec::new();
        for t in 0..8u16 {
            let l = Arc::clone(&l);
            let b = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                b.wait();
                l.try_lock(t).is_ok()
            }));
        }
        let wins = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&ok| ok)
            .count();
        assert_eq!(wins, 1, "exactly one thread may win the trylock race");
    }
}
