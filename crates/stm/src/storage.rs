//! Pluggable ownership-record storage for versioned-lock STMs.
//!
//! TL2-style algorithms need one *versioned write-lock* per guarded unit of
//! data. How those lock words are laid out is an implementation axis the
//! paper's correctness argument never depends on (the TM-interface actions
//! are the same either way), but it dominates the memory footprint and the
//! false-conflict rate:
//!
//! * [`PerRegisterTable`] — one [`VLock`] per register, cache-padded. No
//!   false conflicts, but 128 bytes of metadata per register: unusable for
//!   the ROADMAP's millions-of-registers deployments.
//! * [`StripedTable`] — a fixed-size *striped orec table*: register `x` is
//!   guarded by stripe `splitmix64(x) % nstripes`. Constant metadata
//!   footprint, at the price of *false conflicts* between registers that
//!   share a stripe (production TL2 descendants make exactly this trade).
//!
//! Both present the same [`LockTable`] interface, so a concurrency-control
//! policy written against it (see [`crate::tl2`]) is storage-agnostic.
//! Striping is conservative, never unsound: sharing a stripe only makes the
//! version check *more* likely to abort, and commit-time acquisition locks
//! each distinct stripe exactly once (see [`crate::tl2`]'s stripe dedup).
//!
//! # Contention-aware adaptive striping
//!
//! A fixed stripe count is a guess: too small and disjoint-write workloads
//! drown in false conflicts, too large and a small register file pays for
//! metadata it never contends on. [`AdaptiveTable`] resolves the guess at
//! run time: it starts from a small [`StripedTable`], counts *false*
//! conflicts (aborts where the failing stripe's last committed writer is a
//! different register than the aborting one — detected by re-hashing the
//! aborting key against the stripe's writer hint), and when the observed
//! false-conflict rate over a sliding commit window crosses the
//! [`AdaptivePolicy::threshold`], publishes a doubled table as a new
//! *generation*.
//!
//! The rehash is epoch-safe, reusing the same quiescence machinery that
//! backs privatization fences: the new generation is published behind an
//! atomic generation counter, in-flight transactions keep running against
//! the generation they pinned at begin, and for one grace period of the
//! runtime's [`tm_quiesce::GraceEngine`] every *new* transaction locks and
//! validates **both** generations (the migration window), so conflicts
//! between old-generation and new-generation transactions are still
//! detected through the table they share. Once the grace period elapses —
//! no transaction that pinned the old generation alone can still be live —
//! the old table is retired and the new one becomes the sole authority. No
//! transaction ever observes a torn lock table, and no lock or version
//! update is ever lost across a resize.
//!
//! When the contention governor arms a [`ShrinkPolicy`], the same protocol
//! runs in reverse: after enough consecutive *calm* windows (false-conflict
//! rate strictly below a low-water mark sitting under the grow threshold —
//! the hysteresis dead band) the table publishes a **halved** generation
//! whose stripes merge their two parents conservatively
//! ([`StripedTable::shrunk_from`]), and retires the oversized parent
//! through the identical grace-ticket migration window. Grow and shrink
//! share every line of the migration machinery; only the direction of the
//! seeding copy differs.
//!
//! ```
//! use tm_stm::prelude::*;
//!
//! // Start tiny; double (up to 4096 stripes) whenever ≥ 2% of a
//! // 1024-commit window aborts on stripe sharing alone.
//! let stm = Tl2Stm::with_config(StmConfig::new(1 << 20, 8).adaptive_stripes(
//!     AdaptivePolicy { start: 16, max: 4096, threshold: 2, window: 1024 },
//! ));
//! let mut h = stm.handle(0);
//! h.atomic(|tx| tx.write(777, 1));
//! assert_eq!(stm.nstripes(), 16, "no contention yet: still at start");
//! assert_eq!(h.stats().current_stripes, 16);
//! ```

use crate::vlock::{VLock, VLockState};
use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use tm_quiesce::{GraceEngine, GraceTicket};
use tm_telemetry::{EventKind, Telemetry};

/// Storage backend selection for versioned-lock policies, used by
/// [`crate::runtime::StmConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StorageKind {
    /// One ownership record per register (the classic layout).
    #[default]
    PerRegister,
    /// A striped orec table with `stripes` lock words; registers hash onto
    /// stripes with a splitmix64 mix of the register index.
    Striped {
        /// Number of lock words (rounded up to a power of two).
        stripes: usize,
    },
    /// A contention-aware adaptive striped table: starts small and doubles
    /// (up to a cap) when the observed false-conflict rate crosses the
    /// policy threshold, via an epoch-safe generation rehash.
    Adaptive(AdaptivePolicy),
}

impl StorageKind {
    /// Build a *fixed* lock table for a register file of `nregs` registers.
    ///
    /// # Panics
    ///
    /// Panics for [`StorageKind::Adaptive`]: the adaptive table is a
    /// multi-generation structure built through [`StorageKind::build_tables`]
    /// and driven by a generation-aware policy, not a bare [`LockTable`].
    pub fn build(self, nregs: usize) -> AnyLockTable {
        match self {
            StorageKind::PerRegister => AnyLockTable::PerRegister(PerRegisterTable::new(nregs)),
            StorageKind::Striped { stripes } => AnyLockTable::Striped(StripedTable::new(stripes)),
            StorageKind::Adaptive(_) => {
                panic!("adaptive storage is built via StorageKind::build_tables")
            }
        }
    }

    /// Build the (possibly adaptive) table set for a register file of
    /// `nregs` registers — what generation-aware policies consume. This is
    /// where an [`AdaptivePolicy`] with the `start == 0` sentinel gets its
    /// initial stripe count seeded from `nregs` (see
    /// [`AdaptivePolicy::seeded`]).
    pub fn build_tables(self, nregs: usize) -> AnyTables {
        match self {
            StorageKind::Adaptive(policy) => {
                AnyTables::Adaptive(AdaptiveTable::new(policy.seeded(nregs)))
            }
            fixed => AnyTables::Fixed(fixed.build(nregs)),
        }
    }

    /// Human-readable backend label (bench/report key).
    pub fn label(self) -> String {
        match self {
            StorageKind::PerRegister => "per-register".into(),
            // The table rounds the stripe count up to a power of two; the
            // label reports what is actually built.
            StorageKind::Striped { stripes } => {
                format!("striped-{}", stripes.max(1).next_power_of_two())
            }
            StorageKind::Adaptive(p) => {
                let n = p.normalized();
                if p.start == 0 {
                    // The start is seeded from nregs at build time.
                    format!("adaptive-auto-{}", n.max)
                } else {
                    format!("adaptive-{}-{}", n.start, n.max)
                }
            }
        }
    }
}

/// Closed union of the built-in backends. Policies store this (rather than
/// `Box<dyn LockTable>`) so the per-read lock-word sampling on the hot path
/// is a two-arm match that inlines, not virtual dispatch. The open
/// [`LockTable`] trait remains the abstraction to write code against.
pub enum AnyLockTable {
    /// One orec per register.
    PerRegister(PerRegisterTable),
    /// A fixed striped orec table.
    Striped(StripedTable),
}

macro_rules! delegate {
    ($self:ident, $t:ident => $e:expr) => {
        match $self {
            AnyLockTable::PerRegister($t) => $e,
            AnyLockTable::Striped($t) => $e,
        }
    };
}

impl LockTable for AnyLockTable {
    #[inline]
    fn stripe_of(&self, x: usize) -> usize {
        delegate!(self, t => t.stripe_of(x))
    }

    fn nstripes(&self) -> usize {
        delegate!(self, t => t.nstripes())
    }

    #[inline]
    fn sample_stripe(&self, s: usize) -> VLockState {
        delegate!(self, t => t.sample_stripe(s))
    }

    #[inline]
    fn try_lock_stripe(&self, s: usize, owner: u16) -> Result<u64, VLockState> {
        delegate!(self, t => t.try_lock_stripe(s, owner))
    }

    #[inline]
    fn unlock_stripe(&self, s: usize) {
        delegate!(self, t => t.unlock_stripe(s))
    }

    #[inline]
    fn unlock_stripe_set_version(&self, s: usize, version: u64) {
        delegate!(self, t => t.unlock_stripe_set_version(s, version))
    }

    #[inline]
    fn record_writer(&self, s: usize, x: usize) {
        delegate!(self, t => t.record_writer(s, x))
    }

    #[inline]
    fn record_writer_shared(&self, s: usize) {
        delegate!(self, t => t.record_writer_shared(s))
    }

    #[inline]
    fn writer_hint(&self, s: usize) -> WriterHint {
        delegate!(self, t => t.writer_hint(s))
    }
}

/// What a stripe's *writer hint* says about the last commit through it —
/// the advisory signal behind false-conflict classification. Hints are
/// written while the stripe lock is held and read racily; they can lag an
/// in-flight writer by one commit (a conflict with a transaction currently
/// mid-commit is classified against the *previous* commit's hint), which
/// bounds the classifier's error without ever affecting correctness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriterHint {
    /// No commit has gone through the stripe (or the table is precise).
    None,
    /// The last commit wrote exactly this register through the stripe.
    Register(usize),
    /// The last commit wrote several registers through the stripe: an
    /// abort here may be a real conflict on any of them.
    Shared,
}

/// A table of versioned write-locks guarding a register file.
///
/// Registers map many-to-one onto *stripes* (lock words). All locking and
/// validation happens at stripe granularity; `stripe_of` is total, so every
/// register is always guarded. Implementations must be sound under the TL2
/// protocol: a stripe's version only changes while the stripe is write-locked,
/// and monotonically increases.
pub trait LockTable: Send + Sync + 'static {
    /// The stripe (lock-word index) guarding register `x`.
    fn stripe_of(&self, x: usize) -> usize;

    /// Number of distinct lock words.
    fn nstripes(&self) -> usize;

    /// Read the (version, owner) pair of stripe `s`.
    fn sample_stripe(&self, s: usize) -> VLockState;

    /// Try to lock stripe `s` for `owner`; returns the version on success.
    fn try_lock_stripe(&self, s: usize, owner: u16) -> Result<u64, VLockState>;

    /// Release stripe `s`, keeping its version (abort path).
    fn unlock_stripe(&self, s: usize);

    /// Release stripe `s`, installing a new version (commit write-back).
    fn unlock_stripe_set_version(&self, s: usize, version: u64);

    /// Note that register `x` was just committed through stripe `s` — an
    /// *advisory* hint used for false-conflict telemetry. Tables that never
    /// produce false conflicts (per-register) keep the default no-op.
    fn record_writer(&self, _s: usize, _x: usize) {}

    /// Note that the last commit wrote *several* registers through stripe
    /// `s`: a later abort there may be a real conflict on any of them, so
    /// the classifier must not call it false.
    fn record_writer_shared(&self, _s: usize) {}

    /// What the last commit through stripe `s` reported (advisory;
    /// [`WriterHint::None`] for precise tables and never-written stripes).
    /// An abort on register `x` whose stripe hints a *different single*
    /// register is a *false conflict* — the two merely share a lock word.
    fn writer_hint(&self, _s: usize) -> WriterHint {
        WriterHint::None
    }

    /// Sample the lock word guarding register `x`.
    fn sample(&self, x: usize) -> VLockState {
        self.sample_stripe(self.stripe_of(x))
    }
}

fn vlock_array(n: usize) -> Box<[CachePadded<VLock>]> {
    (0..n)
        .map(|_| CachePadded::new(VLock::new()))
        .collect::<Vec<_>>()
        .into_boxed_slice()
}

/// One cache-padded [`VLock`] per register: precise, memory-hungry.
pub struct PerRegisterTable {
    locks: Box<[CachePadded<VLock>]>,
}

impl PerRegisterTable {
    /// A table with one lock word per register.
    pub fn new(nregs: usize) -> Self {
        PerRegisterTable {
            locks: vlock_array(nregs),
        }
    }
}

impl LockTable for PerRegisterTable {
    #[inline]
    fn stripe_of(&self, x: usize) -> usize {
        x
    }

    fn nstripes(&self) -> usize {
        self.locks.len()
    }

    #[inline]
    fn sample_stripe(&self, s: usize) -> VLockState {
        self.locks[s].sample()
    }

    #[inline]
    fn try_lock_stripe(&self, s: usize, owner: u16) -> Result<u64, VLockState> {
        self.locks[s].try_lock(owner)
    }

    #[inline]
    fn unlock_stripe(&self, s: usize) {
        self.locks[s].unlock()
    }

    #[inline]
    fn unlock_stripe_set_version(&self, s: usize, version: u64) {
        self.locks[s].unlock_set_version(version)
    }
}

/// Finalizing step of the splitmix64 generator: a cheap, well-mixed hash.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fixed-size striped orec table: metadata footprint is `stripes` lock
/// words however large the register file grows.
///
/// The stripe count is rounded up to a power of two so the per-read
/// `stripe_of` mapping is a mask (`hash & (n - 1)`) instead of a hardware
/// divide — `stripe_of` runs twice per transactional read, and splitmix64
/// mixes all 64 bits, so masking loses nothing to modulo in spread.
pub struct StripedTable {
    locks: Box<[CachePadded<VLock>]>,
    /// `locks.len() - 1`; valid because the length is a power of two.
    mask: u64,
    /// Advisory per-stripe writer hints (`register + 1`; 0 = never
    /// written; `u64::MAX` = the last commit wrote several registers
    /// through this stripe): which register the last commit through this
    /// stripe was for. Written while the stripe lock is held, read
    /// racily — the hint only feeds false-conflict *telemetry*, never
    /// correctness.
    writers: Box<[AtomicU64]>,
}

/// `writers` slot encoding for "several registers in one commit".
const HINT_SHARED: u64 = u64::MAX;

impl StripedTable {
    /// A table of `stripes` lock words (rounded up to a power of two).
    pub fn new(stripes: usize) -> Self {
        assert!(stripes > 0, "a striped table needs at least one stripe");
        let n = stripes.next_power_of_two();
        StripedTable {
            locks: vlock_array(n),
            mask: n as u64 - 1,
            writers: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// A doubled table seeded from `parent`: stripe `s` of the child
    /// inherits the version (and writer hint) of the parent stripe the same
    /// registers used to hash to (`s & parent_mask`). Inherited versions
    /// keep validation conservative across a generation switch — a child
    /// stripe never reports a version *older* than what its registers
    /// already committed under the parent. (A commit racing this copy is
    /// covered by the migration window: until the retiring grace period
    /// elapses, every new-generation transaction also checks the parent.)
    pub fn grown_from(parent: &StripedTable) -> Self {
        let child = StripedTable::new(parent.nstripes() * 2);
        for s in 0..child.nstripes() {
            let p = s & parent.mask as usize;
            child.locks[s].unlock_set_version(parent.sample_stripe(p).version);
            child.writers[s].store(parent.writers[p].load(Ordering::Relaxed), Ordering::Relaxed);
        }
        child
    }

    /// A halved table seeded from `parent` — the grow-side inheritance run
    /// in reverse. Child stripe `s` takes over the registers of parent
    /// stripes `s` and `s + half` (the two parent stripes whose hashes
    /// collapse onto `s` under the smaller mask), so it inherits the
    /// **max** of their versions — conservative: a reader validating
    /// against the merged stripe can only abort more, never miss a commit
    /// either parent stripe recorded. Writer hints merge conservatively
    /// too: agreeing or one-sided hints survive, disagreeing ones become
    /// [`WriterHint::Shared`] so the false-conflict classifier never calls
    /// a possibly-real conflict false.
    pub fn shrunk_from(parent: &StripedTable) -> Self {
        let half = parent.nstripes() / 2;
        assert!(half >= 1, "cannot shrink a single-stripe table");
        let child = StripedTable::new(half);
        for s in 0..half {
            let a = parent.sample_stripe(s).version;
            let b = parent.sample_stripe(s + half).version;
            child.locks[s].unlock_set_version(a.max(b));
            let ha = parent.writers[s].load(Ordering::Relaxed);
            let hb = parent.writers[s + half].load(Ordering::Relaxed);
            let merged = match (ha, hb) {
                (0, h) | (h, 0) => h,
                (a, b) if a == b => a,
                _ => HINT_SHARED,
            };
            child.writers[s].store(merged, Ordering::Relaxed);
        }
        child
    }
}

impl LockTable for StripedTable {
    #[inline]
    fn stripe_of(&self, x: usize) -> usize {
        (splitmix64(x as u64) & self.mask) as usize
    }

    fn nstripes(&self) -> usize {
        self.locks.len()
    }

    #[inline]
    fn sample_stripe(&self, s: usize) -> VLockState {
        self.locks[s].sample()
    }

    #[inline]
    fn try_lock_stripe(&self, s: usize, owner: u16) -> Result<u64, VLockState> {
        self.locks[s].try_lock(owner)
    }

    #[inline]
    fn unlock_stripe(&self, s: usize) {
        self.locks[s].unlock()
    }

    #[inline]
    fn unlock_stripe_set_version(&self, s: usize, version: u64) {
        self.locks[s].unlock_set_version(version)
    }

    #[inline]
    fn record_writer(&self, s: usize, x: usize) {
        // Relaxed: pure telemetry, sequenced under the stripe lock anyway.
        self.writers[s].store(x as u64 + 1, Ordering::Relaxed);
    }

    #[inline]
    fn record_writer_shared(&self, s: usize) {
        self.writers[s].store(HINT_SHARED, Ordering::Relaxed);
    }

    #[inline]
    fn writer_hint(&self, s: usize) -> WriterHint {
        match self.writers[s].load(Ordering::Relaxed) {
            0 => WriterHint::None,
            HINT_SHARED => WriterHint::Shared,
            x => WriterHint::Register((x - 1) as usize),
        }
    }
}

/// Tuning for the contention-aware [`AdaptiveTable`], surfaced as
/// [`crate::runtime::StmConfig::adaptive_stripes`].
///
/// The table evaluates one *window* at a time: after every
/// [`window`](Self::window) commits it compares the false conflicts
/// observed during that window against
/// [`threshold`](Self::threshold) (in percent of the window's commits) and
/// doubles the stripe count — up to [`max`](Self::max) — when the rate is
/// at or above it. A threshold of 0 grows unconditionally at every window
/// boundary (useful in tests that need deterministic growth).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptivePolicy {
    /// Initial stripe count (rounded up to a power of two, min 1).
    ///
    /// `0` is a sentinel meaning *seed from the register file*: at build
    /// time ([`StorageKind::build_tables`]) it is replaced by roughly one
    /// stripe per 16 registers, clamped to `[1, 64]` — a small file should
    /// not pay for metadata it cannot contend on, and a huge file still
    /// starts modest and grows on observed evidence. This is the default.
    pub start: usize,
    /// Stripe-count cap (rounded up to a power of two, min `start`).
    pub max: usize,
    /// Growth trigger: false conflicts per 100 window commits.
    pub threshold: u32,
    /// Commits per evaluation window (min 1).
    pub window: u64,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            // Seed the initial stripe count from nregs at build time.
            start: 0,
            max: 1 << 16,
            threshold: 5,
            window: 1024,
        }
    }
}

impl AdaptivePolicy {
    /// The policy with its fields clamped to what the table actually
    /// builds (powers of two, `start <= max`, nonzero window). The
    /// `start == 0` seed-from-nregs sentinel clamps to 1 here; resolve it
    /// first via [`Self::seeded`] when the register count is known.
    pub fn normalized(self) -> Self {
        let start = self.start.max(1).next_power_of_two();
        AdaptivePolicy {
            start,
            max: self.max.max(start).next_power_of_two(),
            threshold: self.threshold,
            window: self.window.max(1),
        }
    }

    /// Resolve the `start == 0` sentinel against a register file of
    /// `nregs` registers: roughly one stripe per 16 registers, clamped to
    /// `[1, 64]` (and, like every start, to `max` by normalization later).
    /// An explicit nonzero `start` passes through untouched.
    pub fn seeded(self, nregs: usize) -> Self {
        if self.start != 0 {
            return self;
        }
        AdaptivePolicy {
            start: (nregs / 16).clamp(1, 64),
            ..self
        }
    }
}

/// Shrink-side tuning for the contention governor: the grow-side
/// [`AdaptivePolicy`] run in reverse, with hysteresis so the table never
/// oscillates. A shrink is published only when the windowed false-conflict
/// rate stays *strictly below* [`low_water`](Self::low_water) — which must
/// sit below the grow [`threshold`](AdaptivePolicy::threshold), leaving a
/// dead band between the two edges — for
/// [`calm_windows`](Self::calm_windows) consecutive windows. Any window at
/// or above the low-water mark, and any grow, resets the calm streak.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShrinkPolicy {
    /// Shrink low-water mark: false conflicts per 100 window commits.
    pub low_water: u32,
    /// Consecutive calm windows required before halving.
    pub calm_windows: u32,
    /// Never shrink below this stripe count (rounded up to a power of
    /// two, min 1).
    pub floor: usize,
}

impl ShrinkPolicy {
    /// The hysteresis companion to a grow policy: low-water at half the
    /// grow threshold (min 1, so the dead band `[low_water, threshold)` is
    /// nonempty for every threshold ≥ 2), two calm windows, floor 1 — a
    /// workload with no false conflicts deserves a single stripe; growth
    /// brings the table back the moment contention returns.
    pub fn for_grow(p: AdaptivePolicy) -> ShrinkPolicy {
        ShrinkPolicy {
            low_water: (p.threshold / 2).max(1),
            calm_windows: 2,
            floor: 1,
        }
    }

    /// The policy with its floor clamped to what the table actually builds.
    pub fn normalized(self) -> Self {
        ShrinkPolicy {
            floor: self.floor.max(1).next_power_of_two(),
            ..self
        }
    }
}

/// A consistent snapshot of the lock word(s) guarding one register —
/// one [`VLockState`] per live generation. During a migration window the
/// old generation's word rides along, and every check is the conservative
/// union: locked if either is, version = the larger of the two.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StripeSnap {
    /// The current generation's lock word.
    pub cur: VLockState,
    /// The retiring generation's lock word, while a migration is pending.
    pub prev: Option<VLockState>,
}

impl StripeSnap {
    /// Is any generation's word locked?
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.cur.is_locked() || self.prev.is_some_and(|p| p.is_locked())
    }

    /// Is any generation's word locked by a thread other than `me`?
    #[inline]
    pub fn is_locked_by_other(&self, me: u16) -> bool {
        self.cur.is_locked_by_other(me) || self.prev.is_some_and(|p| p.is_locked_by_other(me))
    }

    /// The newest version any generation reports for this register.
    #[inline]
    pub fn version_max(&self) -> u64 {
        match self.prev {
            Some(p) => self.cur.version.max(p.version),
            None => self.cur.version,
        }
    }
}

/// One published generation of the adaptive table: the authoritative
/// [`StripedTable`] plus, during a migration window, the retiring parent.
///
/// Soundness of the two-generation overlap: a transaction that pinned the
/// *parent-only* generation locks and validates the parent table; a
/// transaction that pinned this generation locks and validates **both**
/// while `prev` is present. Any two concurrent transactions therefore
/// always share at least one table through which their conflicts are
/// detected. `prev` is dropped (the generation is re-published without it)
/// only after a [`GraceEngine`] period issued at publish has elapsed — at
/// that point no parent-only transaction can still be live, so
/// current-table-only locking is again sufficient.
pub struct TableGen {
    table: Arc<StripedTable>,
    prev: Option<Arc<StripedTable>>,
}

impl TableGen {
    /// The generation's authoritative table.
    pub fn table(&self) -> &StripedTable {
        &self.table
    }

    /// The retiring parent table, while the migration window is open.
    pub fn prev(&self) -> Option<&StripedTable> {
        self.prev.as_deref()
    }

    /// Stripe count of the authoritative table.
    pub fn nstripes(&self) -> usize {
        self.table.nstripes()
    }

    /// Sample every live generation's lock word for register `x`.
    #[inline]
    pub fn sample(&self, x: usize) -> StripeSnap {
        StripeSnap {
            cur: self.table.sample(x),
            prev: self.prev.as_ref().map(|p| p.sample(x)),
        }
    }
}

/// The (table, stripe) address of one lock word across generations:
/// `table` 0 is the retiring parent, 1 the current generation. Parent
/// addresses sort first, giving every committer the same cross-generation
/// acquisition order.
pub type GenStripe = (u8, usize);

/// Closed union of a fixed lock table and the adaptive multi-generation
/// table — what a generation-aware policy ([`crate::tl2`]) stores.
pub enum AnyTables {
    /// A fixed [`AnyLockTable`]; no pinning needed.
    Fixed(AnyLockTable),
    /// The contention-aware adaptive table; transactions pin a
    /// [`TableGen`] at begin.
    Adaptive(AdaptiveTable),
}

/// Everything one adaptive-table generation switch needs to share:
/// the authoritative generation, its id, and the grace ticket retiring the
/// previous one.
struct AdaptiveState {
    /// Monotone generation id; also mirrored in `AdaptiveInner::gen_probe`.
    id: u64,
    current: Arc<TableGen>,
    /// The grace period that must elapse before `current.prev` may be
    /// dropped (present exactly while a migration window is open).
    migration: Option<GraceTicket>,
}

/// The shared core of an [`AdaptiveTable`], behind an `Arc` so the
/// grace-ticket completion callback that retires an old generation can
/// outlive any particular borrow of the table.
struct AdaptiveInner {
    /// Lock-free mirror of [`AdaptiveState::id`], so `begin` can skip the
    /// mutex when nothing changed.
    gen_probe: CachePadded<AtomicU64>,
    state: Mutex<AdaptiveState>,
    window_commits: CachePadded<AtomicU64>,
    window_false: CachePadded<AtomicU64>,
    resizes: AtomicU64,
    /// Consecutive windows whose false-conflict rate stayed strictly below
    /// the shrink low-water mark. Written only at window boundaries.
    calm: AtomicU64,
    /// Late-attached telemetry hub: generation publishes and retirements
    /// emit `stripe-publish` / `stripe-retire` trace events when present.
    telemetry: OnceLock<Arc<Telemetry>>,
}

impl AdaptiveInner {
    /// Retire the migration window opened by grace period `period`:
    /// re-publish the current table without its `prev`. Runs as the
    /// period's completion callback — on whichever thread drives the
    /// period home (a polling transaction begin, a fence waiter, or the
    /// background [`tm_quiesce::GraceDriver`]).
    fn retire(&self, period: u64) {
        let mut retired_stripes = None;
        {
            let mut st = self.state.lock().unwrap();
            if st.migration.as_ref().is_some_and(|m| m.period() == period) {
                st.migration = None;
                st.id += 1;
                st.current = Arc::new(TableGen {
                    table: Arc::clone(&st.current.table),
                    prev: None,
                });
                self.gen_probe.store(st.id, Ordering::SeqCst);
                retired_stripes = Some(st.current.nstripes() as u64);
            }
        }
        if let (Some(stripes), Some(tel)) = (retired_stripes, self.telemetry.get()) {
            if tel.enabled() {
                tel.record_engine_event(EventKind::StripeRetire { stripes });
            }
        }
    }
}

/// The contention-aware adaptive striped orec table (see module docs).
///
/// Hot-path cost for transactions: one atomic load per begin (the
/// generation probe), plus one shared counter increment per commit and per
/// false conflict for the sliding window. Everything else — publishing,
/// migration polling — is off the per-access path.
pub struct AdaptiveTable {
    policy: AdaptivePolicy,
    /// Shrink-side policy, present when the contention governor armed it
    /// (set once at construction time, before the table is shared).
    shrink: Option<ShrinkPolicy>,
    inner: Arc<AdaptiveInner>,
}

impl AdaptiveTable {
    /// A fresh adaptive table at `policy.start` stripes.
    pub fn new(policy: AdaptivePolicy) -> Self {
        let policy = policy.normalized();
        AdaptiveTable {
            policy,
            shrink: None,
            inner: Arc::new(AdaptiveInner {
                gen_probe: CachePadded::new(AtomicU64::new(1)),
                state: Mutex::new(AdaptiveState {
                    id: 1,
                    current: Arc::new(TableGen {
                        table: Arc::new(StripedTable::new(policy.start)),
                        prev: None,
                    }),
                    migration: None,
                }),
                window_commits: CachePadded::new(AtomicU64::new(0)),
                window_false: CachePadded::new(AtomicU64::new(0)),
                resizes: AtomicU64::new(0),
                calm: AtomicU64::new(0),
                telemetry: OnceLock::new(),
            }),
        }
    }

    /// Attach the runtime's telemetry hub (once; later calls are no-ops):
    /// every subsequent generation publish/retire emits a trace event.
    pub fn set_telemetry(&self, telemetry: Arc<Telemetry>) {
        let _ = self.inner.telemetry.set(telemetry);
    }

    /// Arm the shrink side of the control loop (the contention governor
    /// calls this at instance construction, before the table is shared).
    /// Without it the table is grow-only, exactly as before.
    pub fn enable_shrink(&mut self, p: ShrinkPolicy) {
        self.shrink = Some(p.normalized());
    }

    /// The (normalized) growth policy this table runs.
    pub fn policy(&self) -> AdaptivePolicy {
        self.policy
    }

    /// The shrink policy, if the governor armed one.
    pub fn shrink_policy(&self) -> Option<ShrinkPolicy> {
        self.shrink
    }

    /// Generations published so far minus one — i.e. completed resizes
    /// (grows *and* shrinks).
    pub fn resizes(&self) -> u64 {
        self.inner.resizes.load(Ordering::SeqCst)
    }

    /// Stripe count of the current generation.
    pub fn nstripes(&self) -> usize {
        self.inner.state.lock().unwrap().current.nstripes()
    }

    /// Is a migration window currently open (old generation not yet
    /// retired)?
    pub fn migration_pending(&self) -> bool {
        self.inner.state.lock().unwrap().migration.is_some()
    }

    /// The current generation and its id (for introspection/tests; policies
    /// use [`Self::repin`]).
    pub fn pin(&self) -> (u64, Arc<TableGen>) {
        let st = self.inner.state.lock().unwrap();
        (st.id, Arc::clone(&st.current))
    }

    /// Refresh `cached` to the current generation if it changed. The fast
    /// path — nothing changed — is a single atomic load.
    #[inline]
    pub fn repin(&self, cached: &mut Option<(u64, Arc<TableGen>)>) {
        let probe = self.inner.gen_probe.load(Ordering::SeqCst);
        match cached {
            Some((id, _)) if *id == probe => {}
            _ => *cached = Some(self.pin()),
        }
    }

    /// Count one false conflict into the open window.
    #[inline]
    pub fn note_false_conflict(&self) {
        self.inner.window_false.fetch_add(1, Ordering::SeqCst);
    }

    /// Count one commit into the open window; at a window boundary,
    /// evaluate the false-conflict rate: grow the table when the rate is at
    /// or above the policy threshold, and — when a [`ShrinkPolicy`] is
    /// armed — shrink it after [`ShrinkPolicy::calm_windows`] consecutive
    /// windows strictly below the low-water mark. The dead band between
    /// the two edges is the hysteresis that keeps the table from
    /// oscillating. Returns whether a new generation was published by this
    /// call. `engine` supplies the grace period that retires the old
    /// generation.
    pub fn note_commit(&self, engine: &Arc<GraceEngine>) -> bool {
        let c = self.inner.window_commits.fetch_add(1, Ordering::SeqCst) + 1;
        if !c.is_multiple_of(self.policy.window) {
            return false;
        }
        let false_conflicts = self.inner.window_false.swap(0, Ordering::SeqCst);
        let why = Some((false_conflicts, self.policy.window));
        if false_conflicts * 100 >= u64::from(self.policy.threshold) * self.policy.window {
            // Contended window: any calm streak is over.
            self.inner.calm.store(0, Ordering::SeqCst);
            return self.publish_resized(engine, true, why);
        }
        if let Some(sh) = self.shrink {
            if false_conflicts * 100 < u64::from(sh.low_water) * self.policy.window {
                let calm = self.inner.calm.fetch_add(1, Ordering::SeqCst) + 1;
                if calm >= u64::from(sh.calm_windows) {
                    self.inner.calm.store(0, Ordering::SeqCst);
                    return self.publish_resized(engine, false, why);
                }
            } else {
                // Inside the dead band: neither grow nor calm.
                self.inner.calm.store(0, Ordering::SeqCst);
            }
        }
        false
    }

    /// Publish a doubled generation, if allowed: no migration may already
    /// be pending and the cap must not be reached. Returns whether a
    /// generation was published.
    pub fn try_grow(&self, engine: &Arc<GraceEngine>) -> bool {
        self.publish_resized(engine, true, None)
    }

    /// Publish a *halved* generation, if allowed: a shrink policy must be
    /// armed, no migration may already be pending, and the floor must not
    /// be reached. The migration protocol is the grow side verbatim — the
    /// two-generation overlap argument in [`TableGen`] never depends on
    /// the direction of the resize, only on every new-generation
    /// transaction checking both tables until the parent-only stragglers
    /// drain — so the same probe-before-issue publication order and the
    /// same grace-ticket retirement apply. Returns whether a generation
    /// was published.
    pub fn try_shrink(&self, engine: &Arc<GraceEngine>) -> bool {
        self.publish_resized(engine, false, None)
    }

    /// The shared publication protocol behind [`Self::try_grow`] and
    /// [`Self::try_shrink`] (they differ only in the bound check and the
    /// direction of the resize). `why` carries the window counters that
    /// justified a governor-driven resize — `(false_conflicts, window)` —
    /// and lands in the `stripe-publish` trace event; direct `try_*` calls
    /// pass `None` and trace zeros.
    fn publish_resized(
        &self,
        engine: &Arc<GraceEngine>,
        grow: bool,
        why: Option<(u64, u64)>,
    ) -> bool {
        let shrink_floor = match (grow, self.shrink) {
            (true, _) => 0,
            (false, Some(sh)) => sh.floor,
            (false, None) => return false,
        };
        let (ticket, from_stripes, to_stripes) = {
            let mut st = self.inner.state.lock().unwrap();
            let at_bound = if grow {
                st.current.nstripes() >= self.policy.max
            } else {
                st.current.nstripes() <= shrink_floor
            };
            if st.migration.is_some() || at_bound {
                return false;
            }
            let parent = Arc::clone(&st.current.table);
            let child = Arc::new(if grow {
                StripedTable::grown_from(&parent)
            } else {
                StripedTable::shrunk_from(&parent)
            });
            let (from, to) = (parent.nstripes() as u64, child.nstripes() as u64);
            st.id += 1;
            st.current = Arc::new(TableGen {
                table: child,
                prev: Some(parent),
            });
            // Publish the probe BEFORE issuing the grace period. The
            // period's epoch snapshot is taken after `issue` (a concurrent
            // driver can take it the instant `issue` returns — the state
            // lock does not serialize the engine), so with this order every
            // SeqCst chain is `probe store < issue < snapshot`: a
            // transaction the period does NOT cover entered its epoch after
            // the snapshot, hence after the probe store, and its begin-time
            // probe load must observe the new generation — it pins the
            // migration generation and checks both tables. (Issuing first
            // would let the snapshot land before the probe store, leaving a
            // transaction both uncovered and pinned parent-only: exactly
            // the missed-conflict window the migration exists to close.)
            self.inner.gen_probe.store(st.id, Ordering::SeqCst);
            self.inner.resizes.fetch_add(1, Ordering::SeqCst);
            let ticket = engine.issue();
            st.migration = Some(ticket.clone());
            (ticket, from, to)
        };
        if let Some(tel) = self.inner.telemetry.get() {
            if tel.enabled() {
                let (false_conflicts, window) = why.unwrap_or((0, 0));
                tel.record_engine_event(EventKind::StripePublish {
                    grow,
                    from_stripes,
                    to_stripes,
                    false_conflicts,
                    window,
                });
            }
        }
        // Register the retirement as the period's completion callback —
        // outside the state lock, because an already-elapsed period runs
        // the callback immediately on this thread, and `retire` re-locks.
        // Under a background GraceDriver this is exactly the
        // fire-and-forget contract: the old generation retires in bounded
        // time with zero pollers. Cooperatively, whoever drives the period
        // home (a begin-time poll, any fence waiter) runs it.
        let inner = Arc::clone(&self.inner);
        let period = ticket.period();
        ticket.on_complete(move || inner.retire(period));
        true
    }

    /// Contribute one non-blocking driving step to the pending migration's
    /// grace period (retirement itself runs as the period's completion
    /// callback). Cheap no-op when no migration is pending. Called from
    /// transaction begins, so migrations complete under plain traffic even
    /// with no fences and no background driver; never blocks.
    pub fn poll_migration(&self) {
        // Snapshot the ticket, then poll it OUTSIDE the state lock:
        // poll() drives the grace engine, which runs completion callbacks
        // (including our own `retire`) on this thread, and those re-enter
        // the table state.
        let ticket = {
            let Ok(st) = self.inner.state.try_lock() else {
                return;
            };
            match &st.migration {
                Some(t) => t.clone(),
                None => return,
            }
        };
        ticket.poll();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_register_is_identity_mapped() {
        let t = PerRegisterTable::new(8);
        assert_eq!(t.nstripes(), 8);
        for x in 0..8 {
            assert_eq!(t.stripe_of(x), x);
        }
    }

    #[test]
    fn striped_footprint_is_constant_in_register_count() {
        // The whole point: metadata for a million registers is still only
        // `stripes` lock words.
        let t = StorageKind::Striped { stripes: 256 }.build(1 << 20);
        assert_eq!(t.nstripes(), 256);
        let p = StorageKind::PerRegister.build(1 << 10);
        assert_eq!(p.nstripes(), 1 << 10);
    }

    #[test]
    fn striped_mapping_is_total_and_stable() {
        // A non-power-of-two request rounds up: 7 → 8 lock words.
        let t = StripedTable::new(7);
        assert_eq!(t.nstripes(), 8);
        for x in 0..10_000 {
            let s = t.stripe_of(x);
            assert!(s < 8);
            assert_eq!(s, t.stripe_of(x), "mapping must be deterministic");
        }
    }

    #[test]
    fn stripe_counts_round_up_to_powers_of_two() {
        for (requested, built) in [(1usize, 1usize), (2, 2), (3, 4), (5, 8), (1000, 1024)] {
            let t = StripedTable::new(requested);
            assert_eq!(t.nstripes(), built, "requested {requested}");
            assert_eq!(
                StorageKind::Striped { stripes: requested }.label(),
                format!("striped-{built}"),
                "the label must report the rounded count"
            );
            // The mask mapping stays in range at every count.
            for x in 0..1000 {
                assert!(t.stripe_of(x) < built);
            }
        }
    }

    #[test]
    fn striped_mapping_spreads() {
        // splitmix64 should spread sequential register indices across
        // stripes roughly uniformly — no stripe may be empty or dominant.
        let t = StripedTable::new(16);
        let mut counts = [0usize; 16];
        for x in 0..16_000 {
            counts[t.stripe_of(x)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 500 && c < 1500, "stripe {s} has skewed load {c}");
        }
    }

    #[test]
    fn lock_protocol_via_table_interface() {
        for table in [
            StorageKind::PerRegister.build(4),
            StorageKind::Striped { stripes: 2 }.build(4),
        ] {
            let s = table.stripe_of(3);
            assert_eq!(table.try_lock_stripe(s, 5), Ok(0));
            assert!(table.sample(3).is_locked());
            assert!(table.try_lock_stripe(s, 6).is_err());
            table.unlock_stripe_set_version(s, 9);
            let st = table.sample(3);
            assert_eq!(st.version, 9);
            assert!(!st.is_locked());
            // Abort path keeps the version.
            table.try_lock_stripe(s, 1).unwrap();
            table.unlock_stripe(s);
            assert_eq!(table.sample(3).version, 9);
        }
    }

    #[test]
    fn storage_kind_labels() {
        assert_eq!(StorageKind::PerRegister.label(), "per-register");
        assert_eq!(StorageKind::Striped { stripes: 64 }.label(), "striped-64");
        assert_eq!(StorageKind::default(), StorageKind::PerRegister);
        assert_eq!(
            StorageKind::Adaptive(AdaptivePolicy {
                start: 3,
                max: 100,
                threshold: 5,
                window: 8,
            })
            .label(),
            "adaptive-4-128",
            "the label reports the normalized (power-of-two) policy"
        );
    }

    #[test]
    fn writer_hints_track_last_commit_per_stripe() {
        let t = StripedTable::new(4);
        let s = t.stripe_of(7);
        assert_eq!(
            t.writer_hint(s),
            WriterHint::None,
            "never-written stripes hint None"
        );
        t.record_writer(s, 7);
        assert_eq!(t.writer_hint(s), WriterHint::Register(7));
        t.record_writer(s, 11);
        assert_eq!(
            t.writer_hint(s),
            WriterHint::Register(11),
            "hints follow the last commit"
        );
        // A multi-register commit through one stripe is ambiguous: an
        // abort there may be a real conflict on any of its registers.
        t.record_writer_shared(s);
        assert_eq!(t.writer_hint(s), WriterHint::Shared);
        // Per-register tables never hint: every conflict there is real.
        let p = PerRegisterTable::new(4);
        p.record_writer(2, 2);
        assert_eq!(p.writer_hint(2), WriterHint::None);
    }

    #[test]
    fn grown_table_inherits_versions_and_hints() {
        let parent = StripedTable::new(2);
        parent.try_lock_stripe(0, 1).unwrap();
        parent.unlock_stripe_set_version(0, 41);
        parent.record_writer(0, 9);
        parent.try_lock_stripe(1, 1).unwrap();
        parent.unlock_stripe_set_version(1, 7);
        let child = StripedTable::grown_from(&parent);
        assert_eq!(child.nstripes(), 4);
        // Child stripe s inherits parent stripe s & 1.
        for s in 0..4 {
            let expect = if s % 2 == 0 { 41 } else { 7 };
            assert_eq!(child.sample_stripe(s).version, expect, "stripe {s}");
            assert!(!child.sample_stripe(s).is_locked());
        }
        assert_eq!(child.writer_hint(0), WriterHint::Register(9));
        assert_eq!(child.writer_hint(2), WriterHint::Register(9));
    }

    #[test]
    fn adaptive_policy_normalizes() {
        let p = AdaptivePolicy {
            start: 0,
            max: 0,
            threshold: 10,
            window: 0,
        }
        .normalized();
        assert_eq!((p.start, p.max, p.window), (1, 1, 1));
        let p = AdaptivePolicy {
            start: 5,
            max: 3,
            threshold: 10,
            window: 16,
        }
        .normalized();
        assert_eq!((p.start, p.max), (8, 8), "max clamps up to start");
        let d = AdaptivePolicy::default();
        assert_eq!(
            d.start, 0,
            "the default start is the seed-from-nregs sentinel"
        );
        assert_eq!(d.normalized().start, 1, "the sentinel clamps to 1 unseeded");
    }

    #[test]
    fn start_seeds_from_nregs() {
        // One stripe per 16 registers, clamped to [1, 64].
        assert_eq!(AdaptivePolicy::default().seeded(8).start, 1);
        assert_eq!(AdaptivePolicy::default().seeded(16).start, 1);
        assert_eq!(AdaptivePolicy::default().seeded(512).start, 32);
        assert_eq!(AdaptivePolicy::default().seeded(1 << 20).start, 64);
        // An explicit start passes through untouched.
        let explicit = AdaptivePolicy {
            start: 2,
            ..AdaptivePolicy::default()
        };
        assert_eq!(explicit.seeded(1 << 20).start, 2);
        // The label reports the sentinel as "auto".
        assert_eq!(
            StorageKind::Adaptive(AdaptivePolicy::default()).label(),
            "adaptive-auto-65536"
        );
    }

    #[test]
    fn stripe_snap_is_the_conservative_union() {
        let locked = VLockState {
            version: 3,
            owner: Some(2),
        };
        let free = VLockState {
            version: 9,
            owner: None,
        };
        let single = StripeSnap {
            cur: free,
            prev: None,
        };
        assert!(!single.is_locked());
        assert_eq!(single.version_max(), 9);
        let dual = StripeSnap {
            cur: free,
            prev: Some(locked),
        };
        assert!(dual.is_locked(), "a locked prev generation locks the snap");
        assert!(dual.is_locked_by_other(1));
        assert!(!dual.is_locked_by_other(2), "owner 2 holds the prev lock");
        assert_eq!(dual.version_max(), 9, "version is the max across gens");
    }

    #[test]
    fn adaptive_window_grows_and_migration_retires_through_grace() {
        let engine = GraceEngine::new(2);
        let t = AdaptiveTable::new(AdaptivePolicy {
            start: 2,
            max: 8,
            threshold: 25,
            window: 4,
        });
        assert_eq!(t.nstripes(), 2);
        let (id0, gen0) = t.pin();
        assert!(gen0.prev().is_none());

        // 3 quiet commits: no boundary, no growth.
        for _ in 0..3 {
            assert!(!t.note_commit(&engine));
        }
        // 1 false conflict in a 4-commit window = 25% >= threshold.
        t.note_false_conflict();
        assert!(t.note_commit(&engine), "boundary at rate >= threshold");
        assert_eq!(t.resizes(), 1);
        assert_eq!(t.nstripes(), 4);
        assert!(t.migration_pending());
        let (id1, gen1) = t.pin();
        assert!(id1 > id0);
        assert!(gen1.prev().is_some(), "migration generation carries prev");
        assert_eq!(gen1.prev().unwrap().nstripes(), 2);

        // No concurrent growth while a migration window is open.
        t.note_false_conflict();
        for _ in 0..4 {
            t.note_commit(&engine);
        }
        assert_eq!(t.resizes(), 1, "one migration at a time");

        // With no active epochs the grace period elapses on the first
        // poll; the old generation retires and the table re-publishes.
        t.poll_migration();
        assert!(!t.migration_pending());
        let (id2, gen2) = t.pin();
        assert!(id2 > id1);
        assert!(gen2.prev().is_none(), "prev dropped after the grace period");
        assert_eq!(gen2.nstripes(), 4);
        assert!(engine.scans() >= 1, "retirement rode a real engine scan");
    }

    #[test]
    fn adaptive_growth_respects_the_cap_and_live_epochs() {
        let engine = GraceEngine::new(2);
        let t = AdaptiveTable::new(AdaptivePolicy {
            start: 4,
            max: 4,
            threshold: 0,
            window: 1,
        });
        // threshold 0 = grow at every boundary — but the cap wins.
        assert!(!t.note_commit(&engine));
        assert_eq!(t.resizes(), 0);
        assert_eq!(t.nstripes(), 4);

        // Below the cap, a pinned epoch keeps the migration window open:
        // the grace period must not elapse while a pinned-generation
        // transaction could still be live.
        let t = AdaptiveTable::new(AdaptivePolicy {
            start: 2,
            max: 8,
            threshold: 0,
            window: 1,
        });
        engine.epochs().enter(0);
        assert!(t.note_commit(&engine));
        t.poll_migration();
        assert!(
            t.migration_pending(),
            "an epoch active at publish pins the old generation"
        );
        engine.epochs().exit(0);
        t.poll_migration();
        assert!(!t.migration_pending());
    }

    #[test]
    fn repin_tracks_generation_changes() {
        let engine = GraceEngine::new(1);
        let t = AdaptiveTable::new(AdaptivePolicy {
            start: 1,
            max: 4,
            threshold: 0,
            window: 1,
        });
        let mut cached = None;
        t.repin(&mut cached);
        let first = cached.as_ref().unwrap().0;
        t.repin(&mut cached);
        assert_eq!(cached.as_ref().unwrap().0, first, "no change, no repin");
        assert!(t.note_commit(&engine));
        t.repin(&mut cached);
        let (second, gen) = cached.as_ref().unwrap();
        assert!(*second > first);
        assert_eq!(gen.nstripes(), 2);
    }

    #[test]
    fn shrunk_table_merges_versions_and_hints_conservatively() {
        let parent = StripedTable::new(4);
        // Stripe 0: v41, last writer register 9. Stripe 2 (its merge
        // partner): v7, never written.
        parent.try_lock_stripe(0, 1).unwrap();
        parent.unlock_stripe_set_version(0, 41);
        parent.record_writer(0, 9);
        parent.try_lock_stripe(2, 1).unwrap();
        parent.unlock_stripe_set_version(2, 7);
        // Stripe 1 and 3 disagree on their last writer.
        parent.record_writer(1, 5);
        parent.record_writer(3, 6);
        let child = StripedTable::shrunk_from(&parent);
        assert_eq!(child.nstripes(), 2);
        assert_eq!(
            child.sample_stripe(0).version,
            41,
            "merged version is the max of the two parents"
        );
        assert!(!child.sample_stripe(0).is_locked());
        assert_eq!(
            child.writer_hint(0),
            WriterHint::Register(9),
            "a one-sided hint survives the merge"
        );
        assert_eq!(
            child.writer_hint(1),
            WriterHint::Shared,
            "disagreeing hints merge to Shared: never classify false"
        );
    }

    #[test]
    fn calm_windows_shrink_and_retire_through_grace() {
        let engine = GraceEngine::new(2);
        let mut t = AdaptiveTable::new(AdaptivePolicy {
            start: 4,
            max: 8,
            threshold: 50,
            window: 2,
        });
        t.enable_shrink(ShrinkPolicy {
            low_water: 25,
            calm_windows: 2,
            floor: 1,
        });
        assert_eq!(t.nstripes(), 4);
        // First calm window (0 false conflicts): streak = 1, no publish.
        assert!(!t.note_commit(&engine));
        assert!(!t.note_commit(&engine));
        assert!(!t.migration_pending());
        // Second consecutive calm window: halve 4 → 2.
        assert!(!t.note_commit(&engine));
        assert!(t.note_commit(&engine), "two calm windows publish a shrink");
        assert_eq!(t.resizes(), 1);
        assert_eq!(t.nstripes(), 2);
        assert!(t.migration_pending());
        let (_, gen) = t.pin();
        assert_eq!(
            gen.prev().map(|p| p.nstripes()),
            Some(4),
            "the oversized parent rides along through the migration window"
        );
        // No second resize while the migration window is open.
        for _ in 0..4 {
            t.note_commit(&engine);
        }
        assert_eq!(t.resizes(), 1, "one migration at a time");
        t.poll_migration();
        assert!(!t.migration_pending(), "grace retires the parent");
        // Two more calm windows: 2 → 1, then the floor stops the slide.
        for _ in 0..4 {
            t.note_commit(&engine);
        }
        assert_eq!((t.resizes(), t.nstripes()), (2, 1));
        t.poll_migration();
        for _ in 0..8 {
            t.note_commit(&engine);
        }
        assert_eq!(t.nstripes(), 1, "the floor holds");
        assert_eq!(t.resizes(), 2);
    }

    #[test]
    fn hysteresis_dead_band_resets_the_calm_streak() {
        let engine = GraceEngine::new(1);
        let mut t = AdaptiveTable::new(AdaptivePolicy {
            start: 2,
            max: 2,
            threshold: 50,
            window: 2,
        });
        t.enable_shrink(ShrinkPolicy {
            low_water: 25,
            calm_windows: 2,
            floor: 1,
        });
        // One calm window starts a streak...
        assert!(!t.note_commit(&engine));
        assert!(!t.note_commit(&engine), "calm streak = 1");
        // ...then a contended window (1 false in 2 commits = 50%, the grow
        // edge; max=2 caps the grow to a no-op) must reset it.
        t.note_false_conflict();
        assert!(!t.note_commit(&engine));
        assert!(!t.note_commit(&engine), "contended window: grow capped");
        // The streak restarted: one calm window is not enough...
        assert!(!t.note_commit(&engine));
        assert!(!t.note_commit(&engine), "streak = 1 again");
        // ...but the second consecutive one shrinks.
        assert!(!t.note_commit(&engine));
        assert!(t.note_commit(&engine), "streak = 2 shrinks");
        assert_eq!(t.nstripes(), 1);
    }

    #[test]
    fn shrink_requires_an_armed_policy() {
        let engine = GraceEngine::new(1);
        let t = AdaptiveTable::new(AdaptivePolicy {
            start: 4,
            max: 8,
            threshold: 100,
            window: 1,
        });
        assert!(t.shrink_policy().is_none());
        assert!(!t.try_shrink(&engine), "grow-only tables never shrink");
        // Calm forever: still no shrink without an armed policy.
        for _ in 0..32 {
            assert!(!t.note_commit(&engine));
        }
        assert_eq!((t.resizes(), t.nstripes()), (0, 4));
    }

    #[test]
    fn shrink_policy_derives_from_grow_policy() {
        let sh = ShrinkPolicy::for_grow(AdaptivePolicy {
            start: 8,
            max: 64,
            threshold: 6,
            window: 16,
        });
        assert_eq!(sh.low_water, 3, "low-water at half the grow threshold");
        assert_eq!(sh.calm_windows, 2);
        assert_eq!(sh.floor, 1);
        let sh0 = ShrinkPolicy::for_grow(AdaptivePolicy {
            threshold: 0,
            ..AdaptivePolicy::default()
        });
        assert_eq!(sh0.low_water, 1, "threshold 0 still gets a sane mark");
        assert_eq!(
            ShrinkPolicy {
                low_water: 1,
                calm_windows: 2,
                floor: 3
            }
            .normalized()
            .floor,
            4,
            "floors round up to powers of two"
        );
    }

    #[test]
    #[should_panic(expected = "build_tables")]
    fn fixed_build_rejects_adaptive() {
        StorageKind::Adaptive(AdaptivePolicy::default()).build(8);
    }

    #[test]
    fn build_tables_dispatches() {
        match (StorageKind::Striped { stripes: 4 }).build_tables(16) {
            AnyTables::Fixed(t) => assert_eq!(t.nstripes(), 4),
            AnyTables::Adaptive(_) => panic!("striped is fixed"),
        }
        // The default policy's start seeds from the register count: 16
        // registers deserve one stripe, a million deserve the 64 cap.
        match StorageKind::Adaptive(AdaptivePolicy::default()).build_tables(16) {
            AnyTables::Adaptive(t) => assert_eq!(t.nstripes(), 1),
            AnyTables::Fixed(_) => panic!("adaptive is not fixed"),
        }
        match StorageKind::Adaptive(AdaptivePolicy::default()).build_tables(1 << 20) {
            AnyTables::Adaptive(t) => assert_eq!(t.nstripes(), 64),
            AnyTables::Fixed(_) => panic!("adaptive is not fixed"),
        }
    }
}
