//! Pluggable ownership-record storage for versioned-lock STMs.
//!
//! TL2-style algorithms need one *versioned write-lock* per guarded unit of
//! data. How those lock words are laid out is an implementation axis the
//! paper's correctness argument never depends on (the TM-interface actions
//! are the same either way), but it dominates the memory footprint and the
//! false-conflict rate:
//!
//! * [`PerRegisterTable`] — one [`VLock`] per register, cache-padded. No
//!   false conflicts, but 128 bytes of metadata per register: unusable for
//!   the ROADMAP's millions-of-registers deployments.
//! * [`StripedTable`] — a fixed-size *striped orec table*: register `x` is
//!   guarded by stripe `splitmix64(x) % nstripes`. Constant metadata
//!   footprint, at the price of *false conflicts* between registers that
//!   share a stripe (production TL2 descendants make exactly this trade).
//!
//! Both present the same [`LockTable`] interface, so a concurrency-control
//! policy written against it (see [`crate::tl2`]) is storage-agnostic.
//! Striping is conservative, never unsound: sharing a stripe only makes the
//! version check *more* likely to abort, and commit-time acquisition locks
//! each distinct stripe exactly once (see [`crate::tl2`]'s stripe dedup).

use crate::vlock::{VLock, VLockState};
use crossbeam::utils::CachePadded;

/// Storage backend selection for versioned-lock policies, used by
/// [`crate::runtime::StmConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StorageKind {
    /// One ownership record per register (the classic layout).
    #[default]
    PerRegister,
    /// A striped orec table with `stripes` lock words; registers hash onto
    /// stripes with a splitmix64 mix of the register index.
    Striped { stripes: usize },
}

impl StorageKind {
    /// Build the lock table for a register file of `nregs` registers.
    pub fn build(self, nregs: usize) -> AnyLockTable {
        match self {
            StorageKind::PerRegister => AnyLockTable::PerRegister(PerRegisterTable::new(nregs)),
            StorageKind::Striped { stripes } => AnyLockTable::Striped(StripedTable::new(stripes)),
        }
    }

    pub fn label(self) -> String {
        match self {
            StorageKind::PerRegister => "per-register".into(),
            // The table rounds the stripe count up to a power of two; the
            // label reports what is actually built.
            StorageKind::Striped { stripes } => {
                format!("striped-{}", stripes.max(1).next_power_of_two())
            }
        }
    }
}

/// Closed union of the built-in backends. Policies store this (rather than
/// `Box<dyn LockTable>`) so the per-read lock-word sampling on the hot path
/// is a two-arm match that inlines, not virtual dispatch. The open
/// [`LockTable`] trait remains the abstraction to write code against.
pub enum AnyLockTable {
    PerRegister(PerRegisterTable),
    Striped(StripedTable),
}

macro_rules! delegate {
    ($self:ident, $t:ident => $e:expr) => {
        match $self {
            AnyLockTable::PerRegister($t) => $e,
            AnyLockTable::Striped($t) => $e,
        }
    };
}

impl LockTable for AnyLockTable {
    #[inline]
    fn stripe_of(&self, x: usize) -> usize {
        delegate!(self, t => t.stripe_of(x))
    }

    fn nstripes(&self) -> usize {
        delegate!(self, t => t.nstripes())
    }

    #[inline]
    fn sample_stripe(&self, s: usize) -> VLockState {
        delegate!(self, t => t.sample_stripe(s))
    }

    #[inline]
    fn try_lock_stripe(&self, s: usize, owner: u16) -> Result<u64, VLockState> {
        delegate!(self, t => t.try_lock_stripe(s, owner))
    }

    #[inline]
    fn unlock_stripe(&self, s: usize) {
        delegate!(self, t => t.unlock_stripe(s))
    }

    #[inline]
    fn unlock_stripe_set_version(&self, s: usize, version: u64) {
        delegate!(self, t => t.unlock_stripe_set_version(s, version))
    }
}

/// A table of versioned write-locks guarding a register file.
///
/// Registers map many-to-one onto *stripes* (lock words). All locking and
/// validation happens at stripe granularity; `stripe_of` is total, so every
/// register is always guarded. Implementations must be sound under the TL2
/// protocol: a stripe's version only changes while the stripe is write-locked,
/// and monotonically increases.
pub trait LockTable: Send + Sync + 'static {
    /// The stripe (lock-word index) guarding register `x`.
    fn stripe_of(&self, x: usize) -> usize;

    /// Number of distinct lock words.
    fn nstripes(&self) -> usize;

    /// Read the (version, owner) pair of stripe `s`.
    fn sample_stripe(&self, s: usize) -> VLockState;

    /// Try to lock stripe `s` for `owner`; returns the version on success.
    fn try_lock_stripe(&self, s: usize, owner: u16) -> Result<u64, VLockState>;

    /// Release stripe `s`, keeping its version (abort path).
    fn unlock_stripe(&self, s: usize);

    /// Release stripe `s`, installing a new version (commit write-back).
    fn unlock_stripe_set_version(&self, s: usize, version: u64);

    /// Sample the lock word guarding register `x`.
    fn sample(&self, x: usize) -> VLockState {
        self.sample_stripe(self.stripe_of(x))
    }
}

fn vlock_array(n: usize) -> Box<[CachePadded<VLock>]> {
    (0..n)
        .map(|_| CachePadded::new(VLock::new()))
        .collect::<Vec<_>>()
        .into_boxed_slice()
}

/// One cache-padded [`VLock`] per register: precise, memory-hungry.
pub struct PerRegisterTable {
    locks: Box<[CachePadded<VLock>]>,
}

impl PerRegisterTable {
    pub fn new(nregs: usize) -> Self {
        PerRegisterTable {
            locks: vlock_array(nregs),
        }
    }
}

impl LockTable for PerRegisterTable {
    #[inline]
    fn stripe_of(&self, x: usize) -> usize {
        x
    }

    fn nstripes(&self) -> usize {
        self.locks.len()
    }

    #[inline]
    fn sample_stripe(&self, s: usize) -> VLockState {
        self.locks[s].sample()
    }

    #[inline]
    fn try_lock_stripe(&self, s: usize, owner: u16) -> Result<u64, VLockState> {
        self.locks[s].try_lock(owner)
    }

    #[inline]
    fn unlock_stripe(&self, s: usize) {
        self.locks[s].unlock()
    }

    #[inline]
    fn unlock_stripe_set_version(&self, s: usize, version: u64) {
        self.locks[s].unlock_set_version(version)
    }
}

/// Finalizing step of the splitmix64 generator: a cheap, well-mixed hash.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fixed-size striped orec table: metadata footprint is `stripes` lock
/// words however large the register file grows.
///
/// The stripe count is rounded up to a power of two so the per-read
/// `stripe_of` mapping is a mask (`hash & (n - 1)`) instead of a hardware
/// divide — `stripe_of` runs twice per transactional read, and splitmix64
/// mixes all 64 bits, so masking loses nothing to modulo in spread.
pub struct StripedTable {
    locks: Box<[CachePadded<VLock>]>,
    /// `locks.len() - 1`; valid because the length is a power of two.
    mask: u64,
}

impl StripedTable {
    pub fn new(stripes: usize) -> Self {
        assert!(stripes > 0, "a striped table needs at least one stripe");
        let n = stripes.next_power_of_two();
        StripedTable {
            locks: vlock_array(n),
            mask: n as u64 - 1,
        }
    }
}

impl LockTable for StripedTable {
    #[inline]
    fn stripe_of(&self, x: usize) -> usize {
        (splitmix64(x as u64) & self.mask) as usize
    }

    fn nstripes(&self) -> usize {
        self.locks.len()
    }

    #[inline]
    fn sample_stripe(&self, s: usize) -> VLockState {
        self.locks[s].sample()
    }

    #[inline]
    fn try_lock_stripe(&self, s: usize, owner: u16) -> Result<u64, VLockState> {
        self.locks[s].try_lock(owner)
    }

    #[inline]
    fn unlock_stripe(&self, s: usize) {
        self.locks[s].unlock()
    }

    #[inline]
    fn unlock_stripe_set_version(&self, s: usize, version: u64) {
        self.locks[s].unlock_set_version(version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_register_is_identity_mapped() {
        let t = PerRegisterTable::new(8);
        assert_eq!(t.nstripes(), 8);
        for x in 0..8 {
            assert_eq!(t.stripe_of(x), x);
        }
    }

    #[test]
    fn striped_footprint_is_constant_in_register_count() {
        // The whole point: metadata for a million registers is still only
        // `stripes` lock words.
        let t = StorageKind::Striped { stripes: 256 }.build(1 << 20);
        assert_eq!(t.nstripes(), 256);
        let p = StorageKind::PerRegister.build(1 << 10);
        assert_eq!(p.nstripes(), 1 << 10);
    }

    #[test]
    fn striped_mapping_is_total_and_stable() {
        // A non-power-of-two request rounds up: 7 → 8 lock words.
        let t = StripedTable::new(7);
        assert_eq!(t.nstripes(), 8);
        for x in 0..10_000 {
            let s = t.stripe_of(x);
            assert!(s < 8);
            assert_eq!(s, t.stripe_of(x), "mapping must be deterministic");
        }
    }

    #[test]
    fn stripe_counts_round_up_to_powers_of_two() {
        for (requested, built) in [(1usize, 1usize), (2, 2), (3, 4), (5, 8), (1000, 1024)] {
            let t = StripedTable::new(requested);
            assert_eq!(t.nstripes(), built, "requested {requested}");
            assert_eq!(
                StorageKind::Striped { stripes: requested }.label(),
                format!("striped-{built}"),
                "the label must report the rounded count"
            );
            // The mask mapping stays in range at every count.
            for x in 0..1000 {
                assert!(t.stripe_of(x) < built);
            }
        }
    }

    #[test]
    fn striped_mapping_spreads() {
        // splitmix64 should spread sequential register indices across
        // stripes roughly uniformly — no stripe may be empty or dominant.
        let t = StripedTable::new(16);
        let mut counts = [0usize; 16];
        for x in 0..16_000 {
            counts[t.stripe_of(x)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 500 && c < 1500, "stripe {s} has skewed load {c}");
        }
    }

    #[test]
    fn lock_protocol_via_table_interface() {
        for table in [
            StorageKind::PerRegister.build(4),
            StorageKind::Striped { stripes: 2 }.build(4),
        ] {
            let s = table.stripe_of(3);
            assert_eq!(table.try_lock_stripe(s, 5), Ok(0));
            assert!(table.sample(3).is_locked());
            assert!(table.try_lock_stripe(s, 6).is_err());
            table.unlock_stripe_set_version(s, 9);
            let st = table.sample(3);
            assert_eq!(st.version, 9);
            assert!(!st.is_locked());
            // Abort path keeps the version.
            table.try_lock_stripe(s, 1).unwrap();
            table.unlock_stripe(s);
            assert_eq!(table.sample(3).version, 9);
        }
    }

    #[test]
    fn storage_kind_labels() {
        assert_eq!(StorageKind::PerRegister.label(), "per-register");
        assert_eq!(StorageKind::Striped { stripes: 64 }.label(), "striped-64");
        assert_eq!(StorageKind::default(), StorageKind::PerRegister);
    }
}
