//! NOrec-style STM (Dalessandro, Spear, Scott — paper's related work [10]):
//! a single global sequence lock, value-based validation, no per-register
//! ownership records.
//!
//! Included as the baseline that is *privatization-safe without fences*
//! (paper Sec 8): commits are serialized by the global lock and write-back
//! completes before the commit returns, so there is no delayed-commit
//! window; and any clock change forces readers to re-validate by value, so
//! doomed transactions abort instead of reading privatized data. `fence()`
//! is a no-op.

use crate::api::{Abort, Stats, StmHandle, TxScope};
use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct NorecInner {
    /// Global sequence lock: even = stable, odd = a writer is committing.
    global: CachePadded<AtomicU64>,
    values: Box<[CachePadded<AtomicU64>]>,
}

/// The shared NOrec instance.
#[derive(Clone)]
pub struct NorecStm {
    inner: Arc<NorecInner>,
}

impl NorecStm {
    pub fn new(nregs: usize, _nthreads: usize) -> Self {
        let values = (0..nregs)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        NorecStm {
            inner: Arc::new(NorecInner {
                global: CachePadded::new(AtomicU64::new(0)),
                values,
            }),
        }
    }

    pub fn handle(&self, _slot: usize) -> NorecHandle {
        NorecHandle {
            inner: Arc::clone(&self.inner),
            snapshot: 0,
            rset: Vec::new(),
            wset: Vec::new(),
            stats: Stats::default(),
        }
    }

    pub fn peek(&self, x: usize) -> u64 {
        self.inner.values[x].load(Ordering::SeqCst)
    }
}

/// Per-thread NOrec context.
pub struct NorecHandle {
    inner: Arc<NorecInner>,
    snapshot: u64,
    /// Value-based read set: (register, value observed).
    rset: Vec<(usize, u64)>,
    wset: Vec<(usize, u64)>,
    stats: Stats,
}

impl NorecHandle {
    /// Wait for an even (stable) global and return it.
    fn wait_even(&self) -> u64 {
        let mut spins = 0u32;
        loop {
            let g = self.inner.global.load(Ordering::SeqCst);
            if g % 2 == 0 {
                return g;
            }
            spins += 1;
            if spins % 64 == 0 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    fn begin(&mut self) {
        self.rset.clear();
        self.wset.clear();
        self.snapshot = self.wait_even();
    }

    /// Re-read the read set by value; abort if anything changed. On success,
    /// the snapshot is advanced to a stable clock at which the read set was
    /// re-confirmed.
    fn validate(&mut self) -> Result<u64, Abort> {
        loop {
            let s = self.wait_even();
            for &(x, v) in &self.rset {
                if self.inner.values[x].load(Ordering::SeqCst) != v {
                    self.stats.aborts_validate += 1;
                    return Err(Abort);
                }
            }
            if self.inner.global.load(Ordering::SeqCst) == s {
                return Ok(s);
            }
        }
    }

    fn tx_read(&mut self, x: usize) -> Result<u64, Abort> {
        if let Ok(i) = self.wset.binary_search_by_key(&x, |&(r, _)| r) {
            return Ok(self.wset[i].1);
        }
        let mut v = self.inner.values[x].load(Ordering::SeqCst);
        while self.inner.global.load(Ordering::SeqCst) != self.snapshot {
            self.snapshot = self.validate()?;
            v = self.inner.values[x].load(Ordering::SeqCst);
        }
        self.rset.push((x, v));
        Ok(v)
    }

    fn tx_write(&mut self, x: usize, v: u64) -> Result<(), Abort> {
        match self.wset.binary_search_by_key(&x, |&(r, _)| r) {
            Ok(i) => self.wset[i].1 = v,
            Err(i) => self.wset.insert(i, (x, v)),
        }
        Ok(())
    }

    fn commit(&mut self) -> Result<(), Abort> {
        if self.wset.is_empty() {
            self.stats.commits += 1;
            return Ok(()); // read-only: the snapshot was always consistent
        }
        // Acquire the sequence lock from a validated snapshot.
        while self
            .inner
            .global
            .compare_exchange(
                self.snapshot,
                self.snapshot + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_err()
        {
            self.snapshot = self.validate()?;
        }
        for &(x, v) in &self.wset {
            self.inner.values[x].store(v, Ordering::SeqCst);
        }
        // Release: write-back completed before commit returns — the reason
        // NOrec has no delayed-commit window.
        self.inner.global.store(self.snapshot + 2, Ordering::SeqCst);
        self.stats.commits += 1;
        Ok(())
    }
}

struct NorecTx<'a>(&'a mut NorecHandle);

impl TxScope for NorecTx<'_> {
    fn read(&mut self, x: usize) -> Result<u64, Abort> {
        self.0.tx_read(x)
    }
    fn write(&mut self, x: usize, v: u64) -> Result<(), Abort> {
        self.0.tx_write(x, v)
    }
}

impl StmHandle for NorecHandle {
    fn atomic<R>(&mut self, mut body: impl FnMut(&mut dyn TxScope) -> Result<R, Abort>) -> R {
        loop {
            if let Ok(r) = self.try_atomic(&mut body) {
                return r;
            }
        }
    }

    fn try_atomic<R>(
        &mut self,
        mut body: impl FnMut(&mut dyn TxScope) -> Result<R, Abort>,
    ) -> Result<R, Abort> {
        self.begin();
        let attempt = {
            let mut tx = NorecTx(self);
            body(&mut tx)
        };
        match attempt {
            Ok(r) => {
                self.commit()?;
                Ok(r)
            }
            Err(Abort) => {
                self.stats.aborts_user += 1;
                Err(Abort)
            }
        }
    }

    fn read_direct(&mut self, x: usize) -> u64 {
        self.stats.direct_reads += 1;
        self.inner.values[x].load(Ordering::SeqCst)
    }

    fn write_direct(&mut self, x: usize, v: u64) {
        self.stats.direct_writes += 1;
        self.inner.values[x].store(v, Ordering::SeqCst);
    }

    /// NOrec is privatization-safe by design: no quiescence needed.
    fn fence(&mut self) {
        self.stats.fences += 1;
    }

    fn stats(&self) -> Stats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_commit() {
        let stm = NorecStm::new(2, 1);
        let mut h = stm.handle(0);
        let sum = h.atomic(|tx| {
            tx.write(0, 3)?;
            tx.write(1, 4)?;
            Ok(tx.read(0)? + tx.read(1)?)
        });
        assert_eq!(sum, 7);
        assert_eq!(stm.peek(0), 3);
    }

    #[test]
    fn concurrent_increments() {
        let stm = NorecStm::new(1, 4);
        std::thread::scope(|s| {
            for t in 0..4 {
                let stm = stm.clone();
                s.spawn(move || {
                    let mut h = stm.handle(t);
                    for _ in 0..1000 {
                        h.atomic(|tx| {
                            let v = tx.read(0)?;
                            tx.write(0, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(stm.peek(0), 4000);
    }

    #[test]
    fn audit_consistency() {
        const N: usize = 6;
        let stm = NorecStm::new(N, 3);
        {
            let mut h = stm.handle(0);
            h.atomic(|tx| {
                for a in 0..N {
                    tx.write(a, 100)?;
                }
                Ok(())
            });
        }
        std::thread::scope(|s| {
            for t in 0..2 {
                let stm = stm.clone();
                s.spawn(move || {
                    let mut h = stm.handle(t);
                    for i in 0..2000u64 {
                        let from = (i as usize + t) % N;
                        let to = (i as usize + t + 3) % N;
                        h.atomic(|tx| {
                            let a = tx.read(from)?;
                            let b = tx.read(to)?;
                            if from != to && a > 0 {
                                tx.write(from, a - 1)?;
                                tx.write(to, b + 1)?;
                            }
                            Ok(())
                        });
                    }
                });
            }
            let stm2 = stm.clone();
            s.spawn(move || {
                let mut h = stm2.handle(2);
                for _ in 0..500 {
                    let sum = h.atomic(|tx| {
                        let mut s = 0;
                        for a in 0..N {
                            s += tx.read(a)?;
                        }
                        Ok(s)
                    });
                    assert_eq!(sum, 600);
                }
            });
        });
    }

    #[test]
    fn privatization_without_fence_is_safe() {
        // Same stress as TL2's fenced test, but with no fence at all: NOrec
        // must still never lose the private write.
        let stm = NorecStm::new(2, 2);
        let rounds = 3000u64;
        std::thread::scope(|s| {
            let stm0 = stm.clone();
            let owner = s.spawn(move || {
                let mut h = stm0.handle(0);
                let mut lost = 0u64;
                for i in 1..=rounds {
                    h.atomic(|tx| tx.write(0, 1));
                    // no fence!
                    let marker = 0x8000_0000_0000_0000 | i;
                    h.write_direct(1, marker);
                    if h.read_direct(1) != marker {
                        lost += 1;
                    }
                    h.atomic(|tx| tx.write(0, 2));
                }
                lost
            });
            let stm1 = stm.clone();
            s.spawn(move || {
                let mut h = stm1.handle(1);
                for i in 1..=rounds {
                    h.atomic(|tx| {
                        let flag = tx.read(0)?;
                        if flag != 1 {
                            tx.write(1, i)?;
                        }
                        Ok(())
                    });
                }
            });
            assert_eq!(owner.join().unwrap(), 0, "NOrec lost a privatized write");
        });
    }
}
