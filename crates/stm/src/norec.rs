//! NOrec-style STM (Dalessandro, Spear, Scott — paper's related work \[10\])
//! as a [`Policy`] over the shared [`crate::runtime`]: a single global
//! sequence lock, value-based validation, no per-register ownership records.
//!
//! Included as the baseline that is *privatization-safe without fences*
//! (paper Sec 8): commits are serialized by the global lock and write-back
//! completes before the commit returns, so there is no delayed-commit
//! window; and any clock change forces readers to re-validate by value, so
//! doomed transactions abort instead of reading privatized data.
//! [`Policy::fence_mode`] is [`FenceMode::Immediate`] — `fence()` still
//! counts in [`crate::api::Stats`] and `fence_async()` returns an
//! already-resolved ticket, but nothing ever waits on the grace-period
//! engine, and no fence actions are recorded (a recorded fence would claim
//! a quiescence this TM does not perform).

use crate::api::Abort;
use crate::runtime::{FenceMode, Handle, Policy, PolicyKind, Stm, StmConfig, TxCtx};
use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tm_chaos::Site;

/// NOrec state shared by all handles: the global sequence lock
/// (even = stable, odd = a writer is committing).
pub struct NorecShared {
    global: CachePadded<AtomicU64>,
}

/// NOrec's [`PolicyKind`]. No lock table, so [`StmConfig::storage`] is
/// ignored.
pub struct NorecKind;

impl PolicyKind for NorecKind {
    type Policy = NorecPolicy;
    type Shared = NorecShared;

    fn build_shared(_cfg: &StmConfig) -> NorecShared {
        NorecShared {
            global: CachePadded::new(AtomicU64::new(0)),
        }
    }

    fn build_policy(shared: &Arc<NorecShared>) -> NorecPolicy {
        NorecPolicy {
            shared: Arc::clone(shared),
            snapshot: 0,
            rset: Vec::new(),
            wset: Vec::new(),
        }
    }
}

/// The shared NOrec instance.
pub type NorecStm = Stm<NorecKind>;

/// Per-thread NOrec context.
pub type NorecHandle = Handle<NorecPolicy>;

/// NOrec concurrency control: value-based validation under one global
/// sequence lock.
pub struct NorecPolicy {
    shared: Arc<NorecShared>,
    snapshot: u64,
    /// Value-based read set: (register, value observed).
    rset: Vec<(usize, u64)>,
    wset: Vec<(usize, u64)>,
}

impl NorecPolicy {
    /// Wait for an even (stable) global and return it.
    fn wait_even(&self) -> u64 {
        let backoff = crossbeam::utils::Backoff::new();
        loop {
            let g = self.shared.global.load(Ordering::SeqCst);
            if g.is_multiple_of(2) {
                return g;
            }
            backoff.snooze();
        }
    }

    /// Re-read the read set by value; abort if anything changed. On success,
    /// the snapshot is advanced to a stable clock at which the read set was
    /// re-confirmed.
    fn validate(&mut self, ctx: &mut TxCtx<'_>) -> Result<u64, Abort> {
        // A forced abort here is indistinguishable from the value check
        // below catching an intervening writer. Injection sites live only
        // where the sequence lock is *not* held by us: a fault inside the
        // odd window could wedge every `wait_even` spinner.
        if ctx.rt.chaos_abort(ctx.slot, Site::Validate) {
            ctx.stats.aborts_validate += 1;
            return Err(Abort);
        }
        loop {
            let s = self.wait_even();
            for &(x, v) in &self.rset {
                if ctx.rt.load(x) != v {
                    ctx.stats.aborts_validate += 1;
                    return Err(Abort);
                }
            }
            if self.shared.global.load(Ordering::SeqCst) == s {
                return Ok(s);
            }
        }
    }
}

impl Policy for NorecPolicy {
    fn begin(&mut self, _ctx: &mut TxCtx<'_>) {
        self.rset.clear();
        self.wset.clear();
        self.snapshot = self.wait_even();
    }

    fn read(&mut self, ctx: &mut TxCtx<'_>, x: usize) -> Result<u64, Abort> {
        if let Ok(i) = self.wset.binary_search_by_key(&x, |&(r, _)| r) {
            return Ok(self.wset[i].1);
        }
        let mut v = ctx.rt.load(x);
        while self.shared.global.load(Ordering::SeqCst) != self.snapshot {
            self.snapshot = self.validate(ctx)?;
            v = ctx.rt.load(x);
        }
        self.rset.push((x, v));
        Ok(v)
    }

    fn write(&mut self, _ctx: &mut TxCtx<'_>, x: usize, v: u64) -> Result<(), Abort> {
        match self.wset.binary_search_by_key(&x, |&(r, _)| r) {
            Ok(i) => self.wset[i].1 = v,
            Err(i) => self.wset.insert(i, (x, v)),
        }
        Ok(())
    }

    fn commit(&mut self, ctx: &mut TxCtx<'_>) -> Result<(), Abort> {
        if self.wset.is_empty() {
            return Ok(()); // read-only: the snapshot was always consistent
        }
        // A forced abort here is indistinguishable from losing the CAS race
        // below to a writer whose commit then invalidated our read set.
        if ctx.rt.chaos_abort(ctx.slot, Site::LockAcquire) {
            ctx.stats.aborts_lock += 1;
            return Err(Abort);
        }
        // Acquire the sequence lock from a validated snapshot.
        while self
            .shared
            .global
            .compare_exchange(
                self.snapshot,
                self.snapshot + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_err()
        {
            self.snapshot = self.validate(ctx)?;
        }
        for &(x, v) in &self.wset {
            ctx.rt.store(x, v);
        }
        // Release: write-back completed before commit returns — the reason
        // NOrec has no delayed-commit window.
        self.shared
            .global
            .store(self.snapshot + 2, Ordering::SeqCst);
        Ok(())
    }

    fn rollback(&mut self, _ctx: &mut TxCtx<'_>) {}

    /// NOrec is privatization-safe by design: fences need no quiescence,
    /// tickets resolve at issue, and no fence actions are recorded (a
    /// recorded fence would violate Def A.1's blocking clause whenever a
    /// transaction spans the call).
    fn fence_mode(&self) -> FenceMode {
        FenceMode::Immediate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::StmHandle;

    #[test]
    fn read_write_commit() {
        let stm = NorecStm::new(2, 1);
        let mut h = stm.handle(0);
        let sum = h.atomic(|tx| {
            tx.write(0, 3)?;
            tx.write(1, 4)?;
            Ok(tx.read(0)? + tx.read(1)?)
        });
        assert_eq!(sum, 7);
        assert_eq!(stm.peek(0), 3);
    }

    #[test]
    fn concurrent_increments() {
        let stm = NorecStm::new(1, 4);
        std::thread::scope(|s| {
            for t in 0..4 {
                let stm = stm.clone();
                s.spawn(move || {
                    let mut h = stm.handle(t);
                    for _ in 0..1000 {
                        h.atomic(|tx| {
                            let v = tx.read(0)?;
                            tx.write(0, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(stm.peek(0), 4000);
    }

    #[test]
    fn audit_consistency() {
        const N: usize = 6;
        let stm = NorecStm::new(N, 3);
        {
            let mut h = stm.handle(0);
            h.atomic(|tx| {
                for a in 0..N {
                    tx.write(a, 100)?;
                }
                Ok(())
            });
        }
        std::thread::scope(|s| {
            for t in 0..2 {
                let stm = stm.clone();
                s.spawn(move || {
                    let mut h = stm.handle(t);
                    for i in 0..2000u64 {
                        let from = (i as usize + t) % N;
                        let to = (i as usize + t + 3) % N;
                        h.atomic(|tx| {
                            let a = tx.read(from)?;
                            let b = tx.read(to)?;
                            if from != to && a > 0 {
                                tx.write(from, a - 1)?;
                                tx.write(to, b + 1)?;
                            }
                            Ok(())
                        });
                    }
                });
            }
            let stm2 = stm.clone();
            s.spawn(move || {
                let mut h = stm2.handle(2);
                for _ in 0..500 {
                    let sum = h.atomic(|tx| {
                        let mut s = 0;
                        for a in 0..N {
                            s += tx.read(a)?;
                        }
                        Ok(s)
                    });
                    assert_eq!(sum, 600);
                }
            });
        });
    }

    #[test]
    fn privatization_without_fence_is_safe() {
        // Same stress as TL2's fenced test, but with no fence at all: NOrec
        // must still never lose the private write.
        let stm = NorecStm::new(2, 2);
        let rounds = 3000u64;
        std::thread::scope(|s| {
            let stm0 = stm.clone();
            let owner = s.spawn(move || {
                let mut h = stm0.handle(0);
                let mut lost = 0u64;
                for i in 1..=rounds {
                    h.atomic(|tx| tx.write(0, 1));
                    // no fence!
                    let marker = 0x8000_0000_0000_0000 | i;
                    h.write_direct(1, marker);
                    if h.read_direct(1) != marker {
                        lost += 1;
                    }
                    h.atomic(|tx| tx.write(0, 2));
                }
                lost
            });
            let stm1 = stm.clone();
            s.spawn(move || {
                let mut h = stm1.handle(1);
                for i in 1..=rounds {
                    h.atomic(|tx| {
                        let flag = tx.read(0)?;
                        if flag != 1 {
                            tx.write(1, i)?;
                        }
                        Ok(())
                    });
                }
            });
            assert_eq!(owner.join().unwrap(), 0, "NOrec lost a privatized write");
        });
    }

    #[test]
    fn fence_is_nonblocking_with_active_peer() {
        // A NOrec fence must not wait for other threads' epochs.
        let stm = NorecStm::new(1, 2);
        // Force slot 1 to look "mid-transaction" from the epoch table's
        // perspective; a TL2-style fence would block forever here.
        stm.runtime().epochs().enter(1);
        let mut h = stm.handle(0);
        h.fence();
        assert_eq!(h.stats().fences, 1);
        // The async path resolves at issue, never touching the engine.
        let mut t = h.fence_async();
        assert!(t.is_resolved());
        assert_eq!(t.period(), None, "no grace period claimed");
        assert!(t.poll());
        h.fence_join(t);
        assert_eq!(h.stats().fences, 2);
        assert_eq!(h.stats().fence_wait_ns, 0, "no-op fences never block");
        assert_eq!(stm.runtime().grace().scans(), 0, "engine untouched");
        stm.runtime().epochs().exit(1);
    }
}
