//! A transactional hash map built on STM registers, with *privatized bulk
//! operations* — the paper's motivating pattern (Sec 1): access the same
//! data transactionally in the common case, and non-transactionally (after
//! privatization + fence) for bulk work like iteration, rehashing or
//! deallocation.
//!
//! Layout in the register file, starting at `base`:
//! `[freeze flag][slot 0 key][slot 0 val][slot 1 key][slot 1 val]…`
//! Open addressing with linear probing; key encodings: `0` = empty,
//! `1` = tombstone, user keys are shifted by [`KEY_BIAS`] — so the largest
//! storable key is [`MAX_KEY`], and larger keys are rejected (checked
//! encoding) rather than wrapped into the reserved values.
//!
//! Every transactional operation first reads the freeze flag and aborts if
//! the map is frozen; because the flag is in the read set, a concurrent
//! [`TxMap::freeze`] invalidates in-flight writers, and the fence inside `freeze`
//! waits them out — precisely the Fig 1(a) discipline. Bulk readers/writers
//! then use uninstrumented direct access safely.

use crate::api::{Abort, StmHandle, TxScope};
use crate::fence::FenceTicket;

const EMPTY: u64 = 0;
const TOMBSTONE: u64 = 1;
/// User keys are stored as `key + KEY_BIAS` to keep 0/1 reserved.
pub const KEY_BIAS: u64 = 2;
/// Largest storable user key. Keys are stored biased by [`KEY_BIAS`], so
/// the top [`KEY_BIAS`] values of the `u64` space are unrepresentable:
/// `MAX_KEY + 1` would wrap (or panic in debug) to the reserved
/// `TOMBSTONE`, `MAX_KEY + 2` to `EMPTY`, silently corrupting the table.
pub const MAX_KEY: u64 = u64::MAX - KEY_BIAS;

/// Checked key encoding: `None` for keys above [`MAX_KEY`] (debug builds
/// assert first — an out-of-range key is a caller bug, but release builds
/// must reject it instead of colliding with `EMPTY`/`TOMBSTONE`).
#[inline]
fn encode_key(key: u64) -> Option<u64> {
    debug_assert!(key <= MAX_KEY, "TxMap key {key:#x} exceeds MAX_KEY");
    (key <= MAX_KEY).then(|| key + KEY_BIAS)
}

/// Descriptor of a map living in an STM register region.
#[derive(Clone, Copy, Debug)]
pub struct TxMap {
    base: usize,
    cap: usize,
}

impl TxMap {
    /// A map over `2*cap + 1` registers starting at `base`.
    pub fn new(base: usize, cap: usize) -> Self {
        assert!(cap > 0);
        TxMap { base, cap }
    }

    /// Number of registers the map occupies.
    pub const fn regs_needed(cap: usize) -> usize {
        2 * cap + 1
    }

    /// Slot capacity of the map.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The slot `key` hashes to before probing — where a key lands when its
    /// home slot is free. Exposed so tests and litmus scenarios can build
    /// *collision-free* key sets (pairwise-distinct home slots), whose
    /// final layout is deterministic under any insertion order.
    pub fn home_slot(&self, key: u64) -> usize {
        self.hash(key)
    }

    fn flag_reg(&self) -> usize {
        self.base
    }
    fn key_reg(&self, slot: usize) -> usize {
        self.base + 1 + 2 * slot
    }
    fn val_reg(&self, slot: usize) -> usize {
        self.base + 2 + 2 * slot
    }

    fn hash(&self, key: u64) -> usize {
        // splitmix-style mix, reduced to capacity.
        let mut z = key.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        (z ^ (z >> 31)) as usize % self.cap
    }

    /// Abort if the map is currently frozen (bulk-owned); puts the flag in
    /// the read set so freezing invalidates us.
    fn check_open(&self, tx: &mut dyn TxScope) -> Result<(), Abort> {
        if tx.read(self.flag_reg())? != 0 {
            return Err(Abort);
        }
        Ok(())
    }

    /// Transactional lookup. Keys above [`MAX_KEY`] are never present:
    /// `Ok(None)` (debug builds assert).
    pub fn get(&self, tx: &mut dyn TxScope, key: u64) -> Result<Option<u64>, Abort> {
        // Freeze check first — even an unstorable key must observe the
        // module's frozen-map contract (abort, flag in the read set).
        self.check_open(tx)?;
        let Some(stored) = encode_key(key) else {
            return Ok(None);
        };
        let mut slot = self.hash(key);
        for _ in 0..self.cap {
            let k = tx.read(self.key_reg(slot))?;
            if k == EMPTY {
                return Ok(None);
            }
            if k == stored {
                return Ok(Some(tx.read(self.val_reg(slot))?));
            }
            slot = (slot + 1) % self.cap;
        }
        Ok(None)
    }

    /// Transactional insert-or-update. Returns `false` if the map is full
    /// — or if `key` exceeds [`MAX_KEY`] and is therefore unstorable
    /// (debug builds assert).
    pub fn insert(&self, tx: &mut dyn TxScope, key: u64, val: u64) -> Result<bool, Abort> {
        self.check_open(tx)?;
        let Some(stored) = encode_key(key) else {
            return Ok(false);
        };
        let mut slot = self.hash(key);
        let mut free: Option<usize> = None;
        for _ in 0..self.cap {
            let k = tx.read(self.key_reg(slot))?;
            if k == stored {
                tx.write(self.val_reg(slot), val)?;
                return Ok(true);
            }
            if k == TOMBSTONE && free.is_none() {
                free = Some(slot);
            }
            if k == EMPTY {
                let target = free.unwrap_or(slot);
                tx.write(self.key_reg(target), stored)?;
                tx.write(self.val_reg(target), val)?;
                return Ok(true);
            }
            slot = (slot + 1) % self.cap;
        }
        if let Some(target) = free {
            tx.write(self.key_reg(target), stored)?;
            tx.write(self.val_reg(target), val)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Transactional removal. Returns the removed value. Keys above
    /// [`MAX_KEY`] are never present: `Ok(None)` (debug builds assert).
    pub fn remove(&self, tx: &mut dyn TxScope, key: u64) -> Result<Option<u64>, Abort> {
        self.check_open(tx)?;
        let Some(stored) = encode_key(key) else {
            return Ok(None);
        };
        let mut slot = self.hash(key);
        for _ in 0..self.cap {
            let k = tx.read(self.key_reg(slot))?;
            if k == EMPTY {
                return Ok(None);
            }
            if k == stored {
                let v = tx.read(self.val_reg(slot))?;
                tx.write(self.key_reg(slot), TOMBSTONE)?;
                return Ok(Some(v));
            }
            slot = (slot + 1) % self.cap;
        }
        Ok(None)
    }

    /// Privatize the map for bulk work: set the freeze flag transactionally,
    /// then fence. After this returns, no transaction is operating on the
    /// map and new ones abort-and-retry until [`Self::thaw`]. Exactly
    /// [`Self::freeze_async`] followed by [`StmHandle::fence_join`].
    pub fn freeze<H: StmHandle>(&self, h: &mut H) {
        let ticket = self.freeze_async(h);
        h.fence_join(ticket);
    }

    /// Begin privatizing the map without blocking: set the freeze flag
    /// transactionally and return the fence ticket. Bulk (uninstrumented)
    /// access is only safe after the ticket resolves. Tickets issued by
    /// concurrent threads (one map each) coalesce behind one grace period.
    ///
    /// To batch several maps on *one* handle use [`freeze_all`] instead of
    /// calling this repeatedly: issuing another map's flag transaction
    /// while this ticket is outstanding makes recorded histories
    /// ill-formed (see [`crate::fence`]'s recording rules).
    pub fn freeze_async<H: StmHandle>(&self, h: &mut H) -> FenceTicket {
        let flag = self.flag_reg();
        h.atomic(|tx| tx.write(flag, 1));
        h.fence_async()
    }

    /// Publish the map back for transactional access (no fence needed:
    /// publication is safe by `xpo;txwr`, paper Fig 2).
    pub fn thaw<H: StmHandle>(&self, h: &mut H) {
        let flag = self.flag_reg();
        h.atomic(|tx| tx.write(flag, 0));
    }
}

/// Privatize several maps behind a *single* fence: set every freeze flag
/// first (one transaction per map), then wait one grace period out for all
/// of them — N map freezes for one epoch-table scan. This is the batched
/// pattern for one handle: every flag transaction completes before the
/// fence is requested, so recorded histories stay well-formed.
pub fn freeze_all<H: StmHandle>(maps: &[TxMap], h: &mut H) {
    let ticket = freeze_all_async(maps, h);
    h.fence_join(ticket);
}

/// Non-blocking form of [`freeze_all`]: set every freeze flag (one
/// transaction per map) and return the single fence ticket covering all
/// of them. Bulk (uninstrumented) access to *any* of the maps is only
/// safe after the ticket resolves. This is what a background
/// freeze/snapshot cycle wants — request the grace period, keep serving,
/// and join the ticket when the snapshot pass actually starts.
pub fn freeze_all_async<H: StmHandle>(maps: &[TxMap], h: &mut H) -> FenceTicket {
    for m in maps {
        let flag = m.flag_reg();
        h.atomic(|tx| tx.write(flag, 1));
    }
    h.fence_async()
}

impl TxMap {
    /// Bulk snapshot with uninstrumented reads. Only safe between
    /// [`Self::freeze`] and [`Self::thaw`] on the same handle.
    pub fn iter_frozen<H: StmHandle>(&self, h: &mut H) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for slot in 0..self.cap {
            let k = h.read_direct(self.key_reg(slot));
            if k >= KEY_BIAS {
                out.push((k - KEY_BIAS, h.read_direct(self.val_reg(slot))));
            }
        }
        out
    }

    /// Bulk rebuild (compaction: drops tombstones) with uninstrumented
    /// accesses. Only safe while frozen.
    pub fn compact_frozen<H: StmHandle>(&self, h: &mut H) {
        let entries = self.iter_frozen(h);
        for slot in 0..self.cap {
            h.write_direct(self.key_reg(slot), EMPTY);
        }
        for (k, v) in entries {
            let stored = k + KEY_BIAS;
            let mut slot = self.hash(k);
            loop {
                if h.read_direct(self.key_reg(slot)) == EMPTY {
                    h.write_direct(self.key_reg(slot), stored);
                    h.write_direct(self.val_reg(slot), v);
                    break;
                }
                slot = (slot + 1) % self.cap;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tl2::Tl2Stm;

    fn map_and_stm(cap: usize, threads: usize) -> (TxMap, Tl2Stm) {
        let m = TxMap::new(0, cap);
        (m, Tl2Stm::new(TxMap::regs_needed(cap), threads))
    }

    #[test]
    fn insert_get_remove() {
        let (m, stm) = map_and_stm(8, 1);
        let mut h = stm.handle(0);
        h.atomic(|tx| {
            assert_eq!(m.get(tx, 10)?, None);
            assert!(m.insert(tx, 10, 100)?);
            assert!(m.insert(tx, 20, 200)?);
            assert_eq!(m.get(tx, 10)?, Some(100));
            assert_eq!(m.get(tx, 20)?, Some(200));
            assert_eq!(m.remove(tx, 10)?, Some(100));
            assert_eq!(m.get(tx, 10)?, None);
            Ok(())
        });
    }

    /// Regression for the key-encoding overflow: `key + KEY_BIAS` used to
    /// wrap for keys ≥ `u64::MAX - 1` (panic in debug), silently colliding
    /// with the reserved EMPTY/TOMBSTONE encodings. MAX_KEY itself must
    /// round-trip (its stored form is exactly `u64::MAX`); anything above
    /// is rejected by the checked encoding.
    #[test]
    fn max_key_roundtrips_and_overflowing_keys_are_rejected() {
        assert_eq!(MAX_KEY, u64::MAX - KEY_BIAS);
        let (m, stm) = map_and_stm(8, 1);
        let mut h = stm.handle(0);
        h.atomic(|tx| {
            assert!(m.insert(tx, MAX_KEY, 1)?, "MAX_KEY must be storable");
            assert_eq!(m.get(tx, MAX_KEY)?, Some(1));
            assert_eq!(m.remove(tx, MAX_KEY)?, Some(1));
            assert_eq!(m.get(tx, MAX_KEY)?, None);
            Ok(())
        });
        // Out-of-range keys: rejected in release, debug_assert in debug.
        // Exercise the release path behind catch_unwind so the test is
        // meaningful under both profiles.
        for bad in [MAX_KEY + 1, u64::MAX] {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let (m, stm) = map_and_stm(8, 1);
                let mut h = stm.handle(0);
                h.atomic(|tx| {
                    assert!(!m.insert(tx, bad, 9)?, "unstorable key accepted");
                    assert_eq!(m.get(tx, bad)?, None);
                    assert_eq!(m.remove(tx, bad)?, None);
                    // The reserved encodings stay untouched: nothing was
                    // written, so every slot still reads EMPTY.
                    for slot in 0..8 {
                        assert_eq!(tx.read(1 + 2 * slot)?, EMPTY);
                    }
                    Ok(())
                });
            }));
            if cfg!(debug_assertions) {
                assert!(r.is_err(), "debug builds must assert on key {bad:#x}");
            } else {
                assert!(r.is_ok(), "release builds must reject key {bad:#x}");
            }
        }
    }

    #[test]
    fn update_in_place() {
        let (m, stm) = map_and_stm(4, 1);
        let mut h = stm.handle(0);
        h.atomic(|tx| {
            m.insert(tx, 5, 1)?;
            m.insert(tx, 5, 2)?;
            assert_eq!(m.get(tx, 5)?, Some(2));
            Ok(())
        });
    }

    #[test]
    fn collisions_and_tombstone_reuse() {
        let (m, stm) = map_and_stm(4, 1);
        let mut h = stm.handle(0);
        h.atomic(|tx| {
            // Fill the map completely — forces probing over collisions.
            for k in 0..4u64 {
                assert!(m.insert(tx, k, k * 10)?);
            }
            assert!(!m.insert(tx, 99, 1)?, "full map rejects");
            // Remove one, insert into the tombstone.
            assert_eq!(m.remove(tx, 2)?, Some(20));
            assert!(m.insert(tx, 99, 990)?);
            assert_eq!(m.get(tx, 99)?, Some(990));
            // Keys behind the tombstone are still reachable.
            for k in [0u64, 1, 3] {
                assert_eq!(m.get(tx, k)?, Some(k * 10));
            }
            Ok(())
        });
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let (m, stm) = map_and_stm(128, 4);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let stm = stm.clone();
                s.spawn(move || {
                    let mut h = stm.handle(t as usize);
                    for i in 0..16u64 {
                        let key = t * 100 + i;
                        h.atomic(|tx| m.insert(tx, key, key * 2).map(|_| ()));
                    }
                });
            }
        });
        let mut h = stm.handle(0);
        h.atomic(|tx| {
            for t in 0..4u64 {
                for i in 0..16u64 {
                    let key = t * 100 + i;
                    assert_eq!(m.get(tx, key)?, Some(key * 2), "key {key}");
                }
            }
            Ok(())
        });
    }

    /// Freezing several maps batched behind one fence: all flag
    /// transactions complete first, then one grace period covers them all.
    #[test]
    fn batched_map_freezes_share_one_scan() {
        let maps: Vec<TxMap> = (0..3)
            .map(|i| TxMap::new(i * TxMap::regs_needed(8), 8))
            .collect();
        // Pinned cooperative: the exact-scan assertion needs no background
        // driver closing the period between the freezes' ticket issues.
        let stm = Tl2Stm::with_config(
            crate::runtime::StmConfig::new(3 * TxMap::regs_needed(8), 1)
                .grace_driver(crate::runtime::DriverMode::Cooperative),
        );
        let mut h = stm.handle(0);
        for (i, m) in maps.iter().enumerate() {
            h.atomic(|tx| m.insert(tx, 1, 10 + i as u64).map(|_| ()));
        }
        freeze_all(&maps, &mut h);
        assert_eq!(
            stm.runtime().grace().scans(),
            1,
            "3 map freezes must share one epoch-table scan"
        );
        assert_eq!(h.stats().fences, 1);
        for (i, m) in maps.iter().enumerate() {
            assert_eq!(m.iter_frozen(&mut h), vec![(1, 10 + i as u64)]);
            m.thaw(&mut h);
        }
    }

    /// The non-blocking batched freeze: the ticket is issued after every
    /// flag transaction, the handle keeps working while it is
    /// outstanding, and joining it makes bulk access safe — still one
    /// epoch-table scan for all maps.
    #[test]
    fn freeze_all_async_returns_one_joinable_ticket() {
        let maps: Vec<TxMap> = (0..2)
            .map(|i| TxMap::new(i * TxMap::regs_needed(8), 8))
            .collect();
        let stm = Tl2Stm::with_config(
            crate::runtime::StmConfig::new(2 * TxMap::regs_needed(8), 1)
                .grace_driver(crate::runtime::DriverMode::Cooperative),
        );
        let mut h = stm.handle(0);
        for (i, m) in maps.iter().enumerate() {
            h.atomic(|tx| m.insert(tx, 7, 70 + i as u64).map(|_| ()));
        }
        let ticket = freeze_all_async(&maps, &mut h);
        // The fence is requested but not yet waited on: the handle still
        // serves transactions against unfrozen state elsewhere.
        h.fence_join(ticket);
        assert_eq!(
            stm.runtime().grace().scans(),
            1,
            "2 async map freezes must share one epoch-table scan"
        );
        for (i, m) in maps.iter().enumerate() {
            assert_eq!(m.iter_frozen(&mut h), vec![(7, 70 + i as u64)]);
            m.thaw(&mut h);
        }
    }

    #[test]
    fn freeze_iter_compact_thaw_under_contention() {
        let (m, stm) = map_and_stm(64, 3);
        // Seed.
        {
            let mut h = stm.handle(0);
            for k in 0..10u64 {
                h.atomic(|tx| m.insert(tx, k, k).map(|_| ()));
            }
        }
        std::thread::scope(|s| {
            // Two mutators continuously inserting/removing their own keys.
            for t in 1..3u64 {
                let stm = stm.clone();
                s.spawn(move || {
                    let mut h = stm.handle(t as usize);
                    for i in 0..300u64 {
                        let key = 1000 * t + (i % 8);
                        h.atomic(|tx| m.insert(tx, key, i).map(|_| ()));
                        if i % 3 == 0 {
                            h.atomic(|tx| m.remove(tx, key).map(|_| ()));
                        }
                    }
                });
            }
            // Owner: periodic freeze → snapshot → compact → thaw.
            let mut h = stm.handle(0);
            for _ in 0..20 {
                m.freeze(&mut h);
                let snap = m.iter_frozen(&mut h);
                // Seeded keys must always be present in every snapshot.
                for k in 0..10u64 {
                    assert!(
                        snap.iter().any(|&(key, v)| key == k && v == k),
                        "seeded key {k} missing from frozen snapshot"
                    );
                }
                m.compact_frozen(&mut h);
                m.thaw(&mut h);
            }
        });
        // After everything: seeded keys intact.
        let mut h = stm.handle(0);
        h.atomic(|tx| {
            for k in 0..10u64 {
                assert_eq!(m.get(tx, k)?, Some(k));
            }
            Ok(())
        });
    }
}
