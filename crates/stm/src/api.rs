//! The public STM interface shared by all implementations.

use crate::fence::{FenceTicket, FenceTimeout};
use std::fmt;
use std::time::Duration;

/// A transaction attempt was aborted (conflict, validation failure, or an
/// explicit user abort). The enclosing `atomic` retries; `try_atomic`
/// surfaces it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Abort;

impl fmt::Display for Abort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("transaction aborted")
    }
}

impl std::error::Error for Abort {}

/// Operations available inside a transaction body.
pub trait TxScope {
    /// Transactional read of register `x`.
    fn read(&mut self, x: usize) -> Result<u64, Abort>;
    /// Transactional write of register `x`.
    fn write(&mut self, x: usize, v: u64) -> Result<(), Abort>;
}

/// A per-thread STM handle. Handles are `Send` but not `Sync`: one handle
/// per thread, typically used with `std::thread::scope`.
pub trait StmHandle {
    /// Run `body` as a transaction, retrying until it commits. The body must
    /// propagate `Abort` errors from reads/writes (use `?`).
    fn atomic<R>(&mut self, body: impl FnMut(&mut dyn TxScope) -> Result<R, Abort>) -> R;

    /// Run `body` as a single transaction attempt.
    fn try_atomic<R>(
        &mut self,
        body: impl FnMut(&mut dyn TxScope) -> Result<R, Abort>,
    ) -> Result<R, Abort>;

    /// Uninstrumented non-transactional read. Only safe (strongly atomic)
    /// for data-race free usage per the paper's discipline.
    fn read_direct(&mut self, x: usize) -> u64;

    /// Uninstrumented non-transactional write.
    fn write_direct(&mut self, x: usize, v: u64);

    /// Asynchronous transactional fence: request the fence and return a
    /// ticket immediately. The ticket resolves once every transaction
    /// active at the request has committed or aborted; tickets issued while
    /// the same grace period is open — by any thread — are *batched* behind
    /// one epoch-table scan. See [`crate::fence`] for the recording rules
    /// that apply while a ticket is outstanding.
    fn fence_async(&mut self) -> FenceTicket;

    /// Wait a fence ticket out on this handle, charging the blocked time to
    /// [`Stats::fence_wait_ns`].
    fn fence_join(&mut self, ticket: FenceTicket);

    /// [`Self::fence_join`], bounded: give up after `timeout`, returning a
    /// [`FenceTimeout`] that names every epoch slot the grace scan is
    /// pinned on (when the stall detector has seen them). The ticket stays
    /// with the caller and remains pending — re-wait it, poll it, or hand
    /// it to [`FenceTicket::on_complete`]; dropping it still blocks until
    /// the grace period elapses.
    ///
    /// **Never wait a fence out from inside a transaction** (neither this
    /// method nor [`Self::fence_join`]): the grace period waits for every
    /// active transaction, including the waiter's own, so the wait can only
    /// end by timing out — and the stall detector will eventually name the
    /// waiting slot itself as the offender.
    ///
    /// Blocked time is charged to [`Stats::fence_wait_ns`] whether or not
    /// the wait times out; stalled slots surfaced by a timeout are counted
    /// in [`Stats::stalls_detected`].
    fn fence_join_timeout(
        &mut self,
        ticket: &mut FenceTicket,
        timeout: Duration,
    ) -> Result<(), FenceTimeout>;

    /// Transactional fence: blocks until every transaction active at the
    /// call has committed or aborted (paper Fig 7 lines 33–39). Exactly
    /// [`Self::fence_async`] followed by [`Self::fence_join`].
    fn fence(&mut self) {
        let ticket = self.fence_async();
        self.fence_join(ticket);
    }

    /// Statistics accumulated by this handle.
    fn stats(&self) -> Stats;
}

/// A shared STM instance that can mint per-thread handles — the common
/// construction surface of every backend, so cross-backend drivers
/// (conformance suites, benchmarks) can be written once.
pub trait StmFactory: Clone + Send + Sync + 'static {
    /// The per-thread handle type this instance mints.
    type Handle: StmHandle + Send;

    /// A handle bound to thread slot `slot`.
    fn handle(&self, slot: usize) -> Self::Handle;

    /// Current register value (unsynchronized snapshot; test/report helper).
    fn peek(&self, x: usize) -> u64;
}

/// Per-handle statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborts during read validation.
    pub aborts_read: u64,
    /// Aborts acquiring commit locks.
    pub aborts_lock: u64,
    /// Aborts during commit-time (re)validation.
    pub aborts_validate: u64,
    /// Aborts requested by the transaction body.
    pub aborts_user: u64,
    /// Fences requested (synchronous or asynchronous).
    pub fences: u64,
    /// Nanoseconds spent blocked waiting fences out (`fence` /
    /// `fence_join`). Time between `fence_async` and the join — the overlap
    /// an asynchronous fence buys — is deliberately not counted.
    ///
    /// `fence_join` feeds each joined wait to this counter *and* to the
    /// telemetry fence-wait latency histogram
    /// ([`tm_telemetry::LatencyClass::FenceWait`]), so with telemetry
    /// enabled the counter equals that histogram's
    /// [`sum`](tm_telemetry::LatencyHistogram::sum) — this counter is the
    /// total, the histogram its distribution (asserted in the merge tests).
    pub fence_wait_ns: u64,
    /// Uninstrumented non-transactional reads.
    pub direct_reads: u64,
    /// Uninstrumented non-transactional writes.
    pub direct_writes: u64,
    /// Attempts re-run by the shared `atomic` retry loop (one per abort it
    /// swallowed).
    pub retries: u64,
    /// Nanoseconds spent in the retry loop's exponential backoff.
    pub backoff_ns: u64,
    /// Writes to the shared version-clock cache line (GV1: one per writing
    /// commit; GV4: one per *won* CAS, adopters are free; GV5: only reader
    /// refreshes after a trailing-`rv` false abort — zero on disjoint-write
    /// workloads). The serialization cost the clock backends trade against.
    pub clock_bumps: u64,
    /// Writing commits that skipped commit-time read-set re-validation
    /// because the clock proved no concurrent commit intervened
    /// (`wver == rv + 1` via an exclusive bump — see [`crate::clock`]).
    pub validation_elisions: u64,
    /// Aborts classified as *false conflicts*: the failing stripe's last
    /// committed writer was a different register than the aborting one, so
    /// the two registers merely share a lock word (striped storage only —
    /// per-register tables never produce them). The signal the adaptive
    /// table's growth policy feeds on; see [`crate::storage`].
    pub false_conflicts: u64,
    /// Adaptive-table generations this handle published (each one doubles
    /// the stripe count and opens a grace-period-bounded migration window).
    pub stripe_resizes: u64,
    /// Stripe count of the lock table this handle's latest transaction ran
    /// against — a *gauge*, not a counter: [`Stats::merge`] keeps the
    /// maximum, so a merged view reports the largest table any handle saw.
    pub current_stripes: u64,
    /// Commits whose write set was empty. Together with
    /// [`Stats::write_commits`] this is the read/write mix the contention
    /// governor feeds on when choosing a version-clock discipline.
    pub read_only_commits: u64,
    /// Commits that installed at least one write.
    pub write_commits: u64,
    /// Clock-discipline switches (GV1 ↔ GV5) this handle's governor fold
    /// requested on the shared auto clock; each one opens a grace-fenced
    /// handoff window. See [`crate::clock`].
    pub clock_switches: u64,
    /// Panics that unwound out of a transaction body or commit on this
    /// handle. Each one was intercepted, rolled back (locks released, epoch
    /// slot exited, abort recorded with
    /// [`tm_telemetry::AbortCause::Panic`]), and resumed.
    pub panics_unwound: u64,
    /// Retry-budget exhaustions that escalated this handle to irrevocable
    /// serial mode (the runtime-wide escalation token). See
    /// [`crate::runtime::RetryPolicy`].
    pub escalations: u64,
    /// Stalled epoch slots surfaced to this handle by timed-out fence
    /// waits ([`StmHandle::fence_join_timeout`]) — each one a thread parked
    /// (or dead) inside a transaction past the engine's stall threshold.
    pub stalls_detected: u64,
}

impl Stats {
    /// Total aborts of every kind.
    pub fn aborts_total(&self) -> u64 {
        self.aborts_read + self.aborts_lock + self.aborts_validate + self.aborts_user
    }

    /// Accumulate `o` into `self` (counters add; gauges — `current_stripes` — merge by max).
    pub fn merge(&mut self, o: &Stats) {
        self.commits += o.commits;
        self.aborts_read += o.aborts_read;
        self.aborts_lock += o.aborts_lock;
        self.aborts_validate += o.aborts_validate;
        self.aborts_user += o.aborts_user;
        self.fences += o.fences;
        self.fence_wait_ns += o.fence_wait_ns;
        self.direct_reads += o.direct_reads;
        self.direct_writes += o.direct_writes;
        self.retries += o.retries;
        self.backoff_ns += o.backoff_ns;
        self.clock_bumps += o.clock_bumps;
        self.validation_elisions += o.validation_elisions;
        self.false_conflicts += o.false_conflicts;
        self.stripe_resizes += o.stripe_resizes;
        // Gauge, not counter: the merged view reports the largest table any
        // of the merged handles ran against.
        self.current_stripes = self.current_stripes.max(o.current_stripes);
        self.read_only_commits += o.read_only_commits;
        self.write_commits += o.write_commits;
        self.clock_switches += o.clock_switches;
        self.panics_unwound += o.panics_unwound;
        self.escalations += o.escalations;
        self.stalls_detected += o.stalls_detected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_and_totals() {
        let mut a = Stats {
            commits: 1,
            aborts_read: 2,
            retries: 3,
            backoff_ns: 100,
            fences: 2,
            fence_wait_ns: 40,
            clock_bumps: 5,
            validation_elisions: 1,
            false_conflicts: 2,
            stripe_resizes: 1,
            current_stripes: 64,
            ..Default::default()
        };
        let b = Stats {
            commits: 3,
            aborts_lock: 4,
            aborts_user: 1,
            retries: 5,
            backoff_ns: 900,
            fences: 1,
            fence_wait_ns: 60,
            clock_bumps: 7,
            validation_elisions: 2,
            false_conflicts: 3,
            stripe_resizes: 2,
            current_stripes: 16,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.commits, 4);
        assert_eq!(a.aborts_total(), 7);
        assert_eq!(a.retries, 8);
        assert_eq!(a.backoff_ns, 1000);
        assert_eq!(a.fences, 3);
        assert_eq!(a.fence_wait_ns, 100);
        assert_eq!(a.clock_bumps, 12);
        assert_eq!(a.validation_elisions, 3);
        assert_eq!(a.false_conflicts, 5, "false conflicts accumulate");
        assert_eq!(a.stripe_resizes, 3, "resizes accumulate");
        assert_eq!(a.current_stripes, 64, "stripe gauge merges by max");
    }

    /// The merge-forgets-new-field bug class: merging a default with `x`
    /// must reproduce `x` exactly, whatever fields `Stats` grows. Any field
    /// a future PR adds but forgets in `merge` fails the equality.
    #[test]
    fn merge_into_default_is_identity() {
        let x = Stats {
            commits: 1,
            aborts_read: 2,
            aborts_lock: 3,
            aborts_validate: 4,
            aborts_user: 5,
            fences: 6,
            fence_wait_ns: 7,
            direct_reads: 8,
            direct_writes: 9,
            retries: 10,
            backoff_ns: 11,
            clock_bumps: 12,
            validation_elisions: 13,
            false_conflicts: 14,
            stripe_resizes: 15,
            current_stripes: 16,
            read_only_commits: 17,
            write_commits: 18,
            clock_switches: 19,
            panics_unwound: 20,
            escalations: 21,
            stalls_detected: 22,
        };
        let mut acc = Stats::default();
        acc.merge(&x);
        assert_eq!(acc, x, "Stats::merge must cover every field");
    }

    #[test]
    fn abort_displays() {
        assert_eq!(Abort.to_string(), "transaction aborted");
    }
}
