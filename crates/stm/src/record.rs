//! History recording for the concurrent STMs: every TM interface action is
//! logged with a global sequence number drawn at the moment of the action,
//! yielding a linearized `tm-core` history that the offline checkers (DRF,
//! strong opacity) consume.
//!
//! The recorder is optional and designed to perturb executions as little as
//! possible: per-thread buffers, one shared fetch-and-add for ordering.
//!
//! Caveat (documented in DESIGN.md): for two *concurrent* non-transactional
//! accesses to the same register the recorded order may disagree with the
//! physical access order within a nanosecond-scale window. Such pairs only
//! arise in racy programs, which the checkers are not required to justify.

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tm_core::action::{Action, Kind};
use tm_core::ids::ThreadId;
use tm_core::trace::History;

/// A concurrent history recorder for `nthreads` slots.
pub struct Recorder {
    seq: CachePadded<AtomicU64>,
    logs: Vec<Mutex<Vec<(u64, Kind)>>>,
}

impl Recorder {
    pub fn new(nthreads: usize) -> Self {
        Recorder {
            seq: CachePadded::new(AtomicU64::new(0)),
            logs: (0..nthreads).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Record one action for thread slot `t`. The global order of actions is
    /// the order of their sequence numbers.
    #[inline]
    pub fn record(&self, t: usize, kind: Kind) {
        let s = self.seq.fetch_add(1, Ordering::SeqCst);
        self.logs[t].lock().unwrap().push((s, kind));
    }

    /// Number of actions recorded so far.
    pub fn len(&self) -> usize {
        self.seq.load(Ordering::SeqCst) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merge per-thread logs into a single history ordered by sequence
    /// number; action ids are the sequence numbers.
    pub fn snapshot_history(&self) -> History {
        let mut all: Vec<(u64, usize, Kind)> = Vec::with_capacity(self.len());
        for (t, log) in self.logs.iter().enumerate() {
            for &(s, k) in log.lock().unwrap().iter() {
                all.push((s, t, k));
            }
        }
        all.sort_unstable_by_key(|&(s, _, _)| s);
        History::new(
            all.into_iter()
                .map(|(s, t, k)| Action::new(s, ThreadId(t as u32), k))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::ids::Reg;

    #[test]
    fn single_thread_order() {
        let r = Recorder::new(1);
        r.record(0, Kind::TxBegin);
        r.record(0, Kind::Ok);
        r.record(0, Kind::TxCommit);
        r.record(0, Kind::Committed);
        let h = r.snapshot_history();
        assert_eq!(h.len(), 4);
        assert_eq!(h.actions()[0].kind, Kind::TxBegin);
        assert_eq!(h.actions()[3].kind, Kind::Committed);
        assert_eq!(h.validate(), Ok(()));
    }

    #[test]
    fn multi_thread_merge_respects_seq() {
        let r = Recorder::new(2);
        r.record(0, Kind::Read(Reg(0)));
        r.record(1, Kind::TxBegin);
        r.record(0, Kind::RetVal(0));
        r.record(1, Kind::Ok);
        let h = r.snapshot_history();
        let kinds: Vec<Kind> = h.actions().iter().map(|a| a.kind).collect();
        assert_eq!(
            kinds,
            vec![Kind::Read(Reg(0)), Kind::TxBegin, Kind::RetVal(0), Kind::Ok]
        );
    }

    #[test]
    fn concurrent_recording_produces_valid_history() {
        use std::sync::Arc;
        let r = Arc::new(Recorder::new(4));
        let mut handles = Vec::new();
        for t in 0..4 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    r.record(t, Kind::TxBegin);
                    r.record(t, Kind::Ok);
                    r.record(t, Kind::Write(Reg(0), ((t as u64) << 32) | (i + 1)));
                    r.record(t, Kind::RetUnit);
                    r.record(t, Kind::TxCommit);
                    r.record(t, Kind::Committed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let h = r.snapshot_history();
        assert_eq!(h.len(), 4 * 100 * 6);
        assert_eq!(h.validate(), Ok(()));
    }
}
