//! History recording for the concurrent STMs: every TM interface action is
//! logged with a global sequence number drawn at the moment of the action,
//! yielding a linearized `tm-core` history that the offline checkers (DRF,
//! strong opacity) consume.
//!
//! The recorder is optional and designed to perturb executions as little as
//! possible: per-thread buffers, one shared fetch-and-add for ordering.
//!
//! ## Cross-thread recording into one slot
//!
//! A slot's log is normally appended to by its own thread, but not always:
//! a [`crate::fence::FenceTicket::on_complete`] resolution records the
//! issuing slot's `FEnd` from whichever thread completes the grace period
//! (under a background driver, the driver thread). Audit of that use:
//!
//! * **Safety** — [`Recorder::record`] is fully thread-safe for any
//!   `(thread, slot)` combination: the global counter is a single
//!   `fetch_add` and each slot's vector is guarded by its own mutex.
//! * **Ordering** — concurrent recorders may *push* into one slot's vector
//!   out of sequence-number order (the fetch_add and the push are not one
//!   atomic step), which is why [`Recorder::snapshot_history`] orders by
//!   sequence number globally and never relies on vector position.
//! * **The caller's obligation** is semantic, not memory-safety: the
//!   issuing slot must not record new actions until the completion
//!   callback has been observed (the `FEnd` is recorded strictly before
//!   the callback runs), or a `TxBegin` could draw a sequence number
//!   before the `FEnd` and the history would be ill-formed. See
//!   [`crate::fence`].
//! * **Snapshots** are for quiescence: a `snapshot_history` taken while a
//!   `record` is between its fetch_add and its push can miss that action
//!   (its sequence number exists, the push is not yet visible).
//!
//! Caveat (documented in DESIGN.md): for two *concurrent* non-transactional
//! accesses to the same register the recorded order may disagree with the
//! physical access order within a nanosecond-scale window. Such pairs only
//! arise in racy programs, which the checkers are not required to justify.

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tm_core::action::{Action, Kind};
use tm_core::ids::ThreadId;
use tm_core::trace::History;

/// A concurrent history recorder for `nthreads` slots.
pub struct Recorder {
    seq: CachePadded<AtomicU64>,
    logs: Vec<Mutex<Vec<(u64, Kind)>>>,
}

impl Recorder {
    /// A recorder with one log per thread slot.
    pub fn new(nthreads: usize) -> Self {
        Recorder {
            seq: CachePadded::new(AtomicU64::new(0)),
            logs: (0..nthreads).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Record one action for thread slot `t`. The global order of actions is
    /// the order of their sequence numbers.
    ///
    /// Safe from any thread, including a thread other than slot `t`'s
    /// owner (the cross-thread `FEnd` path — see the module docs for the
    /// audit and the ordering obligation that comes with it).
    #[inline]
    pub fn record(&self, t: usize, kind: Kind) {
        let s = self.seq.fetch_add(1, Ordering::SeqCst);
        self.logs[t].lock().unwrap().push((s, kind));
    }

    /// Record a request/response pair as *globally adjacent* actions: both
    /// sequence numbers are drawn with one `fetch_add(2)`, so no concurrent
    /// [`Self::record`] can land between them. Non-transactional accesses
    /// need this — Def A.1 clause 7 requires a direct access's response to
    /// immediately follow its request in the global order, and a direct
    /// access really is one machine op (the request/response framing is a
    /// modelling artifact). Recording them with two separate `record` calls
    /// makes clause 7 a race: any action another thread records inside the
    /// two-call window lands between the pair and the history is rejected
    /// with `NonAtomicNtxAccess` — a once-in-many-runs conformance flake
    /// under load, fixed here.
    #[inline]
    pub fn record_pair(&self, t: usize, req: Kind, resp: Kind) {
        let s = self.seq.fetch_add(2, Ordering::SeqCst);
        let mut log = self.logs[t].lock().unwrap();
        log.push((s, req));
        log.push((s + 1, resp));
    }

    /// Number of actions recorded so far.
    pub fn len(&self) -> usize {
        self.seq.load(Ordering::SeqCst) as usize
    }

    /// Has nothing been recorded yet?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merge per-thread logs into a single history ordered by sequence
    /// number; action ids are the sequence numbers.
    pub fn snapshot_history(&self) -> History {
        let mut all: Vec<(u64, usize, Kind)> = Vec::with_capacity(self.len());
        for (t, log) in self.logs.iter().enumerate() {
            for &(s, k) in log.lock().unwrap().iter() {
                all.push((s, t, k));
            }
        }
        all.sort_unstable_by_key(|&(s, _, _)| s);
        History::new(
            all.into_iter()
                .map(|(s, t, k)| Action::new(s, ThreadId(t as u32), k))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::ids::Reg;

    #[test]
    fn single_thread_order() {
        let r = Recorder::new(1);
        r.record(0, Kind::TxBegin);
        r.record(0, Kind::Ok);
        r.record(0, Kind::TxCommit);
        r.record(0, Kind::Committed);
        let h = r.snapshot_history();
        assert_eq!(h.len(), 4);
        assert_eq!(h.actions()[0].kind, Kind::TxBegin);
        assert_eq!(h.actions()[3].kind, Kind::Committed);
        assert_eq!(h.validate(), Ok(()));
    }

    #[test]
    fn multi_thread_merge_respects_seq() {
        let r = Recorder::new(2);
        r.record(0, Kind::Read(Reg(0)));
        r.record(1, Kind::TxBegin);
        r.record(0, Kind::RetVal(0));
        r.record(1, Kind::Ok);
        let h = r.snapshot_history();
        let kinds: Vec<Kind> = h.actions().iter().map(|a| a.kind).collect();
        assert_eq!(
            kinds,
            vec![Kind::Read(Reg(0)), Kind::TxBegin, Kind::RetVal(0), Kind::Ok]
        );
    }

    /// Cross-thread recording into ONE slot (the on_complete `FEnd` shape):
    /// many threads hammer slot 0 concurrently; the merged snapshot must
    /// contain every action exactly once, in strictly increasing sequence
    /// order, regardless of the order the pushes landed in the slot's
    /// vector.
    #[test]
    fn concurrent_same_slot_records_merge_in_seq_order() {
        use std::sync::Arc;
        let r = Arc::new(Recorder::new(1));
        let per_thread = 200u64;
        let nthreads = 4u64;
        std::thread::scope(|s| {
            for t in 0..nthreads {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..per_thread {
                        // Unique payloads so the count check below can
                        // detect lost or duplicated records.
                        r.record(0, Kind::RetVal((t << 32) | i));
                    }
                });
            }
        });
        let h = r.snapshot_history();
        assert_eq!(h.len(), (nthreads * per_thread) as usize, "no record lost");
        let ids: Vec<u64> = h.actions().iter().map(|a| a.id.0).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "global seq order");
        let mut payloads: Vec<u64> = h
            .actions()
            .iter()
            .map(|a| match a.kind {
                Kind::RetVal(v) => v,
                k => panic!("unexpected kind {k:?}"),
            })
            .collect();
        payloads.sort_unstable();
        payloads.dedup();
        assert_eq!(payloads.len(), (nthreads * per_thread) as usize);
    }

    /// Clause-7 regression: a non-transactional request/response recorded
    /// via [`Recorder::record_pair`] stays *globally adjacent* no matter
    /// how much another thread records concurrently. (Recording the pair
    /// as two separate `record` calls makes this test — and, rarely, the
    /// conformance suite on direct-access scenarios — fail with an action
    /// interleaved between request and response.)
    #[test]
    fn record_pair_is_globally_adjacent_under_concurrent_traffic() {
        use std::sync::Arc;
        let r = Arc::new(Recorder::new(2));
        std::thread::scope(|s| {
            {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    // A polling rival: each RetVal is a standalone action
                    // free to land anywhere in the global order.
                    for i in 0..4000u64 {
                        r.record(1, Kind::RetVal(i));
                    }
                });
            }
            for i in 0..4000u64 {
                r.record_pair(0, Kind::Write(Reg(0), i + 1), Kind::RetUnit);
            }
        });
        let h = r.snapshot_history();
        assert_eq!(h.len(), 4000 + 2 * 4000);
        for (i, a) in h.actions().iter().enumerate() {
            if let Kind::Write(..) = a.kind {
                assert_eq!(a.thread, ThreadId(0));
                let next = &h.actions()[i + 1];
                assert_eq!(
                    (next.thread, next.kind),
                    (ThreadId(0), Kind::RetUnit),
                    "response not adjacent to its request at index {i}"
                );
            }
        }
    }

    #[test]
    fn concurrent_recording_produces_valid_history() {
        use std::sync::Arc;
        let r = Arc::new(Recorder::new(4));
        let mut handles = Vec::new();
        for t in 0..4 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    r.record(t, Kind::TxBegin);
                    r.record(t, Kind::Ok);
                    r.record(t, Kind::Write(Reg(0), ((t as u64) << 32) | (i + 1)));
                    r.record(t, Kind::RetUnit);
                    r.record(t, Kind::TxCommit);
                    r.record(t, Kind::Committed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let h = r.snapshot_history();
        assert_eq!(h.len(), 4 * 100 * 6);
        assert_eq!(h.validate(), Ok(()));
    }
}
