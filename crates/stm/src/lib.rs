//! # tm-stm — concurrent software transactional memory with safe privatization
//!
//! The runtime half of the reproduction of *Safe Privatization in
//! Transactional Memory* (Khyzha et al., PPoPP 2018): real, multi-threaded
//! STM implementations whose correctness claims are checked against the
//! paper's theory via recorded histories (`tm-core`).
//!
//! ## Layering
//!
//! * [`runtime`] — the shared runtime layer: register file, epoch-table
//!   registration for fences, [`record::Recorder`] wiring, [`api::Stats`],
//!   and the `atomic` retry loop with exponential backoff. Algorithms are
//!   [`runtime::Policy`] implementations over it.
//! * [`fence`] — asynchronous, batched privatization fences:
//!   [`api::StmHandle::fence_async`] returns a [`fence::FenceTicket`] over
//!   the runtime's grace-period engine ([`tm_quiesce::GraceEngine`]); all
//!   tickets issued during one open period share a single epoch-table scan,
//!   and [`fence::fence_all`] batches whole handle sets. With
//!   [`runtime::DriverMode::Background`] the runtime owns a
//!   [`tm_quiesce::GraceDriver`] thread that retires periods with zero
//!   pollers, so fire-and-forget
//!   [`on_complete`](fence::FenceTicket::on_complete) callbacks fire
//!   within bounded time.
//! * [`storage`] — pluggable ownership-record storage for versioned-lock
//!   policies: one [`vlock::VLock`] per register, or a *striped orec table*
//!   (constant metadata footprint, hash register → stripe), selected per
//!   instance via [`runtime::StmConfig`].
//! * [`clock`] — pluggable global version clocks for timestamp-based
//!   policies: GV1 (`fetch_add` per commit), GV4 (CAS-with-adopt), or
//!   GV5/TL2C-style slot-local deltas that keep writing commits off the
//!   shared clock line entirely; selected via [`runtime::StmConfig::clock`].
//!   `ClockKind::Auto` hands the choice to the **contention governor**,
//!   which watches the read/write commit mix and switches GV1 ⇄ GV5 at
//!   run time (grace-fenced handoff), and also shrinks the adaptive lock
//!   table back when contention subsides —
//!   [`runtime::StmConfig::auto`] is the recommended arm-everything entry
//!   point.
//! * [`tl2`] — TL2 (Fig 9) with buffered writes, a global version clock,
//!   versioned write-locks, and RCU-style transactional
//!   [`fences`](api::StmHandle::fence) built on [`tm_quiesce`]. Without a
//!   fence after a privatizing transaction, uninstrumented non-transactional
//!   accesses are exposed to the delayed-commit and doomed-transaction
//!   anomalies of the paper's Fig 1 — with the fence, privatization is safe
//!   (the paper's DRF discipline).
//! * [`tvar`] — the typed frontend: [`tvar::TVar<T>`] cells mapped onto
//!   runtime registers (the register holds a pointer to an `Arc`-boxed
//!   value), [`tvar::TypedHandle::atomically`] with `?` propagation and
//!   [`tvar::Transaction::or`]/`optionally` combinators, and blocking
//!   [`tvar::Transaction::retry`] — sleep on the read set, woken by any
//!   conflicting commit. Old value boxes displaced at commit are retired
//!   through the grace engine's epoch-based reclamation
//!   ([`tm_quiesce::GraceEngine::defer_drop`]): the paper's "privatization
//!   safety is safe reclamation", used as the typed layer's memory manager.
//! * [`norec`] — a NOrec-style STM (related work \[10\]): privatization-safe
//!   without fences; the comparison point for the fence-cost benchmarks.
//! * [`glock`] — single-global-lock STM: the trivially strongly atomic
//!   baseline.
//! * [`record`] — history recording; recorded executions feed the DRF and
//!   strong-opacity checkers. All policies record through the shared
//!   runtime, so every algorithm's histories are checkable.
//! * [`telemetry`] (the re-exported [`tm_telemetry`] crate) — the
//!   observability layer: per-slot log-bucketed latency histograms (commit,
//!   abort-to-retry gap, fence wait, grace-period scan) and a per-slot
//!   flight-recorder ring of runtime events, including every contention
//!   governor decision with the counters that justified it. Always on at
//!   one relaxed load per event site; configured via `TM_STM_TRACE`
//!   (`off` / ring capacity, default 1024 events per slot) or
//!   [`runtime::StmConfig::trace`], exported through
//!   [`runtime::Runtime::telemetry_snapshot`].
//! * **Hardening** (this crate + [`tm_chaos`], re-exported as [`chaos`]) —
//!   panic-safe unwind paths (a panicking transaction body or commit
//!   releases every lock and its epoch slot, records an
//!   [`AbortCause::Panic`](tm_telemetry::AbortCause) abort, and resumes the
//!   unwind; only an unwind *through commit write-back* poisons the
//!   handle), retry budgets ([`runtime::RetryPolicy`]) that escalate to an
//!   irrevocable serial mode instead of spinning forever, grace-engine
//!   stall detection with bounded fence waits
//!   ([`api::StmHandle::fence_join_timeout`]), and seeded deterministic
//!   fault injection at the lock-acquire / validation / clock-bump /
//!   grace-scan sites via `TM_STM_CHAOS=<seed>` or
//!   [`runtime::StmConfig::chaos_seed`].
//!
//! ## Quick example
//!
//! ```
//! use tm_stm::prelude::*;
//!
//! let stm = Tl2Stm::new(16, 2);
//! let mut h = stm.handle(0);
//! // Transactional transfer.
//! h.atomic(|tx| {
//!     let a = tx.read(0)?;
//!     tx.write(0, a + 50)?;
//!     tx.write(1, 50)
//! });
//! // Privatize register 2 (flag in register 3), then access it directly.
//! h.atomic(|tx| tx.write(3, 1));
//! h.fence(); // wait for concurrently active transactions
//! h.write_direct(2, 999);
//! assert_eq!(h.read_direct(2), 999);
//!
//! // The same API over striped orec storage: constant lock metadata
//! // however many registers the instance holds.
//! let big = Tl2Stm::with_config(StmConfig::new(1 << 16, 2).striped(256));
//! let mut h = big.handle(0);
//! h.atomic(|tx| tx.write(40_000, 7));
//! assert_eq!(big.peek(40_000), 7);
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod clock;
pub mod fence;
pub mod glock;
pub mod map;
pub mod norec;
pub mod record;
pub mod runtime;
pub mod storage;
pub mod tl2;
pub mod tvar;
pub mod vlock;

pub use tm_chaos as chaos;
pub use tm_telemetry as telemetry;

/// One-stop imports for driving any STM backend (handles, configs,
/// tickets, maps, stats).
pub mod prelude {
    pub use crate::api::{Abort, Stats, StmFactory, StmHandle, TxScope};
    pub use crate::clock::ClockKind;
    pub use crate::fence::{fence_all, FenceTicket, FenceTimeout};
    pub use crate::glock::{GlockHandle, GlockStm};
    pub use crate::map::{freeze_all, freeze_all_async, TxMap};
    pub use crate::norec::{NorecHandle, NorecStm};
    pub use crate::record::Recorder;
    pub use crate::runtime::{BackoffCfg, DriverMode, RetryPolicy, StmConfig};
    pub use crate::storage::{AdaptivePolicy, StorageKind};
    pub use crate::tl2::{Tl2Handle, Tl2Stm};
    pub use crate::tvar::{
        RetryStrategy, StmError, StmResult, TVar, Transaction, TypedHandle, TypedStm,
    };
    pub use tm_chaos::{Chaos, Site as ChaosSite};
    pub use tm_telemetry::{
        AbortCause, EventKind, LatencyClass, TelemetrySnapshot, TraceConfig, TraceEvent,
    };
}
