//! Pluggable global version clocks for timestamp-based STMs.
//!
//! TL2 (paper Fig 9) stamps every writing commit from one global version
//! clock. *How* that clock hands out stamps is an implementation axis the
//! paper's correctness argument never depends on — the recorded TM-interface
//! actions are identical — but it is the canonical scalability wall of
//! timestamp STMs: with the textbook `fetch_add` clock, every writing commit
//! in the whole system serializes on a single contended cache line. The
//! three backends here are the classic ladder out of that wall (the GV1/
//! GV4/GV5 schemes of the original TL2 implementation, plus the TL2C-style
//! slot-local refinement):
//!
//! * [`Gv1Clock`] — `fetch_add(1)` per writing commit. One shared-line RMW
//!   per commit, globally unique stamps, and the strongest fast-path
//!   information (an exclusive `rv → rv+1` bump proves no concurrent commit
//!   slipped in, enabling validation elision).
//! * [`Gv4Clock`] — CAS-with-adopt: try `CAS(g, g+1)` once; a *losing* CAS
//!   adopts the winner's value as its own write stamp instead of retrying.
//!   N contended committers perform one shared-line write between them, and
//!   sharing a stamp is sound because both hold (necessarily disjoint)
//!   write-set locks while committing, and any reader with `rv <` the
//!   shared stamp aborts on either.
//! * [`Gv5Clock`] — TL2C-style slot-local deltas: a committer stamps
//!   `max(global, last-own-stamp) + 1` *without writing the shared line at
//!   all*. Readers pay instead: a reader whose `rv` trails a fresh stamp
//!   takes one false abort, and [`VersionClock::refresh`] then advances the
//!   global clock to the observed stamp so the retry validates — at most
//!   one extra false abort per unlucky reader per stamp, zero shared-line
//!   traffic on a disjoint-write workload.
//!
//! # Why GV5 is sound without per-commit bumps
//!
//! The TL2 validation check is `rv < version → abort`. Soundness needs every
//! stamp installed *after* a reader fixed its `rv` to be `> rv`, so the
//! reader can never validate data that changed under it. Any reader's `rv`
//! is a past load of the global clock, which is monotone, so `rv ≤ global`
//! always; a GV5 stamp is `max(global, own-last) + 1 ≥ global + 1 > rv`.
//! Stamp *values* may repeat across slots (and per-orec versions need not be
//! monotone), but a repeated value can only be re-installed while it is
//! still `> global ≥` every live `rv` — no reader can validate it, so the
//! ABA window is unobservable. The privatization/fence machinery never reads
//! the clock at all, so every backend is fence- and checker-agnostic.

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use tm_quiesce::{GraceEngine, GraceTicket};
use tm_telemetry::{EventKind, Telemetry};

/// Clock-backend selection for timestamp-based policies, used by
/// [`crate::runtime::StmConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ClockKind {
    /// `fetch_add` per writing commit (the TL2 baseline).
    #[default]
    Gv1,
    /// CAS-with-adopt: a losing CAS adopts the winner's stamp.
    Gv4,
    /// Slot-local deltas: commits never write the shared line; trailing
    /// readers refresh it on their (single) false abort.
    Gv5,
    /// Governor-switchable GV1 ↔ GV5: starts in the GV1 discipline and lets
    /// the contention governor hand off between disciplines online through
    /// a grace-fenced transition (see [`AutoClock`]). Selecting this kind
    /// is what arms the governor in TL2 instances.
    Auto,
}

impl ClockKind {
    /// Every *static* clock backend, for matrix tests and benches. `Auto`
    /// is deliberately excluded: its discipline is workload-dependent, so
    /// it has its own governor bench rather than a row in the static
    /// clock matrices.
    pub const ALL: [ClockKind; 3] = [ClockKind::Gv1, ClockKind::Gv4, ClockKind::Gv5];

    /// Human-readable backend label (bench/report key).
    pub fn label(self) -> &'static str {
        match self {
            ClockKind::Gv1 => "gv1",
            ClockKind::Gv4 => "gv4",
            ClockKind::Gv5 => "gv5",
            ClockKind::Auto => "auto",
        }
    }

    /// Build the clock for an instance of `nthreads` thread slots.
    pub fn build(self, nthreads: usize) -> AnyClock {
        match self {
            ClockKind::Gv1 => AnyClock::Gv1(Gv1Clock::new()),
            ClockKind::Gv4 => AnyClock::Gv4(Gv4Clock::new()),
            ClockKind::Gv5 => AnyClock::Gv5(Gv5Clock::new(nthreads)),
            ClockKind::Auto => AnyClock::Auto(AutoClock::new(nthreads)),
        }
    }
}

/// What one commit-time stamp acquisition produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteStamp {
    /// The write version to install in the orecs.
    pub wver: u64,
    /// Did acquiring this stamp write the shared clock line? (The counter
    /// behind [`crate::api::Stats::clock_bumps`].)
    pub bumped: bool,
    /// Did this thread *exclusively* advance the clock `rv → rv + 1`?
    /// If so, no other writer entered its commit bump between this
    /// transaction's begin and now — under GV1/GV4 every writing commit
    /// either bumps the clock or adopts a value some concurrent CAS
    /// installed *after* `rv`, so an untouched clock interval proves the
    /// read set is still the one validated at read time, and commit-time
    /// re-validation can be elided. GV5 never bumps, so it never proves
    /// exclusivity.
    pub exclusive: bool,
}

/// A global version clock: the timebase of a timestamp-based [`crate::runtime::Policy`].
///
/// Implementations must keep the *read* view monotone (`read_stamp` values
/// never decrease) and must hand out write stamps strictly greater than any
/// `read_stamp` value returned before the corresponding `write_stamp` call —
/// that is the whole TL2 safety obligation (see module docs).
pub trait VersionClock: Send + Sync + 'static {
    /// The read timestamp `rv` for a beginning transaction.
    fn read_stamp(&self) -> u64;

    /// Acquire the write stamp for a committing transaction on thread slot
    /// `slot` whose read timestamp was `rv`. Called *after* the write-set
    /// locks are held (the exclusivity proof in [`WriteStamp`] relies on
    /// this ordering).
    fn write_stamp(&self, slot: u16, rv: u64) -> WriteStamp;

    /// A reader observed an orec stamped `observed > rv`. Advance the
    /// global view so the retry's `rv` covers it; returns `true` if the
    /// shared line was actually written. GV1/GV4 stamps never outrun the
    /// clock, so only GV5 does real work here.
    fn refresh(&self, observed: u64) -> bool;
}

/// Closed union of the built-in clocks, same inlining pattern as
/// [`crate::storage::AnyLockTable`]: stamp acquisition sits on the commit
/// hot path and read-stamp sampling on the begin path, so this is a
/// three-arm match that inlines, not virtual dispatch.
pub enum AnyClock {
    /// The `fetch_add` baseline.
    Gv1(Gv1Clock),
    /// CAS-with-adopt.
    Gv4(Gv4Clock),
    /// Slot-local deltas.
    Gv5(Gv5Clock),
    /// Governor-switchable GV1 ↔ GV5.
    Auto(AutoClock),
}

macro_rules! delegate {
    ($self:ident, $c:ident => $e:expr) => {
        match $self {
            AnyClock::Gv1($c) => $e,
            AnyClock::Gv4($c) => $e,
            AnyClock::Gv5($c) => $e,
            AnyClock::Auto($c) => $e,
        }
    };
}

impl VersionClock for AnyClock {
    #[inline]
    fn read_stamp(&self) -> u64 {
        delegate!(self, c => c.read_stamp())
    }

    #[inline]
    fn write_stamp(&self, slot: u16, rv: u64) -> WriteStamp {
        delegate!(self, c => c.write_stamp(slot, rv))
    }

    #[inline]
    fn refresh(&self, observed: u64) -> bool {
        delegate!(self, c => c.refresh(observed))
    }
}

/// GV1: one `fetch_add` per writing commit (paper Fig 7 line 19).
pub struct Gv1Clock {
    global: CachePadded<AtomicU64>,
}

impl Gv1Clock {
    /// A clock at stamp 0.
    pub fn new() -> Self {
        Gv1Clock {
            global: CachePadded::new(AtomicU64::new(0)),
        }
    }
}

impl Default for Gv1Clock {
    fn default() -> Self {
        Self::new()
    }
}

impl VersionClock for Gv1Clock {
    #[inline]
    fn read_stamp(&self) -> u64 {
        self.global.load(Ordering::SeqCst)
    }

    #[inline]
    fn write_stamp(&self, _slot: u16, rv: u64) -> WriteStamp {
        let old = self.global.fetch_add(1, Ordering::SeqCst);
        WriteStamp {
            wver: old + 1,
            bumped: true,
            exclusive: old == rv,
        }
    }

    fn refresh(&self, _observed: u64) -> bool {
        // Stamps never exceed the clock: nothing to catch up to.
        false
    }
}

/// GV4: CAS-with-adopt. One CAS attempt; the loser adopts the value the
/// winner installed (which is `> rv` for every concurrently live `rv`, so
/// it is a valid stamp) instead of retrying — N contended bumps collapse
/// into one shared-line write.
pub struct Gv4Clock {
    global: CachePadded<AtomicU64>,
}

impl Gv4Clock {
    /// A clock at stamp 0.
    pub fn new() -> Self {
        Gv4Clock {
            global: CachePadded::new(AtomicU64::new(0)),
        }
    }
}

impl Default for Gv4Clock {
    fn default() -> Self {
        Self::new()
    }
}

impl VersionClock for Gv4Clock {
    #[inline]
    fn read_stamp(&self) -> u64 {
        self.global.load(Ordering::SeqCst)
    }

    #[inline]
    fn write_stamp(&self, _slot: u16, rv: u64) -> WriteStamp {
        let old = self.global.load(Ordering::SeqCst);
        match self
            .global
            .compare_exchange(old, old + 1, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => WriteStamp {
                wver: old + 1,
                bumped: true,
                exclusive: old == rv,
            },
            // The CAS lost: the clock moved past `old`, so its current
            // value is a stamp some other commit just installed — adopt it.
            // (`now > old ≥ rv`, so it is still a valid stamp for us; see
            // module docs for why sharing it is sound.)
            Err(now) => WriteStamp {
                wver: now,
                bumped: false,
                exclusive: false,
            },
        }
    }

    fn refresh(&self, _observed: u64) -> bool {
        false
    }
}

/// GV5/TL2C-style: commits stamp `max(global, own-last-stamp) + 1` from a
/// slot-local (cache-padded) register and never write the shared line. The
/// global clock advances only when a trailing reader hits the resulting
/// false abort and [`VersionClock::refresh`]es it forward.
pub struct Gv5Clock {
    global: CachePadded<AtomicU64>,
    /// Last stamp each slot issued. Only its own slot writes an entry, so
    /// the load in `write_stamp` races with nothing.
    locals: Box<[CachePadded<AtomicU64>]>,
}

impl Gv5Clock {
    /// A clock at stamp 0 with one local-delta slot per thread.
    pub fn new(nthreads: usize) -> Self {
        Gv5Clock {
            global: CachePadded::new(AtomicU64::new(0)),
            locals: (0..nthreads.max(1))
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }
}

impl VersionClock for Gv5Clock {
    #[inline]
    fn read_stamp(&self) -> u64 {
        self.global.load(Ordering::SeqCst)
    }

    #[inline]
    fn write_stamp(&self, slot: u16, _rv: u64) -> WriteStamp {
        let local = &self.locals[usize::from(slot)];
        let prev = local.load(Ordering::Relaxed);
        let wver = self.global.load(Ordering::SeqCst).max(prev) + 1;
        local.store(wver, Ordering::Relaxed);
        WriteStamp {
            wver,
            bumped: false,
            exclusive: false,
        }
    }

    fn refresh(&self, observed: u64) -> bool {
        // fetch_max keeps the global view monotone under concurrent
        // refreshes; only a strict advance counts as a shared-line bump.
        self.global.fetch_max(observed, Ordering::SeqCst) < observed
    }
}

/// The stamping discipline an [`AutoClock`] is currently running.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AutoMode {
    /// `fetch_add` per writing commit (read-mostly workloads: bumps are
    /// rare and the exclusive-bump elision fast path stays armed).
    Gv1,
    /// Slot-local deltas (write-heavy workloads: zero shared-line writes
    /// per commit, trailing readers pay the refresh instead).
    Gv5,
}

impl AutoMode {
    /// Bench/report key for the discipline.
    pub fn label(self) -> &'static str {
        match self {
            AutoMode::Gv1 => "gv1",
            AutoMode::Gv5 => "gv5",
        }
    }
}

const MODE_GV1: u64 = 0;
const MODE_GV5: u64 = 1;

/// Shared handoff state for an in-flight discipline switch: `settled`
/// gates the GV1 exclusivity fast path, `pending` is the grace ticket the
/// switch is fenced by (polled from transaction begins for cooperative
/// liveness, completed by whichever thread drives the period home).
struct Handoff {
    settled: AtomicBool,
    pending: Mutex<Option<GraceTicket>>,
}

/// Governor-switchable version clock: one monotone global line that can be
/// stamped under either the GV1 (`fetch_add`) or the GV5 (slot-local
/// delta) discipline, switched online by the contention governor.
///
/// # Why mixing disciplines over one line is sound
///
/// Both disciplines uphold the module-level obligation against the *same*
/// global register: a GV1 stamp is `fetch_add → old + 1 > global ≥ rv`,
/// and a GV5 stamp is `max(global, own-last) + 1 ≥ global + 1 > rv`, for
/// every `rv` issued before the stamp (reads always load this one global,
/// which only ever moves forward via `fetch_add`/`fetch_max`). So *any*
/// interleaving of the two disciplines — including the handoff window
/// where in-flight committers still stamp under the old mode — hands out
/// write stamps strictly above every previously issued read stamp. No
/// live `rv` can observe a regression, by construction.
///
/// What is **not** sound across a handoff is the GV1 exclusivity proof:
/// `old == rv` only proves "no concurrent commit" if every concurrent
/// writer bumps the line, which a straggler still stamping under GV5 does
/// not. The switch therefore publishes the new mode, raises the global
/// above the old discipline's ceiling (the max of the slot-local stamps,
/// so the new regime starts strictly above every stamp the old one
/// issued), and issues a grace ticket; until that period retires — i.e.
/// until every transaction that could have pinned the old mode has
/// finished — [`WriteStamp::exclusive`] is suppressed. Only the fast path
/// waits on the fence, never correctness.
pub struct AutoClock {
    global: CachePadded<AtomicU64>,
    /// Last stamp each slot issued under the GV5 discipline (the old
    /// discipline's ceiling when switching back to GV1).
    locals: Box<[CachePadded<AtomicU64>]>,
    /// Current discipline (`MODE_GV1` / `MODE_GV5`).
    mode: CachePadded<AtomicU64>,
    handoff: Arc<Handoff>,
    switches: AtomicU64,
    /// Late-attached telemetry hub: handoff settlements emit a
    /// `clock-switch-settle` trace event when present.
    telemetry: OnceLock<Arc<Telemetry>>,
}

impl AutoClock {
    /// A clock at stamp 0, starting in the GV1 discipline.
    pub fn new(nthreads: usize) -> Self {
        AutoClock {
            global: CachePadded::new(AtomicU64::new(0)),
            locals: (0..nthreads.max(1))
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            mode: CachePadded::new(AtomicU64::new(MODE_GV1)),
            handoff: Arc::new(Handoff {
                settled: AtomicBool::new(true),
                pending: Mutex::new(None),
            }),
            switches: AtomicU64::new(0),
            telemetry: OnceLock::new(),
        }
    }

    /// Attach the runtime's telemetry hub (once; later calls are no-ops).
    pub fn set_telemetry(&self, telemetry: Arc<Telemetry>) {
        let _ = self.telemetry.set(telemetry);
    }

    /// The discipline stamps are currently drawn under.
    pub fn mode(&self) -> AutoMode {
        if self.mode.load(Ordering::SeqCst) == MODE_GV1 {
            AutoMode::Gv1
        } else {
            AutoMode::Gv5
        }
    }

    /// Completed discipline switches since construction.
    pub fn switches(&self) -> u64 {
        self.switches.load(Ordering::SeqCst)
    }

    /// Has the last switch's grace period retired? While `false`, the GV1
    /// exclusivity fast path stays suppressed.
    pub fn settled(&self) -> bool {
        self.handoff.settled.load(Ordering::SeqCst)
    }

    /// Request a switch to discipline `want`, fenced by `engine`. Returns
    /// `true` if this call published the switch; `false` if the clock is
    /// already in (or still settling into) some mode — at most one handoff
    /// is in flight at a time, so a raced governor fold simply retries at
    /// its next window boundary.
    pub fn request(&self, want: AutoMode, engine: &Arc<GraceEngine>) -> bool {
        // Claim the (single) handoff slot before touching anything else.
        if self
            .handoff
            .settled
            .compare_exchange(true, false, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return false;
        }
        if self.mode() == want {
            self.handoff.settled.store(true, Ordering::SeqCst);
            return false;
        }
        if want == AutoMode::Gv1 {
            // Leaving GV5: raise the global above every slot-local stamp so
            // the fetch_add regime resumes strictly above the old ceiling.
            // A straggler still stamping under GV5 can exceed this snapshot;
            // that only delays elision re-arming (see type docs), never
            // stamp ordering.
            let ceiling = self
                .locals
                .iter()
                .map(|l| l.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0);
            self.global.fetch_max(ceiling, Ordering::SeqCst);
        }
        self.mode.store(
            match want {
                AutoMode::Gv1 => MODE_GV1,
                AutoMode::Gv5 => MODE_GV5,
            },
            Ordering::SeqCst,
        );
        self.switches.fetch_add(1, Ordering::SeqCst);
        let ticket = engine.issue();
        *self.handoff.pending.lock().unwrap() = Some(ticket.clone());
        // Registered after the pending slot is filled and its lock dropped:
        // the callback (run by whichever thread completes the period) takes
        // the same lock.
        let handoff = Arc::clone(&self.handoff);
        let tel = self.telemetry.get().filter(|t| t.enabled()).cloned();
        ticket.on_complete(move || {
            handoff.settled.store(true, Ordering::SeqCst);
            handoff.pending.lock().unwrap().take();
            if let Some(t) = tel {
                t.record_engine_event(EventKind::ClockSwitchSettle {
                    to_gv5: want == AutoMode::Gv5,
                });
            }
        });
        true
    }

    /// Give the pending handoff (if any) a non-blocking push — called from
    /// transaction begins so cooperative-mode instances settle without a
    /// background driver. `try_lock` keeps concurrent begins from piling up
    /// on the slot.
    pub fn poll_settle(&self) {
        if self.handoff.settled.load(Ordering::SeqCst) {
            return;
        }
        let ticket = match self.handoff.pending.try_lock() {
            Ok(guard) => guard.clone(),
            Err(_) => return,
        };
        if let Some(t) = ticket {
            t.poll();
        }
    }
}

impl VersionClock for AutoClock {
    #[inline]
    fn read_stamp(&self) -> u64 {
        self.global.load(Ordering::SeqCst)
    }

    #[inline]
    fn write_stamp(&self, slot: u16, rv: u64) -> WriteStamp {
        match self.mode.load(Ordering::SeqCst) {
            MODE_GV1 => {
                let old = self.global.fetch_add(1, Ordering::SeqCst);
                WriteStamp {
                    wver: old + 1,
                    bumped: true,
                    // Exclusivity is only provable once the last handoff's
                    // grace period retired (no straggler can still stamp
                    // without bumping the line).
                    exclusive: old == rv && self.handoff.settled.load(Ordering::SeqCst),
                }
            }
            _ => {
                let local = &self.locals[usize::from(slot)];
                let prev = local.load(Ordering::Relaxed);
                let wver = self.global.load(Ordering::SeqCst).max(prev) + 1;
                local.store(wver, Ordering::Relaxed);
                WriteStamp {
                    wver,
                    bumped: false,
                    exclusive: false,
                }
            }
        }
    }

    fn refresh(&self, observed: u64) -> bool {
        // Under GV1 stamps never outrun the global, so this is a no-op
        // there; under GV5 (and across a GV5 → GV1 handoff window, where
        // orecs may still hold straggler stamps above the global) it
        // advances the reader view exactly like `Gv5Clock`.
        self.global.fetch_max(observed, Ordering::SeqCst) < observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_and_label() {
        for kind in ClockKind::ALL {
            let clock = kind.build(4);
            assert_eq!(clock.read_stamp(), 0, "{}", kind.label());
        }
        assert_eq!(ClockKind::default(), ClockKind::Gv1);
        assert_eq!(ClockKind::Gv1.label(), "gv1");
        assert_eq!(ClockKind::Gv4.label(), "gv4");
        assert_eq!(ClockKind::Gv5.label(), "gv5");
    }

    #[test]
    fn gv1_bumps_every_stamp_and_detects_exclusivity() {
        let c = Gv1Clock::new();
        let rv = c.read_stamp();
        let s = c.write_stamp(0, rv);
        assert_eq!(
            s,
            WriteStamp {
                wver: 1,
                bumped: true,
                exclusive: true
            }
        );
        // A second commit with the same (now stale) rv is not exclusive.
        let s2 = c.write_stamp(1, rv);
        assert_eq!(s2.wver, 2);
        assert!(s2.bumped && !s2.exclusive);
        assert!(!c.refresh(100), "gv1 refresh is a no-op");
        assert_eq!(c.read_stamp(), 2);
    }

    #[test]
    fn gv4_uncontended_behaves_like_gv1() {
        let c = Gv4Clock::new();
        let rv = c.read_stamp();
        let s = c.write_stamp(0, rv);
        assert_eq!(
            s,
            WriteStamp {
                wver: 1,
                bumped: true,
                exclusive: true
            }
        );
        let s2 = c.write_stamp(1, rv);
        assert!(
            s2.bumped && !s2.exclusive,
            "stale rv must not claim elision"
        );
        assert_eq!(s2.wver, 2);
    }

    #[test]
    fn gv4_contended_stamps_stay_valid() {
        // Hammer the clock from several threads: every stamp must exceed
        // the rv its thread started from (the safety obligation), and the
        // total number of bumps must not exceed the number of stamps.
        use std::sync::atomic::AtomicU64 as Counter;
        let c = std::sync::Arc::new(Gv4Clock::new());
        let bumps = Counter::new(0);
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let c = std::sync::Arc::clone(&c);
                let bumps = &bumps;
                s.spawn(move || {
                    for _ in 0..1000 {
                        let rv = c.read_stamp();
                        let st = c.write_stamp(t, rv);
                        assert!(st.wver > rv, "stamp {} must exceed rv {}", st.wver, rv);
                        if st.bumped {
                            bumps.fetch_add(1, Ordering::Relaxed);
                        }
                        if st.exclusive {
                            assert_eq!(st.wver, rv + 1);
                        }
                    }
                });
            }
        });
        assert!(bumps.load(Ordering::Relaxed) <= 4000);
        assert_eq!(
            c.read_stamp(),
            bumps.load(Ordering::Relaxed),
            "the clock advances exactly once per successful CAS"
        );
    }

    #[test]
    fn gv5_commits_never_touch_the_shared_line() {
        let c = Gv5Clock::new(2);
        let rv = c.read_stamp();
        for i in 1..=5 {
            let s = c.write_stamp(0, rv);
            assert_eq!(s.wver, i, "slot-local delta advances per commit");
            assert!(!s.bumped && !s.exclusive);
        }
        assert_eq!(c.read_stamp(), 0, "the global clock never moved");
        // A second slot starts from the (still unmoved) global view: its
        // stamps may collide with slot 0's — sound, see module docs.
        assert_eq!(c.write_stamp(1, rv).wver, 1);
    }

    #[test]
    fn gv5_refresh_advances_reader_view_once() {
        let c = Gv5Clock::new(1);
        for _ in 0..3 {
            c.write_stamp(0, 0);
        }
        // A reader trailing at rv = 0 observes version 3, refreshes, and
        // its retry validates (rv ≥ observed): one false abort, not a loop.
        assert_eq!(c.read_stamp(), 0);
        assert!(c.refresh(3), "a strict advance is a shared-line write");
        assert_eq!(c.read_stamp(), 3);
        assert!(!c.refresh(2), "stale refreshes don't write");
        assert_eq!(c.read_stamp(), 3);
        // The next stamp clears the refreshed view.
        assert_eq!(c.write_stamp(0, 3).wver, 4);
    }

    #[test]
    fn auto_starts_as_gv1_and_labels() {
        let c = AutoClock::new(2);
        assert_eq!(c.mode(), AutoMode::Gv1);
        assert_eq!(c.mode().label(), "gv1");
        assert_eq!(AutoMode::Gv5.label(), "gv5");
        assert_eq!(ClockKind::Auto.label(), "auto");
        assert!(c.settled());
        assert_eq!(c.switches(), 0);
        let rv = c.read_stamp();
        let s = c.write_stamp(0, rv);
        assert_eq!(
            s,
            WriteStamp {
                wver: 1,
                bumped: true,
                exclusive: true
            },
            "settled GV1 discipline behaves exactly like Gv1Clock"
        );
    }

    #[test]
    fn auto_handoff_is_fenced_and_suppresses_elision_until_settled() {
        let engine = GraceEngine::new(2);
        let c = AutoClock::new(2);
        assert!(c.request(AutoMode::Gv5, &engine), "first switch publishes");
        assert_eq!(c.mode(), AutoMode::Gv5);
        assert_eq!(c.switches(), 1);
        assert!(!c.settled(), "the handoff period has not retired yet");
        assert!(
            !c.request(AutoMode::Gv1, &engine),
            "at most one handoff in flight"
        );
        // GV5 stamps never touch the shared line or claim exclusivity.
        let s = c.write_stamp(0, 0);
        assert!(!s.bumped && !s.exclusive);
        // No epoch is active, so a single poll drives the period home and
        // the completion callback re-arms the fast path.
        c.poll_settle();
        assert!(c.settled());
        assert!(c.request(AutoMode::Gv1, &engine), "settled: switch back");
        assert_eq!(c.switches(), 2);
        assert!(
            !c.write_stamp(0, c.read_stamp()).exclusive,
            "GV1 elision stays suppressed until the return handoff settles"
        );
        c.poll_settle();
        assert!(c.settled());
        let rv = c.read_stamp();
        assert!(c.write_stamp(0, rv).exclusive);
        assert!(
            !c.request(AutoMode::Gv1, &engine),
            "no-op requests do not burn the handoff slot"
        );
        assert!(c.settled() && c.switches() == 2);
    }

    #[test]
    fn auto_gv1_resumes_above_the_gv5_ceiling() {
        let engine = GraceEngine::new(1);
        let c = AutoClock::new(2);
        assert!(c.request(AutoMode::Gv5, &engine));
        c.poll_settle();
        // Slot-local stamps run ahead of the (unmoved) global.
        let mut top = 0;
        for _ in 0..5 {
            top = c.write_stamp(1, 0).wver;
        }
        assert_eq!(top, 5);
        assert_eq!(c.read_stamp(), 0, "GV5 commits never moved the global");
        assert!(c.request(AutoMode::Gv1, &engine));
        assert!(
            c.read_stamp() >= top,
            "switching back raises the global above the old ceiling"
        );
        let rv = c.read_stamp();
        let s = c.write_stamp(0, rv);
        assert!(s.wver > top, "new-regime stamps sit strictly above it");
    }

    #[test]
    fn auto_mixed_disciplines_uphold_stamp_ordering() {
        // Hammer the clock from 4 slots while a fifth thread keeps
        // switching disciplines: every stamp must still exceed the rv its
        // thread started from, even mid-handoff.
        let engine = GraceEngine::new(4);
        let c = std::sync::Arc::new(AutoClock::new(4));
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let stampers: Vec<_> = (0..4u16)
                .map(|t| {
                    let c = std::sync::Arc::clone(&c);
                    s.spawn(move || {
                        for _ in 0..2000 {
                            let rv = c.read_stamp();
                            let st = c.write_stamp(t, rv);
                            assert!(st.wver > rv, "wver {} ≤ rv {}", st.wver, rv);
                            if st.exclusive {
                                assert_eq!(st.wver, rv + 1);
                            }
                        }
                    })
                })
                .collect();
            {
                let c = std::sync::Arc::clone(&c);
                let stop = &stop;
                let engine = std::sync::Arc::clone(&engine);
                s.spawn(move || {
                    let mut want = AutoMode::Gv5;
                    while !stop.load(Ordering::Relaxed) {
                        if c.request(want, &engine) {
                            want = match want {
                                AutoMode::Gv1 => AutoMode::Gv5,
                                AutoMode::Gv5 => AutoMode::Gv1,
                            };
                        }
                        c.poll_settle();
                        std::thread::yield_now();
                    }
                });
            }
            for h in stampers {
                h.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert!(c.switches() >= 1, "the toggler switched at least once");
    }

    #[test]
    fn every_backend_upholds_the_stamp_ordering_obligation() {
        // The one invariant TL2 needs from any clock: a write stamp is
        // strictly greater than every read stamp handed out before it.
        for kind in ClockKind::ALL {
            let clock = std::sync::Arc::new(kind.build(4));
            std::thread::scope(|s| {
                for t in 0..4u16 {
                    let clock = std::sync::Arc::clone(&clock);
                    s.spawn(move || {
                        for _ in 0..500 {
                            let rv = clock.read_stamp();
                            let st = clock.write_stamp(t, rv);
                            assert!(
                                st.wver > rv,
                                "{}: wver {} ≤ rv {}",
                                kind.label(),
                                st.wver,
                                rv
                            );
                        }
                    });
                }
            });
        }
    }
}
