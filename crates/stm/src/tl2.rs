//! The concurrent TL2 STM (paper Fig 9) as a [`Policy`] over the shared
//! [`crate::runtime`], with RCU-style transactional fences.
//!
//! Globally: a pluggable version clock ([`crate::clock`], selected via
//! [`StmConfig::clock`]: GV1 `fetch_add`, GV4 CAS-with-adopt, or GV5
//! slot-local deltas) and a pluggable [`LockTable`] of versioned
//! write-locks — one per register ([`crate::storage::PerRegisterTable`]) or
//! a striped orec table ([`crate::storage::StripedTable`]), selected via
//! [`StmConfig::storage`]. Transactions buffer writes, validate reads
//! against their read timestamp, lock the *stripes* of their write set at
//! commit (deduplicated, in sorted order), re-validate, then write back.
//! Commit-time re-validation is *elided* when the clock proves no
//! concurrent commit intervened (an exclusive `rv → rv + 1` bump — the
//! classic TL2 fast path), counted in
//! [`crate::api::Stats::validation_elisions`]; every write to the shared
//! clock line is counted in [`crate::api::Stats::clock_bumps`].
//!
//! Striping trades metadata footprint for false conflicts: registers that
//! share a stripe conflict even when disjoint. That is always conservative —
//! the stripe version check can only abort more — so every correctness
//! claim checked on recorded histories holds for both backends (see the
//! conformance suite and the `striped_conflicts` integration test).
//!
//! Non-transactional accesses ([`StmHandle::read_direct`] /
//! [`StmHandle::write_direct`]) are single uninstrumented atomic accesses —
//! they do not touch versions or locks, exactly the setting the paper's DRF
//! discipline governs. Without fences they reproduce the delayed-commit and
//! doomed-transaction anomalies on real hardware (see `tests/` and the
//! `privatization` example).
//!
//! Memory ordering: all TM metadata and data accesses use `SeqCst`. The
//! interesting claims about this STM are checked by recording histories and
//! running the strong-opacity checker, not argued from orderings; `SeqCst`
//! keeps the recorded-order argument simple. (Benchmark comparisons between
//! fence policies are unaffected: all variants pay the same cost.)

use crate::api::{Abort, StmHandle};
use crate::clock::{AnyClock, AutoClock, AutoMode, ClockKind, VersionClock};
use crate::runtime::{Handle, Policy, PolicyKind, Runtime, Stm, StmConfig, TxCtx};
use crate::storage::{
    AnyLockTable, AnyTables, GenStripe, LockTable, ShrinkPolicy, StripeSnap, TableGen, WriterHint,
};
use crate::vlock::VLockState;
use std::sync::Arc;
use tm_chaos::Site;
use tm_telemetry::EventKind;

/// Commits per *governor window*: each handle folds its (plain, handle-
/// local) read-only/writing commit tallies into a clock-discipline decision
/// every this many commits. The fold requests GV5 when writes are ≥ 60% of
/// the window (writing commits then stay off the shared clock line) and GV1
/// when they are ≤ 30% (readers then get fresh `rv`s and writing commits
/// can elide commit-time re-validation); the band between is hysteresis —
/// no request, so the discipline never oscillates on a mixed workload.
/// Between folds a commit touches no governor state that another thread
/// could observe: the hot path stays at the pre-governor baseline.
pub const GOVERNOR_WINDOW: u64 = 128;

/// Write share (percent of a governor window) at or above which the fold
/// requests the GV5 discipline.
const WRITE_HEAVY_PCT: u64 = 60;

/// Write share at or below which the fold requests the GV1 discipline.
const READ_HEAVY_PCT: u64 = 30;

/// TL2 state shared by all handles of one instance: the global version
/// clock and the ownership-record table(s).
pub struct Tl2Shared {
    /// Enums, not `Box<dyn …>`: lock-word sampling and stamp acquisition
    /// sit on the transactional hot paths and must stay inlinable.
    clock: AnyClock,
    tables: AnyTables,
}

impl Tl2Shared {
    /// The governor-switchable clock, when this instance runs one.
    #[inline]
    fn auto_clock(&self) -> Option<&AutoClock> {
        match &self.clock {
            AnyClock::Auto(a) => Some(a),
            _ => None,
        }
    }
}

/// TL2's [`PolicyKind`]: [`StmConfig::storage`] selects per-register vs
/// striped orec locks.
pub struct Tl2Kind;

impl PolicyKind for Tl2Kind {
    type Policy = Tl2Policy;
    type Shared = Tl2Shared;

    fn build_shared(cfg: &StmConfig) -> Tl2Shared {
        let mut tables = cfg.storage.build_tables(cfg.nregs);
        // Selecting the Auto clock is what arms the *full* governor: the
        // adaptive table additionally gets its shrink side (the grow
        // migration protocol in reverse, hysteresis-gapped below the grow
        // threshold), enabled here — before the table is shared, per the
        // `enable_shrink` contract.
        if cfg.clock == ClockKind::Auto {
            if let AnyTables::Adaptive(at) = &mut tables {
                at.enable_shrink(ShrinkPolicy::for_grow(at.policy()));
            }
        }
        Tl2Shared {
            clock: cfg.clock.build(cfg.nthreads),
            tables,
        }
    }

    fn build_policy(shared: &Arc<Tl2Shared>) -> Tl2Policy {
        Tl2Policy {
            shared: Arc::clone(shared),
            rv: 0,
            rset: Vec::new(),
            wset: Vec::new(),
            stripes: Vec::new(),
            shared_stripes: Vec::new(),
            pinned: None,
            last_txn_wrote: false,
            wver_of_last_commit: 0,
            gov_ro: 0,
            gov_wr: 0,
        }
    }

    fn after_build(rt: &Arc<Runtime>, shared: &Arc<Tl2Shared>) {
        // Hang the governor's poll loop off the background driver's tick,
        // when the runtime owns one: open reconfigurations (stripe
        // migrations, clock handoffs) then settle in bounded time with zero
        // transaction traffic. Cooperatively-driven runtimes get the same
        // polls from transaction begins instead (`set_tick_hook` is a no-op
        // there), so liveness only needs *some* later transaction — the
        // same contract as every other cooperative grace-period user.
        // Late-attach the runtime's telemetry hub to the governed backends,
        // so their reconfiguration decisions land in the flight recorder.
        if let AnyTables::Adaptive(at) = &shared.tables {
            at.set_telemetry(Arc::clone(rt.telemetry()));
        }
        if let Some(a) = shared.auto_clock() {
            a.set_telemetry(Arc::clone(rt.telemetry()));
        }
        let adaptive = matches!(shared.tables, AnyTables::Adaptive(_));
        let auto = shared.auto_clock().is_some();
        if !adaptive && !auto {
            return;
        }
        let shared = Arc::clone(shared);
        rt.set_tick_hook(move || {
            if let AnyTables::Adaptive(at) = &shared.tables {
                at.poll_migration();
            }
            if let Some(a) = shared.auto_clock() {
                a.poll_settle();
            }
        });
    }
}

/// The shared TL2 instance. Create per-thread handles with [`Stm::handle`].
pub type Tl2Stm = Stm<Tl2Kind>;

/// Per-thread TL2 context.
pub type Tl2Handle = Handle<Tl2Policy>;

impl Stm<Tl2Kind> {
    /// Number of distinct lock words in the storage backend (the *current*
    /// generation, under adaptive storage).
    pub fn nstripes(&self) -> usize {
        match &self.shared().tables {
            AnyTables::Fixed(t) => t.nstripes(),
            AnyTables::Adaptive(at) => at.nstripes(),
        }
    }

    /// The stripe guarding register `x` (for constructing stripe-collision
    /// scenarios in tests and litmus programs). Under adaptive storage this
    /// is the current generation's mapping, which a resize invalidates.
    pub fn stripe_of(&self, x: usize) -> usize {
        match &self.shared().tables {
            AnyTables::Fixed(t) => t.stripe_of(x),
            AnyTables::Adaptive(at) => at.pin().1.table().stripe_of(x),
        }
    }

    /// Adaptive-table generations published so far across all handles
    /// (0 on fixed storage).
    pub fn stripe_resizes(&self) -> u64 {
        match &self.shared().tables {
            AnyTables::Fixed(_) => 0,
            AnyTables::Adaptive(at) => at.resizes(),
        }
    }

    /// Is an adaptive rehash migration window currently open (old
    /// generation published but not yet retired)? Always `false` on fixed
    /// storage.
    pub fn migration_pending(&self) -> bool {
        match &self.shared().tables {
            AnyTables::Fixed(_) => false,
            AnyTables::Adaptive(at) => at.migration_pending(),
        }
    }

    /// Clock-discipline switches performed by the shared [`AutoClock`] so
    /// far (0 under a static clock). The instance-wide view of
    /// [`crate::api::Stats::clock_switches`].
    pub fn clock_switches(&self) -> u64 {
        self.shared().auto_clock().map_or(0, |a| a.switches())
    }

    /// Label of the version-clock discipline currently in force:
    /// `"gv1"`/`"gv4"`/`"gv5"` for the static clocks, and under the Auto
    /// clock whichever discipline the governor last installed.
    pub fn clock_mode_label(&self) -> &'static str {
        match &self.shared().clock {
            AnyClock::Gv1(_) => ClockKind::Gv1.label(),
            AnyClock::Gv4(_) => ClockKind::Gv4.label(),
            AnyClock::Gv5(_) => ClockKind::Gv5.label(),
            AnyClock::Auto(a) => a.mode().label(),
        }
    }

    /// Is a clock-discipline handoff currently open — switched but not yet
    /// grace-settled (Auto clock only)? While open, the GV1 elision fast
    /// path stays disarmed; correctness never depends on this flag.
    pub fn clock_handoff_pending(&self) -> bool {
        self.shared().auto_clock().is_some_and(|a| !a.settled())
    }

    /// How many lock words are currently held, across every live
    /// generation — a diagnostic: with no transaction mid-commit this must
    /// be 0, however many resizes have happened (no lock may ever be
    /// stranded in a retired table).
    pub fn locked_stripes(&self) -> usize {
        fn locked(t: &dyn LockTable) -> usize {
            (0..t.nstripes())
                .filter(|&s| t.sample_stripe(s).is_locked())
                .count()
        }
        match &self.shared().tables {
            AnyTables::Fixed(t) => locked(t),
            AnyTables::Adaptive(at) => {
                let (_, gen) = at.pin();
                locked(gen.table()) + gen.prev().map_or(0, |p| locked(p))
            }
        }
    }
}

/// TL2 concurrency control (Fig 9) over a [`LockTable`] (or the adaptive
/// multi-generation table) and a [`VersionClock`].
///
/// The `rset`/`wset`/`stripes` vectors live for the life of the handle and
/// are only ever `clear()`ed (in `begin` and at commit), never reallocated:
/// a retried transaction reuses the capacity its first attempt grew.
pub struct Tl2Policy {
    shared: Arc<Tl2Shared>,
    /// Read timestamp `rver` of the current transaction.
    rv: u64,
    rset: Vec<usize>,
    /// Sorted by register index; one entry per register.
    wset: Vec<(usize, u64)>,
    /// Commit-time scratch: deduplicated (generation, stripe) lock words of
    /// the write set. Generation 0 (a retiring table, during an adaptive
    /// migration window) sorts — and therefore locks — first, giving every
    /// committer the same cross-generation acquisition order.
    stripes: Vec<GenStripe>,
    /// Commit-time scratch: lock words more than one of this commit's
    /// registers map to (usually empty). Their writer hints get the
    /// ambiguous sentinel, so later aborts there are not misclassified as
    /// false conflicts.
    shared_stripes: Vec<GenStripe>,
    /// The adaptive-table generation this handle's transactions run
    /// against, re-pinned at begin whenever the generation probe moved.
    /// `None` under fixed storage (and before the first transaction).
    pinned: Option<(u64, Arc<TableGen>)>,
    /// Did the last completed transaction write anything? Drives the buggy
    /// read-only fence elision reproduced from [43].
    last_txn_wrote: bool,
    /// Write timestamp of the last committed transaction (recorder key).
    wver_of_last_commit: u64,
    /// Governor fold state: read-only commits since the last fold. Plain
    /// (non-atomic) handle-local words — a steady-state commit increments
    /// one of these and writes *nothing* another thread could contend on;
    /// the shared [`AutoClock`] is only touched at a window boundary whose
    /// fold leaves the hysteresis band.
    gov_ro: u64,
    /// Governor fold state: writing commits since the last fold.
    gov_wr: u64,
}

/// The lock-table view one transaction runs against: a fixed table, or the
/// pinned adaptive generation (with the retiring parent riding along during
/// a migration window). A free function over the two policy fields — not a
/// method — so the borrow stays field-precise and the hot paths can keep
/// mutating the read/write sets alongside it.
#[derive(Clone, Copy)]
enum Tables<'a> {
    Fixed(&'a AnyLockTable),
    Gen(&'a TableGen),
}

#[inline]
fn tables<'a>(shared: &'a Tl2Shared, pinned: &'a Option<(u64, Arc<TableGen>)>) -> Tables<'a> {
    match &shared.tables {
        AnyTables::Fixed(t) => Tables::Fixed(t),
        AnyTables::Adaptive(_) => {
            let (_, gen) = pinned.as_ref().expect("begin() pins a generation");
            Tables::Gen(gen)
        }
    }
}

impl Tables<'_> {
    /// Sample every live lock word guarding register `x`.
    #[inline]
    fn snap(&self, x: usize) -> StripeSnap {
        match self {
            Tables::Fixed(t) => StripeSnap {
                cur: t.sample(x),
                prev: None,
            },
            Tables::Gen(g) => g.sample(x),
        }
    }

    /// Push the (generation, stripe) address of every lock word guarding
    /// `x` — two during a migration window, one otherwise.
    #[inline]
    fn push_gen_stripes(&self, x: usize, out: &mut Vec<GenStripe>) {
        match self {
            Tables::Fixed(t) => out.push((1, t.stripe_of(x))),
            Tables::Gen(g) => {
                out.push((1, g.table().stripe_of(x)));
                if let Some(p) = g.prev() {
                    out.push((0, p.stripe_of(x)));
                }
            }
        }
    }

    #[inline]
    fn try_lock(&self, (gen, s): GenStripe, owner: u16) -> Result<u64, VLockState> {
        match (self, gen) {
            (Tables::Fixed(t), _) => t.try_lock_stripe(s, owner),
            (Tables::Gen(g), 1) => g.table().try_lock_stripe(s, owner),
            (Tables::Gen(g), _) => g.prev().expect("gen-0 stripe").try_lock_stripe(s, owner),
        }
    }

    #[inline]
    fn unlock(&self, (gen, s): GenStripe) {
        match (self, gen) {
            (Tables::Fixed(t), _) => t.unlock_stripe(s),
            (Tables::Gen(g), 1) => g.table().unlock_stripe(s),
            (Tables::Gen(g), _) => g.prev().expect("gen-0 stripe").unlock_stripe(s),
        }
    }

    #[inline]
    fn unlock_set_version(&self, (gen, s): GenStripe, version: u64) {
        match (self, gen) {
            (Tables::Fixed(t), _) => t.unlock_stripe_set_version(s, version),
            (Tables::Gen(g), 1) => g.table().unlock_stripe_set_version(s, version),
            (Tables::Gen(g), _) => g
                .prev()
                .expect("gen-0 stripe")
                .unlock_stripe_set_version(s, version),
        }
    }

    /// Record `x` as the last committed writer of its stripe(s) — in every
    /// live generation, so the hint survives a migration. Lock words in
    /// `ambiguous` (sorted) received writes for *several* of this commit's
    /// registers: they get the [`WriterHint::Shared`] sentinel instead, so
    /// a later abort there is never misclassified as false.
    #[inline]
    fn record_writer(&self, x: usize, ambiguous: &[GenStripe]) {
        fn record(t: &impl LockTable, gen: u8, x: usize, ambiguous: &[GenStripe]) {
            let s = t.stripe_of(x);
            if ambiguous.binary_search(&(gen, s)).is_ok() {
                t.record_writer_shared(s);
            } else {
                t.record_writer(s, x);
            }
        }
        match self {
            Tables::Fixed(t) => record(*t, 1, x, ambiguous),
            Tables::Gen(g) => {
                record(g.table(), 1, x, ambiguous);
                if let Some(p) = g.prev() {
                    record(p, 0, x, ambiguous);
                }
            }
        }
    }

    /// Advisory classification of an abort on register `x`: a *false*
    /// conflict is one where the failing stripe's last committed writer was
    /// a different *single* register — the two merely share a lock word.
    /// [`WriterHint::Shared`] (multi-register commit) and
    /// [`WriterHint::None`] never classify as false; and because hints are
    /// written at write-back, a conflict with a transaction still
    /// mid-commit is judged against the *previous* commit through the
    /// stripe — a bounded over-count the growth threshold tolerates, never
    /// a correctness issue.
    #[inline]
    fn false_conflict(&self, x: usize) -> bool {
        let hint = match self {
            Tables::Fixed(t) => t.writer_hint(t.stripe_of(x)),
            Tables::Gen(g) => {
                let t = g.table();
                match t.writer_hint(t.stripe_of(x)) {
                    WriterHint::None => g
                        .prev()
                        .map_or(WriterHint::None, |p| p.writer_hint(p.stripe_of(x))),
                    h => h,
                }
            }
        };
        matches!(hint, WriterHint::Register(h) if h != x)
    }

    /// Does lock word `gs` guard register `x`? The re-hash that attributes
    /// a commit-time lock failure back to one of our write-set registers.
    #[inline]
    fn guards(&self, (gen, s): GenStripe, x: usize) -> bool {
        match (self, gen) {
            (Tables::Fixed(t), _) => t.stripe_of(x) == s,
            (Tables::Gen(g), 1) => g.table().stripe_of(x) == s,
            (Tables::Gen(g), _) => g.prev().is_some_and(|p| p.stripe_of(x) == s),
        }
    }
}

/// Release the given lock words (abort paths).
fn release(t: &Tables<'_>, stripes: &[GenStripe]) {
    for &gs in stripes {
        t.unlock(gs);
    }
}

/// Unwind safety net for the commit's lock-holding window: releases every
/// held lock word on drop unless disarmed. Armed from the moment the full
/// write set is locked until the normal unlock loop has run, it guarantees
/// a panic anywhere in between — an injected one at the clock bump or
/// validation, or a genuine bug in write-back — leaves `locked_stripes() ==
/// 0` behind instead of wedging every future committer. Ordinary abort
/// returns ride the same drop.
struct LockGuard<'a, 'b> {
    t: Tables<'b>,
    stripes: &'a [GenStripe],
    armed: bool,
}

impl Drop for LockGuard<'_, '_> {
    fn drop(&mut self) {
        if self.armed {
            release(&self.t, self.stripes);
        }
    }
}

/// Classify an abort on register `x` and feed both the per-handle counter
/// and (under adaptive storage) the table's sliding growth window.
fn note_false_conflict(shared: &Tl2Shared, t: &Tables<'_>, ctx: &mut TxCtx<'_>, x: usize) {
    if t.false_conflict(x) {
        ctx.stats.false_conflicts += 1;
        if let AnyTables::Adaptive(at) = &shared.tables {
            at.note_false_conflict();
        }
    }
}

impl Tl2Policy {
    /// Write timestamp of the most recent committed transaction — the WW
    /// ordering key handed to the opacity checker.
    pub fn last_commit_wver(&self) -> u64 {
        self.wver_of_last_commit
    }

    /// A validation failed because an orec stamp outran this transaction's
    /// `rv`. Under GV5 that stamp may be *ahead of the shared clock* (commits
    /// don't bump it), so simply retrying would re-read the same stale `rv`
    /// and abort forever: advance the global view to the observed stamp so
    /// the retry validates — the "at most one extra false abort per unlucky
    /// reader" cost of GV5. GV1/GV4 stamps never outrun the clock, so their
    /// refresh is a no-op. A real advance writes the shared line and is
    /// counted as a clock bump.
    #[inline]
    fn refresh_on_stale_rv(&self, ctx: &mut TxCtx<'_>, observed: u64) {
        if self.shared.clock.refresh(observed) {
            ctx.stats.clock_bumps += 1;
        }
    }

    /// Commit-epilogue window bookkeeping for adaptive storage: count the
    /// commit and, at a window boundary whose false-conflict rate crosses
    /// the policy threshold, publish a doubled generation (retired through
    /// the runtime's grace engine) — or, when the governor armed the shrink
    /// side, a halved one after the required run of calm windows.
    #[inline]
    fn note_window_commit(&self, ctx: &mut TxCtx<'_>) {
        if let AnyTables::Adaptive(at) = &self.shared.tables {
            if at.note_commit(ctx.rt.grace()) {
                ctx.stats.stripe_resizes += 1;
            }
        }
    }

    /// Commit-epilogue governor bookkeeping: tally the commit's read/write
    /// class into this handle's plain fold counters and, every
    /// [`GOVERNOR_WINDOW`] commits, fold them into a clock-discipline
    /// decision on the shared [`AutoClock`] (no-op under a static clock).
    /// The fold requests GV5 on a write-heavy window and GV1 on a
    /// read-heavy one, with a no-request hysteresis band between; a granted
    /// request opens a grace-fenced handoff, counted in
    /// [`crate::api::Stats::clock_switches`].
    #[inline]
    fn note_governor_commit(&mut self, ctx: &mut TxCtx<'_>, wrote: bool) {
        if wrote {
            ctx.stats.write_commits += 1;
            self.gov_wr += 1;
        } else {
            ctx.stats.read_only_commits += 1;
            self.gov_ro += 1;
        }
        let total = self.gov_ro + self.gov_wr;
        if total < GOVERNOR_WINDOW {
            return;
        }
        let writes = self.gov_wr;
        self.gov_ro = 0;
        self.gov_wr = 0;
        let Some(auto) = self.shared.auto_clock() else {
            return;
        };
        let want = if writes * 100 >= total * WRITE_HEAVY_PCT {
            AutoMode::Gv5
        } else if writes * 100 <= total * READ_HEAVY_PCT {
            AutoMode::Gv1
        } else {
            return; // hysteresis band: keep the current discipline
        };
        if auto.request(want, ctx.rt.grace()) {
            ctx.stats.clock_switches += 1;
            // Trace the decision WITH the fold that justified it, so the
            // flight recorder can answer "why did the clock switch?".
            let tel = ctx.rt.telemetry();
            if tel.enabled() {
                tel.record_event(
                    ctx.slot,
                    EventKind::ClockSwitchRequest {
                        to_gv5: want == AutoMode::Gv5,
                        read_commits: total - writes,
                        write_commits: writes,
                    },
                );
            }
        }
    }
}

impl Policy for Tl2Policy {
    fn begin(&mut self, ctx: &mut TxCtx<'_>) {
        match &self.shared.tables {
            AnyTables::Fixed(t) => ctx.stats.current_stripes = t.nstripes() as u64,
            AnyTables::Adaptive(at) => {
                // If our pinned generation carries a retiring parent, give
                // the migration one (non-blocking) driving step — this is
                // what completes rehashes under plain transaction traffic,
                // with no fences and no background driver in the picture.
                if self
                    .pinned
                    .as_ref()
                    .is_some_and(|(_, g)| g.prev().is_some())
                {
                    at.poll_migration();
                }
                // Pin (or re-pin) the generation this transaction will lock
                // and validate against. The epoch slot was entered before
                // `begin` (see the runtime), so a publish we raced either
                // sees us in its grace period's snapshot or we observe its
                // new generation probe — never neither.
                at.repin(&mut self.pinned);
                ctx.stats.current_stripes =
                    self.pinned.as_ref().map_or(0, |(_, g)| g.nstripes()) as u64;
            }
        }
        // Under the Auto clock, give an open discipline handoff one
        // non-blocking driving step — the cooperative-mode mirror of the
        // migration poll above, and what re-arms the GV1 elision fast path
        // after a switch. The settled check is one atomic load, so a
        // settled clock (the steady state) pays nothing here.
        if let Some(auto) = self.shared.auto_clock() {
            if !auto.settled() {
                auto.poll_settle();
            }
        }
        self.rv = self.shared.clock.read_stamp();
        self.rset.clear();
        self.wset.clear();
    }

    fn read(&mut self, ctx: &mut TxCtx<'_>, x: usize) -> Result<u64, Abort> {
        // Read-only transactions are the common case: don't even probe the
        // write set until something has been written.
        if !self.wset.is_empty() {
            if let Ok(i) = self.wset.binary_search_by_key(&x, |&(r, _)| r) {
                return Ok(self.wset[i].1);
            }
        }
        // Fig 9 lines 17–23: ver, value, lock, ver again (at stripe
        // granularity: any commit to a stripe-sharing register aborts us —
        // conservative, never unsound). During an adaptive migration window
        // the snap spans both generations, so a commit through either
        // table is observed.
        let t = tables(&self.shared, &self.pinned);
        let s1 = t.snap(x);
        let val = ctx.rt.load(x);
        let s2 = t.snap(x);
        if s2.is_locked() || s1 != s2 || self.rv < s2.version_max() {
            if self.rv < s2.version_max() {
                self.refresh_on_stale_rv(ctx, s2.version_max());
            }
            note_false_conflict(&self.shared, &t, ctx, x);
            ctx.stats.aborts_read += 1;
            return Err(Abort);
        }
        // A forced abort here is indistinguishable from the version check
        // above catching an intervening commit.
        if ctx.rt.chaos_abort(ctx.slot, Site::Validate) {
            ctx.stats.aborts_read += 1;
            return Err(Abort);
        }
        self.rset.push(x);
        Ok(val)
    }

    fn write(&mut self, _ctx: &mut TxCtx<'_>, x: usize, v: u64) -> Result<(), Abort> {
        match self.wset.binary_search_by_key(&x, |&(r, _)| r) {
            Ok(i) => self.wset[i].1 = v,
            Err(i) => self.wset.insert(i, (x, v)),
        }
        Ok(())
    }

    fn commit(&mut self, ctx: &mut TxCtx<'_>) -> Result<(), Abort> {
        if self.wset.is_empty() {
            // Read-only: every read was already validated against `rv` at
            // read time (Fig 9 lines 17–23), so the snapshot is consistent;
            // classic TL2 skips the clock bump and lock phase entirely.
            self.last_txn_wrote = false;
            self.note_window_commit(ctx);
            self.note_governor_commit(ctx, false);
            return Ok(());
        }
        let t = tables(&self.shared, &self.pinned);
        // Lock the write set's lock words (deduplicated, sorted order;
        // trylock-or-abort per Fig 7). During an adaptive migration window
        // every register contributes its stripe in *both* generations —
        // retiring-table words sort first, so all committers acquire
        // cross-generation locks in the same order.
        self.stripes.clear();
        for &(x, _) in &self.wset {
            t.push_gen_stripes(x, &mut self.stripes);
        }
        self.stripes.sort_unstable();
        // Lock words several of our registers map to (pre-dedup
        // duplicates): their writer hints become ambiguous at write-back,
        // never a single register.
        self.shared_stripes.clear();
        for w in self.stripes.windows(2) {
            if w[0] == w[1] && self.shared_stripes.last() != Some(&w[0]) {
                self.shared_stripes.push(w[0]);
            }
        }
        self.stripes.dedup();
        // Abort paths need no `last_txn_wrote` update here: the runtime
        // calls `rollback` on every abort, which performs it.
        for (taken, &gs) in self.stripes.iter().enumerate() {
            // A forced abort here is indistinguishable from losing the
            // trylock race below: release what we took, walk the same path.
            if ctx.rt.chaos_abort(ctx.slot, Site::LockAcquire) {
                release(&t, &self.stripes[..taken]);
                ctx.stats.aborts_lock += 1;
                return Err(Abort);
            }
            if t.try_lock(gs, ctx.slot).is_err() {
                release(&t, &self.stripes[..taken]);
                // Re-hash the failed lock word back to one of our write-set
                // registers to classify the conflict.
                if let Some(&(x, _)) = self.wset.iter().find(|&&(x, _)| t.guards(gs, x)) {
                    note_false_conflict(&self.shared, &t, ctx, x);
                }
                ctx.stats.aborts_lock += 1;
                return Err(Abort);
            }
        }
        // Every lock word is held from here on: arm the unwind safety net.
        // Abort returns below drop it armed (releasing the set); the normal
        // path disarms it right after the unlock loop.
        let mut locks = LockGuard {
            t,
            stripes: &self.stripes,
            armed: true,
        };
        // wver := the clock backend's write stamp (Fig 7 line 19 is the GV1
        // `fetch_and_increment`; GV4 may adopt a concurrent winner's stamp,
        // GV5 stamps from a slot-local delta without touching the shared
        // line). Must happen after the locks above: the exclusivity proof
        // below relies on every concurrent writer holding its locks before
        // sampling the clock.
        ctx.rt.chaos_delay(Site::ClockBump);
        let stamp = self.shared.clock.write_stamp(ctx.slot, self.rv);
        ctx.stats.clock_bumps += u64::from(stamp.bumped);
        let wver = stamp.wver;
        if stamp.exclusive {
            // Validation elision: we advanced the clock rv → rv + 1
            // ourselves, so no other writer acquired a stamp — bumped *or*
            // adopted — since our begin. Any writer already mid-commit at
            // our begin took its locks before its (≤ rv) stamp, so a read
            // that overlapped it sampled a locked orec and aborted at read
            // time. (Cross-generation commits lock every table we sample,
            // so the argument survives adaptive resizes.) The read set is
            // therefore exactly as validated at read time: skip the
            // re-validation loop.
            debug_assert_eq!(wver, self.rv + 1);
            ctx.stats.validation_elisions += 1;
        } else {
            // A forced abort here is indistinguishable from the loop below
            // finding an intervening commit; the armed guard releases the
            // whole lock set on return.
            if ctx.rt.chaos_abort(ctx.slot, Site::Validate) {
                ctx.stats.aborts_validate += 1;
                return Err(Abort);
            }
            // Validate the read set (lines 20–26). A stripe we hold
            // ourselves still fails on `rv < version` if someone committed
            // to it between our read and our lock acquisition. The armed
            // `locks` guard releases the lock set on the abort return.
            for &x in &self.rset {
                let s = t.snap(x);
                if s.is_locked_by_other(ctx.slot) || self.rv < s.version_max() {
                    if self.rv < s.version_max() {
                        self.refresh_on_stale_rv(ctx, s.version_max());
                    }
                    note_false_conflict(&self.shared, &t, ctx, x);
                    ctx.stats.aborts_validate += 1;
                    return Err(Abort);
                }
            }
        }
        // Write back, then release every lock word with the new version
        // (lines 27–30); the writer hints recorded here (while the locks
        // are still held) are what classifies later conflicts on these
        // stripes as false or real.
        for &(x, v) in &self.wset {
            ctx.rt.store(x, v);
            t.record_writer(x, &self.shared_stripes);
        }
        for &gs in &self.stripes {
            t.unlock_set_version(gs, wver);
        }
        // Locks are released; disarm (and end) the unwind guard before the
        // epilogue below re-borrows `self` mutably.
        locks.armed = false;
        drop(locks);
        // The read-only case early-returned above, so this commit wrote.
        self.last_txn_wrote = true;
        self.wver_of_last_commit = wver;
        self.note_window_commit(ctx);
        self.note_governor_commit(ctx, true);
        Ok(())
    }

    fn rollback(&mut self, _ctx: &mut TxCtx<'_>) {
        self.last_txn_wrote = !self.wset.is_empty();
    }
}

impl Handle<Tl2Policy> {
    /// Write timestamp of the most recent committed transaction.
    pub fn last_commit_wver(&self) -> u64 {
        self.policy().last_commit_wver()
    }

    /// The *buggy* fence: skipped entirely if this thread's last transaction
    /// was read-only — the GCC libitm bug class (\[43\], paper Sec 1). Exposed
    /// so tests and examples can demonstrate the violation on real hardware.
    pub fn fence_elide_after_read_only(&mut self) {
        if self.policy().last_txn_wrote {
            self.fence();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Stats;
    use crate::clock::ClockKind;

    /// Run every TL2 unit scenario against all storage backends (fixed
    /// striped, adaptive — with a hair-trigger growth policy so resizes
    /// happen mid-scenario — and per-register under all three clocks): the
    /// policy must be agnostic to both axes.
    fn backends(nregs: usize, nthreads: usize) -> Vec<Tl2Stm> {
        use crate::storage::AdaptivePolicy;
        let mut stms = vec![
            Tl2Stm::with_config(StmConfig::new(nregs, nthreads).striped(4)),
            Tl2Stm::with_config(
                StmConfig::new(nregs, nthreads).adaptive_stripes(AdaptivePolicy {
                    start: 1,
                    max: 16,
                    threshold: 0,
                    window: 4,
                }),
            ),
        ];
        for clock in ClockKind::ALL {
            stms.push(Tl2Stm::with_config(
                StmConfig::new(nregs, nthreads).clock(clock),
            ));
        }
        // The fully-governed configuration: seeded adaptive storage plus
        // the switchable Auto clock. Scenarios must be oblivious to any
        // mid-run reconfiguration the governor performs.
        stms.push(Tl2Stm::with_config(StmConfig::auto(nregs, nthreads)));
        stms
    }

    #[test]
    fn single_thread_read_write() {
        for stm in backends(4, 1) {
            let mut h = stm.handle(0);
            let out = h.atomic(|tx| {
                tx.write(0, 11)?;
                tx.write(1, 22)?;
                let a = tx.read(0)?;
                let b = tx.read(1)?;
                Ok(a + b)
            });
            assert_eq!(out, 33);
            assert_eq!(stm.peek(0), 11);
            assert_eq!(stm.peek(1), 22);
            assert_eq!(h.stats().commits, 1);
        }
    }

    #[test]
    fn user_abort_discards_writes() {
        for stm in backends(1, 1) {
            let mut h = stm.handle(0);
            let r: Result<(), Abort> = h.try_atomic(|tx| {
                tx.write(0, 5)?;
                Err(Abort)
            });
            assert_eq!(r, Err(Abort));
            assert_eq!(stm.peek(0), 0);
            assert_eq!(h.stats().aborts_user, 1);
            // The handle is reusable afterwards.
            h.atomic(|tx| tx.write(0, 7));
            assert_eq!(stm.peek(0), 7);
        }
    }

    #[test]
    fn direct_access_and_fence() {
        for stm in backends(2, 1) {
            let mut h = stm.handle(0);
            h.write_direct(0, 9);
            assert_eq!(h.read_direct(0), 9);
            h.fence(); // no active transactions: immediate
            assert_eq!(h.stats().fences, 1);
            assert_eq!(h.stats().direct_reads, 1);
            assert_eq!(h.stats().direct_writes, 1);
        }
    }

    #[test]
    fn conflicting_writers_serialize() {
        for stm in backends(1, 4) {
            std::thread::scope(|s| {
                for t in 0..4 {
                    let stm = stm.clone();
                    s.spawn(move || {
                        let mut h = stm.handle(t);
                        for _ in 0..1000 {
                            h.atomic(|tx| {
                                let v = tx.read(0)?;
                                tx.write(0, v + 1)
                            });
                        }
                    });
                }
            });
            assert_eq!(stm.peek(0), 4000);
        }
    }

    #[test]
    fn duplicate_stripe_write_sets_commit() {
        // With one stripe, every register shares the lock word: commit must
        // dedup instead of self-deadlocking or double-unlocking.
        let stm = Tl2Stm::with_config(StmConfig::new(8, 1).striped(1));
        assert_eq!(stm.nstripes(), 1);
        let mut h = stm.handle(0);
        h.atomic(|tx| {
            for x in 0..8 {
                tx.write(x, x as u64 + 1)?;
            }
            Ok(())
        });
        for x in 0..8 {
            assert_eq!(stm.peek(x), x as u64 + 1);
        }
        assert_eq!(h.stats().commits, 1);
    }

    #[test]
    fn bank_invariant_with_readers() {
        const ACCOUNTS: usize = 8;
        const TOTAL: u64 = 8000;
        for stm in backends(ACCOUNTS, 4) {
            {
                let mut h = stm.handle(0);
                h.atomic(|tx| {
                    for a in 0..ACCOUNTS {
                        tx.write(a, TOTAL / ACCOUNTS as u64)?;
                    }
                    Ok(())
                });
            }
            std::thread::scope(|s| {
                // Transfer threads.
                for t in 0..3 {
                    let stm = stm.clone();
                    s.spawn(move || {
                        let mut h = stm.handle(t);
                        let mut rng = t as u64 + 1;
                        for _ in 0..2000 {
                            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                            let from = (rng >> 33) as usize % ACCOUNTS;
                            let to = (rng >> 13) as usize % ACCOUNTS;
                            h.atomic(|tx| {
                                let a = tx.read(from)?;
                                let b = tx.read(to)?;
                                if from != to && a > 0 {
                                    tx.write(from, a - 1)?;
                                    tx.write(to, b + 1)?;
                                }
                                Ok(())
                            });
                        }
                    });
                }
                // Auditor: the sum must be constant in every snapshot.
                let stm2 = stm.clone();
                s.spawn(move || {
                    let mut h = stm2.handle(3);
                    for _ in 0..500 {
                        let sum = h.atomic(|tx| {
                            let mut s = 0u64;
                            for a in 0..ACCOUNTS {
                                s += tx.read(a)?;
                            }
                            Ok(s)
                        });
                        assert_eq!(sum, TOTAL, "opacity violation: inconsistent audit");
                    }
                });
            });
        }
    }

    #[test]
    fn fence_provides_privatization_safety() {
        // Privatization stress: t0 privatizes reg 1 via flag reg 0, fences,
        // writes it non-transactionally, publishes back. t1 writes reg 1
        // transactionally while unprivatized. The fenced protocol must never
        // lose t0's non-transactional write.
        for stm in backends(2, 2) {
            let rounds = 3000;
            std::thread::scope(|s| {
                let stm0 = stm.clone();
                let owner = s.spawn(move || {
                    let mut h = stm0.handle(0);
                    let mut lost = 0u64;
                    for i in 1..=rounds {
                        h.atomic(|tx| tx.write(0, 1)); // privatize
                        h.fence();
                        let marker = 0x8000_0000_0000_0000 | i;
                        h.write_direct(1, marker);
                        if h.read_direct(1) != marker {
                            lost += 1;
                        }
                        h.atomic(|tx| tx.write(0, 2)); // publish back (flag != 1)
                        h.fence();
                    }
                    lost
                });
                let stm1 = stm.clone();
                s.spawn(move || {
                    let mut h = stm1.handle(1);
                    for i in 1..=rounds {
                        h.atomic(|tx| {
                            let flag = tx.read(0)?;
                            if flag != 1 {
                                tx.write(1, i)?;
                            }
                            Ok(())
                        });
                    }
                });
                assert_eq!(owner.join().unwrap(), 0, "fenced privatization lost writes");
            });
        }
    }

    #[test]
    fn uncontended_writer_elides_validation() {
        // Single thread, GV1/GV4: every writing commit advances the clock
        // rv → rv + 1 exclusively, so commit-time re-validation must be
        // skipped every time — even when the read set is non-empty.
        for clock in [ClockKind::Gv1, ClockKind::Gv4] {
            let stm = Tl2Stm::with_config(StmConfig::new(4, 1).clock(clock));
            let mut h = stm.handle(0);
            for i in 0..3 {
                h.atomic(|tx| {
                    let v = tx.read(0)?;
                    tx.write(1, v + i)?;
                    tx.write(0, i + 1)
                });
            }
            let s = h.stats();
            assert_eq!(s.commits, 3, "{}", clock.label());
            assert!(
                s.validation_elisions >= 1,
                "{}: wver == rv + 1 must elide validation: {s:?}",
                clock.label()
            );
            assert_eq!(
                s.validation_elisions,
                3,
                "{}: every uncontended commit is exclusive",
                clock.label()
            );
            assert_eq!(s.clock_bumps, 3, "{}: one bump per commit", clock.label());
        }
    }

    #[test]
    fn gv5_commits_do_not_bump_and_never_elide() {
        let stm = Tl2Stm::with_config(StmConfig::new(4, 1).clock(ClockKind::Gv5));
        let mut h = stm.handle(0);
        for i in 0..5 {
            h.atomic(|tx| tx.write(0, i + 1));
        }
        let s = h.stats();
        assert_eq!(s.commits, 5);
        assert_eq!(s.clock_bumps, 0, "gv5 commits stay off the shared line");
        assert_eq!(
            s.validation_elisions, 0,
            "gv5 never proves exclusivity, so it may never elide"
        );
    }

    #[test]
    fn gv5_trailing_reader_pays_one_false_abort_then_validates() {
        // Deterministic, single-threaded: slot 0 commits (stamps run ahead
        // of the never-bumped global clock), then a fresh handle's reading
        // transaction starts with a stale rv, takes exactly one false
        // abort — which refreshes the shared clock — and succeeds on retry.
        let stm = Tl2Stm::with_config(StmConfig::new(2, 2).clock(ClockKind::Gv5));
        let mut w = stm.handle(0);
        for i in 0..3 {
            w.atomic(|tx| tx.write(0, 100 + i));
        }
        let mut r = stm.handle(1);
        let v = r.atomic(|tx| tx.read(0));
        assert_eq!(v, 102);
        let s = r.stats();
        assert_eq!(
            s.aborts_read, 1,
            "exactly one false abort for the trailing reader: {s:?}"
        );
        assert_eq!(s.retries, 1);
        assert_eq!(
            s.clock_bumps, 1,
            "the false abort refreshes the shared clock once"
        );
        // The refreshed view is shared: a second reader pays nothing.
        let mut r2 = stm.handle(1);
        r2.atomic(|tx| tx.read(0));
        assert_eq!(
            r2.stats().aborts_read,
            0,
            "refresh is global, not per-handle"
        );
    }

    #[test]
    fn read_only_commits_keep_clock_untouched_under_all_clocks() {
        for clock in ClockKind::ALL {
            let stm = Tl2Stm::with_config(StmConfig::new(2, 1).clock(clock));
            let mut h = stm.handle(0);
            for _ in 0..4 {
                h.atomic(|tx| tx.read(0));
            }
            let s = h.stats();
            assert_eq!(s.commits, 4, "{}", clock.label());
            assert_eq!(
                s.clock_bumps,
                0,
                "{}: read-only commits never stamp",
                clock.label()
            );
            assert_eq!(s.aborts_total(), 0, "{}", clock.label());
        }
    }

    /// A commit writing several registers through ONE stripe must hint the
    /// ambiguous sentinel, so a conflict with any of its registers is NOT
    /// classified false — the review-grade case where hint-by-last-register
    /// would misreport a real conflict as stripe sharing.
    #[test]
    fn multi_register_commit_conflicts_are_not_false() {
        use crate::storage::WriterHint;
        use std::sync::Barrier;
        let stm = Tl2Stm::with_config(StmConfig::new(4, 2).striped(1));
        {
            // Writer commits registers 0 AND 1 through the single stripe:
            // the hint must be Shared, not Register(1).
            let mut w = stm.handle(0);
            w.atomic(|tx| {
                tx.write(0, 5)?;
                tx.write(1, 6)
            });
            match &stm.shared().tables {
                AnyTables::Fixed(t) => {
                    assert_eq!(t.writer_hint(0), WriterHint::Shared);
                }
                AnyTables::Adaptive(_) => unreachable!("fixed config"),
            }
        }
        // Force a conflict: reader samples register 0, parks; the writer
        // commits registers 0+1 again. The reader's abort is a REAL
        // conflict (register 0 was written) and must not count as false.
        let after_read = std::sync::Arc::new(Barrier::new(2));
        let after_commit = std::sync::Arc::new(Barrier::new(2));
        let stats = std::thread::scope(|s| {
            let stm1 = stm.clone();
            let (b1, b2) = (Arc::clone(&after_read), Arc::clone(&after_commit));
            let reader = s.spawn(move || {
                let mut h = stm1.handle(1);
                let mut first = true;
                h.atomic(|tx| {
                    let v = tx.read(0)?;
                    if first {
                        first = false;
                        b1.wait();
                        b2.wait();
                    }
                    tx.write(3, v + 1)
                });
                h.stats()
            });
            let mut w = stm.handle(0);
            after_read.wait();
            w.atomic(|tx| {
                tx.write(0, 50)?;
                tx.write(1, 60)
            });
            after_commit.wait();
            reader.join().unwrap()
        });
        assert_eq!(stats.retries, 1, "{stats:?}");
        assert_eq!(
            stats.false_conflicts, 0,
            "a conflict with a multi-register commit that really wrote the \
             read register must not classify as false: {stats:?}"
        );
        assert_eq!(stm.peek(3), 51);
    }

    #[test]
    fn commit_mix_counters_split_by_write_set() {
        for stm in backends(2, 1) {
            let mut h = stm.handle(0);
            h.atomic(|tx| tx.read(0)); // read-only
            h.atomic(|tx| tx.write(0, 1)); // writing
            h.atomic(|tx| {
                let v = tx.read(0)?;
                tx.write(1, v + 1) // writing (read+write)
            });
            let s = h.stats();
            assert_eq!(s.commits, 3);
            assert_eq!(s.read_only_commits, 1, "{s:?}");
            assert_eq!(s.write_commits, 2, "{s:?}");
        }
    }

    /// The governor's clock fold: a write-heavy window under the Auto clock
    /// switches the discipline to GV5 (counted in `Stats::clock_switches`),
    /// and after the grace-fenced handoff settles, a read-heavy window
    /// switches it back to GV1 — all with cooperative driving only.
    #[test]
    fn governor_switches_clock_both_ways() {
        let stm = Tl2Stm::with_config(StmConfig::auto(4, 1));
        assert_eq!(stm.clock_mode_label(), "gv1", "auto starts as GV1");
        let mut h = stm.handle(0);
        for i in 0..GOVERNOR_WINDOW {
            h.atomic(|tx| tx.write(0, i + 1));
        }
        assert_eq!(h.stats().clock_switches, 1, "write-heavy fold -> GV5");
        assert_eq!(stm.clock_mode_label(), "gv5");
        assert_eq!(stm.clock_switches(), 1);
        // Read-heavy traffic: begins poll the handoff settled, then the
        // next fold switches back.
        let mut folds = 0;
        while stm.clock_mode_label() == "gv5" {
            for _ in 0..GOVERNOR_WINDOW {
                h.atomic(|tx| tx.read(0));
            }
            folds += 1;
            assert!(folds < 64, "read-heavy folds must re-install GV1");
        }
        assert_eq!(stm.clock_mode_label(), "gv1");
        assert_eq!(h.stats().clock_switches, 2, "{:?}", h.stats());
        // Drive the second handoff settled too: once it is, the GV1
        // elision fast path is re-armed.
        while stm.clock_handoff_pending() {
            h.atomic(|tx| tx.read(0));
        }
        let before = h.stats().validation_elisions;
        h.atomic(|tx| tx.write(1, 7));
        assert_eq!(
            h.stats().validation_elisions,
            before + 1,
            "a settled GV1 discipline must elide again: {:?}",
            h.stats()
        );
    }

    #[test]
    fn retries_are_counted_on_conflict() {
        // Deterministic conflict (barriers, so it also works on one core):
        // t1 reads reg 0 and pauses; t0 commits a write to reg 0; t1's
        // commit-time validation must fail once, and the shared retry loop
        // must surface that as one counted, backed-off retry.
        use std::sync::Barrier;
        let stm = Tl2Stm::new(2, 2);
        let after_read = Arc::new(Barrier::new(2));
        let after_commit = Arc::new(Barrier::new(2));
        let stats: Stats = std::thread::scope(|s| {
            let stm1 = stm.clone();
            let (b1, b2) = (Arc::clone(&after_read), Arc::clone(&after_commit));
            let reader = s.spawn(move || {
                let mut h = stm1.handle(1);
                let mut first = true;
                h.atomic(|tx| {
                    let v = tx.read(0)?;
                    if first {
                        first = false;
                        b1.wait();
                        b2.wait();
                    }
                    tx.write(1, v + 1)
                });
                h.stats()
            });
            let mut h0 = stm.handle(0);
            after_read.wait();
            h0.atomic(|tx| tx.write(0, 99));
            after_commit.wait();
            reader.join().unwrap()
        });
        assert_eq!(stm.peek(1), 100, "retry must observe the new value");
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.retries, 1, "exactly one forced conflict: {stats:?}");
        assert_eq!(stats.aborts_validate, 1);
        assert_eq!(stats.retries, stats.aborts_total());
        assert!(stats.backoff_ns > 0, "the retry must charge backoff time");
    }
}
