//! The concurrent TL2 STM (paper Fig 9) as a [`Policy`] over the shared
//! [`crate::runtime`], with RCU-style transactional fences.
//!
//! Globally: a pluggable version clock ([`crate::clock`], selected via
//! [`StmConfig::clock`]: GV1 `fetch_add`, GV4 CAS-with-adopt, or GV5
//! slot-local deltas) and a pluggable [`LockTable`] of versioned
//! write-locks — one per register ([`crate::storage::PerRegisterTable`]) or
//! a striped orec table ([`crate::storage::StripedTable`]), selected via
//! [`StmConfig::storage`]. Transactions buffer writes, validate reads
//! against their read timestamp, lock the *stripes* of their write set at
//! commit (deduplicated, in sorted order), re-validate, then write back.
//! Commit-time re-validation is *elided* when the clock proves no
//! concurrent commit intervened (an exclusive `rv → rv + 1` bump — the
//! classic TL2 fast path), counted in
//! [`crate::api::Stats::validation_elisions`]; every write to the shared
//! clock line is counted in [`crate::api::Stats::clock_bumps`].
//!
//! Striping trades metadata footprint for false conflicts: registers that
//! share a stripe conflict even when disjoint. That is always conservative —
//! the stripe version check can only abort more — so every correctness
//! claim checked on recorded histories holds for both backends (see the
//! conformance suite and the `striped_conflicts` integration test).
//!
//! Non-transactional accesses ([`StmHandle::read_direct`] /
//! [`StmHandle::write_direct`]) are single uninstrumented atomic accesses —
//! they do not touch versions or locks, exactly the setting the paper's DRF
//! discipline governs. Without fences they reproduce the delayed-commit and
//! doomed-transaction anomalies on real hardware (see `tests/` and the
//! `privatization` example).
//!
//! Memory ordering: all TM metadata and data accesses use `SeqCst`. The
//! interesting claims about this STM are checked by recording histories and
//! running the strong-opacity checker, not argued from orderings; `SeqCst`
//! keeps the recorded-order argument simple. (Benchmark comparisons between
//! fence policies are unaffected: all variants pay the same cost.)

use crate::api::{Abort, StmHandle};
use crate::clock::{AnyClock, VersionClock};
use crate::runtime::{Handle, Policy, PolicyKind, Stm, StmConfig, TxCtx};
use crate::storage::{AnyLockTable, LockTable};
use std::sync::Arc;

/// TL2 state shared by all handles of one instance: the global version
/// clock and the ownership-record table.
pub struct Tl2Shared {
    /// Enums, not `Box<dyn …>`: lock-word sampling and stamp acquisition
    /// sit on the transactional hot paths and must stay inlinable.
    clock: AnyClock,
    table: AnyLockTable,
}

/// TL2's [`PolicyKind`]: [`StmConfig::storage`] selects per-register vs
/// striped orec locks.
pub struct Tl2Kind;

impl PolicyKind for Tl2Kind {
    type Policy = Tl2Policy;
    type Shared = Tl2Shared;

    fn build_shared(cfg: &StmConfig) -> Tl2Shared {
        Tl2Shared {
            clock: cfg.clock.build(cfg.nthreads),
            table: cfg.storage.build(cfg.nregs),
        }
    }

    fn build_policy(shared: &Arc<Tl2Shared>) -> Tl2Policy {
        Tl2Policy {
            shared: Arc::clone(shared),
            rv: 0,
            rset: Vec::new(),
            wset: Vec::new(),
            stripes: Vec::new(),
            last_txn_wrote: false,
            wver_of_last_commit: 0,
        }
    }
}

/// The shared TL2 instance. Create per-thread handles with [`Stm::handle`].
pub type Tl2Stm = Stm<Tl2Kind>;

/// Per-thread TL2 context.
pub type Tl2Handle = Handle<Tl2Policy>;

impl Stm<Tl2Kind> {
    /// Number of distinct lock words in the storage backend.
    pub fn nstripes(&self) -> usize {
        self.shared().table.nstripes()
    }

    /// The stripe guarding register `x` (for constructing stripe-collision
    /// scenarios in tests and litmus programs).
    pub fn stripe_of(&self, x: usize) -> usize {
        self.shared().table.stripe_of(x)
    }
}

/// TL2 concurrency control (Fig 9) over a [`LockTable`] and a
/// [`VersionClock`].
///
/// The `rset`/`wset`/`stripes` vectors live for the life of the handle and
/// are only ever `clear()`ed (in `begin` and at commit), never reallocated:
/// a retried transaction reuses the capacity its first attempt grew.
pub struct Tl2Policy {
    shared: Arc<Tl2Shared>,
    /// Read timestamp `rver` of the current transaction.
    rv: u64,
    rset: Vec<usize>,
    /// Sorted by register index; one entry per register.
    wset: Vec<(usize, u64)>,
    /// Commit-time scratch: deduplicated stripes of the write set.
    stripes: Vec<usize>,
    /// Did the last completed transaction write anything? Drives the buggy
    /// read-only fence elision reproduced from [43].
    last_txn_wrote: bool,
    /// Write timestamp of the last committed transaction (recorder key).
    wver_of_last_commit: u64,
}

impl Tl2Policy {
    /// Write timestamp of the most recent committed transaction — the WW
    /// ordering key handed to the opacity checker.
    pub fn last_commit_wver(&self) -> u64 {
        self.wver_of_last_commit
    }

    fn release_stripes(&self, taken: usize) {
        for &s in &self.stripes[..taken] {
            self.shared.table.unlock_stripe(s);
        }
    }

    /// A validation failed because an orec stamp outran this transaction's
    /// `rv`. Under GV5 that stamp may be *ahead of the shared clock* (commits
    /// don't bump it), so simply retrying would re-read the same stale `rv`
    /// and abort forever: advance the global view to the observed stamp so
    /// the retry validates — the "at most one extra false abort per unlucky
    /// reader" cost of GV5. GV1/GV4 stamps never outrun the clock, so their
    /// refresh is a no-op. A real advance writes the shared line and is
    /// counted as a clock bump.
    #[inline]
    fn refresh_on_stale_rv(&self, ctx: &mut TxCtx<'_>, observed: u64) {
        if self.shared.clock.refresh(observed) {
            ctx.stats.clock_bumps += 1;
        }
    }
}

impl Policy for Tl2Policy {
    fn begin(&mut self, _ctx: &mut TxCtx<'_>) {
        self.rv = self.shared.clock.read_stamp();
        self.rset.clear();
        self.wset.clear();
    }

    fn read(&mut self, ctx: &mut TxCtx<'_>, x: usize) -> Result<u64, Abort> {
        // Read-only transactions are the common case: don't even probe the
        // write set until something has been written.
        if !self.wset.is_empty() {
            if let Ok(i) = self.wset.binary_search_by_key(&x, |&(r, _)| r) {
                return Ok(self.wset[i].1);
            }
        }
        // Fig 9 lines 17–23: ver, value, lock, ver again (at stripe
        // granularity: any commit to a stripe-sharing register aborts us —
        // conservative, never unsound).
        let table = &self.shared.table;
        let s1 = table.sample(x);
        let val = ctx.rt.load(x);
        let s2 = table.sample(x);
        if s2.is_locked() || s1 != s2 || self.rv < s2.version {
            if self.rv < s2.version {
                self.refresh_on_stale_rv(ctx, s2.version);
            }
            ctx.stats.aborts_read += 1;
            return Err(Abort);
        }
        self.rset.push(x);
        Ok(val)
    }

    fn write(&mut self, _ctx: &mut TxCtx<'_>, x: usize, v: u64) -> Result<(), Abort> {
        match self.wset.binary_search_by_key(&x, |&(r, _)| r) {
            Ok(i) => self.wset[i].1 = v,
            Err(i) => self.wset.insert(i, (x, v)),
        }
        Ok(())
    }

    fn commit(&mut self, ctx: &mut TxCtx<'_>) -> Result<(), Abort> {
        if self.wset.is_empty() {
            // Read-only: every read was already validated against `rv` at
            // read time (Fig 9 lines 17–23), so the snapshot is consistent;
            // classic TL2 skips the clock bump and lock phase entirely.
            self.last_txn_wrote = false;
            return Ok(());
        }
        let table = &self.shared.table;
        // Lock the write set's stripes (deduplicated, sorted order;
        // trylock-or-abort per Fig 7).
        self.stripes.clear();
        self.stripes
            .extend(self.wset.iter().map(|&(x, _)| table.stripe_of(x)));
        self.stripes.sort_unstable();
        self.stripes.dedup();
        // Abort paths need no `last_txn_wrote` update here: the runtime
        // calls `rollback` on every abort, which performs it.
        for (taken, &s) in self.stripes.iter().enumerate() {
            if table.try_lock_stripe(s, ctx.slot).is_err() {
                self.release_stripes(taken);
                ctx.stats.aborts_lock += 1;
                return Err(Abort);
            }
        }
        // wver := the clock backend's write stamp (Fig 7 line 19 is the GV1
        // `fetch_and_increment`; GV4 may adopt a concurrent winner's stamp,
        // GV5 stamps from a slot-local delta without touching the shared
        // line). Must happen after the locks above: the exclusivity proof
        // below relies on every concurrent writer holding its locks before
        // sampling the clock.
        let stamp = self.shared.clock.write_stamp(ctx.slot, self.rv);
        ctx.stats.clock_bumps += u64::from(stamp.bumped);
        let wver = stamp.wver;
        if stamp.exclusive {
            // Validation elision: we advanced the clock rv → rv + 1
            // ourselves, so no other writer acquired a stamp — bumped *or*
            // adopted — since our begin. Any writer already mid-commit at
            // our begin took its locks before its (≤ rv) stamp, so a read
            // that overlapped it sampled a locked orec and aborted at read
            // time. The read set is therefore exactly as validated at read
            // time: skip the re-validation loop.
            debug_assert_eq!(wver, self.rv + 1);
            ctx.stats.validation_elisions += 1;
        } else {
            // Validate the read set (lines 20–26). A stripe we hold
            // ourselves still fails on `rv < version` if someone committed
            // to it between our read and our lock acquisition.
            for &x in &self.rset {
                let s = table.sample(x);
                if s.is_locked_by_other(ctx.slot) || self.rv < s.version {
                    self.release_stripes(self.stripes.len());
                    if self.rv < s.version {
                        self.refresh_on_stale_rv(ctx, s.version);
                    }
                    ctx.stats.aborts_validate += 1;
                    return Err(Abort);
                }
            }
        }
        // Write back, then release every stripe with the new version
        // (lines 27–30).
        for &(x, v) in &self.wset {
            ctx.rt.store(x, v);
        }
        for &s in &self.stripes {
            table.unlock_stripe_set_version(s, wver);
        }
        // The read-only case early-returned above, so this commit wrote.
        self.last_txn_wrote = true;
        self.wver_of_last_commit = wver;
        Ok(())
    }

    fn rollback(&mut self, _ctx: &mut TxCtx<'_>) {
        self.last_txn_wrote = !self.wset.is_empty();
    }
}

impl Handle<Tl2Policy> {
    /// Write timestamp of the most recent committed transaction.
    pub fn last_commit_wver(&self) -> u64 {
        self.policy().last_commit_wver()
    }

    /// The *buggy* fence: skipped entirely if this thread's last transaction
    /// was read-only — the GCC libitm bug class (\[43\], paper Sec 1). Exposed
    /// so tests and examples can demonstrate the violation on real hardware.
    pub fn fence_elide_after_read_only(&mut self) {
        if self.policy().last_txn_wrote {
            self.fence();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Stats;
    use crate::clock::ClockKind;

    /// Run every TL2 unit scenario against both storage backends and all
    /// three clock backends: the policy must be agnostic to both axes.
    fn backends(nregs: usize, nthreads: usize) -> Vec<Tl2Stm> {
        let mut stms = vec![Tl2Stm::with_config(
            StmConfig::new(nregs, nthreads).striped(4),
        )];
        for clock in ClockKind::ALL {
            stms.push(Tl2Stm::with_config(
                StmConfig::new(nregs, nthreads).clock(clock),
            ));
        }
        stms
    }

    #[test]
    fn single_thread_read_write() {
        for stm in backends(4, 1) {
            let mut h = stm.handle(0);
            let out = h.atomic(|tx| {
                tx.write(0, 11)?;
                tx.write(1, 22)?;
                let a = tx.read(0)?;
                let b = tx.read(1)?;
                Ok(a + b)
            });
            assert_eq!(out, 33);
            assert_eq!(stm.peek(0), 11);
            assert_eq!(stm.peek(1), 22);
            assert_eq!(h.stats().commits, 1);
        }
    }

    #[test]
    fn user_abort_discards_writes() {
        for stm in backends(1, 1) {
            let mut h = stm.handle(0);
            let r: Result<(), Abort> = h.try_atomic(|tx| {
                tx.write(0, 5)?;
                Err(Abort)
            });
            assert_eq!(r, Err(Abort));
            assert_eq!(stm.peek(0), 0);
            assert_eq!(h.stats().aborts_user, 1);
            // The handle is reusable afterwards.
            h.atomic(|tx| tx.write(0, 7));
            assert_eq!(stm.peek(0), 7);
        }
    }

    #[test]
    fn direct_access_and_fence() {
        for stm in backends(2, 1) {
            let mut h = stm.handle(0);
            h.write_direct(0, 9);
            assert_eq!(h.read_direct(0), 9);
            h.fence(); // no active transactions: immediate
            assert_eq!(h.stats().fences, 1);
            assert_eq!(h.stats().direct_reads, 1);
            assert_eq!(h.stats().direct_writes, 1);
        }
    }

    #[test]
    fn conflicting_writers_serialize() {
        for stm in backends(1, 4) {
            std::thread::scope(|s| {
                for t in 0..4 {
                    let stm = stm.clone();
                    s.spawn(move || {
                        let mut h = stm.handle(t);
                        for _ in 0..1000 {
                            h.atomic(|tx| {
                                let v = tx.read(0)?;
                                tx.write(0, v + 1)
                            });
                        }
                    });
                }
            });
            assert_eq!(stm.peek(0), 4000);
        }
    }

    #[test]
    fn duplicate_stripe_write_sets_commit() {
        // With one stripe, every register shares the lock word: commit must
        // dedup instead of self-deadlocking or double-unlocking.
        let stm = Tl2Stm::with_config(StmConfig::new(8, 1).striped(1));
        assert_eq!(stm.nstripes(), 1);
        let mut h = stm.handle(0);
        h.atomic(|tx| {
            for x in 0..8 {
                tx.write(x, x as u64 + 1)?;
            }
            Ok(())
        });
        for x in 0..8 {
            assert_eq!(stm.peek(x), x as u64 + 1);
        }
        assert_eq!(h.stats().commits, 1);
    }

    #[test]
    fn bank_invariant_with_readers() {
        const ACCOUNTS: usize = 8;
        const TOTAL: u64 = 8000;
        for stm in backends(ACCOUNTS, 4) {
            {
                let mut h = stm.handle(0);
                h.atomic(|tx| {
                    for a in 0..ACCOUNTS {
                        tx.write(a, TOTAL / ACCOUNTS as u64)?;
                    }
                    Ok(())
                });
            }
            std::thread::scope(|s| {
                // Transfer threads.
                for t in 0..3 {
                    let stm = stm.clone();
                    s.spawn(move || {
                        let mut h = stm.handle(t);
                        let mut rng = t as u64 + 1;
                        for _ in 0..2000 {
                            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                            let from = (rng >> 33) as usize % ACCOUNTS;
                            let to = (rng >> 13) as usize % ACCOUNTS;
                            h.atomic(|tx| {
                                let a = tx.read(from)?;
                                let b = tx.read(to)?;
                                if from != to && a > 0 {
                                    tx.write(from, a - 1)?;
                                    tx.write(to, b + 1)?;
                                }
                                Ok(())
                            });
                        }
                    });
                }
                // Auditor: the sum must be constant in every snapshot.
                let stm2 = stm.clone();
                s.spawn(move || {
                    let mut h = stm2.handle(3);
                    for _ in 0..500 {
                        let sum = h.atomic(|tx| {
                            let mut s = 0u64;
                            for a in 0..ACCOUNTS {
                                s += tx.read(a)?;
                            }
                            Ok(s)
                        });
                        assert_eq!(sum, TOTAL, "opacity violation: inconsistent audit");
                    }
                });
            });
        }
    }

    #[test]
    fn fence_provides_privatization_safety() {
        // Privatization stress: t0 privatizes reg 1 via flag reg 0, fences,
        // writes it non-transactionally, publishes back. t1 writes reg 1
        // transactionally while unprivatized. The fenced protocol must never
        // lose t0's non-transactional write.
        for stm in backends(2, 2) {
            let rounds = 3000;
            std::thread::scope(|s| {
                let stm0 = stm.clone();
                let owner = s.spawn(move || {
                    let mut h = stm0.handle(0);
                    let mut lost = 0u64;
                    for i in 1..=rounds {
                        h.atomic(|tx| tx.write(0, 1)); // privatize
                        h.fence();
                        let marker = 0x8000_0000_0000_0000 | i;
                        h.write_direct(1, marker);
                        if h.read_direct(1) != marker {
                            lost += 1;
                        }
                        h.atomic(|tx| tx.write(0, 2)); // publish back (flag != 1)
                        h.fence();
                    }
                    lost
                });
                let stm1 = stm.clone();
                s.spawn(move || {
                    let mut h = stm1.handle(1);
                    for i in 1..=rounds {
                        h.atomic(|tx| {
                            let flag = tx.read(0)?;
                            if flag != 1 {
                                tx.write(1, i)?;
                            }
                            Ok(())
                        });
                    }
                });
                assert_eq!(owner.join().unwrap(), 0, "fenced privatization lost writes");
            });
        }
    }

    #[test]
    fn uncontended_writer_elides_validation() {
        // Single thread, GV1/GV4: every writing commit advances the clock
        // rv → rv + 1 exclusively, so commit-time re-validation must be
        // skipped every time — even when the read set is non-empty.
        for clock in [ClockKind::Gv1, ClockKind::Gv4] {
            let stm = Tl2Stm::with_config(StmConfig::new(4, 1).clock(clock));
            let mut h = stm.handle(0);
            for i in 0..3 {
                h.atomic(|tx| {
                    let v = tx.read(0)?;
                    tx.write(1, v + i)?;
                    tx.write(0, i + 1)
                });
            }
            let s = h.stats();
            assert_eq!(s.commits, 3, "{}", clock.label());
            assert!(
                s.validation_elisions >= 1,
                "{}: wver == rv + 1 must elide validation: {s:?}",
                clock.label()
            );
            assert_eq!(
                s.validation_elisions,
                3,
                "{}: every uncontended commit is exclusive",
                clock.label()
            );
            assert_eq!(s.clock_bumps, 3, "{}: one bump per commit", clock.label());
        }
    }

    #[test]
    fn gv5_commits_do_not_bump_and_never_elide() {
        let stm = Tl2Stm::with_config(StmConfig::new(4, 1).clock(ClockKind::Gv5));
        let mut h = stm.handle(0);
        for i in 0..5 {
            h.atomic(|tx| tx.write(0, i + 1));
        }
        let s = h.stats();
        assert_eq!(s.commits, 5);
        assert_eq!(s.clock_bumps, 0, "gv5 commits stay off the shared line");
        assert_eq!(
            s.validation_elisions, 0,
            "gv5 never proves exclusivity, so it may never elide"
        );
    }

    #[test]
    fn gv5_trailing_reader_pays_one_false_abort_then_validates() {
        // Deterministic, single-threaded: slot 0 commits (stamps run ahead
        // of the never-bumped global clock), then a fresh handle's reading
        // transaction starts with a stale rv, takes exactly one false
        // abort — which refreshes the shared clock — and succeeds on retry.
        let stm = Tl2Stm::with_config(StmConfig::new(2, 2).clock(ClockKind::Gv5));
        let mut w = stm.handle(0);
        for i in 0..3 {
            w.atomic(|tx| tx.write(0, 100 + i));
        }
        let mut r = stm.handle(1);
        let v = r.atomic(|tx| tx.read(0));
        assert_eq!(v, 102);
        let s = r.stats();
        assert_eq!(
            s.aborts_read, 1,
            "exactly one false abort for the trailing reader: {s:?}"
        );
        assert_eq!(s.retries, 1);
        assert_eq!(
            s.clock_bumps, 1,
            "the false abort refreshes the shared clock once"
        );
        // The refreshed view is shared: a second reader pays nothing.
        let mut r2 = stm.handle(1);
        r2.atomic(|tx| tx.read(0));
        assert_eq!(
            r2.stats().aborts_read,
            0,
            "refresh is global, not per-handle"
        );
    }

    #[test]
    fn read_only_commits_keep_clock_untouched_under_all_clocks() {
        for clock in ClockKind::ALL {
            let stm = Tl2Stm::with_config(StmConfig::new(2, 1).clock(clock));
            let mut h = stm.handle(0);
            for _ in 0..4 {
                h.atomic(|tx| tx.read(0));
            }
            let s = h.stats();
            assert_eq!(s.commits, 4, "{}", clock.label());
            assert_eq!(
                s.clock_bumps,
                0,
                "{}: read-only commits never stamp",
                clock.label()
            );
            assert_eq!(s.aborts_total(), 0, "{}", clock.label());
        }
    }

    #[test]
    fn retries_are_counted_on_conflict() {
        // Deterministic conflict (barriers, so it also works on one core):
        // t1 reads reg 0 and pauses; t0 commits a write to reg 0; t1's
        // commit-time validation must fail once, and the shared retry loop
        // must surface that as one counted, backed-off retry.
        use std::sync::Barrier;
        let stm = Tl2Stm::new(2, 2);
        let after_read = Arc::new(Barrier::new(2));
        let after_commit = Arc::new(Barrier::new(2));
        let stats: Stats = std::thread::scope(|s| {
            let stm1 = stm.clone();
            let (b1, b2) = (Arc::clone(&after_read), Arc::clone(&after_commit));
            let reader = s.spawn(move || {
                let mut h = stm1.handle(1);
                let mut first = true;
                h.atomic(|tx| {
                    let v = tx.read(0)?;
                    if first {
                        first = false;
                        b1.wait();
                        b2.wait();
                    }
                    tx.write(1, v + 1)
                });
                h.stats()
            });
            let mut h0 = stm.handle(0);
            after_read.wait();
            h0.atomic(|tx| tx.write(0, 99));
            after_commit.wait();
            reader.join().unwrap()
        });
        assert_eq!(stm.peek(1), 100, "retry must observe the new value");
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.retries, 1, "exactly one forced conflict: {stats:?}");
        assert_eq!(stats.aborts_validate, 1);
        assert_eq!(stats.retries, stats.aborts_total());
        assert!(stats.backoff_ns > 0, "the retry must charge backoff time");
    }
}
