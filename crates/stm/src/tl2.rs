//! The concurrent TL2 STM (paper Fig 9) with RCU-style transactional fences.
//!
//! Per register: a value word and a versioned write-lock ([`crate::vlock`]).
//! Globally: a version clock and an epoch table for fences. Transactions
//! buffer writes, validate reads against their read timestamp, lock their
//! write set at commit, re-validate, then write back.
//!
//! Non-transactional accesses ([`Tl2Handle::read_direct`] /
//! [`Tl2Handle::write_direct`]) are single uninstrumented atomic accesses —
//! they do not touch versions or locks, exactly the setting the paper's DRF
//! discipline governs. Without fences they reproduce the delayed-commit and
//! doomed-transaction anomalies on real hardware (see `tests/` and the
//! `privatization` example).
//!
//! Memory ordering: all TM metadata and data accesses use `SeqCst`. The
//! interesting claims about this STM are checked by recording histories and
//! running the strong-opacity checker, not argued from orderings; `SeqCst`
//! keeps the recorded-order argument simple. (Benchmark comparisons between
//! fence policies are unaffected: all variants pay the same cost.)

use crate::api::{Abort, Stats, StmHandle, TxScope};
use crate::record::Recorder;
use crate::vlock::VLock;
use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tm_core::action::Kind;
use tm_core::ids::Reg;
use tm_quiesce::EpochTable;

struct Tl2Inner {
    clock: CachePadded<AtomicU64>,
    values: Box<[CachePadded<AtomicU64>]>,
    vlocks: Box<[CachePadded<VLock>]>,
    epochs: EpochTable,
    recorder: Option<Arc<Recorder>>,
}

/// The shared TL2 instance. Create per-thread handles with [`Tl2Stm::handle`].
#[derive(Clone)]
pub struct Tl2Stm {
    inner: Arc<Tl2Inner>,
}

impl Tl2Stm {
    pub fn new(nregs: usize, nthreads: usize) -> Self {
        Self::with_recorder(nregs, nthreads, None)
    }

    /// Attach a [`Recorder`]; every handle then logs its TM interface
    /// actions for offline DRF / strong-opacity checking.
    pub fn with_recorder(
        nregs: usize,
        nthreads: usize,
        recorder: Option<Arc<Recorder>>,
    ) -> Self {
        let values = (0..nregs)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let vlocks = (0..nregs)
            .map(|_| CachePadded::new(VLock::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Tl2Stm {
            inner: Arc::new(Tl2Inner {
                clock: CachePadded::new(AtomicU64::new(0)),
                values,
                vlocks,
                epochs: EpochTable::new(nthreads),
                recorder,
            }),
        }
    }

    /// A handle bound to thread slot `slot` (< `nthreads`).
    pub fn handle(&self, slot: usize) -> Tl2Handle {
        assert!(slot < self.inner.epochs.nthreads());
        Tl2Handle {
            inner: Arc::clone(&self.inner),
            slot: slot as u16,
            rv: 0,
            rset: Vec::new(),
            wset: Vec::new(),
            stats: Stats::default(),
            last_txn_wrote: false,
            wver_of_last_commit: 0,
        }
    }

    /// Current register value (unsynchronized snapshot; test/report helper).
    pub fn peek(&self, x: usize) -> u64 {
        self.inner.values[x].load(Ordering::SeqCst)
    }
}

/// Per-thread TL2 context.
pub struct Tl2Handle {
    inner: Arc<Tl2Inner>,
    slot: u16,
    /// Read timestamp `rver` of the current transaction.
    rv: u64,
    rset: Vec<usize>,
    /// Sorted by register index; one entry per register.
    wset: Vec<(usize, u64)>,
    stats: Stats,
    /// Did the last completed transaction write anything? Drives the buggy
    /// read-only fence elision reproduced from [43].
    last_txn_wrote: bool,
    /// Write timestamp of the last committed transaction (recorder key).
    wver_of_last_commit: u64,
}

impl Tl2Handle {
    #[inline]
    fn rec(&self, kind: Kind) {
        if let Some(r) = &self.inner.recorder {
            r.record(self.slot as usize, kind);
        }
    }

    fn begin(&mut self) {
        self.rec(Kind::TxBegin);
        self.inner.epochs.enter(self.slot as usize);
        self.rv = self.inner.clock.load(Ordering::SeqCst);
        self.rset.clear();
        self.wset.clear();
        self.rec(Kind::Ok);
    }

    fn tx_read(&mut self, x: usize) -> Result<u64, Abort> {
        self.rec(Kind::Read(Reg(x as u32)));
        if let Ok(i) = self.wset.binary_search_by_key(&x, |&(r, _)| r) {
            let v = self.wset[i].1;
            self.rec(Kind::RetVal(v));
            return Ok(v);
        }
        // Fig 9 lines 17–23: ver, value, lock, ver again.
        let s1 = self.inner.vlocks[x].sample();
        let val = self.inner.values[x].load(Ordering::SeqCst);
        let s2 = self.inner.vlocks[x].sample();
        if s2.is_locked() || s1 != s2 || self.rv < s2.version {
            self.stats.aborts_read += 1;
            self.finish_abort();
            return Err(Abort);
        }
        self.rset.push(x);
        self.rec(Kind::RetVal(val));
        Ok(val)
    }

    fn tx_write(&mut self, x: usize, v: u64) -> Result<(), Abort> {
        self.rec(Kind::Write(Reg(x as u32), v));
        match self.wset.binary_search_by_key(&x, |&(r, _)| r) {
            Ok(i) => self.wset[i].1 = v,
            Err(i) => self.wset.insert(i, (x, v)),
        }
        self.rec(Kind::RetUnit);
        Ok(())
    }

    fn commit(&mut self) -> Result<(), Abort> {
        self.rec(Kind::TxCommit);
        // Lock the write set (sorted order; trylock-or-abort per Fig 7).
        let mut locked = 0usize;
        for &(x, _) in &self.wset {
            if self.inner.vlocks[x].try_lock(self.slot).is_err() {
                for &(y, _) in &self.wset[..locked] {
                    self.inner.vlocks[y].unlock();
                }
                self.stats.aborts_lock += 1;
                self.finish_abort();
                return Err(Abort);
            }
            locked += 1;
        }
        // wver := fetch_and_increment(clock) + 1 (Fig 7 line 19).
        let wver = self.inner.clock.fetch_add(1, Ordering::SeqCst) + 1;
        // Validate the read set (lines 20–26).
        for &x in &self.rset {
            let s = self.inner.vlocks[x].sample();
            if s.is_locked_by_other(self.slot) || self.rv < s.version {
                for &(y, _) in &self.wset {
                    self.inner.vlocks[y].unlock();
                }
                self.stats.aborts_validate += 1;
                self.finish_abort();
                return Err(Abort);
            }
        }
        // Write back and release (lines 27–30).
        for &(x, v) in &self.wset {
            self.inner.values[x].store(v, Ordering::SeqCst);
            self.inner.vlocks[x].unlock_set_version(wver);
        }
        self.stats.commits += 1;
        self.last_txn_wrote = !self.wset.is_empty();
        self.wver_of_last_commit = wver;
        // Response recorded before the epoch exit, so a fence that stops
        // waiting for us is guaranteed to have our committed action in the
        // history (Def A.1 clause 10 on recorded histories).
        self.rec(Kind::Committed);
        self.inner.epochs.exit(self.slot as usize);
        Ok(())
    }

    /// Abort epilogue used by failed reads/commits and user aborts.
    fn finish_abort(&mut self) {
        self.last_txn_wrote = !self.wset.is_empty();
        self.rec(Kind::Aborted);
        self.inner.epochs.exit(self.slot as usize);
    }

    /// Write timestamp of the most recent committed transaction — the WW
    /// ordering key handed to the opacity checker.
    pub fn last_commit_wver(&self) -> u64 {
        self.wver_of_last_commit
    }

    /// The *buggy* fence: skipped entirely if this thread's last transaction
    /// was read-only — the GCC libitm bug class ([43], paper Sec 1). Exposed
    /// so tests and examples can demonstrate the violation on real hardware.
    pub fn fence_elide_after_read_only(&mut self) {
        if self.last_txn_wrote {
            self.fence();
        }
    }
}

struct Tl2Tx<'a>(&'a mut Tl2Handle);

impl TxScope for Tl2Tx<'_> {
    fn read(&mut self, x: usize) -> Result<u64, Abort> {
        self.0.tx_read(x)
    }
    fn write(&mut self, x: usize, v: u64) -> Result<(), Abort> {
        self.0.tx_write(x, v)
    }
}

impl StmHandle for Tl2Handle {
    fn atomic<R>(&mut self, mut body: impl FnMut(&mut dyn TxScope) -> Result<R, Abort>) -> R {
        let mut backoff = crossbeam::utils::Backoff::new();
        loop {
            match self.try_atomic(&mut body) {
                Ok(r) => return r,
                Err(Abort) => {
                    backoff.snooze();
                    if backoff.is_completed() {
                        backoff = crossbeam::utils::Backoff::new();
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    fn try_atomic<R>(
        &mut self,
        mut body: impl FnMut(&mut dyn TxScope) -> Result<R, Abort>,
    ) -> Result<R, Abort> {
        self.begin();
        let attempt = {
            let mut tx = Tl2Tx(self);
            body(&mut tx)
        };
        match attempt {
            Ok(r) => {
                self.commit()?;
                Ok(r)
            }
            Err(Abort) => {
                // Distinguish op-level aborts (already finalized in
                // tx_read) from user aborts: op-level aborts exited the
                // epoch already; detect via activity.
                if self.inner.epochs.is_active(self.slot as usize) {
                    self.stats.aborts_user += 1;
                    self.finish_abort();
                }
                Err(Abort)
            }
        }
    }

    fn read_direct(&mut self, x: usize) -> u64 {
        self.rec(Kind::Read(Reg(x as u32)));
        let v = self.inner.values[x].load(Ordering::SeqCst);
        self.stats.direct_reads += 1;
        self.rec(Kind::RetVal(v));
        v
    }

    fn write_direct(&mut self, x: usize, v: u64) {
        self.rec(Kind::Write(Reg(x as u32), v));
        self.inner.values[x].store(v, Ordering::SeqCst);
        self.stats.direct_writes += 1;
        self.rec(Kind::RetUnit);
    }

    fn fence(&mut self) {
        self.rec(Kind::FBegin);
        self.inner.epochs.wait_quiescent(Some(self.slot as usize));
        self.stats.fences += 1;
        self.rec(Kind::FEnd);
    }

    fn stats(&self) -> Stats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_read_write() {
        let stm = Tl2Stm::new(4, 1);
        let mut h = stm.handle(0);
        let out = h.atomic(|tx| {
            tx.write(0, 11)?;
            tx.write(1, 22)?;
            let a = tx.read(0)?;
            let b = tx.read(1)?;
            Ok(a + b)
        });
        assert_eq!(out, 33);
        assert_eq!(stm.peek(0), 11);
        assert_eq!(stm.peek(1), 22);
        assert_eq!(h.stats().commits, 1);
    }

    #[test]
    fn user_abort_discards_writes() {
        let stm = Tl2Stm::new(1, 1);
        let mut h = stm.handle(0);
        let r: Result<(), Abort> = h.try_atomic(|tx| {
            tx.write(0, 5)?;
            Err(Abort)
        });
        assert_eq!(r, Err(Abort));
        assert_eq!(stm.peek(0), 0);
        assert_eq!(h.stats().aborts_user, 1);
        // The handle is reusable afterwards.
        h.atomic(|tx| tx.write(0, 7));
        assert_eq!(stm.peek(0), 7);
    }

    #[test]
    fn direct_access_and_fence() {
        let stm = Tl2Stm::new(2, 1);
        let mut h = stm.handle(0);
        h.write_direct(0, 9);
        assert_eq!(h.read_direct(0), 9);
        h.fence(); // no active transactions: immediate
        assert_eq!(h.stats().fences, 1);
        assert_eq!(h.stats().direct_reads, 1);
        assert_eq!(h.stats().direct_writes, 1);
    }

    #[test]
    fn conflicting_writers_serialize() {
        let stm = Tl2Stm::new(1, 4);
        std::thread::scope(|s| {
            for t in 0..4 {
                let stm = stm.clone();
                s.spawn(move || {
                    let mut h = stm.handle(t);
                    for _ in 0..1000 {
                        h.atomic(|tx| {
                            let v = tx.read(0)?;
                            tx.write(0, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(stm.peek(0), 4000);
    }

    #[test]
    fn bank_invariant_with_readers() {
        const ACCOUNTS: usize = 8;
        const TOTAL: u64 = 8000;
        let stm = Tl2Stm::new(ACCOUNTS, 4);
        {
            let mut h = stm.handle(0);
            h.atomic(|tx| {
                for a in 0..ACCOUNTS {
                    tx.write(a, TOTAL / ACCOUNTS as u64)?;
                }
                Ok(())
            });
        }
        std::thread::scope(|s| {
            // Transfer threads.
            for t in 0..3 {
                let stm = stm.clone();
                s.spawn(move || {
                    let mut h = stm.handle(t);
                    let mut rng = t as u64 + 1;
                    for _ in 0..2000 {
                        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let from = (rng >> 33) as usize % ACCOUNTS;
                        let to = (rng >> 13) as usize % ACCOUNTS;
                        h.atomic(|tx| {
                            let a = tx.read(from)?;
                            let b = tx.read(to)?;
                            if from != to && a > 0 {
                                tx.write(from, a - 1)?;
                                tx.write(to, b + 1)?;
                            }
                            Ok(())
                        });
                    }
                });
            }
            // Auditor: the sum must be constant in every snapshot.
            let stm2 = stm.clone();
            s.spawn(move || {
                let mut h = stm2.handle(3);
                for _ in 0..500 {
                    let sum = h.atomic(|tx| {
                        let mut s = 0u64;
                        for a in 0..ACCOUNTS {
                            s += tx.read(a)?;
                        }
                        Ok(s)
                    });
                    assert_eq!(sum, TOTAL, "opacity violation: inconsistent audit");
                }
            });
        });
    }

    #[test]
    fn fence_provides_privatization_safety() {
        // Privatization stress: t0 privatizes reg 1 via flag reg 0, fences,
        // writes it non-transactionally, publishes back. t1 writes reg 1
        // transactionally while unprivatized. The fenced protocol must never
        // lose t0's non-transactional write.
        let stm = Tl2Stm::new(2, 2);
        let rounds = 3000;
        std::thread::scope(|s| {
            let stm0 = stm.clone();
            let owner = s.spawn(move || {
                let mut h = stm0.handle(0);
                let mut lost = 0u64;
                for i in 1..=rounds {
                    h.atomic(|tx| tx.write(0, 1)); // privatize
                    h.fence();
                    let marker = 0x8000_0000_0000_0000 | i;
                    h.write_direct(1, marker);
                    if h.read_direct(1) != marker {
                        lost += 1;
                    }
                    h.atomic(|tx| tx.write(0, 2)); // publish back (flag != 1)
                    h.fence();
                }
                lost
            });
            let stm1 = stm.clone();
            s.spawn(move || {
                let mut h = stm1.handle(1);
                for i in 1..=rounds {
                    h.atomic(|tx| {
                        let flag = tx.read(0)?;
                        if flag != 1 {
                            tx.write(1, i)?;
                        }
                        Ok(())
                    });
                }
            });
            assert_eq!(owner.join().unwrap(), 0, "fenced privatization lost writes");
        });
    }
}
