//! The shared STM runtime layer.
//!
//! Everything the paper's TM interface (Fig 4) needs but that is *not*
//! concurrency control lives here, once, instead of being copied into every
//! algorithm: the register file, epoch-table registration for transactional
//! fences, [`Recorder`] wiring for offline checking, [`Stats`] accounting,
//! uninstrumented direct access, and the `atomic` retry loop with
//! exponential backoff under contention.
//!
//! A concrete STM is a [`Policy`] — a concurrency-control strategy deciding
//! how transactional reads, writes, and commits synchronize (TL2 over a
//! [`crate::storage::LockTable`], NOrec's global sequence lock, a single
//! global lock). [`Handle`] composes a policy with the runtime and
//! implements [`StmHandle`] exactly once, so the recorded-history shape —
//! `TxBegin/Ok … TxCommit/(Committed|Aborted)`, responses recorded before
//! the epoch exit — is identical for every algorithm, and every algorithm
//! gets fences, recording, and backoff for free.

use crate::api::{Abort, Stats, StmFactory, StmHandle, TxScope};
use crate::clock::ClockKind;
use crate::fence::{FenceTicket, FenceTimeout};
use crate::record::Recorder;
use crate::storage::{splitmix64, StorageKind};
use crossbeam::utils::CachePadded;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tm_chaos::{Chaos, Site};
use tm_core::action::Kind;
use tm_core::ids::Reg;
use tm_quiesce::{EpochTable, GraceDriver, GraceEngine};
use tm_telemetry::{
    AbortCause, EventKind, LatencyClass, Telemetry, TelemetrySnapshot, TraceConfig,
};

/// Exponential-backoff tuning for the shared retry loop.
///
/// After the `a`-th consecutive abort the loop spins a uniformly jittered
/// number of iterations up to `spin_base << min(a, max_shift)`, and once
/// `a >= yield_after` it additionally yields to the scheduler. Jitter is a
/// per-slot splitmix64 hash, so contending threads fall out of lockstep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackoffCfg {
    /// Spin iterations for the first retry (0 disables spinning).
    pub spin_base: u32,
    /// Cap on the exponential growth: spins top out at `spin_base << max_shift`.
    pub max_shift: u32,
    /// Consecutive aborts after which the loop also yields the thread.
    pub yield_after: u32,
}

impl Default for BackoffCfg {
    fn default() -> Self {
        BackoffCfg {
            spin_base: 8,
            max_shift: 8,
            yield_after: 6,
        }
    }
}

impl BackoffCfg {
    /// No spinning, no yielding: retry immediately (the seed's NOrec shape).
    pub fn none() -> Self {
        BackoffCfg {
            spin_base: 0,
            max_shift: 0,
            yield_after: u32::MAX,
        }
    }
}

/// The retry budget of the shared `atomic` loop: how many optimistic
/// attempts (and how much wall-clock) a transaction may burn before the
/// runtime stops gambling and *escalates* — takes the runtime-wide
/// escalation token, drains in-flight transactions, and re-runs the body
/// serialized and effectively irrevocable (see
/// [`Handle`]'s escalation path). The default is unlimited — the classic
/// optimistic loop — so budgets are strictly opt-in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Escalate after this many aborted attempts (`None` = never by count).
    pub max_attempts: Option<u32>,
    /// Escalate once the transaction has been retrying this long, measured
    /// from its first `begin` (`None` = never by time). Checked *before*
    /// the backoff pause, so an expired transaction escalates immediately
    /// instead of paying one last sleep first.
    pub deadline: Option<Duration>,
}

impl RetryPolicy {
    /// The default: retry forever, never escalate.
    pub fn unlimited() -> Self {
        RetryPolicy::default()
    }

    /// Escalate after `n` aborted attempts.
    pub fn attempts(n: u32) -> Self {
        RetryPolicy {
            max_attempts: Some(n),
            ..RetryPolicy::default()
        }
    }

    /// Escalate once `d` of wall-clock has been spent retrying.
    pub fn deadline(d: Duration) -> Self {
        RetryPolicy {
            deadline: Some(d),
            ..RetryPolicy::default()
        }
    }
}

/// How the runtime's grace-period engine advances — i.e. who retires the
/// periods behind [`crate::fence::FenceTicket`]s.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DriverMode {
    /// No background thread (the default): periods advance cooperatively,
    /// driven by whoever polls or waits on a ticket. Thread-free and
    /// 1-core friendly — but a fire-and-forget
    /// [`on_complete`](crate::fence::FenceTicket::on_complete) callback
    /// only fires when some later caller happens to drive the engine.
    #[default]
    Cooperative,
    /// A [`GraceDriver`] thread owned by the [`Runtime`] retires periods
    /// with zero pollers: `on_complete` fires within bounded time, and
    /// every privatizer fully overlaps its post-fence work. Dropping the
    /// runtime drains outstanding periods/callbacks before detaching.
    Background,
}

impl DriverMode {
    /// Both driver modes, for matrix tests and benches.
    pub const ALL: [DriverMode; 2] = [DriverMode::Cooperative, DriverMode::Background];

    /// Human-readable mode label (bench/report key).
    pub fn label(self) -> &'static str {
        match self {
            DriverMode::Cooperative => "cooperative",
            DriverMode::Background => "background",
        }
    }

    /// Process-wide default, read once: `TM_STM_DRIVER=background` opts
    /// every [`StmConfig::new`] into the background driver (how CI runs
    /// the whole suite driver-on). Anything else means cooperative.
    /// [`StmConfig::grace_driver`] overrides per instance either way.
    pub fn from_env() -> Self {
        static MODE: std::sync::OnceLock<DriverMode> = std::sync::OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("TM_STM_DRIVER").as_deref() {
            Ok("background") => DriverMode::Background,
            _ => DriverMode::Cooperative,
        })
    }
}

/// Construction-time configuration shared by all STM frontends.
#[derive(Clone)]
pub struct StmConfig {
    /// Number of registers in the instance's register file.
    pub nregs: usize,
    /// Number of thread slots (handles) the instance supports.
    pub nthreads: usize,
    /// Lock-metadata layout, for policies that use versioned locks
    /// (ignored by NOrec and the global lock).
    pub storage: StorageKind,
    /// Version-clock backend, for timestamp-based policies (ignored by
    /// NOrec and the global lock).
    pub clock: ClockKind,
    /// Who drives the grace-period engine (defaults to
    /// [`DriverMode::from_env`]).
    pub driver: DriverMode,
    /// Retry-loop backoff tuning.
    pub backoff: BackoffCfg,
    /// Retry budget before escalating to the irrevocable serial fallback
    /// (defaults to unlimited — never escalate).
    pub retry: RetryPolicy,
    /// Optional history recorder shared by every handle.
    pub recorder: Option<Arc<Recorder>>,
    /// Flight-recorder / latency-histogram configuration (defaults to
    /// [`TraceConfig::from_env`], i.e. the `TM_STM_TRACE` knob).
    pub trace: TraceConfig,
    /// Fault-injection seed (defaults to [`tm_chaos::seed_from_env`], i.e.
    /// the `TM_STM_CHAOS` knob; `None` = injection off, one relaxed load
    /// per site).
    pub chaos: Option<u64>,
}

impl StmConfig {
    /// The default configuration for `nregs` registers × `nthreads`
    /// thread slots.
    pub fn new(nregs: usize, nthreads: usize) -> Self {
        StmConfig {
            nregs,
            nthreads,
            storage: StorageKind::default(),
            clock: ClockKind::default(),
            driver: DriverMode::from_env(),
            backoff: BackoffCfg::default(),
            retry: RetryPolicy::default(),
            recorder: None,
            trace: TraceConfig::from_env(),
            chaos: tm_chaos::seed_from_env(),
        }
    }

    /// The self-tuning configuration — the recommended default when the
    /// workload is not known in advance. Selects the adaptive striped orec
    /// table with its stripe count *seeded from `nregs`*
    /// ([`crate::storage::AdaptivePolicy::default`]'s seed-from-registers
    /// sentinel) and the governor-switchable [`ClockKind::Auto`] version
    /// clock, which arms the per-instance contention governor in TL2: a
    /// control loop over commit/abort telemetry that grows *and shrinks*
    /// the stripe table and hands off between the GV1 and GV5 clock
    /// disciplines online, all through epoch-safe, grace-fenced
    /// reconfigurations (see [`crate::storage`] and [`crate::clock`]).
    pub fn auto(nregs: usize, nthreads: usize) -> Self {
        Self::new(nregs, nthreads)
            .adaptive_stripes(crate::storage::AdaptivePolicy::default())
            .clock(ClockKind::Auto)
    }

    /// Select the lock-metadata layout for versioned-lock policies.
    pub fn storage(mut self, storage: StorageKind) -> Self {
        self.storage = storage;
        self
    }

    /// Shorthand for a striped orec table with `stripes` lock words.
    pub fn striped(self, stripes: usize) -> Self {
        self.storage(StorageKind::Striped { stripes })
    }

    /// Shorthand for the contention-aware *adaptive* striped orec table:
    /// starts at `policy.start` stripes and doubles (up to `policy.max`)
    /// whenever the false-conflict rate over a `policy.window`-commit
    /// sliding window reaches `policy.threshold` percent, through an
    /// epoch-safe generation rehash retired by the runtime's grace engine
    /// (see [`crate::storage`]).
    pub fn adaptive_stripes(self, policy: crate::storage::AdaptivePolicy) -> Self {
        self.storage(StorageKind::Adaptive(policy))
    }

    /// Select the global version-clock backend (GV1 `fetch_add`, GV4
    /// CAS-with-adopt, or GV5 slot-local deltas — see [`crate::clock`]).
    pub fn clock(mut self, clock: ClockKind) -> Self {
        self.clock = clock;
        self
    }

    /// Select who drives the grace-period engine: cooperative (thread-free
    /// default) or a runtime-owned background [`GraceDriver`].
    pub fn grace_driver(mut self, driver: DriverMode) -> Self {
        self.driver = driver;
        self
    }

    /// Tune the shared retry loop's exponential backoff.
    pub fn backoff(mut self, backoff: BackoffCfg) -> Self {
        self.backoff = backoff;
        self
    }

    /// Bound the retry loop: escalate to the irrevocable serial fallback
    /// once the budget is exhausted (see [`RetryPolicy`]).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Arm deterministic fault injection with `seed` (see [`tm_chaos`]),
    /// overriding the `TM_STM_CHAOS` environment default for this instance.
    pub fn chaos_seed(mut self, seed: u64) -> Self {
        self.chaos = Some(seed);
        self
    }

    /// Force fault injection off for this instance, overriding a
    /// `TM_STM_CHAOS` environment default (overhead pin tests rely on
    /// this running unperturbed under the chaos CI pass).
    pub fn chaos_off(mut self) -> Self {
        self.chaos = None;
        self
    }

    /// Attach a history [`Recorder`] shared by every handle.
    pub fn recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Override the telemetry [`TraceConfig`] (flight-recorder capacity /
    /// off switch) instead of inheriting the `TM_STM_TRACE` default.
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }
}

/// The shared, policy-independent state of one STM instance: register file,
/// fence epochs, and the optional history recorder.
///
/// The register file is *dense* — 8 bytes per register, no cache padding.
/// Padding every value word would inflate a million-register file 16x,
/// defeating the constant-metadata story of the striped orec table;
/// adjacent registers may false-share, which is the same trade production
/// STMs make for their data arrays (metadata, which is written on every
/// commit, stays padded).
pub struct Runtime {
    values: Box<[AtomicU64]>,
    /// The grace-period engine: owns the epoch table, numbers grace
    /// periods, and batches every fence ticket issued during the same open
    /// period behind one epoch-table scan.
    grace: Arc<GraceEngine>,
    /// The optional background grace-period driver
    /// ([`DriverMode::Background`]). Dropping the runtime shuts it down
    /// cleanly: outstanding periods are drained (callbacks run) first.
    driver: Option<GraceDriver>,
    recorder: Option<Arc<Recorder>>,
    /// The instance's telemetry hub: per-slot latency histograms plus the
    /// flight-recorder rings (see [`tm_telemetry`]). Always present; when
    /// tracing is off every event site costs exactly one relaxed load.
    telemetry: Arc<Telemetry>,
    /// Additive per-tick hooks multiplexed onto the background driver's
    /// single hook slot (governor polls, telemetry export, ...).
    tick_hooks: Arc<Mutex<Vec<TickHook>>>,
    /// The instance's fault-injection plan (see [`tm_chaos`]). Always
    /// present; inert unless the config carried a seed, in which case
    /// policies consult it at their injection sites.
    chaos: Arc<Chaos>,
    /// The runtime-wide escalation token: 0 = free, otherwise `slot + 1` of
    /// the handle running irrevocably. While held, every other handle parks
    /// at the begin gate (before its epoch entry), so the holder can drain
    /// in-flight transactions and run alone.
    escalation: CachePadded<AtomicU64>,
    /// Blocking-retry wait registry: `(register, waiter)` pairs, one entry
    /// per watched register of every parked [`RetryWaiter`]. Commit
    /// write-backs consult it through [`Runtime::store`]'s wake hook.
    retry_waiters: Mutex<Vec<(usize, Arc<RetryWaiter>)>>,
    /// Number of live registry entries — the one load the store fast path
    /// pays. Raised *after* pushing entries (under the registry lock) and
    /// lowered after removing them; both `SeqCst`, which is what makes the
    /// validate-then-sleep protocol lost-wakeup-free (see
    /// [`Runtime::store`]).
    retry_waiter_count: CachePadded<AtomicU64>,
}

/// The wait-on-retry control block of one blocking `retry`: the parked
/// transaction sleeps on the condvar, and any commit that writes one of
/// the registers the waiter registered on marks it woken. Spurious wakeups
/// are fine (the transaction just re-runs); lost wakeups are not —
/// the registration / validation / sleep protocol in
/// `tvar::TypedHandle::atomically` guarantees a conflicting commit either
/// aborts the validation read or delivers this wakeup.
pub struct RetryWaiter {
    state: Mutex<RetryWaitState>,
    cv: Condvar,
}

struct RetryWaitState {
    woken: bool,
    /// Register whose store delivered the wakeup (`usize::MAX` until then).
    woke_reg: usize,
}

impl RetryWaiter {
    /// A fresh, unwoken control block.
    pub fn new() -> Arc<Self> {
        Arc::new(RetryWaiter {
            state: Mutex::new(RetryWaitState {
                woken: false,
                woke_reg: usize::MAX,
            }),
            cv: Condvar::new(),
        })
    }

    /// Mark the waiter woken by a store to `reg` and notify it. Idempotent;
    /// the first wake's register wins.
    fn wake(&self, reg: usize) {
        let mut st = self.state.lock().unwrap();
        if !st.woken {
            st.woken = true;
            st.woke_reg = reg;
        }
        self.cv.notify_all();
    }

    /// Block until woken; returns the register whose store woke us.
    pub fn sleep(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        while !st.woken {
            st = self.cv.wait(st).unwrap();
        }
        st.woke_reg
    }

    /// Has a conflicting store already woken this waiter?
    pub fn is_woken(&self) -> bool {
        self.state.lock().unwrap().woken
    }
}

/// One registered driver-tick hook (see [`Runtime::set_tick_hook`]).
type TickHook = Arc<dyn Fn() + Send + Sync>;

impl Runtime {
    /// Build the shared runtime for one instance (register file, grace
    /// engine, optional driver thread, optional recorder).
    pub fn new(cfg: &StmConfig) -> Arc<Self> {
        let values = (0..cfg.nregs)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let grace = GraceEngine::new(cfg.nthreads);
        let telemetry = Telemetry::new(cfg.nthreads, cfg.trace);
        grace.set_telemetry(Arc::clone(&telemetry));
        let chaos = Chaos::new(cfg.chaos);
        grace.set_chaos(Arc::clone(&chaos));
        let driver = (cfg.driver == DriverMode::Background)
            .then(|| GraceDriver::spawn(Arc::clone(&grace), GraceDriver::DEFAULT_TICK));
        Arc::new(Runtime {
            values,
            grace,
            driver,
            recorder: cfg.recorder.clone(),
            telemetry,
            tick_hooks: Arc::new(Mutex::new(Vec::new())),
            chaos,
            escalation: CachePadded::new(AtomicU64::new(0)),
            retry_waiters: Mutex::new(Vec::new()),
            retry_waiter_count: CachePadded::new(AtomicU64::new(0)),
        })
    }

    /// Which [`DriverMode`] this runtime was built with.
    pub fn driver_mode(&self) -> DriverMode {
        if self.driver.is_some() {
            DriverMode::Background
        } else {
            DriverMode::Cooperative
        }
    }

    /// Number of registers in the register file.
    pub fn nregs(&self) -> usize {
        self.values.len()
    }

    /// Number of thread slots.
    pub fn nthreads(&self) -> usize {
        self.epochs().nthreads()
    }

    /// The epoch table transactions register their critical sections in.
    pub fn epochs(&self) -> &EpochTable {
        self.grace.epochs()
    }

    /// The grace-period engine fences are issued through.
    pub fn grace(&self) -> &Arc<GraceEngine> {
        &self.grace
    }

    /// Install a per-tick hook on the background [`GraceDriver`], if this
    /// runtime owns one ([`DriverMode::Background`]): the driver thread
    /// then invokes `f` once per wakeup, outside every engine lock. This is
    /// how the contention governor gets its liveness under the background
    /// driver — the hook polls open reconfigurations (stripe migrations,
    /// clock handoffs) so they settle without transaction traffic — and
    /// how periodic telemetry export gets its cadence
    /// ([`Runtime::set_telemetry_export`]). Hooks are *additive*: each
    /// call registers another hook, all of which run (in registration
    /// order, outside the registry lock) once per driver wakeup. Returns
    /// whether a driver was present; under [`DriverMode::Cooperative`]
    /// nothing is installed (`false`) and the same polls ride transaction
    /// begins instead.
    pub fn set_tick_hook(&self, f: impl Fn() + Send + Sync + 'static) -> bool {
        let Some(d) = &self.driver else { return false };
        let mut hooks = self.tick_hooks.lock().unwrap();
        hooks.push(Arc::new(f));
        if hooks.len() == 1 {
            // First registration: point the driver's single hook slot at
            // the registry. Snapshot under the lock, run outside it, so a
            // hook may itself register hooks without deadlocking.
            let registry = Arc::clone(&self.tick_hooks);
            d.set_tick_hook(move || {
                let snapshot: Vec<_> = registry.lock().unwrap().clone();
                for hook in snapshot {
                    hook();
                }
            });
        }
        true
    }

    /// This instance's telemetry hub (histograms + flight recorder).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// This instance's fault-injection plan (inert unless the config
    /// carried a seed). Tests arm one-shot panics through this.
    pub fn chaos(&self) -> &Arc<Chaos> {
        &self.chaos
    }

    /// Should this visit to `site` by `slot` behave as the injected
    /// conflict? One relaxed load when injection is off. An escalated
    /// handle is exempt — its attempt is irrevocable by contract, and a
    /// forced abort there could livelock the very fallback that exists to
    /// guarantee progress.
    #[inline]
    pub fn chaos_abort(&self, slot: u16, site: Site) -> bool {
        if !self.chaos.enabled() {
            return false;
        }
        if self.escalation.load(Ordering::Relaxed) == u64::from(slot) + 1 {
            return false;
        }
        self.chaos.should_abort(site)
    }

    /// Maybe stall this visit to `site` (inert plans return after one
    /// relaxed load).
    #[inline]
    pub fn chaos_delay(&self, site: Site) {
        self.chaos.maybe_delay(site);
    }

    /// The slot currently holding the escalation token, if any.
    pub fn escalated(&self) -> Option<usize> {
        match self.escalation.load(Ordering::Acquire) {
            0 => None,
            s => Some((s - 1) as usize),
        }
    }

    /// The begin gate: park while another handle runs escalated. Sits
    /// *before* the epoch entry in [`Handle`]'s begin path, so gated
    /// threads hold no epoch slot (and no policy lock) — which is what
    /// lets the escalated handle's drain terminate.
    #[inline]
    fn escalation_gate(&self, slot: u16) {
        let me = u64::from(slot) + 1;
        loop {
            let cur = self.escalation.load(Ordering::Acquire);
            if cur == 0 || cur == me {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// Take the escalation token (spins; at most one holder at a time).
    fn escalation_acquire(&self, slot: u16) {
        let me = u64::from(slot) + 1;
        while self
            .escalation
            .compare_exchange_weak(0, me, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            std::thread::yield_now();
        }
    }

    /// Release the escalation token (must hold it).
    fn escalation_release(&self, slot: u16) {
        let prev = self.escalation.swap(0, Ordering::AcqRel);
        debug_assert_eq!(prev, u64::from(slot) + 1, "released a token not held");
    }

    /// How many wakeups of the background [`GraceDriver`] found nothing to
    /// do (driver duty-cycle introspection), or `None` under
    /// [`DriverMode::Cooperative`].
    pub fn driver_idle_wakeups(&self) -> Option<u64> {
        self.driver.as_ref().map(|d| d.idle_wakeups())
    }

    /// Merge every slot's histograms and flight-recorder ring into one
    /// [`TelemetrySnapshot`], stamped with this runtime's driver mode and
    /// (under the background driver) its idle-wakeup count. Coherent but
    /// not atomic across slots; intended for reporting, not invariants.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut snap = self.telemetry.snapshot();
        snap.driver_mode = Some(self.driver_mode().label());
        snap.driver_idle_wakeups = self.driver_idle_wakeups();
        snap
    }

    /// Periodically hand a fresh [`TelemetrySnapshot`] to `f`, exporting at
    /// most once per `every`, clocked by the background driver's tick.
    /// Returns `false` (and installs nothing) under
    /// [`DriverMode::Cooperative`] — there is no thread to clock exports;
    /// call [`Runtime::telemetry_snapshot`] at your own cadence instead.
    /// The hook holds only a weak reference, so it never keeps the runtime
    /// alive.
    pub fn set_telemetry_export(
        self: &Arc<Self>,
        every: Duration,
        f: impl Fn(TelemetrySnapshot) + Send + Sync + 'static,
    ) -> bool {
        if self.driver.is_none() {
            return false;
        }
        let rt = Arc::downgrade(self);
        let last = Mutex::new(None::<Instant>);
        self.set_tick_hook(move || {
            let Some(rt) = rt.upgrade() else { return };
            let now = Instant::now();
            let mut last = last.lock().unwrap();
            let due = last.is_none_or(|t| now.duration_since(t) >= every);
            if due {
                *last = Some(now);
                drop(last);
                f(rt.telemetry_snapshot());
            }
        })
    }

    /// Load register `x` (all data accesses are `SeqCst`; see module docs of
    /// [`crate::tl2`] for why).
    #[inline]
    pub fn load(&self, x: usize) -> u64 {
        self.values[x].load(Ordering::SeqCst)
    }

    /// Store register `x`.
    ///
    /// Doubles as the blocking-retry wake hook: every commit write-back
    /// (TL2, NOrec, glock) and direct write lands here, so after the value
    /// store we check — one `SeqCst` *load*, no new shared-line writes on
    /// the fast path — whether any waiter is parked, and take the cold
    /// wake path only then. Lost-wakeup freedom is an SC total-order
    /// argument: the waiter does `[raise count][validation load]`, the
    /// committer does `[value store][count load]`; if the committer reads
    /// count `0`, its store precedes the waiter's validation, which then
    /// observes the new value and refuses to sleep. If the count is
    /// nonzero the committer scans the registry under its lock, which
    /// either finds the waiter (wake) or serializes before its
    /// registration push — and the mutex hand-off then makes the store
    /// visible to the waiter's validation.
    #[inline]
    pub fn store(&self, x: usize, v: u64) {
        self.values[x].store(v, Ordering::SeqCst);
        if self.retry_waiter_count.load(Ordering::SeqCst) != 0 {
            self.wake_retry_waiters(x);
        }
    }

    #[cold]
    fn wake_retry_waiters(&self, x: usize) {
        let waiters = self.retry_waiters.lock().unwrap();
        for (reg, w) in waiters.iter() {
            if *reg == x {
                w.wake(x);
            }
        }
    }

    /// Register a parked blocking-`retry` transaction on every register in
    /// its read set. Entries are pushed under the registry lock *before*
    /// the count is raised; the caller must validate its reads *after*
    /// this returns and sleep only if they are unchanged (see
    /// [`Runtime::store`] for why that ordering is lost-wakeup-free).
    pub fn register_retry_waiter(&self, regs: &[usize], w: &Arc<RetryWaiter>) {
        let mut ws = self.retry_waiters.lock().unwrap();
        for &r in regs {
            ws.push((r, Arc::clone(w)));
        }
        drop(ws);
        self.retry_waiter_count
            .fetch_add(regs.len() as u64, Ordering::SeqCst);
    }

    /// Remove every registry entry of `w` (matched by `Arc` identity) and
    /// lower the fast-path count accordingly. Idempotent.
    pub fn deregister_retry_waiter(&self, w: &Arc<RetryWaiter>) {
        let mut ws = self.retry_waiters.lock().unwrap();
        let before = ws.len();
        ws.retain(|(_, x)| !Arc::ptr_eq(x, w));
        let removed = (before - ws.len()) as u64;
        drop(ws);
        if removed > 0 {
            self.retry_waiter_count.fetch_sub(removed, Ordering::SeqCst);
        }
    }

    /// Number of live retry-registry entries (test helper).
    pub fn retry_waiter_entries(&self) -> u64 {
        self.retry_waiter_count.load(Ordering::SeqCst)
    }

    /// Unsynchronized snapshot of a register (test/report helper).
    pub fn peek(&self, x: usize) -> u64 {
        self.load(x)
    }
}

/// Per-call context handed to [`Policy`] methods: the runtime, this
/// handle's stats, and its thread slot.
pub struct TxCtx<'a> {
    /// The shared runtime (register file, grace engine, epochs).
    pub rt: &'a Runtime,
    /// This handle's statistics.
    pub stats: &'a mut Stats,
    /// This handle's thread slot.
    pub slot: u16,
}

/// A concurrency-control policy over the shared runtime.
///
/// The generic [`Handle`] drives the protocol and owns all recording, epoch
/// registration, stats bookkeeping shared between algorithms, and retries;
/// a policy only decides how reads/writes/commits synchronize. Contract:
///
/// * `begin` is called inside the fence epoch, before any ops.
/// * `read`/`write` return `Err(Abort)` for op-level aborts, after counting
///   the abort kind in `ctx.stats`.
/// * `commit` makes the transaction's writes visible atomically or fails
///   (again counting the abort kind); it must release any locks it took.
/// * `rollback` is called on *every* abort path (op-level, commit-level,
///   user) before the `Aborted` response is recorded.
pub trait Policy: Send {
    /// Start a transaction attempt (called inside the fence epoch).
    fn begin(&mut self, ctx: &mut TxCtx<'_>);
    /// Transactional read of register `x`.
    fn read(&mut self, ctx: &mut TxCtx<'_>, x: usize) -> Result<u64, Abort>;
    /// Transactional (buffered) write of register `x`.
    fn write(&mut self, ctx: &mut TxCtx<'_>, x: usize, v: u64) -> Result<(), Abort>;
    /// Make the attempt's writes visible atomically, or fail.
    fn commit(&mut self, ctx: &mut TxCtx<'_>) -> Result<(), Abort>;
    /// Discard attempt state; called on *every* abort path.
    fn rollback(&mut self, ctx: &mut TxCtx<'_>);

    /// How `fence()`/`fence_async()` resolve for this policy. The default
    /// routes through the runtime's [`GraceEngine`] — an RCU grace period
    /// over the epoch table (paper Fig 7 lines 33–39), issued as a ticket
    /// so concurrent fences batch behind one scan. Algorithms that are
    /// privatization-safe by design override this to
    /// [`FenceMode::Immediate`].
    fn fence_mode(&self) -> FenceMode {
        FenceMode::Quiesce
    }
}

/// What a fence means for a [`Policy`] — both its blocking behavior and its
/// recorded-history footprint, which must agree (a recorded fence asserts
/// Def A.1's blocking clause: no transaction spans it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FenceMode {
    /// Fences are grace periods: `fence_async` issues a [`GraceEngine`]
    /// ticket, `FBegin` is recorded at issue and `FEnd` at resolution.
    Quiesce,
    /// Fences are no-ops (the algorithm needs no quiescence — NOrec):
    /// tickets resolve at issue and no fence actions are recorded, since a
    /// recorded fence would claim a quiescence that never happened.
    Immediate,
}

/// A per-thread STM handle: a [`Policy`] bound to a [`Runtime`] slot.
/// Implements [`StmHandle`] for every policy at once.
pub struct Handle<P: Policy> {
    rt: Arc<Runtime>,
    slot: u16,
    /// Is a transaction attempt in flight on this handle? Cleared by every
    /// finalization (commit or abort); ops issued on a finalized attempt —
    /// a body that swallowed an `Abort` and kept going — are inert.
    active: bool,
    stats: Stats,
    backoff: BackoffCfg,
    /// Retry budget before escalation (see [`RetryPolicy`]).
    retry: RetryPolicy,
    /// Set when a panic unwound through `commit` itself: the policy's
    /// buffered state may be torn (a write-back can be half applied), so
    /// atomicity can no longer be promised on this handle. Every later
    /// `atomic`/`try_atomic` fails fast with a clear panic instead of
    /// silently running on the wreck. The *runtime* stays healthy — the
    /// unwind released every lock and the epoch slot — only this handle is
    /// condemned.
    poisoned: bool,
    /// When the in-flight attempt began, for the commit-latency histogram.
    /// `None` whenever telemetry is disabled (the clock is never sampled).
    tx_started: Option<Instant>,
    policy: P,
}

impl<P: Policy> Handle<P> {
    /// A handle binding `policy` to `slot` of the shared runtime.
    pub fn new(rt: Arc<Runtime>, slot: usize, policy: P, backoff: BackoffCfg) -> Self {
        assert!(slot < rt.nthreads(), "slot {slot} out of range");
        // The VLock owner field encodes slot + 1 in 16 bits.
        assert!(
            slot < usize::from(u16::MAX),
            "slot {slot} exceeds the 16-bit owner encoding"
        );
        Handle {
            rt,
            slot: slot as u16,
            active: false,
            stats: Stats::default(),
            backoff,
            retry: RetryPolicy::default(),
            poisoned: false,
            tx_started: None,
            policy,
        }
    }

    /// Bound this handle's retry loop (normally inherited from
    /// [`StmConfig::retry`] by [`Stm::handle`]).
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Did a panic unwind through this handle's commit, condemning it?
    /// (See the poisoning contract on [`StmHandle::atomic`].)
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The shared runtime this handle runs against.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// This handle's thread slot.
    pub fn slot(&self) -> usize {
        self.slot as usize
    }

    /// The policy driving this handle (for policy-specific extras, e.g.
    /// [`crate::tl2::Tl2Policy::last_commit_wver`]).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Crate-internal: the typed `atomically` loop drives `try_atomic`
    /// itself (a blocking-retry sleep has to happen between attempts, not
    /// inside one) and counts its re-runs in the same [`Stats::retries`]
    /// counter the shared `atomic` loop uses.
    pub(crate) fn note_retry(&mut self) {
        self.stats.retries += 1;
    }

    #[inline]
    fn rec(&self, kind: Kind) {
        if let Some(r) = &self.rt.recorder {
            r.record(self.slot as usize, kind);
        }
    }

    #[inline]
    fn rec_pair(&self, req: Kind, resp: Kind) {
        if let Some(r) = &self.rt.recorder {
            r.record_pair(self.slot as usize, req, resp);
        }
    }

    #[inline]
    fn ctx<'a>(rt: &'a Runtime, stats: &'a mut Stats, slot: u16) -> TxCtx<'a> {
        TxCtx { rt, stats, slot }
    }

    fn begin(&mut self) {
        // The irrevocability gate: while another handle holds the
        // escalation token, park here — strictly *before* the epoch entry,
        // so a gated thread pins no epoch slot and the escalated handle's
        // drain (`wait_quiescent`) terminates. One relaxed-ish load when
        // nobody is escalated.
        self.rt.escalation_gate(self.slot);
        // Epoch entry strictly before the TxBegin record — the mirror of
        // the commit path (Committed recorded before the epoch exit). If
        // TxBegin were recorded first, a fence sampling the epoch table in
        // the window between the two would not wait for us, yielding a
        // recorded history with a transaction spanning a complete fence
        // (rejected by Def A.1 clause 10). With this order, a transaction
        // a fence skips is guaranteed a TxBegin sequenced after FBegin,
        // which clause 10 permits.
        self.rt.epochs().enter(self.slot as usize);
        self.active = true;
        self.rec(Kind::TxBegin);
        self.tx_started = if self.rt.telemetry.enabled() {
            self.rt
                .telemetry
                .record_event(self.slot, EventKind::TxBegin);
            Some(Instant::now())
        } else {
            None
        };
        let mut ctx = Self::ctx(&self.rt, &mut self.stats, self.slot);
        self.policy.begin(&mut ctx);
        self.rec(Kind::Ok);
    }

    fn tx_read(&mut self, x: usize) -> Result<u64, Abort> {
        if !self.active {
            // The attempt was already finalized (an earlier abort the body
            // swallowed); don't record, don't re-finalize.
            return Err(Abort);
        }
        self.rec(Kind::Read(Reg(x as u32)));
        let mut ctx = Self::ctx(&self.rt, &mut self.stats, self.slot);
        match self.policy.read(&mut ctx, x) {
            Ok(v) => {
                self.rec(Kind::RetVal(v));
                Ok(v)
            }
            Err(Abort) => {
                self.finish_abort(AbortCause::Read);
                Err(Abort)
            }
        }
    }

    fn tx_write(&mut self, x: usize, v: u64) -> Result<(), Abort> {
        if !self.active {
            return Err(Abort);
        }
        self.rec(Kind::Write(Reg(x as u32), v));
        let mut ctx = Self::ctx(&self.rt, &mut self.stats, self.slot);
        match self.policy.write(&mut ctx, x, v) {
            Ok(()) => {
                self.rec(Kind::RetUnit);
                Ok(())
            }
            Err(Abort) => {
                self.finish_abort(AbortCause::Write);
                Err(Abort)
            }
        }
    }

    fn do_commit(&mut self) -> Result<(), Abort> {
        self.rec(Kind::TxCommit);
        let locks_before = self.stats.aborts_lock;
        // Commit runs under unwind protection: a panic inside the policy
        // (reachable via fault injection, or an allocation failure in a
        // write-back) must not leak write-set locks or the epoch slot. The
        // policy's own unwind guards release any locks it holds (TL2's
        // commit guard, glock's rollback); here we finalize the attempt and
        // condemn the handle — the write-back may be half applied, so
        // atomicity cannot be promised on it again.
        let commit_result = {
            let mut ctx = TxCtx {
                rt: &self.rt,
                stats: &mut self.stats,
                slot: self.slot,
            };
            let policy = &mut self.policy;
            catch_unwind(AssertUnwindSafe(|| policy.commit(&mut ctx)))
        };
        match commit_result {
            Err(payload) => {
                self.poisoned = true;
                self.stats.panics_unwound += 1;
                self.finish_abort(AbortCause::Panic);
                resume_unwind(payload);
            }
            Ok(Ok(())) => {
                self.stats.commits += 1;
                // Response recorded before the epoch exit, so a fence that
                // stops waiting for us is guaranteed to have our committed
                // action in the history (Def A.1 clause 10).
                self.rec(Kind::Committed);
                if let Some(t0) = self.tx_started.take() {
                    self.rt
                        .telemetry
                        .record_commit(self.slot, t0.elapsed().as_nanos() as u64);
                }
                self.rt.epochs().exit(self.slot as usize);
                self.active = false;
                Ok(())
            }
            Ok(Err(Abort)) => {
                // Policies count their commit-time abort kind before
                // returning; a grown lock counter distinguishes lock
                // acquisition failures from validation failures.
                let cause = if self.stats.aborts_lock > locks_before {
                    AbortCause::Lock
                } else {
                    AbortCause::Validate
                };
                self.finish_abort(cause);
                Err(Abort)
            }
        }
    }

    /// Abort epilogue shared by failed ops, failed commits, and user aborts.
    fn finish_abort(&mut self, cause: AbortCause) {
        let mut ctx = Self::ctx(&self.rt, &mut self.stats, self.slot);
        self.policy.rollback(&mut ctx);
        self.rec(Kind::Aborted);
        self.tx_started = None;
        if self.rt.telemetry.enabled() {
            self.rt
                .telemetry
                .record_event(self.slot, EventKind::TxAbort { cause });
        }
        self.rt.epochs().exit(self.slot as usize);
        self.active = false;
    }

    /// One exponential-backoff pause after the `attempt`-th consecutive
    /// abort; time spent is charged to [`Stats::backoff_ns`]. Crate-visible
    /// so the typed frontend's `atomically` loop (which drives
    /// `try_atomic` itself to interleave blocking-retry sleeps) backs off
    /// identically to [`StmHandle::atomic`].
    pub(crate) fn backoff_pause(&mut self, attempt: u32) {
        let cfg = self.backoff;
        // Widen to u64 and saturate: BackoffCfg is an unvalidated public
        // knob, and spin_base << shift must not overflow for any input.
        let shift = attempt.min(cfg.max_shift).min(32);
        let max_spins = (u64::from(cfg.spin_base) << shift).min(u64::from(u32::MAX)) as u32;
        let yields = attempt >= cfg.yield_after;
        if max_spins == 0 && !yields {
            // Backoff fully disabled: don't even sample the clock, so the
            // `BackoffCfg::none` baseline really is retry-immediately.
            return;
        }
        let start = Instant::now();
        if yields {
            std::thread::yield_now();
        }
        if max_spins > 0 {
            // Jitter: uniform in (max_spins/2, max_spins] so contending
            // threads desynchronize instead of re-colliding.
            let h = splitmix64((u64::from(self.slot) << 32) | u64::from(attempt));
            let spins = max_spins / 2 + (h % u64::from(max_spins / 2 + 1)) as u32;
            for _ in 0..spins {
                std::hint::spin_loop();
            }
        }
        self.stats.backoff_ns += start.elapsed().as_nanos() as u64;
    }

    /// The graceful-degradation fallback of the `atomic` loop: the retry
    /// budget is spent, so stop gambling and run serialized. Takes the
    /// runtime-wide escalation token (parking every other handle at the
    /// begin gate), drains in-flight transactions, and re-runs the body
    /// with the whole runtime to itself — the global-lock policy's
    /// guarantee, reconstructed for every policy as a fallback path.
    ///
    /// Effectively irrevocable rather than absolutely: a transaction that
    /// passed the begin gate *before* the token was taken may still slip
    /// one conflicting commit in, aborting the drained attempt once — but
    /// it then parks at its next begin, so the retry-under-token loop is
    /// bounded by that one racing window (fault injection is explicitly
    /// exempt from aborting an escalated attempt, see
    /// [`Runtime::chaos_abort`]). Heavy contention therefore degrades to
    /// serialized progress instead of livelock.
    #[cold]
    fn run_escalated<R>(
        &mut self,
        body: &mut impl FnMut(&mut dyn TxScope) -> Result<R, Abort>,
        attempts: u32,
        deadline_expired: bool,
    ) -> R {
        self.rt.escalation_acquire(self.slot);
        // Token released on *every* exit — including a panicking body
        // unwinding through the escalated attempt. Leaking it would park
        // every other handle forever, turning one bad closure into a
        // runtime-wide deadlock.
        struct TokenGuard(Arc<Runtime>, u16);
        impl Drop for TokenGuard {
            fn drop(&mut self) {
                self.0.escalation_release(self.1);
            }
        }
        let guard = TokenGuard(Arc::clone(&self.rt), self.slot);
        self.stats.escalations += 1;
        if self.rt.telemetry.enabled() {
            self.rt.telemetry.record_event(
                self.slot,
                EventKind::Escalation {
                    attempts: u64::from(attempts),
                    deadline_expired,
                },
            );
        }
        loop {
            // Drain: wait until every other slot is quiescent. Newcomers
            // are parked at the begin gate (checked before epoch entry), so
            // this terminates; we are not inside a transaction ourselves.
            self.rt.epochs().wait_quiescent(Some(self.slot as usize));
            match self.try_atomic(&mut *body) {
                Ok(r) => {
                    drop(guard);
                    return r;
                }
                Err(Abort) => {
                    // Only the one racing window (or a user abort the body
                    // keeps returning) lands here; re-drain and go again.
                    self.stats.retries += 1;
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// An algorithm's construction recipe: how to build its instance-shared
/// state and mint per-thread [`Policy`] values from it. Implementing this
/// (plus [`Policy`]) is *all* a new algorithm needs — the [`Stm`] frontend
/// supplies `new`/`with_recorder`/`with_config`/`handle`/`peek` and the
/// [`StmFactory`] impl once, for every algorithm.
pub trait PolicyKind: 'static {
    /// The per-thread policy type.
    type Policy: Policy;
    /// The instance-shared state type.
    type Shared: Send + Sync + 'static;

    /// Build the instance-shared state from the configuration.
    fn build_shared(cfg: &StmConfig) -> Self::Shared;
    /// Mint one per-thread policy over the shared state.
    fn build_policy(shared: &Arc<Self::Shared>) -> Self::Policy;
    /// Post-construction wiring between the shared state and the runtime,
    /// called once by [`Stm::with_config`] after both exist. The default
    /// does nothing; TL2 overrides it to hang the contention governor's
    /// poll loop off the runtime's background-driver tick (see
    /// [`Runtime::set_tick_hook`]).
    fn after_build(_rt: &Arc<Runtime>, _shared: &Arc<Self::Shared>) {}
}

/// The shared frontend of one STM instance: the [`Runtime`], the
/// algorithm's shared state, and the construction-time backoff tuning.
/// Concrete STMs are type aliases (`Tl2Stm`, `NorecStm`, `GlockStm`).
pub struct Stm<K: PolicyKind> {
    rt: Arc<Runtime>,
    shared: Arc<K::Shared>,
    backoff: BackoffCfg,
    retry: RetryPolicy,
}

// Manual impl: `#[derive(Clone)]` would demand `K: Clone` needlessly.
impl<K: PolicyKind> Clone for Stm<K> {
    fn clone(&self) -> Self {
        Stm {
            rt: Arc::clone(&self.rt),
            shared: Arc::clone(&self.shared),
            backoff: self.backoff,
            retry: self.retry,
        }
    }
}

impl<K: PolicyKind> Stm<K> {
    /// Default configuration: per-register lock storage (where applicable),
    /// default backoff, no recorder.
    pub fn new(nregs: usize, nthreads: usize) -> Self {
        Self::with_config(StmConfig::new(nregs, nthreads))
    }

    /// Attach a [`Recorder`]; every handle then logs its TM interface
    /// actions for offline DRF / strong-opacity checking.
    pub fn with_recorder(nregs: usize, nthreads: usize, recorder: Option<Arc<Recorder>>) -> Self {
        let mut cfg = StmConfig::new(nregs, nthreads);
        cfg.recorder = recorder;
        Self::with_config(cfg)
    }

    /// Full construction-time control: storage backend, backoff tuning,
    /// recorder.
    pub fn with_config(cfg: StmConfig) -> Self {
        let rt = Runtime::new(&cfg);
        let shared = Arc::new(K::build_shared(&cfg));
        K::after_build(&rt, &shared);
        Stm {
            rt,
            shared,
            backoff: cfg.backoff,
            retry: cfg.retry,
        }
    }

    /// A handle bound to thread slot `slot` (< `nthreads`).
    pub fn handle(&self, slot: usize) -> Handle<K::Policy> {
        let mut h = Handle::new(
            Arc::clone(&self.rt),
            slot,
            K::build_policy(&self.shared),
            self.backoff,
        );
        h.set_retry_policy(self.retry);
        h
    }

    /// Current register value (unsynchronized snapshot; test/report helper).
    pub fn peek(&self, x: usize) -> u64 {
        self.rt.peek(x)
    }

    /// The shared runtime of this instance.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// The shared runtime by `Arc` (crate-internal: the typed frontend's
    /// slot space keeps the runtime alive past this `Stm`).
    pub(crate) fn runtime_arc(&self) -> Arc<Runtime> {
        Arc::clone(&self.rt)
    }

    /// The algorithm's instance-shared state (for algorithm-specific
    /// extras, e.g. TL2's lock-table introspection).
    pub fn shared(&self) -> &K::Shared {
        &self.shared
    }

    /// Merged telemetry snapshot (see [`Runtime::telemetry_snapshot`]).
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        self.rt.telemetry_snapshot()
    }

    /// Background-driver idle wakeups (see [`Runtime::driver_idle_wakeups`]).
    pub fn driver_idle_wakeups(&self) -> Option<u64> {
        self.rt.driver_idle_wakeups()
    }

    /// Periodic snapshot export off the background driver's tick (see
    /// [`Runtime::set_telemetry_export`]).
    pub fn set_telemetry_export(
        &self,
        every: Duration,
        f: impl Fn(TelemetrySnapshot) + Send + Sync + 'static,
    ) -> bool {
        self.rt.set_telemetry_export(every, f)
    }
}

impl<K: PolicyKind> StmFactory for Stm<K> {
    type Handle = Handle<K::Policy>;

    fn handle(&self, slot: usize) -> Self::Handle {
        Stm::handle(self, slot)
    }

    fn peek(&self, x: usize) -> u64 {
        Stm::peek(self, x)
    }
}

struct HandleTx<'a, P: Policy>(&'a mut Handle<P>);

impl<P: Policy> TxScope for HandleTx<'_, P> {
    fn read(&mut self, x: usize) -> Result<u64, Abort> {
        self.0.tx_read(x)
    }
    fn write(&mut self, x: usize, v: u64) -> Result<(), Abort> {
        self.0.tx_write(x, v)
    }
}

impl<P: Policy> StmHandle for Handle<P> {
    fn atomic<R>(&mut self, mut body: impl FnMut(&mut dyn TxScope) -> Result<R, Abort>) -> R {
        let mut attempts: u32 = 0;
        // Sample the deadline origin only when a deadline is set: the
        // unlimited default never touches the clock.
        let deadline = self.retry.deadline.map(|d| Instant::now() + d);
        loop {
            match self.try_atomic(&mut body) {
                Ok(r) => return r,
                Err(Abort) => {
                    self.stats.retries += 1;
                    attempts = attempts.saturating_add(1);
                    // Budget check strictly before the backoff pause: an
                    // exhausted transaction escalates immediately instead
                    // of paying one last sleep on its way to the fallback
                    // (the deadline case would be the worst — expired *and*
                    // sleeping the longest backoff of its run).
                    let out_of_attempts = self.retry.max_attempts.is_some_and(|m| attempts >= m);
                    let deadline_expired = deadline.is_some_and(|d| Instant::now() >= d);
                    if out_of_attempts || deadline_expired {
                        return self.run_escalated(&mut body, attempts, deadline_expired);
                    }
                    // The abort-to-retry gap: how long this handle stays
                    // out of the ring between finalizing an abort and
                    // re-entering `begin` (here, the backoff pause).
                    let gap_started = self.rt.telemetry.enabled().then(Instant::now);
                    self.backoff_pause(attempts - 1);
                    if let Some(t0) = gap_started {
                        self.rt.telemetry.record_latency(
                            self.slot,
                            LatencyClass::AbortGap,
                            t0.elapsed().as_nanos() as u64,
                        );
                    }
                }
            }
        }
    }

    fn try_atomic<R>(
        &mut self,
        mut body: impl FnMut(&mut dyn TxScope) -> Result<R, Abort>,
    ) -> Result<R, Abort> {
        assert!(
            !self.poisoned,
            "STM handle (slot {}) is poisoned: a previous attempt panicked during \
             commit, so its buffered writes may be half applied; discard this handle",
            self.slot
        );
        self.begin();
        // The body runs under unwind protection: a panicking closure must
        // not leak the epoch slot (wedging every future grace period) or,
        // under the global lock, the lock its begin acquired. On unwind the
        // attempt is finalized exactly like an abort — rollback, `Aborted`
        // recorded, epoch exited, `AbortCause::Panic` traced — and then the
        // unwind resumes to the caller untouched.
        let attempt = {
            let mut tx = HandleTx(self);
            catch_unwind(AssertUnwindSafe(|| body(&mut tx)))
        };
        match attempt {
            Err(payload) => {
                if self.active {
                    self.stats.panics_unwound += 1;
                    self.finish_abort(AbortCause::Panic);
                }
                resume_unwind(payload);
            }
            Ok(Ok(r)) => {
                // A body that swallowed an op-level abort (instead of
                // propagating it with `?`) reaches here with the attempt
                // already finalized: rolled back, `Aborted` recorded, epoch
                // exited. Committing would write back stale buffered state —
                // treat it as the abort it was.
                if !self.active {
                    return Err(Abort);
                }
                self.do_commit()?;
                Ok(r)
            }
            Ok(Err(Abort)) => {
                // Distinguish op-level aborts (already finalized in
                // tx_read/tx_write) from aborts requested by the body.
                if self.active {
                    self.stats.aborts_user += 1;
                    self.finish_abort(AbortCause::User);
                }
                Err(Abort)
            }
        }
    }

    fn read_direct(&mut self, x: usize) -> u64 {
        let v = self.rt.load(x);
        self.stats.direct_reads += 1;
        // One `record_pair`, not two `rec`s: clause 7 requires the pair to
        // be *globally* adjacent, which two separate sequence draws cannot
        // guarantee against concurrent recorders.
        self.rec_pair(Kind::Read(Reg(x as u32)), Kind::RetVal(v));
        v
    }

    fn write_direct(&mut self, x: usize, v: u64) {
        self.rt.store(x, v);
        self.stats.direct_writes += 1;
        self.rec_pair(Kind::Write(Reg(x as u32), v), Kind::RetUnit);
    }

    fn fence_async(&mut self) -> FenceTicket {
        self.stats.fences += 1;
        match self.policy.fence_mode() {
            FenceMode::Immediate => FenceTicket::immediate(),
            FenceMode::Quiesce => {
                // FBegin strictly before the period stamp: a transaction
                // whose TxBegin is recorded before this FBegin entered its
                // epoch even earlier (see `begin`), so the completing
                // scan's snapshot — taken after the period closes, hence
                // after the stamp — observes it, and its Committed/Aborted
                // lands before our FEnd (Def A.1 clause 10).
                self.rec(Kind::FBegin);
                let grace = self.rt.grace().issue();
                let rec = self
                    .rt
                    .recorder
                    .as_ref()
                    .map(|r| (Arc::clone(r), self.slot as usize));
                let tel = if self.rt.telemetry.enabled() {
                    self.rt.telemetry.record_event(
                        self.slot,
                        EventKind::FenceIssue {
                            period: grace.period(),
                        },
                    );
                    Some((Arc::clone(&self.rt.telemetry), self.slot))
                } else {
                    None
                };
                FenceTicket::issued(grace, rec, tel)
            }
        }
    }

    fn fence_join(&mut self, mut ticket: FenceTicket) {
        // One wait, two sinks: the [`Stats::fence_wait_ns`] counter and the
        // fence-wait latency histogram. With telemetry enabled the counter
        // is by construction the histogram's sum (asserted in tests).
        let wait_ns = ticket.wait().as_nanos() as u64;
        self.stats.fence_wait_ns += wait_ns;
        self.rt
            .telemetry
            .record_latency(self.slot, LatencyClass::FenceWait, wait_ns);
    }

    fn fence_join_timeout(
        &mut self,
        ticket: &mut FenceTicket,
        timeout: Duration,
    ) -> Result<(), FenceTimeout> {
        match ticket.wait_timeout(timeout) {
            Ok(waited) => {
                let wait_ns = waited.as_nanos() as u64;
                self.stats.fence_wait_ns += wait_ns;
                self.rt
                    .telemetry
                    .record_latency(self.slot, LatencyClass::FenceWait, wait_ns);
                Ok(())
            }
            Err(e) => {
                // The timed-out wait still blocked the handle: charge both
                // sinks, same as a completed join, so `Stats::fence_wait_ns`
                // stays exactly the fence-wait histogram's sum.
                let wait_ns = e.waited.as_nanos() as u64;
                self.stats.fence_wait_ns += wait_ns;
                self.rt
                    .telemetry
                    .record_latency(self.slot, LatencyClass::FenceWait, wait_ns);
                self.stats.stalls_detected += e.stalled.len() as u64;
                Err(e)
            }
        }
    }

    fn stats(&self) -> Stats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial always-succeeds buffered policy, to test the generic
    /// handle machinery in isolation from any real algorithm.
    #[derive(Default)]
    struct NullPolicy {
        buf: Vec<(usize, u64)>,
        /// Abort the next `n` commit attempts (to exercise the retry loop).
        fail_commits: u32,
        /// Abort the next `n` reads (to exercise op-level abort paths).
        fail_reads: u32,
    }

    impl Policy for NullPolicy {
        fn begin(&mut self, _ctx: &mut TxCtx<'_>) {
            self.buf.clear();
        }
        fn read(&mut self, ctx: &mut TxCtx<'_>, x: usize) -> Result<u64, Abort> {
            if self.fail_reads > 0 {
                self.fail_reads -= 1;
                ctx.stats.aborts_read += 1;
                return Err(Abort);
            }
            if let Some(&(_, v)) = self.buf.iter().rev().find(|&&(r, _)| r == x) {
                return Ok(v);
            }
            Ok(ctx.rt.load(x))
        }
        fn write(&mut self, _ctx: &mut TxCtx<'_>, x: usize, v: u64) -> Result<(), Abort> {
            self.buf.push((x, v));
            Ok(())
        }
        fn commit(&mut self, ctx: &mut TxCtx<'_>) -> Result<(), Abort> {
            if self.fail_commits > 0 {
                self.fail_commits -= 1;
                ctx.stats.aborts_validate += 1;
                return Err(Abort);
            }
            for &(x, v) in &self.buf {
                ctx.rt.store(x, v);
            }
            Ok(())
        }
        fn rollback(&mut self, _ctx: &mut TxCtx<'_>) {}
    }

    fn handle(fail_commits: u32) -> Handle<NullPolicy> {
        let cfg = StmConfig::new(4, 1);
        let rt = Runtime::new(&cfg);
        Handle::new(
            rt,
            0,
            NullPolicy {
                fail_commits,
                ..Default::default()
            },
            cfg.backoff,
        )
    }

    #[test]
    fn retry_loop_counts_retries_and_backoff() {
        let mut h = handle(3);
        h.atomic(|tx| tx.write(0, 7));
        let s = h.stats();
        assert_eq!(s.commits, 1);
        assert_eq!(s.retries, 3);
        assert_eq!(s.aborts_validate, 3);
        assert!(s.backoff_ns > 0, "backoff time must be charged");
        assert_eq!(h.runtime().peek(0), 7);
    }

    #[test]
    fn swallowed_op_abort_does_not_commit() {
        // A body that catches an op-level abort and returns Ok anyway: the
        // attempt was already finalized, so try_atomic must report Abort,
        // leave the epoch quiescent, and commit nothing.
        let cfg = StmConfig::new(2, 1);
        let rt = Runtime::new(&cfg);
        let mut h = Handle::new(
            rt,
            0,
            NullPolicy {
                fail_reads: 1,
                ..Default::default()
            },
            cfg.backoff,
        );
        let r: Result<u64, Abort> = h.try_atomic(|tx| {
            tx.write(0, 99)?;
            // Swallow the abort instead of propagating it — and keep
            // issuing ops on the finalized attempt; they must be inert.
            let a = tx.read(1).unwrap_or(7);
            let b = tx.read(1).unwrap_or(8);
            let _ = tx.write(1, 5);
            Ok(a + b)
        });
        assert_eq!(r, Err(Abort), "a swallowed abort must not commit");
        assert!(!h.runtime().epochs().is_active(0), "no double epoch exit");
        assert_eq!(h.runtime().peek(0), 0, "stale buffered write discarded");
        assert_eq!(h.runtime().peek(1), 0, "post-abort write inert");
        assert_eq!(h.stats().aborts_read, 1, "inert ops count no new aborts");
        assert_eq!(h.stats().aborts_user, 0, "not a user abort");
        // The handle stays usable.
        h.atomic(|tx| tx.write(0, 5));
        assert_eq!(h.runtime().peek(0), 5);
    }

    #[test]
    fn user_abort_accounting_and_epoch_exit() {
        let mut h = handle(0);
        let r: Result<(), Abort> = h.try_atomic(|tx| {
            tx.write(0, 1)?;
            Err(Abort)
        });
        assert_eq!(r, Err(Abort));
        assert_eq!(h.stats().aborts_user, 1);
        assert!(!h.runtime().epochs().is_active(0), "epoch must be exited");
        assert_eq!(h.runtime().peek(0), 0);
    }

    #[test]
    fn recorder_wiring_produces_valid_histories() {
        let rec = Arc::new(Recorder::new(1));
        let cfg = StmConfig::new(2, 1).recorder(Arc::clone(&rec));
        let rt = Runtime::new(&cfg);
        let mut h = Handle::new(rt, 0, NullPolicy::default(), cfg.backoff);
        h.atomic(|tx| {
            let v = tx.read(0)?;
            tx.write(1, v + 1)
        });
        h.fence();
        h.write_direct(0, 5);
        let hist = rec.snapshot_history();
        assert_eq!(hist.validate(), Ok(()));
        // TxBegin Ok Read RetVal Write RetUnit TxCommit Committed
        // FBegin FEnd Write RetUnit
        assert_eq!(hist.len(), 12);
    }

    #[test]
    fn fence_blocked_time_is_charged() {
        use std::sync::atomic::AtomicBool;
        let cfg = StmConfig::new(1, 2);
        let rt = Runtime::new(&cfg);
        let mut h = Handle::new(Arc::clone(&rt), 0, NullPolicy::default(), cfg.backoff);
        rt.epochs().enter(1);
        let fencing = Arc::new(AtomicBool::new(false));
        let releaser = {
            let rt = Arc::clone(&rt);
            let fencing = Arc::clone(&fencing);
            std::thread::spawn(move || {
                while !fencing.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                std::thread::sleep(std::time::Duration::from_millis(30));
                rt.epochs().exit(1);
            })
        };
        fencing.store(true, Ordering::SeqCst);
        h.fence();
        releaser.join().unwrap();
        assert_eq!(h.stats().fences, 1);
        assert!(
            h.stats().fence_wait_ns > 1_000_000,
            "a blocked fence must charge its wait: {:?}",
            h.stats()
        );
    }

    #[test]
    fn backoff_disabled_spins_zero() {
        let cfg = StmConfig::new(1, 1).backoff(BackoffCfg::none());
        let rt = Runtime::new(&cfg);
        let mut h = Handle::new(
            rt,
            0,
            NullPolicy {
                fail_commits: 2,
                ..Default::default()
            },
            cfg.backoff,
        );
        h.atomic(|tx| tx.write(0, 1));
        assert_eq!(h.stats().retries, 2);
    }

    #[test]
    fn config_builders_compose() {
        let cfg = StmConfig::new(8, 2)
            .striped(4)
            .clock(ClockKind::Gv5)
            .grace_driver(DriverMode::Background)
            .backoff(BackoffCfg {
                spin_base: 1,
                max_shift: 2,
                yield_after: 1,
            });
        assert_eq!(cfg.storage, StorageKind::Striped { stripes: 4 });
        assert_eq!(cfg.clock, ClockKind::Gv5);
        assert_eq!(StmConfig::new(1, 1).clock, ClockKind::Gv1, "gv1 default");
        assert_eq!(cfg.driver, DriverMode::Background);
        assert_eq!(cfg.backoff.spin_base, 1);
        let rt = Runtime::new(&cfg);
        assert_eq!(rt.nregs(), 8);
        assert_eq!(rt.nthreads(), 2);
        assert_eq!(rt.driver_mode(), DriverMode::Background);
    }

    /// `StmConfig::auto()` is the one-call governed configuration: adaptive
    /// storage with the seed-from-`nregs` start sentinel plus the
    /// governor-switchable clock.
    #[test]
    fn auto_config_selects_governed_backends() {
        let cfg = StmConfig::auto(1 << 12, 2);
        assert_eq!(cfg.clock, ClockKind::Auto);
        match cfg.storage {
            StorageKind::Adaptive(p) => {
                assert_eq!(p.start, 0, "start stays the seed-from-nregs sentinel");
            }
            other => panic!("auto() must select adaptive storage, got {other:?}"),
        }
        // Everything else stays at the plain defaults.
        let plain = StmConfig::new(1 << 12, 2);
        assert_eq!(cfg.backoff, plain.backoff);
        assert_eq!(cfg.driver, plain.driver);
    }

    /// The driver knob spawns (and on drop, drains) a runtime-owned driver;
    /// fences on a driver-backed runtime work exactly as cooperatively.
    #[test]
    fn background_driver_runtime_fences_and_drains() {
        let cfg = StmConfig::new(2, 1).grace_driver(DriverMode::Background);
        let rt = Runtime::new(&cfg);
        assert_eq!(rt.driver_mode(), DriverMode::Background);
        let mut h = Handle::new(Arc::clone(&rt), 0, NullPolicy::default(), cfg.backoff);
        h.atomic(|tx| tx.write(0, 1));
        h.fence();
        assert_eq!(h.stats().fences, 1);
        // Fire-and-forget just before drop: runtime drop must drain it.
        let fired = Arc::new(std::sync::atomic::AtomicBool::new(false));
        {
            let fired = Arc::clone(&fired);
            h.fence_async().on_complete(move || {
                fired.store(true, Ordering::SeqCst);
            });
        }
        drop(h);
        drop(rt);
        assert!(fired.load(Ordering::SeqCst), "drop must drain callbacks");
    }

    #[test]
    fn driver_mode_defaults_and_labels() {
        assert_eq!(DriverMode::default(), DriverMode::Cooperative);
        assert_eq!(DriverMode::Cooperative.label(), "cooperative");
        assert_eq!(DriverMode::Background.label(), "background");
        assert_eq!(DriverMode::ALL.len(), 2);
        let rt = Runtime::new(&StmConfig::new(1, 1).grace_driver(DriverMode::Cooperative));
        assert_eq!(rt.driver_mode(), DriverMode::Cooperative);
    }
}
