//! Asynchronous, batched transactional fences.
//!
//! The paper's fence (Fig 7 lines 33–39) *blocks* the privatizing thread
//! for a full grace period. [`FenceTicket`] splits that into request and
//! completion: [`StmHandle::fence_async`] returns immediately with a ticket
//! stamped on the runtime's open grace period ([`tm_quiesce::GraceEngine`]),
//! and the thread overlaps useful work until it [`poll`](FenceTicket::poll)s
//! or [`wait`](FenceTicket::wait)s. Batching is the payoff: every ticket
//! issued during the same open period — by any thread — resolves on one
//! shared scan of the epoch table, the same amortization `call_rcu` gets
//! over `synchronize_rcu`.
//!
//! Recorded histories get `FBegin` at ticket issue and `FEnd` at ticket
//! resolution, so the `tm-core` checkers validate asynchronous fences with
//! the same Def A.1 clause-10 obligation as blocking ones. Two rules follow:
//!
//! * With a recorder attached, resolve a ticket before issuing further TM
//!   operations on the same handle — `FBegin` is a *request* action, and a
//!   `TxBegin` recorded before the matching `FEnd` makes the history
//!   ill-formed (nested requests, Def A.1 clause 5). The work overlapped
//!   under an open ticket must be non-transactional.
//! * Never wait on a ticket from inside a transaction on the same handle's
//!   slot: the grace period would wait for the waiter.
//!
//! An unresolved ticket resolves *at the latest when dropped* (the drop
//! blocks through the grace period), so a fence, once requested, is never
//! silently lost.
//!
//! ## Fire-and-forget liveness
//!
//! [`FenceTicket::on_complete`] consumes the ticket — nothing is left to
//! poll, wait, or drop. Under the default cooperative
//! [`DriverMode`](crate::runtime::DriverMode) the callback therefore fires
//! only when some *later* fence/poll on the same runtime drives the
//! engine; a runtime whose threads all go quiet never fires it. Build the
//! runtime with [`DriverMode::Background`](crate::runtime::DriverMode) for
//! the `call_rcu`-style guarantee: a runtime-owned
//! [`tm_quiesce::GraceDriver`] retires the period within bounded time with
//! zero pollers, and runtime drop drains outstanding callbacks.
//!
//! ## Cross-thread `FEnd` recording
//!
//! The completing thread — a cooperative driver or the background driver,
//! not necessarily the issuer — records the `FEnd` into the *issuing
//! slot's* log. [`Recorder::record`] is safe under that cross-thread use
//! (a per-slot mutex guards the log; ordering comes from the global
//! sequence counter, not vector position — see [`crate::record`]). The
//! ordering obligation is the caller's: the issuing handle must not record
//! further actions until the callback has been *observed* (the `FEnd` is
//! recorded strictly before the callback runs), otherwise a TxBegin could
//! interleave before the `FEnd` and the history would be ill-formed.

use crate::api::StmHandle;
use crate::record::Recorder;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tm_core::action::Kind;
use tm_quiesce::{GraceTicket, StallInfo};
use tm_telemetry::{EventKind, Telemetry};

/// A pending (or already-elapsed) transactional fence: completes once every
/// transaction active at issue has committed or aborted.
///
/// Obtained from [`StmHandle::fence_async`]. Policies whose fence is a
/// no-op (NOrec — privatization-safe without quiescing) return tickets that
/// are already resolved at issue.
pub struct FenceTicket {
    /// The grace-period claim; `None` for no-op (immediate) fences.
    grace: Option<GraceTicket>,
    /// Recorder and thread slot for the `FEnd` emitted at resolution.
    rec: Option<(Arc<Recorder>, usize)>,
    /// Telemetry hub and issuing slot for the `fence-retire` trace event
    /// emitted at resolution (`None` when tracing is off at issue).
    tel: Option<(Arc<Telemetry>, u16)>,
    resolved: bool,
}

impl FenceTicket {
    /// An already-elapsed fence (no-op fence policies, e.g. NOrec).
    pub(crate) fn immediate() -> Self {
        FenceTicket {
            grace: None,
            rec: None,
            tel: None,
            resolved: true,
        }
    }

    /// A pending fence over `grace`; `rec` emits `FEnd` and `tel` the
    /// `fence-retire` trace event at resolution.
    pub(crate) fn issued(
        grace: GraceTicket,
        rec: Option<(Arc<Recorder>, usize)>,
        tel: Option<(Arc<Telemetry>, u16)>,
    ) -> Self {
        FenceTicket {
            grace: Some(grace),
            rec,
            tel,
            resolved: false,
        }
    }

    /// Has this fence already resolved (grace period elapsed, `FEnd`
    /// recorded)?
    pub fn is_resolved(&self) -> bool {
        self.resolved
    }

    /// The grace period this ticket is stamped with (`None` for no-op
    /// fences). Tickets with equal periods on the same runtime share one
    /// epoch-table scan.
    pub fn period(&self) -> Option<u64> {
        self.grace.as_ref().map(|g| g.period())
    }

    /// Non-blocking completion check. Each call also contributes one
    /// cooperative driving step to the engine, so a polling loop makes
    /// global progress even with no other waiter.
    pub fn poll(&mut self) -> bool {
        if !self.resolved && self.grace.as_ref().is_none_or(|g| g.poll()) {
            self.resolve();
        }
        self.resolved
    }

    /// Block (cooperatively — yielding, never hard-spinning) until the
    /// fence resolves; returns the time spent blocked. Prefer
    /// [`StmHandle::fence_join`], which also charges that time to
    /// [`crate::api::Stats::fence_wait_ns`].
    pub fn wait(&mut self) -> Duration {
        if self.resolved {
            return Duration::ZERO;
        }
        let start = Instant::now();
        if let Some(g) = &self.grace {
            g.wait();
        }
        self.resolve();
        start.elapsed()
    }

    /// [`Self::wait`], bounded: give up after `timeout`, returning a
    /// [`FenceTimeout`] naming every epoch slot the grace scan is pinned on
    /// (via the engine's stall detector) — the caller can bound a
    /// privatization wait and point at the offending thread instead of
    /// hanging forever behind a closure parked inside a transaction.
    ///
    /// A timeout bounds *this wait only*: the ticket stays pending (the
    /// grace period is still owed) and may be re-waited, polled, or given a
    /// callback. Dropping a timed-out ticket still blocks until the period
    /// elapses — a requested fence is never silently lost; hand it to
    /// [`Self::on_complete`] to walk away without blocking. On success,
    /// returns the time spent blocked, like [`Self::wait`].
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<Duration, FenceTimeout> {
        if self.resolved {
            return Ok(Duration::ZERO);
        }
        let start = Instant::now();
        if let Some(g) = &self.grace {
            if let Err(e) = g.wait_timeout(timeout) {
                return Err(FenceTimeout {
                    period: e.period,
                    waited: start.elapsed(),
                    stalled: e.stalled,
                });
            }
        }
        self.resolve();
        Ok(start.elapsed())
    }

    /// Run `f` when the fence resolves: immediately (on this thread) if it
    /// already has, otherwise on whichever thread completes the grace
    /// period. The `FEnd` is recorded just before `f` runs (from the
    /// completing thread — see the module docs on cross-thread recording).
    ///
    /// This consumes the ticket, so nobody is left to drive the engine:
    /// under cooperative driving the callback fires only when later
    /// traffic drives the period home; under
    /// [`DriverMode::Background`](crate::runtime::DriverMode) it fires
    /// within bounded time with zero pollers.
    pub fn on_complete(mut self, f: impl FnOnce() + Send + 'static) {
        let grace = self.grace.take();
        let rec = self.rec.take();
        let tel = self.tel.take();
        self.resolved = true; // disarm the blocking drop
        match grace {
            None => f(),
            Some(g) => {
                let period = g.period();
                g.on_complete(move || {
                    if let Some((r, slot)) = rec {
                        r.record(slot, Kind::FEnd);
                    }
                    if let Some((t, slot)) = tel {
                        t.record_event(slot, EventKind::FenceRetire { period });
                    }
                    f();
                });
            }
        }
    }

    fn resolve(&mut self) {
        self.resolved = true;
        if let Some((r, slot)) = self.rec.take() {
            r.record(slot, Kind::FEnd);
        }
        if let Some((t, slot)) = self.tel.take() {
            let period = self.grace.as_ref().map_or(0, |g| g.period());
            t.record_event(slot, EventKind::FenceRetire { period });
        }
    }
}

/// A bounded fence wait ([`FenceTicket::wait_timeout`] /
/// [`StmHandle::fence_join_timeout`]) expired before its grace period
/// completed. Names the offenders when the stall detector has them: an
/// empty `stalled` means the wait was simply shorter than an honest scan
/// (or the [stall threshold](tm_quiesce::GraceEngine::set_stall_threshold)
/// has not elapsed yet); a non-empty one names epoch slots pinned past the
/// threshold — threads parked (or dead) inside a transaction.
#[derive(Clone, Debug)]
pub struct FenceTimeout {
    /// The grace period still outstanding.
    pub period: u64,
    /// How long this wait blocked before giving up.
    pub waited: Duration,
    /// Epoch slots pinned past the stall threshold at timeout.
    pub stalled: Vec<StallInfo>,
}

impl std::fmt::Display for FenceTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fence (grace period {}) incomplete after {:?}",
            self.period, self.waited
        )?;
        if !self.stalled.is_empty() {
            let slots: Vec<String> = self
                .stalled
                .iter()
                .map(|s| format!("{} (pinned {:?})", s.slot, s.pinned))
                .collect();
            write!(f, "; stalled slots: {}", slots.join(", "))?;
        }
        Ok(())
    }
}

impl std::error::Error for FenceTimeout {}

impl Drop for FenceTicket {
    /// A requested fence is never lost: dropping an unresolved ticket waits
    /// the grace period out (and records the `FEnd`).
    fn drop(&mut self) {
        if !self.resolved {
            let _ = self.wait();
        }
    }
}

/// Fence a batch of handles behind (at most) one grace period: issue every
/// ticket first — they all land in the same open period unless a scan
/// intervenes — then wait them out. N privatizing handles pay one
/// epoch-table scan instead of N full grace periods.
///
/// Blocked time is charged to each handle's [`crate::api::Stats`] as with
/// [`StmHandle::fence_join`]; in the batched case the first join does the
/// waiting and the rest observe completion.
pub fn fence_all<'a, H, I>(handles: I)
where
    H: StmHandle + 'a,
    I: IntoIterator<Item = &'a mut H>,
{
    let mut handles: Vec<&'a mut H> = handles.into_iter().collect();
    let tickets: Vec<FenceTicket> = handles.iter_mut().map(|h| h.fence_async()).collect();
    for (h, t) in handles.iter_mut().zip(tickets) {
        h.fence_join(t);
    }
}
