//! Typed transaction frontend: [`TVar<T>`], [`TypedHandle::atomically`],
//! and blocking [`Transaction::retry`] — over any [`PolicyKind`] backend.
//!
//! The runtime's native surface is a `u64` register file: right for litmus
//! tests and checkable histories, wrong for users with real data. This
//! module maps *typed heap values* onto that register file without touching
//! any policy:
//!
//! * A [`TVar<T>`] owns one register. The register's `u64` holds the
//!   address of a heap cell (`Box<SlotBox>`) whose payload is an
//!   `Arc<dyn Any + Send + Sync>` of the current value. Transactional reads
//!   and writes of the *pointer* go through the ordinary [`TxScope`]
//!   machinery, so every backend (TL2, NOrec, glock), clock discipline,
//!   storage layout, and the contention governor work underneath unchanged.
//! * Writes are buffered in the [`Transaction`] and flushed to the scope
//!   only when the body returns `Ok` — which is what makes
//!   [`Transaction::or`] a cheap snapshot/rollback and keeps fresh
//!   allocations out of aborted bodies entirely.
//! * A successful commit *replaces* pointers; the displaced boxes are
//!   retired through [`tm_quiesce::GraceEngine::defer_drop`] — epoch-based
//!   reclamation. An in-flight reader that still holds a displaced pointer
//!   is inside its transaction's epoch, and the grace period the retirement
//!   waits on cannot elapse until that reader exits: privatization safety
//!   *is* safe reclamation (the paper's core claim), here as the memory
//!   manager of the typed frontend.
//!
//! ## Blocking `retry`
//!
//! [`Transaction::retry`] abandons the attempt and re-runs it when one of
//! the registers it read changes. Under [`RetryStrategy::Block`] (the
//! default) the handle does not spin: it registers a
//! [`crate::runtime::RetryWaiter`] on its read set,
//! *re-validates* every watched register inside the still-open attempt
//! (any change ⇒ deregister and re-run immediately), aborts the attempt —
//! leaving the epoch, so sleeping never wedges a grace period — and parks
//! on the waiter's condvar. Every commit write-back funnels through
//! [`Runtime::store`](crate::runtime::Runtime), whose wake hook costs one
//! `SeqCst` load when no waiter exists and wakes conflicting waiters when
//! one does. Spurious wakeups re-run the body harmlessly; lost wakeups are
//! ruled out by the register-then-validate order (see `Runtime::store`).
//! Slept time lands in the `retry-sleep` latency histogram and each wake is
//! traced as [`EventKind::RetryWake`].

use crate::api::{Abort, StmHandle, TxScope};
use crate::runtime::{Handle, PolicyKind, RetryWaiter, Runtime, Stm, StmConfig};
use std::any::Any;
use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tm_telemetry::{EventKind, LatencyClass};

/// A typed value as stored behind a register: the register's `u64` is the
/// address of one of these. The indirection through `Box` exists because
/// `Arc<dyn Any>` is a fat pointer and the register holds only 64 bits.
struct SlotBox {
    value: Arc<dyn Any + Send + Sync>,
}

impl SlotBox {
    /// Heap-allocate a cell for `value` and return its address as register
    /// bits. Never zero (a real allocation), so `0` stays the "no typed
    /// value" sentinel.
    fn publish(value: Arc<dyn Any + Send + Sync>) -> u64 {
        Box::into_raw(Box::new(SlotBox { value })) as usize as u64
    }

    /// Re-own the cell at `bits` for dropping.
    ///
    /// # Safety
    /// `bits` must be an address produced by [`SlotBox::publish`] that no
    /// register holds any more and that was not already reclaimed.
    unsafe fn reclaim(bits: u64) -> Box<SlotBox> {
        Box::from_raw(bits as usize as *mut SlotBox)
    }

    /// Clone the payload `Arc` out of the cell at `bits`.
    ///
    /// # Safety
    /// The caller must be inside a transaction epoch and have obtained
    /// `bits` from a policy-validated read in that same attempt: the cell
    /// is then pinned (its retirement's grace period waits for our epoch
    /// exit), and the cloned `Arc` keeps the payload alive past it.
    unsafe fn value_at(bits: u64) -> Arc<dyn Any + Send + Sync> {
        debug_assert!(bits != 0, "typed read of an unpublished register");
        let cell = bits as usize as *const SlotBox;
        Arc::clone(&(*cell).value)
    }
}

/// The slot space of one [`TypedStm`]: a contiguous run of registers
/// managed as typed cells. Owns the *current* box of every allocated
/// register; displaced boxes belong to the grace engine, and both free
/// their side exactly once.
pub struct VarSpace {
    rt: Arc<Runtime>,
    /// First register of the typed run.
    base: usize,
    /// Next unallocated register (`base..next` are live typed cells).
    next: AtomicUsize,
    /// One past the last register this space may allocate.
    limit: usize,
}

impl VarSpace {
    /// Allocate the next register and publish `init` into it.
    fn alloc(&self, init: Arc<dyn Any + Send + Sync>) -> usize {
        let reg = self.next.fetch_add(1, Ordering::SeqCst);
        assert!(
            reg < self.limit,
            "typed register space exhausted: {reg} >= limit {}",
            self.limit
        );
        self.rt.store(reg, SlotBox::publish(init));
        reg
    }
}

impl Drop for VarSpace {
    fn drop(&mut self) {
        // Last owner: no TVar, handle, or in-flight transaction can touch
        // these registers any more. Reset each register to 0 (so a later
        // u64-level inspection of the shared runtime sees a deterministic
        // value, not a dangling address) and free its current box. Boxes
        // this space displaced earlier are the grace engine's to free.
        let end = *self.next.get_mut();
        for reg in self.base..end {
            let bits = self.rt.load(reg);
            if bits != 0 {
                self.rt.store(reg, 0);
                drop(unsafe { SlotBox::reclaim(bits) });
            }
        }
    }
}

/// A typed transactional variable: one register of a [`TypedStm`], read and
/// written through a [`Transaction`]. Cloning shares the variable.
pub struct TVar<T> {
    space: Arc<VarSpace>,
    reg: usize,
    _marker: PhantomData<fn() -> T>,
}

// Manual impl: `#[derive(Clone)]` would demand `T: Clone` on the *handle*,
// which shares rather than copies.
impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            space: Arc::clone(&self.space),
            reg: self.reg,
            _marker: PhantomData,
        }
    }
}

impl<T> TVar<T> {
    /// The register this variable occupies (introspection/test helper).
    pub fn reg(&self) -> usize {
        self.reg
    }
}

/// Why a typed transaction body gave up this attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StmError {
    /// [`Transaction::retry`]: the body cannot proceed on the values it
    /// read; re-run it when one of them changes (blocking under
    /// [`RetryStrategy::Block`]).
    Retry,
    /// A conflict abort from the underlying policy (propagated from a
    /// failed read via `?`); the loop re-runs the body immediately, with
    /// backoff.
    Conflict,
}

/// What a typed transaction body returns: the value, or the reason this
/// attempt is abandoned. Propagate with `?` — conflicts convert from
/// [`Abort`] automatically.
pub type StmResult<T> = Result<T, StmError>;

impl From<Abort> for StmError {
    fn from(_: Abort) -> Self {
        StmError::Conflict
    }
}

impl std::fmt::Display for StmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StmError::Retry => "transaction requested retry",
            StmError::Conflict => "transaction conflicted",
        })
    }
}

impl std::error::Error for StmError {}

/// How [`TypedHandle::atomically`] re-runs a body that called
/// [`Transaction::retry`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RetryStrategy {
    /// Park on a wait-on-retry control block until a conflicting commit
    /// wakes the handle (the default — no spinning).
    #[default]
    Block,
    /// Re-run immediately with the ordinary abort backoff (a polling loop;
    /// the baseline the `tvar_queue` bench compares blocking against).
    Spin,
}

/// One typed transaction attempt: the view the body closure works with.
///
/// Reads go through the underlying [`TxScope`] (policy-validated) and are
/// remembered as the *watch set* for blocking retry; writes are buffered
/// here and flushed only if the body returns `Ok`.
pub struct Transaction<'a> {
    scope: &'a mut dyn TxScope,
    /// Identity of the [`VarSpace`] this transaction may touch.
    space_ptr: *const VarSpace,
    /// Policy-validated pointer reads: `(register, observed bits)`, in
    /// order. Doubles as the blocking-retry watch set.
    reads: Vec<(usize, u64)>,
    /// Buffered typed writes, in program order; later writes to the same
    /// register supersede earlier ones at flush.
    writes: Vec<(usize, Arc<dyn Any + Send + Sync>)>,
}

impl<'a> Transaction<'a> {
    fn new(scope: &'a mut dyn TxScope, space: &VarSpace) -> Self {
        Transaction {
            scope,
            space_ptr: space as *const VarSpace,
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    fn check_space<T>(&self, var: &TVar<T>) {
        assert!(
            std::ptr::eq(Arc::as_ptr(&var.space), self.space_ptr),
            "TVar belongs to a different TypedStm instance"
        );
    }

    /// Read `var`'s current value (a clone of the committed payload, or of
    /// this transaction's own buffered write).
    pub fn read<T: Any + Clone + Send + Sync>(&mut self, var: &TVar<T>) -> StmResult<T> {
        self.check_space(var);
        // Read-after-write: the body must see its own buffered writes.
        if let Some((_, v)) = self.writes.iter().rev().find(|(r, _)| *r == var.reg) {
            let arc = Arc::clone(v)
                .downcast::<T>()
                .unwrap_or_else(|_| unreachable!("TVar register holds a foreign type"));
            return Ok((*arc).clone());
        }
        let bits = self.scope.read(var.reg)?;
        self.reads.push((var.reg, bits));
        // SAFETY: `bits` is a policy-validated read inside the open
        // attempt's epoch; see `SlotBox::value_at`.
        let value = unsafe { SlotBox::value_at(bits) };
        let arc = value
            .downcast::<T>()
            .unwrap_or_else(|_| unreachable!("TVar register holds a foreign type"));
        Ok((*arc).clone())
    }

    /// Buffer a write of `value` into `var`, visible to this transaction's
    /// later reads and flushed at commit.
    pub fn write<T: Any + Clone + Send + Sync>(
        &mut self,
        var: &TVar<T>,
        value: T,
    ) -> StmResult<()> {
        self.check_space(var);
        self.writes.push((var.reg, Arc::new(value)));
        Ok(())
    }

    /// Abandon this attempt and re-run it when one of the registers it read
    /// changes. Under [`RetryStrategy::Block`] the handle sleeps until a
    /// conflicting commit wakes it; retrying with an *empty* read set
    /// panics (nothing could ever wake the transaction).
    pub fn retry<T>(&mut self) -> StmResult<T> {
        Err(StmError::Retry)
    }

    /// `first` or else `second`: run `first`; if it calls
    /// [`Transaction::retry`], roll its buffered writes back and run
    /// `second` instead. Reads from both branches stay in the watch set, so
    /// a blocking retry of the *combined* body wakes when either branch
    /// could proceed. Conflicts propagate from whichever branch hit them.
    pub fn or<T>(
        &mut self,
        first: impl FnOnce(&mut Transaction<'a>) -> StmResult<T>,
        second: impl FnOnce(&mut Transaction<'a>) -> StmResult<T>,
    ) -> StmResult<T> {
        let writes_mark = self.writes.len();
        match first(self) {
            Err(StmError::Retry) => {
                self.writes.truncate(writes_mark);
                second(self)
            }
            other => other,
        }
    }

    /// Run `f`, turning its [`retry`](Transaction::retry) into `None`
    /// instead of abandoning the attempt (`optionally` of the STM papers:
    /// `or(f ↦ Some, ∅ ↦ None)`).
    pub fn optionally<T>(
        &mut self,
        f: impl FnOnce(&mut Transaction<'a>) -> StmResult<T>,
    ) -> StmResult<Option<T>> {
        self.or(|tx| f(tx).map(Some), |_| Ok(None))
    }
}

/// A [`Stm`] instance plus a typed slot space over its registers — the
/// construction surface of the typed frontend. Cloning shares the
/// instance.
pub struct TypedStm<K: PolicyKind> {
    stm: Stm<K>,
    space: Arc<VarSpace>,
}

impl<K: PolicyKind> Clone for TypedStm<K> {
    fn clone(&self) -> Self {
        TypedStm {
            stm: self.stm.clone(),
            space: Arc::clone(&self.space),
        }
    }
}

impl<K: PolicyKind> TypedStm<K> {
    /// A fresh instance whose whole register file backs typed variables.
    pub fn new(nvars: usize, nthreads: usize) -> Self {
        Self::with_config(StmConfig::new(nvars, nthreads))
    }

    /// Full construction-time control (clock, storage, governor, chaos —
    /// every [`StmConfig`] axis works under the typed layer unchanged).
    pub fn with_config(cfg: StmConfig) -> Self {
        Self::over(Stm::with_config(cfg), 0)
    }

    /// Lay a typed slot space over an existing instance, allocating typed
    /// registers upward from `base`. Registers below `base` stay plain
    /// `u64`s, usable through the instance's ordinary handles — this is how
    /// mixed scenarios (conformance) combine both surfaces.
    pub fn over(stm: Stm<K>, base: usize) -> Self {
        let rt = stm.runtime_arc();
        let limit = rt.nregs();
        assert!(
            base <= limit,
            "typed base {base} beyond register file {limit}"
        );
        let space = Arc::new(VarSpace {
            rt,
            base,
            next: AtomicUsize::new(base),
            limit,
        });
        TypedStm { stm, space }
    }

    /// Allocate a typed variable initialized to `init`.
    pub fn new_tvar<T: Any + Clone + Send + Sync>(&self, init: T) -> TVar<T> {
        let reg = self.space.alloc(Arc::new(init));
        TVar {
            space: Arc::clone(&self.space),
            reg,
            _marker: PhantomData,
        }
    }

    /// A typed handle bound to thread slot `slot` (< `nthreads`),
    /// defaulting to [`RetryStrategy::Block`].
    pub fn handle(&self, slot: usize) -> TypedHandle<K> {
        TypedHandle {
            h: self.stm.handle(slot),
            space: Arc::clone(&self.space),
            strategy: RetryStrategy::Block,
        }
    }

    /// The underlying untyped instance (plain registers, fences, peeks).
    pub fn stm(&self) -> &Stm<K> {
        &self.stm
    }
}

thread_local! {
    /// The nested-`atomically` guard: one typed transaction per thread.
    static IN_ATOMICALLY: Cell<bool> = const { Cell::new(false) };
}

/// Resets the nested-`atomically` flag even when the body panics.
struct NestGuard;

impl Drop for NestGuard {
    fn drop(&mut self) {
        IN_ATOMICALLY.with(|f| f.set(false));
    }
}

/// How one attempt of the typed loop ended, beyond the value itself.
enum Flushed {
    /// The body returned `Ok` and the pointer flush succeeded: `replaced`
    /// are the old boxes (retire on commit success), `fresh` the new ones
    /// (free if the commit itself fails — they were never published).
    Committed { replaced: Vec<u64>, fresh: Vec<u64> },
    /// The body called `retry` and validation found the watch set intact:
    /// sleep on the waiter, then re-run.
    Sleep { waiter: Arc<RetryWaiter> },
}

/// A per-thread typed handle: [`TypedHandle::atomically`] over one
/// [`Handle`]. `Send` but not `Sync`, like the handle it wraps.
pub struct TypedHandle<K: PolicyKind> {
    h: Handle<K::Policy>,
    space: Arc<VarSpace>,
    strategy: RetryStrategy,
}

impl<K: PolicyKind> TypedHandle<K> {
    /// Choose how [`Transaction::retry`] re-runs on this handle.
    pub fn set_retry_strategy(&mut self, strategy: RetryStrategy) {
        self.strategy = strategy;
    }

    /// The wrapped untyped handle (stats, fences, direct accesses to plain
    /// registers below the typed base).
    pub fn inner(&mut self) -> &mut Handle<K::Policy> {
        &mut self.h
    }

    /// Run `body` as a typed transaction, re-running it until it commits,
    /// and return its result.
    ///
    /// The body reads and writes [`TVar`]s through the [`Transaction`],
    /// propagating failures with `?`. [`StmError::Conflict`] re-runs with
    /// the shared exponential backoff; [`StmError::Retry`] re-runs when a
    /// watched register changes — parking the thread under
    /// [`RetryStrategy::Block`]. Displaced value boxes are retired through
    /// the grace engine ([`tm_quiesce::GraceEngine::defer_drop`]); boxes
    /// created by an attempt whose commit failed are freed before the
    /// re-run; a panic unwinds out with the attempt rolled back (the boxes
    /// of a mid-flush panic leak rather than risk a double-free).
    ///
    /// # Panics
    /// On nested `atomically` on one thread, on `retry` with an empty read
    /// set, and on a poisoned underlying handle.
    pub fn atomically<T>(
        &mut self,
        mut body: impl FnMut(&mut Transaction<'_>) -> StmResult<T>,
    ) -> T {
        IN_ATOMICALLY.with(|f| {
            assert!(
                !f.get(),
                "nested atomically: a typed transaction is already open on this thread"
            );
            f.set(true);
        });
        let _guard = NestGuard;

        let space = Arc::clone(&self.space);
        let strategy = self.strategy;
        let mut attempts: u32 = 0;
        loop {
            // Stashed here (not threaded through the return value) so the
            // commit-failed case still knows which fresh boxes to free.
            let mut outcome: Option<Flushed> = None;
            let result = self.h.try_atomic(|scope| {
                let mut tx = Transaction::new(scope, &space);
                match body(&mut tx) {
                    Ok(v) => {
                        outcome = Some(flush(&mut tx)?);
                        Ok(v)
                    }
                    Err(StmError::Conflict) => Err(Abort),
                    Err(StmError::Retry) => {
                        assert!(
                            !tx.reads.is_empty(),
                            "retry with an empty read set: nothing could ever wake this transaction"
                        );
                        if strategy == RetryStrategy::Block {
                            if let Some(waiter) = arm_retry_waiter(&space.rt, &mut tx) {
                                outcome = Some(Flushed::Sleep { waiter });
                            }
                        }
                        Err(Abort)
                    }
                }
            });
            match (result, outcome) {
                (Ok(v), Some(Flushed::Committed { replaced, fresh })) => {
                    // Published: the registers own `fresh` now; the
                    // displaced boxes go to the grace engine, which frees
                    // each exactly once after every reader that could hold
                    // the old pointer has left its epoch.
                    drop(fresh);
                    for bits in replaced {
                        space
                            .rt
                            .grace()
                            .defer_drop(unsafe { SlotBox::reclaim(bits) });
                    }
                    return v;
                }
                (Ok(_), _) => unreachable!("typed commit without a flush"),
                (Err(Abort), flushed) => {
                    if let Some(Flushed::Committed { fresh, .. }) = &flushed {
                        // The commit itself failed: the write-back never
                        // started (TL2/NOrec/glock fail only before it), so
                        // the fresh boxes were never published — free them
                        // here; the displaced ones still sit in their
                        // registers, untouched.
                        for &bits in fresh {
                            drop(unsafe { SlotBox::reclaim(bits) });
                        }
                    }
                    self.h.note_retry();
                    if let Some(Flushed::Sleep { waiter }) = flushed {
                        self.sleep_on(&waiter);
                        attempts = 0; // woken by a real change, not a collision
                        continue;
                    }
                    attempts = attempts.saturating_add(1);
                    self.h.backoff_pause(attempts - 1);
                }
            }
        }
    }

    /// Park on `waiter` until a conflicting commit wakes it, then
    /// deregister and record the slept time.
    fn sleep_on(&mut self, waiter: &Arc<RetryWaiter>) {
        let rt = Arc::clone(&self.space.rt);
        let t0 = rt.telemetry().enabled().then(Instant::now);
        let woke_reg = waiter.sleep();
        rt.deregister_retry_waiter(waiter);
        if let Some(t0) = t0 {
            let slept_ns = t0.elapsed().as_nanos() as u64;
            let slot = self.h.slot() as u16;
            rt.telemetry()
                .record_latency(slot, LatencyClass::RetrySleep, slept_ns);
            rt.telemetry().record_event(
                slot,
                EventKind::RetryWake {
                    reg: woke_reg as u64,
                    slept_ns,
                },
            );
        }
    }
}

/// Flush a committing body's buffered writes into the scope: per register
/// (last write wins), capture the old pointer with a validated read, then
/// write the fresh one. Any abort frees every fresh box already allocated
/// by this flush — none were published.
fn flush(tx: &mut Transaction<'_>) -> Result<Flushed, Abort> {
    let mut replaced: Vec<u64> = Vec::new();
    let mut fresh: Vec<u64> = Vec::new();
    let free_fresh = |fresh: &mut Vec<u64>| {
        for &bits in fresh.iter() {
            drop(unsafe { SlotBox::reclaim(bits) });
        }
    };
    let mut flushed_regs: Vec<usize> = Vec::new();
    let writes = std::mem::take(&mut tx.writes);
    for (i, (reg, value)) in writes.iter().enumerate() {
        // Last write to a register wins; earlier ones never materialize.
        if writes[i + 1..].iter().any(|(r, _)| r == reg) || flushed_regs.contains(reg) {
            continue;
        }
        flushed_regs.push(*reg);
        let old = match tx.scope.read(*reg) {
            Ok(bits) => bits,
            Err(Abort) => {
                free_fresh(&mut fresh);
                return Err(Abort);
            }
        };
        let new_bits = SlotBox::publish(Arc::clone(value));
        if tx.scope.write(*reg, new_bits).is_err() {
            drop(unsafe { SlotBox::reclaim(new_bits) });
            free_fresh(&mut fresh);
            return Err(Abort);
        }
        replaced.push(old);
        fresh.push(new_bits);
    }
    Ok(Flushed::Committed { replaced, fresh })
}

/// The blocking half of `retry`: register a waiter on the watch set, then
/// re-validate every watched register *inside the still-open attempt* (its
/// epoch pins the pointers, and the policy re-validates the reads). Any
/// change — or a validation abort — deregisters and returns `None`: re-run
/// immediately, something already moved. Intact watch set returns the armed
/// waiter; with registration ordered before validation, a commit that
/// changes a watched register afterwards is guaranteed to see the waiter
/// count and wake us (see `Runtime::store`).
fn arm_retry_waiter(rt: &Arc<Runtime>, tx: &mut Transaction<'_>) -> Option<Arc<RetryWaiter>> {
    let mut regs: Vec<usize> = tx.reads.iter().map(|&(r, _)| r).collect();
    regs.sort_unstable();
    regs.dedup();
    let waiter = RetryWaiter::new();
    rt.register_retry_waiter(&regs, &waiter);
    for &(reg, bits) in tx.reads.iter() {
        match tx.scope.read(reg) {
            Ok(now) if now == bits => {}
            _ => {
                rt.deregister_retry_waiter(&waiter);
                return None;
            }
        }
    }
    Some(waiter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::DriverMode;
    use crate::tl2::Tl2Kind;
    use std::sync::atomic::AtomicU64;

    type Tl2Typed = TypedStm<Tl2Kind>;

    #[test]
    fn typed_read_write_commit_roundtrip() {
        let stm = Tl2Typed::new(8, 2);
        let v = stm.new_tvar(String::from("hello"));
        let mut h = stm.handle(0);
        let got = h.atomically(|tx| {
            let s = tx.read(&v)?;
            tx.write(&v, format!("{s} world"))?;
            tx.read(&v)
        });
        assert_eq!(got, "hello world", "read-after-write sees the buffer");
        let now = h.atomically(|tx| tx.read(&v));
        assert_eq!(now, "hello world", "committed value persists");
    }

    #[test]
    fn last_write_wins_and_aborted_bodies_allocate_nothing() {
        let stm = Tl2Typed::new(8, 2);
        let v = stm.new_tvar(0u64);
        let mut h = stm.handle(0);
        h.atomically(|tx| {
            tx.write(&v, 1)?;
            tx.write(&v, 2)?;
            tx.write(&v, 3)
        });
        assert_eq!(h.atomically(|tx| tx.read(&v)), 3);
        // One register replaced once per commit: exactly one retirement.
        assert_eq!(stm.stm().runtime().grace().retired_boxes(), 1);
    }

    #[test]
    fn or_rolls_back_first_branch_writes() {
        let stm = Tl2Typed::new(8, 2);
        let a = stm.new_tvar(10u64);
        let b = stm.new_tvar(20u64);
        let mut h = stm.handle(0);
        let picked = h.atomically(|tx| {
            let a = a.clone();
            let b = b.clone();
            tx.or(
                move |tx| {
                    tx.write(&a, 99)?; // must not survive the retry
                    tx.retry()
                },
                move |tx| {
                    tx.write(&b, 21)?;
                    tx.read(&b)
                },
            )
        });
        assert_eq!(picked, 21);
        let (av, bv) = h.atomically(|tx| Ok((tx.read(&a)?, tx.read(&b)?)));
        assert_eq!((av, bv), (10, 21), "first branch's write rolled back");
    }

    #[test]
    fn optionally_turns_retry_into_none() {
        let stm = Tl2Typed::new(8, 2);
        let v = stm.new_tvar(5u64);
        let mut h = stm.handle(0);
        let out = h.atomically(|tx| {
            let v = v.clone();
            tx.optionally(move |tx| {
                let x = tx.read(&v)?;
                if x < 10 {
                    tx.retry()
                } else {
                    Ok(x)
                }
            })
        });
        assert_eq!(out, None);
    }

    #[test]
    #[should_panic(expected = "nested atomically")]
    fn nested_atomically_panics() {
        let stm = Tl2Typed::new(8, 2);
        let v = stm.new_tvar(1u64);
        let stm2 = stm.clone();
        let mut h = stm.handle(0);
        h.atomically(|tx| {
            let mut h2 = stm2.handle(1);
            let v2 = v.clone();
            h2.atomically(move |tx2| tx2.read(&v2));
            tx.read(&v)
        });
    }

    #[test]
    fn guard_resets_after_body_panic() {
        let stm = Tl2Typed::new(8, 2);
        let v = stm.new_tvar(1u64);
        let stm2 = stm.clone();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut h = stm2.handle(0);
            h.atomically(|_tx| -> StmResult<()> { panic!("boom") });
        }));
        assert!(caught.is_err());
        // The thread-local guard was reset on unwind: a fresh atomically
        // on this thread works.
        let mut h = stm.handle(1);
        assert_eq!(h.atomically(|tx| tx.read(&v)), 1);
    }

    #[test]
    #[should_panic(expected = "empty read set")]
    fn retry_with_no_reads_panics() {
        let stm = Tl2Typed::new(8, 2);
        let mut h = stm.handle(0);
        h.atomically(|tx| -> StmResult<()> { tx.retry() });
    }

    #[test]
    #[should_panic(expected = "different TypedStm")]
    fn foreign_tvar_rejected() {
        let stm = Tl2Typed::new(8, 2);
        let other = Tl2Typed::new(8, 2);
        let foreign = other.new_tvar(1u64);
        let mut h = stm.handle(0);
        h.atomically(|tx| tx.read(&foreign));
    }

    /// Blocking retry wakes on a conflicting commit — the handoff shape.
    fn handoff(mode: DriverMode) {
        let mut cfg = StmConfig::new(8, 2);
        cfg.driver = mode;
        let stm = Tl2Typed::with_config(cfg);
        let flag = stm.new_tvar(0u64);
        let woken = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            let stm2 = stm.clone();
            let flag2 = flag.clone();
            let woken2 = Arc::clone(&woken);
            s.spawn(move || {
                let mut h = stm2.handle(0);
                let seen = h.atomically(|tx| {
                    let x = tx.read(&flag2)?;
                    if x == 0 {
                        tx.retry()
                    } else {
                        Ok(x)
                    }
                });
                woken2.store(seen, Ordering::SeqCst);
            });
            // Give the waiter a chance to park (spurious early commit is
            // fine — it would just re-run and sleep again).
            std::thread::sleep(std::time::Duration::from_millis(10));
            let mut h = stm.handle(1);
            h.atomically(|tx| tx.write(&flag, 7));
        });
        assert_eq!(woken.load(Ordering::SeqCst), 7, "waiter saw the commit");
        assert_eq!(
            stm.stm().runtime().retry_waiter_entries(),
            0,
            "registry drained"
        );
    }

    #[test]
    fn blocking_retry_wakes_on_commit_cooperative() {
        handoff(DriverMode::Cooperative);
    }

    #[test]
    fn blocking_retry_wakes_on_commit_background() {
        handoff(DriverMode::Background);
    }

    #[test]
    fn spin_retry_also_sees_the_commit() {
        let stm = Tl2Typed::new(8, 2);
        let flag = stm.new_tvar(0u64);
        std::thread::scope(|s| {
            let stm2 = stm.clone();
            let flag2 = flag.clone();
            let t = s.spawn(move || {
                let mut h = stm2.handle(0);
                h.set_retry_strategy(RetryStrategy::Spin);
                h.atomically(|tx| {
                    let x = tx.read(&flag2)?;
                    if x == 0 {
                        tx.retry()
                    } else {
                        Ok(x)
                    }
                })
            });
            let mut h = stm.handle(1);
            h.atomically(|tx| tx.write(&flag, 3));
            assert_eq!(t.join().unwrap(), 3);
        });
    }

    #[test]
    fn dropping_the_instance_resets_typed_registers() {
        let stm = Tl2Typed::new(8, 2);
        let inner = stm.stm().clone();
        let v = stm.new_tvar(1u64);
        let mut h = stm.handle(0);
        h.atomically(|tx| tx.write(&v, 2));
        let reg = v.reg();
        assert_ne!(inner.peek(reg), 0, "typed register holds a live pointer");
        drop((stm, v, h));
        assert_eq!(inner.peek(reg), 0, "space drop resets the register");
    }
}
