//! Single-global-lock STM: every atomic block runs under one spin lock, so
//! transactions are serialized, never abort, and are strongly atomic for
//! DRF programs by construction. The simplest correct point in the design
//! space and the "no concurrency" baseline for the benchmarks.

use crate::api::{Abort, Stats, StmHandle, TxScope};
use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

struct GlockInner {
    lock: CachePadded<AtomicBool>,
    values: Box<[CachePadded<AtomicU64>]>,
}

/// The shared global-lock STM instance.
#[derive(Clone)]
pub struct GlockStm {
    inner: Arc<GlockInner>,
}

impl GlockStm {
    pub fn new(nregs: usize, _nthreads: usize) -> Self {
        let values = (0..nregs)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        GlockStm {
            inner: Arc::new(GlockInner {
                lock: CachePadded::new(AtomicBool::new(false)),
                values,
            }),
        }
    }

    pub fn handle(&self, _slot: usize) -> GlockHandle {
        GlockHandle { inner: Arc::clone(&self.inner), stats: Stats::default() }
    }

    pub fn peek(&self, x: usize) -> u64 {
        self.inner.values[x].load(Ordering::SeqCst)
    }
}

/// Per-thread handle.
pub struct GlockHandle {
    inner: Arc<GlockInner>,
    stats: Stats,
}

impl GlockHandle {
    fn acquire(&self) {
        let mut spins = 0u32;
        while self
            .inner
            .lock
            .compare_exchange_weak(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            spins += 1;
            if spins % 64 == 0 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    fn release(&self) {
        self.inner.lock.store(false, Ordering::SeqCst);
    }
}

impl StmHandle for GlockHandle {
    fn atomic<R>(&mut self, mut body: impl FnMut(&mut dyn TxScope) -> Result<R, Abort>) -> R {
        loop {
            if let Ok(r) = self.try_atomic(&mut body) {
                return r;
            }
        }
    }

    fn try_atomic<R>(
        &mut self,
        mut body: impl FnMut(&mut dyn TxScope) -> Result<R, Abort>,
    ) -> Result<R, Abort> {
        self.acquire();
        // In-place writes under the lock: a user abort would need an undo
        // log; we roll back by replaying on a buffered scope instead.
        let mut buffered: Vec<(usize, u64)> = Vec::new();
        struct BufTx<'a> {
            inner: &'a GlockInner,
            buf: &'a mut Vec<(usize, u64)>,
        }
        impl TxScope for BufTx<'_> {
            fn read(&mut self, x: usize) -> Result<u64, Abort> {
                if let Some(&(_, v)) = self.buf.iter().rev().find(|&&(r, _)| r == x) {
                    return Ok(v);
                }
                Ok(self.inner.values[x].load(Ordering::SeqCst))
            }
            fn write(&mut self, x: usize, v: u64) -> Result<(), Abort> {
                self.buf.push((x, v));
                Ok(())
            }
        }
        let attempt = {
            let mut tx = BufTx { inner: &self.inner, buf: &mut buffered };
            body(&mut tx)
        };
        match attempt {
            Ok(r) => {
                for (x, v) in buffered {
                    self.inner.values[x].store(v, Ordering::SeqCst);
                }
                self.release();
                self.stats.commits += 1;
                Ok(r)
            }
            Err(Abort) => {
                self.release();
                self.stats.aborts_user += 1;
                Err(Abort)
            }
        }
    }

    fn read_direct(&mut self, x: usize) -> u64 {
        self.stats.direct_reads += 1;
        self.inner.values[x].load(Ordering::SeqCst)
    }

    fn write_direct(&mut self, x: usize, v: u64) {
        self.stats.direct_writes += 1;
        self.inner.values[x].store(v, Ordering::SeqCst);
    }

    /// Quiescence: any transaction active at the call holds the lock, so one
    /// observation of the lock being free suffices.
    fn fence(&mut self) {
        self.stats.fences += 1;
        let mut spins = 0u32;
        while self.inner.lock.load(Ordering::SeqCst) {
            spins += 1;
            if spins % 64 == 0 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    fn stats(&self) -> Stats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_txn() {
        let stm = GlockStm::new(2, 1);
        let mut h = stm.handle(0);
        let r = h.atomic(|tx| {
            tx.write(0, 5)?;
            let v = tx.read(0)?;
            tx.write(1, v * 2)?;
            Ok(v)
        });
        assert_eq!(r, 5);
        assert_eq!(stm.peek(1), 10);
    }

    #[test]
    fn user_abort_rolls_back() {
        let stm = GlockStm::new(1, 1);
        let mut h = stm.handle(0);
        let r: Result<(), Abort> = h.try_atomic(|tx| {
            tx.write(0, 9)?;
            Err(Abort)
        });
        assert!(r.is_err());
        assert_eq!(stm.peek(0), 0, "buffered writes discarded on user abort");
    }

    #[test]
    fn concurrent_increments() {
        let stm = GlockStm::new(1, 4);
        std::thread::scope(|s| {
            for t in 0..4 {
                let stm = stm.clone();
                s.spawn(move || {
                    let mut h = stm.handle(t);
                    for _ in 0..1000 {
                        h.atomic(|tx| {
                            let v = tx.read(0)?;
                            tx.write(0, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(stm.peek(0), 4000);
    }

    #[test]
    fn read_own_buffered_write() {
        let stm = GlockStm::new(1, 1);
        let mut h = stm.handle(0);
        let v = h.atomic(|tx| {
            tx.write(0, 42)?;
            tx.read(0)
        });
        assert_eq!(v, 42);
    }
}
