//! Single-global-lock STM as a [`Policy`] over the shared
//! [`crate::runtime`]: every atomic block runs under one spin lock, so
//! transactions are serialized, never conflict-abort, and are strongly
//! atomic for DRF programs by construction. The simplest correct point in
//! the design space and the "no concurrency" baseline for the benchmarks.
//!
//! Writes are still buffered (the runtime's rollback contract requires user
//! aborts to be undoable), and the fence uses the default
//! [`Policy::fence_mode`] — a grace-period ticket on the runtime's engine:
//! any transaction active at the fence holds the global lock *and* its
//! epoch, so the wait is equivalent to the seed's observe-lock-free fence.

use crate::api::Abort;
use crate::runtime::{Handle, Policy, PolicyKind, Stm, StmConfig, TxCtx};
use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The one global lock shared by all handles.
pub struct GlockShared {
    lock: CachePadded<AtomicBool>,
}

/// The global lock's [`PolicyKind`]. No lock table, so
/// [`StmConfig::storage`] is ignored.
pub struct GlockKind;

impl PolicyKind for GlockKind {
    type Policy = GlockPolicy;
    type Shared = GlockShared;

    fn build_shared(_cfg: &StmConfig) -> GlockShared {
        GlockShared {
            lock: CachePadded::new(AtomicBool::new(false)),
        }
    }

    fn build_policy(shared: &Arc<GlockShared>) -> GlockPolicy {
        GlockPolicy {
            shared: Arc::clone(shared),
            buf: Vec::new(),
            holding: false,
        }
    }
}

/// The shared global-lock STM instance.
pub type GlockStm = Stm<GlockKind>;

/// Per-thread handle.
pub type GlockHandle = Handle<GlockPolicy>;

/// Global-lock concurrency control: hold the lock for the whole
/// transaction, buffer writes for user-abort rollback.
pub struct GlockPolicy {
    shared: Arc<GlockShared>,
    buf: Vec<(usize, u64)>,
    holding: bool,
}

impl GlockPolicy {
    fn acquire(&self) {
        let backoff = crossbeam::utils::Backoff::new();
        while self
            .shared
            .lock
            .compare_exchange_weak(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            backoff.snooze();
        }
    }

    fn release(&self) {
        self.shared.lock.store(false, Ordering::SeqCst);
    }
}

impl Policy for GlockPolicy {
    fn begin(&mut self, _ctx: &mut TxCtx<'_>) {
        self.acquire();
        self.holding = true;
        self.buf.clear();
    }

    fn read(&mut self, ctx: &mut TxCtx<'_>, x: usize) -> Result<u64, Abort> {
        if let Some(&(_, v)) = self.buf.iter().rev().find(|&&(r, _)| r == x) {
            return Ok(v);
        }
        Ok(ctx.rt.load(x))
    }

    fn write(&mut self, _ctx: &mut TxCtx<'_>, x: usize, v: u64) -> Result<(), Abort> {
        self.buf.push((x, v));
        Ok(())
    }

    fn commit(&mut self, ctx: &mut TxCtx<'_>) -> Result<(), Abort> {
        for &(x, v) in &self.buf {
            ctx.rt.store(x, v);
        }
        self.release();
        self.holding = false;
        Ok(())
    }

    fn rollback(&mut self, _ctx: &mut TxCtx<'_>) {
        if self.holding {
            self.release();
            self.holding = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::StmHandle;

    #[test]
    fn basic_txn() {
        let stm = GlockStm::new(2, 1);
        let mut h = stm.handle(0);
        let r = h.atomic(|tx| {
            tx.write(0, 5)?;
            let v = tx.read(0)?;
            tx.write(1, v * 2)?;
            Ok(v)
        });
        assert_eq!(r, 5);
        assert_eq!(stm.peek(1), 10);
    }

    #[test]
    fn user_abort_rolls_back() {
        let stm = GlockStm::new(1, 1);
        let mut h = stm.handle(0);
        let r: Result<(), Abort> = h.try_atomic(|tx| {
            tx.write(0, 9)?;
            Err(Abort)
        });
        assert!(r.is_err());
        assert_eq!(stm.peek(0), 0, "buffered writes discarded on user abort");
        assert_eq!(h.stats().aborts_user, 1);
        // The lock must have been released on the abort path.
        let mut h2 = stm.handle(0);
        h2.atomic(|tx| tx.write(0, 3));
        assert_eq!(stm.peek(0), 3);
    }

    #[test]
    fn concurrent_increments() {
        let stm = GlockStm::new(1, 4);
        std::thread::scope(|s| {
            for t in 0..4 {
                let stm = stm.clone();
                s.spawn(move || {
                    let mut h = stm.handle(t);
                    for _ in 0..1000 {
                        h.atomic(|tx| {
                            let v = tx.read(0)?;
                            tx.write(0, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(stm.peek(0), 4000);
    }

    #[test]
    fn read_own_buffered_write() {
        let stm = GlockStm::new(1, 1);
        let mut h = stm.handle(0);
        let v = h.atomic(|tx| {
            tx.write(0, 42)?;
            tx.read(0)
        });
        assert_eq!(v, 42);
    }
}
