//! Single-global-lock STM as a [`Policy`] over the shared
//! [`crate::runtime`]: every atomic block runs under one spin lock, so
//! transactions are serialized, never conflict-abort, and are strongly
//! atomic for DRF programs by construction. The simplest correct point in
//! the design space and the "no concurrency" baseline for the benchmarks.
//!
//! Writes are still buffered (the runtime's rollback contract requires user
//! aborts to be undoable), and the fence is
//! [`FenceMode::Immediate`] — like NOrec, the global lock is
//! privatization-safe without quiescing (see [`GlockPolicy::fence_mode`]
//! for the argument), so `fence()` resolves at issue and records no fence
//! actions.

use crate::api::Abort;
use crate::runtime::{FenceMode, Handle, Policy, PolicyKind, Stm, StmConfig, TxCtx};
use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The one global lock shared by all handles.
pub struct GlockShared {
    lock: CachePadded<AtomicBool>,
}

/// The global lock's [`PolicyKind`]. No lock table, so
/// [`StmConfig::storage`] is ignored.
pub struct GlockKind;

impl PolicyKind for GlockKind {
    type Policy = GlockPolicy;
    type Shared = GlockShared;

    fn build_shared(_cfg: &StmConfig) -> GlockShared {
        GlockShared {
            lock: CachePadded::new(AtomicBool::new(false)),
        }
    }

    fn build_policy(shared: &Arc<GlockShared>) -> GlockPolicy {
        GlockPolicy {
            shared: Arc::clone(shared),
            buf: Vec::new(),
            holding: false,
        }
    }
}

/// The shared global-lock STM instance.
pub type GlockStm = Stm<GlockKind>;

/// Per-thread handle.
pub type GlockHandle = Handle<GlockPolicy>;

/// Global-lock concurrency control: hold the lock for the whole
/// transaction, buffer writes for user-abort rollback.
pub struct GlockPolicy {
    shared: Arc<GlockShared>,
    buf: Vec<(usize, u64)>,
    holding: bool,
}

impl GlockPolicy {
    fn acquire(&self) {
        let backoff = crossbeam::utils::Backoff::new();
        while self
            .shared
            .lock
            .compare_exchange_weak(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            backoff.snooze();
        }
    }

    fn release(&self) {
        self.shared.lock.store(false, Ordering::SeqCst);
    }
}

impl Policy for GlockPolicy {
    fn begin(&mut self, _ctx: &mut TxCtx<'_>) {
        self.acquire();
        self.holding = true;
        self.buf.clear();
    }

    fn read(&mut self, ctx: &mut TxCtx<'_>, x: usize) -> Result<u64, Abort> {
        if let Some(&(_, v)) = self.buf.iter().rev().find(|&&(r, _)| r == x) {
            return Ok(v);
        }
        Ok(ctx.rt.load(x))
    }

    fn write(&mut self, _ctx: &mut TxCtx<'_>, x: usize, v: u64) -> Result<(), Abort> {
        self.buf.push((x, v));
        Ok(())
    }

    fn commit(&mut self, ctx: &mut TxCtx<'_>) -> Result<(), Abort> {
        for &(x, v) in &self.buf {
            ctx.rt.store(x, v);
        }
        self.release();
        self.holding = false;
        Ok(())
    }

    fn rollback(&mut self, _ctx: &mut TxCtx<'_>) {
        if self.holding {
            self.release();
            self.holding = false;
        }
    }

    /// The global lock admits no zombie transactions and no delayed-commit
    /// window, so its fence needs no grace period (paper Sec 8's class of
    /// privatization-safe algorithms, like NOrec):
    ///
    /// * Every transaction runs *entirely* under the lock — reads,
    ///   speculation, and commit write-back all happen before the lock is
    ///   released, and an abort only discards a private buffer. There is
    ///   no window in which a committed-but-unwritten or doomed-but-running
    ///   transaction can touch memory (the Fig 1 anomalies the fence
    ///   exists to close).
    /// * Any transaction observed active at a fence acquired the lock
    ///   *after* the privatizing transaction released it, hence after the
    ///   privatizing write was globally visible — so under the paper's DRF
    ///   discipline its guard keeps it off the privatized region, exactly
    ///   the post-snapshot transactions an epoch fence also declines to
    ///   wait for.
    ///
    /// As with NOrec, recording `FBegin`/`FEnd` would assert a quiescence
    /// that never happened (Def A.1 clause 10 would then obligate it), so
    /// immediate fences record no fence actions; the conformance suite
    /// exempts fence-free backends from the fence-based DRF argument while
    /// still demanding bit-identical behavior.
    fn fence_mode(&self) -> FenceMode {
        FenceMode::Immediate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::StmHandle;

    #[test]
    fn basic_txn() {
        let stm = GlockStm::new(2, 1);
        let mut h = stm.handle(0);
        let r = h.atomic(|tx| {
            tx.write(0, 5)?;
            let v = tx.read(0)?;
            tx.write(1, v * 2)?;
            Ok(v)
        });
        assert_eq!(r, 5);
        assert_eq!(stm.peek(1), 10);
    }

    #[test]
    fn user_abort_rolls_back() {
        let stm = GlockStm::new(1, 1);
        let mut h = stm.handle(0);
        let r: Result<(), Abort> = h.try_atomic(|tx| {
            tx.write(0, 9)?;
            Err(Abort)
        });
        assert!(r.is_err());
        assert_eq!(stm.peek(0), 0, "buffered writes discarded on user abort");
        assert_eq!(h.stats().aborts_user, 1);
        // The lock must have been released on the abort path.
        let mut h2 = stm.handle(0);
        h2.atomic(|tx| tx.write(0, 3));
        assert_eq!(stm.peek(0), 3);
    }

    #[test]
    fn concurrent_increments() {
        let stm = GlockStm::new(1, 4);
        std::thread::scope(|s| {
            for t in 0..4 {
                let stm = stm.clone();
                s.spawn(move || {
                    let mut h = stm.handle(t);
                    for _ in 0..1000 {
                        h.atomic(|tx| {
                            let v = tx.read(0)?;
                            tx.write(0, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(stm.peek(0), 4000);
    }

    /// The fence decision (see [`GlockPolicy::fence_mode`]): glock fences
    /// resolve at issue, pay no grace period, and record no fence actions
    /// — while still counting in `Stats::fences`.
    #[test]
    fn fence_is_immediate_and_unrecorded() {
        use crate::record::Recorder;
        use std::sync::Arc;
        use tm_core::action::Kind;
        let rec = Arc::new(Recorder::new(1));
        let stm = GlockStm::with_config(StmConfig::new(2, 1).recorder(Arc::clone(&rec)));
        let mut h = stm.handle(0);
        h.atomic(|tx| tx.write(0, 5));
        let ticket = h.fence_async();
        assert!(ticket.is_resolved(), "glock fences resolve at issue");
        assert_eq!(ticket.period(), None, "no grace-period claim");
        h.fence_join(ticket);
        h.fence();
        h.write_direct(1, 7); // privatized-style direct access right away
        assert_eq!(h.stats().fences, 2);
        assert_eq!(h.stats().fence_wait_ns, 0, "nothing to wait out");
        assert_eq!(
            stm.runtime().grace().scans(),
            0,
            "the engine must never be touched"
        );
        let hist = rec.snapshot_history();
        assert_eq!(hist.validate(), Ok(()));
        assert!(
            hist.actions()
                .iter()
                .all(|a| !matches!(a.kind, Kind::FBegin | Kind::FEnd)),
            "immediate fences must record no fence actions"
        );
    }

    #[test]
    fn read_own_buffered_write() {
        let stm = GlockStm::new(1, 1);
        let mut h = stm.handle(0);
        let v = h.atomic(|tx| {
            tx.write(0, 42)?;
            tx.read(0)
        });
        assert_eq!(v, 42);
    }
}
