//! Expressions over thread-local variables (paper Sec 2.1).
//!
//! Register values carry a *uniqueness tag* in their upper 32 bits so that
//! every write in a trace writes a distinct value (Def 2.1 clause 3) without
//! litmus programs having to pick globally unique constants. Programs observe
//! only the *user part* (lower 32 bits): all comparisons and arithmetic
//! operate on user parts.

use tm_core::ids::Value;

/// Thread-local variable index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u16);

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// The user-visible part of a value.
#[inline]
pub fn user(v: Value) -> u64 {
    v & 0xFFFF_FFFF
}

/// Tag a user value with a uniqueness sequence number.
#[inline]
pub fn tagged(user_value: u64, seq: u32) -> Value {
    debug_assert!(user_value <= 0xFFFF_FFFF, "user values are 32-bit");
    (u64::from(seq) << 32) | user_value
}

/// The value an atomic block's result variable receives on commit.
pub const COMMITTED: u64 = 0xFFFF_FF01;
/// The value an atomic block's result variable receives on abort.
pub const ABORTED: u64 = 0xFFFF_FF02;

/// Integer expressions.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    Const(u64),
    Var(Var),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
}

/// Boolean expressions.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum BExpr {
    Const(bool),
    Eq(Expr, Expr),
    Ne(Expr, Expr),
    Lt(Expr, Expr),
    Le(Expr, Expr),
    Not(Box<BExpr>),
    And(Box<BExpr>, Box<BExpr>),
    Or(Box<BExpr>, Box<BExpr>),
}

impl Expr {
    /// Evaluate to a *user* value against the thread's locals (which store
    /// full tagged values).
    pub fn eval(&self, locals: &[Value]) -> u64 {
        match self {
            Expr::Const(c) => *c,
            Expr::Var(v) => user(locals[v.0 as usize]),
            Expr::Add(a, b) => a.eval(locals).wrapping_add(b.eval(locals)) & 0xFFFF_FFFF,
            Expr::Sub(a, b) => a.eval(locals).wrapping_sub(b.eval(locals)) & 0xFFFF_FFFF,
            Expr::Mul(a, b) => a.eval(locals).wrapping_mul(b.eval(locals)) & 0xFFFF_FFFF,
        }
    }

    /// Largest variable index mentioned, if any.
    pub fn max_var(&self) -> Option<u16> {
        match self {
            Expr::Const(_) => None,
            Expr::Var(v) => Some(v.0),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => a.max_var().max(b.max_var()),
        }
    }
}

impl BExpr {
    pub fn eval(&self, locals: &[Value]) -> bool {
        match self {
            BExpr::Const(b) => *b,
            BExpr::Eq(a, b) => a.eval(locals) == b.eval(locals),
            BExpr::Ne(a, b) => a.eval(locals) != b.eval(locals),
            BExpr::Lt(a, b) => a.eval(locals) < b.eval(locals),
            BExpr::Le(a, b) => a.eval(locals) <= b.eval(locals),
            BExpr::Not(a) => !a.eval(locals),
            BExpr::And(a, b) => a.eval(locals) && b.eval(locals),
            BExpr::Or(a, b) => a.eval(locals) || b.eval(locals),
        }
    }

    pub fn max_var(&self) -> Option<u16> {
        match self {
            BExpr::Const(_) => None,
            BExpr::Eq(a, b) | BExpr::Ne(a, b) | BExpr::Lt(a, b) | BExpr::Le(a, b) => {
                a.max_var().max(b.max_var())
            }
            BExpr::Not(a) => a.max_var(),
            BExpr::And(a, b) | BExpr::Or(a, b) => a.max_var().max(b.max_var()),
        }
    }
}

// ---- Builder helpers, used pervasively by litmus programs. ----

/// Constant expression.
pub fn cst(c: u64) -> Expr {
    Expr::Const(c)
}
/// Variable expression.
pub fn v(x: Var) -> Expr {
    Expr::Var(x)
}
pub fn add(a: Expr, b: Expr) -> Expr {
    Expr::Add(Box::new(a), Box::new(b))
}
pub fn sub(a: Expr, b: Expr) -> Expr {
    Expr::Sub(Box::new(a), Box::new(b))
}
pub fn eq(a: Expr, b: Expr) -> BExpr {
    BExpr::Eq(a, b)
}
pub fn ne(a: Expr, b: Expr) -> BExpr {
    BExpr::Ne(a, b)
}
pub fn lt(a: Expr, b: Expr) -> BExpr {
    BExpr::Lt(a, b)
}
pub fn le(a: Expr, b: Expr) -> BExpr {
    BExpr::Le(a, b)
}
pub fn not(a: BExpr) -> BExpr {
    BExpr::Not(Box::new(a))
}
pub fn and(a: BExpr, b: BExpr) -> BExpr {
    BExpr::And(Box::new(a), Box::new(b))
}
pub fn or(a: BExpr, b: BExpr) -> BExpr {
    BExpr::Or(Box::new(a), Box::new(b))
}
/// `l = committed` test.
pub fn is_committed(l: Var) -> BExpr {
    eq(v(l), cst(COMMITTED))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_and_tagging() {
        let t = tagged(42, 7);
        assert_eq!(user(t), 42);
        assert_ne!(t, tagged(42, 8));
    }

    #[test]
    fn eval_uses_user_parts() {
        let locals = vec![tagged(5, 99), tagged(3, 123)];
        assert_eq!(v(Var(0)).eval(&locals), 5);
        assert_eq!(add(v(Var(0)), v(Var(1))).eval(&locals), 8);
        assert_eq!(sub(v(Var(0)), v(Var(1))).eval(&locals), 2);
        assert!(eq(v(Var(0)), cst(5)).eval(&locals));
        assert!(ne(v(Var(0)), v(Var(1))).eval(&locals));
        assert!(lt(v(Var(1)), v(Var(0))).eval(&locals));
        assert!(le(cst(3), v(Var(1))).eval(&locals));
        assert!(not(BExpr::Const(false)).eval(&locals));
        assert!(and(
            BExpr::Const(true),
            or(BExpr::Const(false), BExpr::Const(true))
        )
        .eval(&locals));
    }

    #[test]
    fn arithmetic_stays_in_user_range() {
        let locals = vec![tagged(0xFFFF_FFFF, 1)];
        assert_eq!(add(v(Var(0)), cst(1)).eval(&locals), 0);
    }

    #[test]
    fn max_var() {
        assert_eq!(add(v(Var(3)), v(Var(7))).max_var(), Some(7));
        assert_eq!(cst(1).max_var(), None);
        assert_eq!(
            and(eq(v(Var(2)), cst(0)), BExpr::Const(true)).max_var(),
            Some(2)
        );
    }
}
