//! An eager (in-place, undo-log) TM specification — the paper's other
//! anomaly family: "TMs that make transactional updates in-place and undo
//! them on abort are subject to a similar problem" (Sec 1).
//!
//! Writes acquire an encounter-time lock, log the old value, and update the
//! register in place. Reads are value-logged and re-validated at commit; on
//! any conflict the transaction *rolls back its undo log in place* — and each
//! rollback store is one micro-step, so an aborting doomed transaction can
//! overwrite a privatized non-transactional write unless a fence kept it out
//! of the private phase. The fenced Fig 1(a)/(b) litmus programs are safe
//! under this TM too; the unfenced ones fail through the rollback path
//! instead of delayed write-back.

use crate::oracle::{Oracle, Req, Resp};
use tm_core::ids::{Reg, Value};

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Op {
    BeginSetActive,
    /// Read `x` in place and log it.
    ReadLog {
        x: Reg,
    },
    /// Lock, log old value, write in place.
    WriteEager {
        x: Reg,
        v: Value,
    },
    /// Validate `rset[j]` by value (commit).
    Validate {
        j: usize,
    },
    /// Release the lock of `wlog[k]` (commit success path).
    Unlock {
        k: usize,
    },
    /// Roll back `wlog[k]` (abort path; runs newest-first).
    Rollback {
        k: usize,
    },
    /// Fence: snapshot scan / wait (Fig 7 shape).
    FenceSnap {
        u: usize,
        waits: Vec<bool>,
    },
    FenceWait {
        u: usize,
        waits: Vec<bool>,
    },
}

/// Per-thread transaction metadata.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
struct TxnMeta {
    /// Value-based read log.
    rset: Vec<(Reg, Value)>,
    /// Undo log: (register, old value), in write order.
    wlog: Vec<(Reg, Value)>,
}

/// The eager/undo TM oracle.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct UndoSpec {
    reg: Vec<Value>,
    lock: Vec<Option<u16>>,
    active: Vec<bool>,
    txn: Vec<TxnMeta>,
    ops: Vec<Option<Op>>,
}

impl UndoSpec {
    pub fn new(nregs: u32, nthreads: usize) -> Self {
        UndoSpec {
            reg: vec![0; nregs as usize],
            lock: vec![None; nregs as usize],
            active: vec![false; nthreads],
            txn: (0..nthreads).map(|_| TxnMeta::default()).collect(),
            ops: vec![None; nthreads],
        }
    }

    /// Begin the rollback sequence (or finish immediately if nothing to
    /// undo). The undo log unwinds newest-first.
    fn start_abort(&mut self, t: usize) -> Option<Resp> {
        if self.txn[t].wlog.is_empty() {
            self.finish_abort(t)
        } else {
            let k = self.txn[t].wlog.len() - 1;
            self.ops[t] = Some(Op::Rollback { k });
            None
        }
    }

    fn finish_abort(&mut self, t: usize) -> Option<Resp> {
        // Release any locks still held (all of them: rollback keeps locks
        // until the log is fully unwound, then this releases in one step —
        // releases are not observable separately by this model's clients).
        for &(x, _) in &self.txn[t].wlog {
            if self.lock[x.idx()] == Some(t as u16) {
                self.lock[x.idx()] = None;
            }
        }
        self.txn[t] = TxnMeta::default();
        self.active[t] = false;
        Some(Resp::Aborted)
    }
}

impl Oracle for UndoSpec {
    fn can_submit(&self, _t: usize) -> bool {
        true
    }

    fn submit(&mut self, t: usize, req: Req) {
        debug_assert!(self.ops[t].is_none());
        self.ops[t] = Some(match req {
            Req::Begin => Op::BeginSetActive,
            Req::Read(x) => Op::ReadLog { x },
            Req::Write(x, v) => Op::WriteEager { x, v },
            Req::Commit => {
                if self.txn[t].rset.is_empty() {
                    Op::Unlock { k: 0 }
                } else {
                    Op::Validate { j: 0 }
                }
            }
            Req::FenceBegin => Op::FenceSnap {
                u: 0,
                waits: vec![false; self.active.len()],
            },
        });
    }

    fn step_choices(&self, t: usize) -> u32 {
        match &self.ops[t] {
            None => 0,
            Some(Op::FenceWait { u, waits }) => {
                let mut u = *u;
                while u < waits.len() {
                    if u != t && waits[u] {
                        return if self.active[u] { 0 } else { 1 };
                    }
                    u += 1;
                }
                1
            }
            Some(_) => 1,
        }
    }

    fn step(&mut self, t: usize, _choice: u32) -> Option<Resp> {
        let op = self.ops[t].take().expect("no pending op");
        match op {
            Op::BeginSetActive => {
                self.active[t] = true;
                Some(Resp::Ok)
            }
            Op::ReadLog { x } => {
                // Own write? Read in place is correct (we wrote in place).
                if self.lock[x.idx()].is_some_and(|o| o as usize != t) {
                    return self.start_abort(t);
                }
                let v = self.reg[x.idx()];
                self.txn[t].rset.push((x, v));
                Some(Resp::Val(v))
            }
            Op::WriteEager { x, v } => match self.lock[x.idx()] {
                Some(o) if o as usize != t => self.start_abort(t),
                owned => {
                    if owned.is_none() {
                        self.lock[x.idx()] = Some(t as u16);
                        self.txn[t].wlog.push((x, self.reg[x.idx()]));
                    }
                    self.reg[x.idx()] = v;
                    Some(Resp::Unit)
                }
            },
            Op::Validate { j } => {
                let (x, seen) = self.txn[t].rset[j];
                let cur = self.reg[x.idx()];
                let foreign_lock = self.lock[x.idx()].is_some_and(|o| o as usize != t);
                if cur != seen || foreign_lock {
                    return self.start_abort(t);
                }
                if j + 1 == self.txn[t].rset.len() {
                    self.ops[t] = Some(Op::Unlock { k: 0 });
                } else {
                    self.ops[t] = Some(Op::Validate { j: j + 1 });
                }
                None
            }
            Op::Unlock { k } => {
                if k >= self.txn[t].wlog.len() {
                    self.txn[t] = TxnMeta::default();
                    self.active[t] = false;
                    return Some(Resp::Committed);
                }
                let (x, _) = self.txn[t].wlog[k];
                debug_assert_eq!(self.lock[x.idx()], Some(t as u16));
                self.lock[x.idx()] = None;
                if k + 1 == self.txn[t].wlog.len() {
                    self.txn[t] = TxnMeta::default();
                    self.active[t] = false;
                    Some(Resp::Committed)
                } else {
                    self.ops[t] = Some(Op::Unlock { k: k + 1 });
                    None
                }
            }
            Op::Rollback { k } => {
                // THE undo anomaly: this store can overwrite a concurrent
                // non-transactional write to a just-privatized register.
                let (x, old) = self.txn[t].wlog[k];
                self.reg[x.idx()] = old;
                if k == 0 {
                    self.finish_abort(t)
                } else {
                    self.ops[t] = Some(Op::Rollback { k: k - 1 });
                    None
                }
            }
            Op::FenceSnap { u, mut waits } => {
                waits[u] = self.active[u];
                if u + 1 == waits.len() {
                    self.ops[t] = Some(Op::FenceWait { u: 0, waits });
                } else {
                    self.ops[t] = Some(Op::FenceSnap { u: u + 1, waits });
                }
                None
            }
            Op::FenceWait { mut u, waits } => {
                while u < waits.len() {
                    if u != t && waits[u] && self.active[u] {
                        break;
                    }
                    u += 1;
                }
                if u >= waits.len() {
                    Some(Resp::FenceEnd)
                } else {
                    self.ops[t] = Some(Op::FenceWait { u, waits });
                    None
                }
            }
        }
    }

    fn direct_read(&mut self, _t: usize, x: Reg) -> Value {
        self.reg[x.idx()]
    }

    fn direct_write(&mut self, _t: usize, x: Reg, v: Value) {
        self.reg[x.idx()] = v;
    }

    fn regs(&self) -> &[Value] {
        &self.reg
    }

    fn has_pending(&self, t: usize) -> bool {
        self.ops[t].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(o: &mut UndoSpec, t: usize) -> Resp {
        loop {
            assert!(o.step_choices(t) > 0, "blocked");
            if let Some(r) = o.step(t, 0) {
                return r;
            }
        }
    }

    #[test]
    fn eager_write_lands_immediately() {
        let mut o = UndoSpec::new(1, 1);
        o.submit(0, Req::Begin);
        drive(&mut o, 0);
        o.submit(0, Req::Write(Reg(0), 0x1_0000_0005));
        drive(&mut o, 0);
        assert_eq!(o.regs()[0], 0x1_0000_0005, "in-place write");
        o.submit(0, Req::Commit);
        assert_eq!(drive(&mut o, 0), Resp::Committed);
        assert_eq!(o.lock[0], None);
    }

    #[test]
    fn rollback_restores_old_value() {
        let mut o = UndoSpec::new(1, 2);
        o.submit(0, Req::Begin);
        drive(&mut o, 0);
        // Read something to validate later.
        o.submit(0, Req::Read(Reg(0)));
        drive(&mut o, 0);
        o.submit(0, Req::Write(Reg(0), 0x1_0000_0005));
        drive(&mut o, 0);
        // Another thread's direct write invalidates the read (value-based).
        o.direct_write(1, Reg(0), 0x2_0000_0009);
        o.submit(0, Req::Commit);
        assert_eq!(drive(&mut o, 0), Resp::Aborted);
        // The rollback overwrote the direct write — exactly the anomaly.
        assert_eq!(o.regs()[0], 0, "undo log restored the pre-txn value");
    }

    #[test]
    fn write_conflict_aborts_and_unwinds() {
        let mut o = UndoSpec::new(2, 2);
        for t in 0..2 {
            o.submit(t, Req::Begin);
            drive(&mut o, t);
        }
        o.submit(0, Req::Write(Reg(0), 0x1_0000_0002));
        drive(&mut o, 0);
        o.submit(1, Req::Write(Reg(0), 0x2_0000_0003));
        assert_eq!(drive(&mut o, 1), Resp::Aborted);
        assert_eq!(o.regs()[0], 0x1_0000_0002, "winner's write survives");
        o.submit(0, Req::Commit);
        assert_eq!(drive(&mut o, 0), Resp::Committed);
    }

    #[test]
    fn fence_waits_for_active() {
        let mut o = UndoSpec::new(1, 2);
        o.submit(0, Req::Begin);
        drive(&mut o, 0);
        o.submit(1, Req::FenceBegin);
        assert!(o.step(1, 0).is_none());
        assert!(o.step(1, 0).is_none());
        assert_eq!(o.step_choices(1), 0, "fence blocked on active txn");
        o.submit(0, Req::Commit);
        assert_eq!(drive(&mut o, 0), Resp::Committed);
        assert_eq!(drive(&mut o, 1), Resp::FenceEnd);
    }
}
