//! Systematic exploration of program ⊗ TM-oracle state spaces.
//!
//! Two modes:
//!
//! * [`explore_outcomes`] — memoized DFS over states; collects the set of
//!   terminal outcomes (final locals + registers), detects divergence
//!   (cycles in the state graph, e.g. a doomed transaction's zombie loop)
//!   and deadlock. Memoization is sound for outcomes because a state fully
//!   determines its future behaviour.
//! * [`explore_traces`] — un-memoized DFS that hands every complete trace
//!   (and every diverged/blocked prefix) to a callback, for the checks that
//!   quantify over traces: DRF (Def 3.3), strong opacity of each history,
//!   and the Fundamental Property. Sound pruning here is limited to cutting
//!   state cycles, since a trace property is not a state property.
//!
//! Scheduling points are exactly the visible operations: thread-local
//! computation runs eagerly inside a move (a sound partial-order reduction —
//! locals are thread-private), while every TM micro-step is a separate move.

use crate::ast::Program;
use crate::expr::tagged;
use crate::machine::{Await, NextVisible, ThreadState, VisOp};
use crate::oracle::{Oracle, Req, Resp};
use std::collections::{BTreeSet, HashMap, HashSet};
use tm_core::action::{Action, Kind};
use tm_core::ids::ThreadId;
use tm_core::trace::Trace;

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Cap on distinct states (outcome mode) or explored moves (trace mode).
    pub max_states: usize,
    /// Cap on complete traces delivered to the callback (trace mode).
    pub max_traces: usize,
    /// Budget for thread-local steps inside one move (catches register-free
    /// infinite loops).
    pub local_step_budget: u32,
    /// Safety cap on trace length.
    pub max_trace_len: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_states: 2_000_000,
            max_traces: 100_000,
            local_step_budget: 4_096,
            max_trace_len: 4_096,
        }
    }
}

/// A terminal outcome: user-visible locals per thread plus user-visible
/// register contents.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Outcome {
    pub locals: Vec<Vec<u64>>,
    pub regs: Vec<u64>,
}

/// Result of outcome exploration.
#[derive(Clone, Debug, Default)]
pub struct ExploreResult {
    pub outcomes: BTreeSet<Outcome>,
    /// Some execution path can run forever (state-graph cycle or local-step
    /// budget exhaustion).
    pub diverged: bool,
    /// Some path reaches a state with unfinished threads and no enabled move.
    pub blocked: bool,
    pub states: usize,
    pub truncated: bool,
}

/// How a delivered trace ended (trace mode).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathStatus {
    /// All threads ran to completion.
    Terminal,
    /// Unfinished threads but no enabled move.
    Blocked,
    /// A state repeated along the path (an infinite execution exists).
    Diverged,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct ExecState<O: Oracle> {
    threads: Vec<ThreadState>,
    oracle: O,
    write_seq: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Move {
    /// Run thread `t` to its next visible operation and perform/submit it.
    Program(usize),
    /// Advance thread `t`'s pending TM request by one micro-step.
    OracleStep(usize, u32),
}

fn enabled_moves<O: Oracle>(s: &ExecState<O>) -> Vec<Move> {
    let mut moves = Vec::new();
    for (t, th) in s.threads.iter().enumerate() {
        if s.oracle.has_pending(t) {
            for c in 0..s.oracle.step_choices(t) {
                moves.push(Move::OracleStep(t, c));
            }
        } else if !th.is_done() && th.awaiting.is_none() && s.oracle.can_submit(t) {
            moves.push(Move::Program(t));
        }
    }
    moves
}

fn all_done<O: Oracle>(s: &ExecState<O>) -> bool {
    s.threads.iter().all(ThreadState::is_done)
}

fn outcome_of<O: Oracle>(s: &ExecState<O>) -> Outcome {
    Outcome {
        locals: s.threads.iter().map(ThreadState::user_locals).collect(),
        regs: s
            .oracle
            .regs()
            .iter()
            .map(|&v| crate::expr::user(v))
            .collect(),
    }
}

/// Emit helper: append an action whose id is its index.
fn emit(trace: &mut Vec<Action>, t: usize, kind: Kind) {
    let id = trace.len() as u64;
    trace.push(Action::new(id, ThreadId(t as u32), kind));
}

/// Apply a move. Returns `false` if the path must stop (local divergence).
/// When `trace` is `Some`, actions are appended.
fn apply_move<O: Oracle>(
    s: &mut ExecState<O>,
    mv: Move,
    limits: &Limits,
    mut trace: Option<&mut Vec<Action>>,
) -> bool {
    let mut prims = Vec::new();
    match mv {
        Move::Program(t) => {
            let nv = s.threads[t].next_visible(limits.local_step_budget, &mut prims);
            if let Some(tr) = trace.as_deref_mut() {
                for p in &prims {
                    emit(tr, t, Kind::Prim(*p));
                }
            }
            prims.clear();
            match nv {
                NextVisible::Done => true,
                NextVisible::LocalDivergence => false,
                NextVisible::Op(op) => {
                    let in_txn = s.threads[t].in_txn;
                    match op {
                        VisOp::Begin => {
                            if let Some(tr) = trace.as_deref_mut() {
                                emit(tr, t, Kind::TxBegin);
                            }
                            s.oracle.submit(t, Req::Begin);
                            s.threads[t].submitted(Await::Begin);
                        }
                        VisOp::Commit => {
                            if let Some(tr) = trace.as_deref_mut() {
                                emit(tr, t, Kind::TxCommit);
                            }
                            s.oracle.submit(t, Req::Commit);
                            s.threads[t].submitted(Await::Commit);
                        }
                        VisOp::Fence => {
                            if let Some(tr) = trace.as_deref_mut() {
                                emit(tr, t, Kind::FBegin);
                            }
                            s.oracle.submit(t, Req::FenceBegin);
                            s.threads[t].submitted(Await::Fence);
                        }
                        VisOp::Read(l, x) => {
                            if in_txn {
                                if let Some(tr) = trace.as_deref_mut() {
                                    emit(tr, t, Kind::Read(x));
                                }
                                s.oracle.submit(t, Req::Read(x));
                                s.threads[t].submitted(Await::Read(l));
                            } else {
                                // Non-transactional access: request, direct
                                // access and response are one atomic move
                                // (Def A.1 clause 7).
                                let v = s.oracle.direct_read(t, x);
                                s.threads[t].apply_direct_read(l, v, &mut prims);
                                if let Some(tr) = trace.as_deref_mut() {
                                    emit(tr, t, Kind::Read(x));
                                    emit(tr, t, Kind::RetVal(v));
                                    for p in &prims {
                                        emit(tr, t, Kind::Prim(*p));
                                    }
                                }
                            }
                        }
                        VisOp::Write(x, user_val) => {
                            let v = tagged(user_val, s.write_seq);
                            s.write_seq += 1;
                            if in_txn {
                                if let Some(tr) = trace.as_deref_mut() {
                                    emit(tr, t, Kind::Write(x, v));
                                }
                                s.oracle.submit(t, Req::Write(x, v));
                                s.threads[t].submitted(Await::Write);
                            } else {
                                s.oracle.direct_write(t, x, v);
                                if let Some(tr) = trace.as_deref_mut() {
                                    emit(tr, t, Kind::Write(x, v));
                                    emit(tr, t, Kind::RetUnit);
                                }
                            }
                        }
                    }
                    true
                }
            }
        }
        Move::OracleStep(t, c) => {
            if let Some(resp) = s.oracle.step(t, c) {
                let kind = match resp {
                    Resp::Ok => Kind::Ok,
                    Resp::Aborted => Kind::Aborted,
                    Resp::Val(v) => Kind::RetVal(v),
                    Resp::Unit => Kind::RetUnit,
                    Resp::Committed => Kind::Committed,
                    Resp::FenceEnd => Kind::FEnd,
                };
                s.threads[t].apply_response(resp, &mut prims);
                if let Some(tr) = trace {
                    emit(tr, t, kind);
                    for p in &prims {
                        emit(tr, t, Kind::Prim(*p));
                    }
                }
            }
            true
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Color {
    OnPath,
    Done,
}

/// Memoized outcome exploration.
pub fn explore_outcomes<O: Oracle>(p: &Program, oracle: O, limits: &Limits) -> ExploreResult {
    let threads = p
        .threads
        .iter()
        .zip(&p.nvars)
        .map(|(c, &nv)| ThreadState::new(c.clone(), nv))
        .collect();
    let state = ExecState {
        threads,
        oracle,
        write_seq: 1,
    };
    let mut visited: HashMap<ExecState<O>, Color> = HashMap::new();
    let mut result = ExploreResult::default();
    dfs_outcomes(state, &mut visited, &mut result, limits);
    result
}

fn dfs_outcomes<O: Oracle>(
    state: ExecState<O>,
    visited: &mut HashMap<ExecState<O>, Color>,
    result: &mut ExploreResult,
    limits: &Limits,
) {
    match visited.get(&state) {
        Some(Color::OnPath) => {
            result.diverged = true;
            return;
        }
        Some(Color::Done) => return,
        None => {}
    }
    if result.states >= limits.max_states {
        result.truncated = true;
        return;
    }
    result.states += 1;
    visited.insert(state.clone(), Color::OnPath);

    let moves = enabled_moves(&state);
    if moves.is_empty() {
        if all_done(&state) {
            result.outcomes.insert(outcome_of(&state));
        } else {
            result.blocked = true;
        }
    }
    for mv in moves {
        let mut next = state.clone();
        if apply_move(&mut next, mv, limits, None) {
            dfs_outcomes(next, visited, result, limits);
        } else {
            result.diverged = true;
        }
    }
    visited.insert(state, Color::Done);
}

/// Result of trace exploration.
#[derive(Clone, Debug, Default)]
pub struct TraceExploreResult {
    pub traces_delivered: usize,
    pub truncated: bool,
}

/// Un-memoized trace enumeration: every complete trace (and every blocked or
/// diverged prefix) is passed to `on_trace` together with its status. Stops
/// after `limits.max_traces` deliveries.
pub fn explore_traces<O: Oracle>(
    p: &Program,
    oracle: O,
    limits: &Limits,
    on_trace: &mut dyn FnMut(Trace, PathStatus),
) -> TraceExploreResult {
    let threads = p
        .threads
        .iter()
        .zip(&p.nvars)
        .map(|(c, &nv)| ThreadState::new(c.clone(), nv))
        .collect();
    let state = ExecState {
        threads,
        oracle,
        write_seq: 1,
    };
    let mut on_path: HashSet<ExecState<O>> = HashSet::new();
    let mut trace: Vec<Action> = Vec::new();
    let mut result = TraceExploreResult::default();
    dfs_traces(
        state,
        &mut on_path,
        &mut trace,
        &mut result,
        limits,
        on_trace,
    );
    result
}

fn dfs_traces<O: Oracle>(
    state: ExecState<O>,
    on_path: &mut HashSet<ExecState<O>>,
    trace: &mut Vec<Action>,
    result: &mut TraceExploreResult,
    limits: &Limits,
    on_trace: &mut dyn FnMut(Trace, PathStatus),
) {
    if result.traces_delivered >= limits.max_traces {
        result.truncated = true;
        return;
    }
    if !on_path.insert(state.clone()) {
        // State repeats along this path: an infinite execution exists.
        result.traces_delivered += 1;
        on_trace(Trace::new(trace.clone()), PathStatus::Diverged);
        return;
    }
    if trace.len() >= limits.max_trace_len {
        result.truncated = true;
        on_path.remove(&state);
        return;
    }

    let moves = enabled_moves(&state);
    if moves.is_empty() {
        let status = if all_done(&state) {
            PathStatus::Terminal
        } else {
            PathStatus::Blocked
        };
        result.traces_delivered += 1;
        on_trace(Trace::new(trace.clone()), status);
    }
    for mv in moves {
        let mut next = state.clone();
        let len_before = trace.len();
        if apply_move(&mut next, mv, limits, Some(trace)) {
            dfs_traces(next, on_path, trace, result, limits, on_trace);
        } else {
            result.traces_delivered += 1;
            on_trace(Trace::new(trace.clone()), PathStatus::Diverged);
        }
        trace.truncate(len_before);
    }
    on_path.remove(&state);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use crate::atomic_oracle::AtomicOracle;
    use crate::expr::*;
    use crate::glock_oracle::GlockOracle;
    use crate::tl2_spec::{Tl2Config, Tl2Spec};
    use tm_core::ids::Reg;

    fn limits() -> Limits {
        Limits::default()
    }

    /// Single-thread increment via a transaction under each oracle.
    #[test]
    fn single_thread_txn_all_oracles() {
        let l = Var(0);
        let p = Program::new(vec![seq([atomic(
            l,
            [read(Var(1), Reg(0)), write(Reg(0), add(v(Var(1)), cst(1)))],
        )])])
        .unwrap();

        let r = explore_outcomes(&p, AtomicOracle::new(p.nregs, 1, false), &limits());
        assert!(!r.diverged && !r.blocked);
        assert_eq!(r.outcomes.len(), 1);
        let o = r.outcomes.iter().next().unwrap();
        assert_eq!(o.regs, vec![1]);
        assert_eq!(o.locals[0][0], COMMITTED);

        let r = explore_outcomes(
            &p,
            Tl2Spec::new(p.nregs, 1, Tl2Config::default()),
            &limits(),
        );
        assert_eq!(r.outcomes.iter().next().unwrap().regs, vec![1]);

        let r = explore_outcomes(&p, GlockOracle::new(p.nregs, 1), &limits());
        assert_eq!(r.outcomes.iter().next().unwrap().regs, vec![1]);
    }

    /// Two increments race transactionally: under every oracle the final
    /// value must be 2 (TL2 aborts one on conflict; we retry via a loop).
    #[test]
    fn parallel_increment_with_retry() {
        let thread = || {
            let l = Var(0);
            seq([
                assign(l, cst(ABORTED)),
                while_(
                    ne(v(l), cst(COMMITTED)),
                    atomic(
                        l,
                        [read(Var(1), Reg(0)), write(Reg(0), add(v(Var(1)), cst(1)))],
                    ),
                ),
            ])
        };
        let p = Program::new(vec![thread(), thread()]).unwrap();

        for spurious in [false] {
            let r = explore_outcomes(&p, AtomicOracle::new(p.nregs, 2, spurious), &limits());
            assert!(!r.blocked);
            for o in &r.outcomes {
                assert_eq!(o.regs, vec![2], "atomic outcome {o:?}");
            }
        }
        let r = explore_outcomes(
            &p,
            Tl2Spec::new(p.nregs, 2, Tl2Config::default()),
            &limits(),
        );
        assert!(!r.blocked, "TL2 must not deadlock");
        for o in &r.outcomes {
            assert_eq!(o.regs, vec![2], "TL2 outcome {o:?}");
        }
    }

    /// Fig 3 shape under the atomic oracle: the non-transactional reads can
    /// never observe x=1 ∧ y=0 (they never interleave with the transaction).
    #[test]
    fn fig3_strongly_atomic_outcomes() {
        let p = Program::new(vec![
            atomic(Var(0), [write(Reg(0), cst(1)), write(Reg(1), cst(2))]),
            seq([read(Var(0), Reg(0)), read(Var(1), Reg(1))]),
        ])
        .unwrap();
        let r = explore_outcomes(&p, AtomicOracle::new(p.nregs, 2, false), &limits());
        for o in &r.outcomes {
            let (l1, l2) = (o.locals[1][0], o.locals[1][1]);
            assert!(
                !(l1 == 1 && l2 == 0),
                "strong atomicity violated: observed x=1,y=0 in {o:?}"
            );
        }
        // Both all-before and all-after must be present.
        assert!(r.outcomes.iter().any(|o| o.locals[1] == vec![0, 0]));
        assert!(r.outcomes.iter().any(|o| o.locals[1] == vec![1, 2]));
    }

    /// Fig 3 under TL2: the weak TM exposes the intermediate state.
    #[test]
    fn fig3_tl2_exposes_intermediate_state() {
        let p = Program::new(vec![
            atomic(Var(0), [write(Reg(0), cst(1)), write(Reg(1), cst(2))]),
            seq([read(Var(0), Reg(0)), read(Var(1), Reg(1))]),
        ])
        .unwrap();
        let r = explore_outcomes(
            &p,
            Tl2Spec::new(p.nregs, 2, Tl2Config::default()),
            &limits(),
        );
        assert!(
            r.outcomes
                .iter()
                .any(|o| o.locals[1][0] == 1 && o.locals[1][1] == 0),
            "expected the racy intermediate observation under TL2"
        );
    }

    /// Zombie divergence: a loop reading a register that never changes while
    /// a cycle exists is reported as divergence (state-graph cycle).
    #[test]
    fn divergence_detected() {
        let p = Program::new(vec![while_(eq(v(Var(0)), cst(0)), read(Var(0), Reg(0)))]).unwrap();
        // Register 0 stays 0 forever: infinite loop.
        let r = explore_outcomes(&p, AtomicOracle::new(p.nregs, 1, false), &limits());
        assert!(r.diverged);
        assert!(r.outcomes.is_empty());
    }

    /// Trace exploration delivers well-formed traces whose histories pass
    /// validation, and terminal statuses are consistent.
    #[test]
    fn traces_are_well_formed() {
        let p = Program::new(vec![
            seq([
                atomic(Var(0), [write(Reg(0), cst(1))]),
                fence(),
                write(Reg(1), cst(2)),
            ]),
            atomic(Var(0), [read(Var(1), Reg(0))]),
        ])
        .unwrap();
        let mut n = 0;
        let mut statuses = BTreeSet::new();
        explore_traces(
            &p,
            Tl2Spec::new(p.nregs, 2, Tl2Config::default()),
            &limits(),
            &mut |tr, st| {
                n += 1;
                statuses.insert(format!("{st:?}"));
                assert_eq!(tr.validate(), Ok(()), "ill-formed trace: {tr:?}");
                assert_eq!(tr.history().validate(), Ok(()));
            },
        );
        assert!(n > 10, "expected many interleavings, got {n}");
        assert!(statuses.contains("Terminal"));
    }

    /// Outcome sets of TL2 on a DRF program must be included in the atomic
    /// oracle's outcome set (a pointwise Fundamental-Property check).
    #[test]
    fn tl2_outcomes_subset_of_atomic_on_drf_program() {
        // Privatization with a fence (Fig 1(a) with fence): DRF.
        let xp = Reg(0);
        let x = Reg(1);
        let p = Program::new(vec![
            seq([
                atomic(Var(0), [write(xp, cst(1))]),
                fence(),
                if_then(is_committed(Var(0)), write(x, cst(2))),
            ]),
            atomic(
                Var(0),
                [
                    read(Var(1), xp),
                    if_then(eq(v(Var(1)), cst(0)), write(x, cst(42))),
                ],
            ),
        ])
        .unwrap();
        let atomic_r = explore_outcomes(&p, AtomicOracle::new(p.nregs, 2, true), &limits());
        let tl2_r = explore_outcomes(
            &p,
            Tl2Spec::new(p.nregs, 2, Tl2Config::default()),
            &limits(),
        );
        assert!(!tl2_r.truncated && !atomic_r.truncated);
        for o in &tl2_r.outcomes {
            assert!(
                atomic_r.outcomes.contains(o),
                "TL2 outcome {o:?} not reachable under strong atomicity"
            );
        }
    }
}
