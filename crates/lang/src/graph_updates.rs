//! Incremental opacity-graph construction (paper Fig 10): the graph updates
//! TXBEGIN / TXREAD / TXVIS / NTXREAD / NTXWRITE applied action by action as
//! a history unfolds, as in the TL2 strong-opacity proof (Sec 7, App C.3).
//!
//! The batch construction of Def 6.3 (in `tm-core::graph`) computes WR, WW
//! and RW from the complete history; this module accumulates them online.
//! The test suite checks that both constructions agree on every explored
//! TL2 history — the executable content of the paper's claim that the
//! inductive graph of Fig 10 *is* an opacity graph of the history.
//!
//! One presentational difference from Fig 10: the paper performs TXVIS(T)
//! at the internal TL2 step where T's commit is guaranteed (reaching the
//! write-back loop), which is invisible in the history. We perform it at
//! T's `committed` action, or earlier at the first moment another node
//! reads one of T's writes (which proves write-back happened). The final
//! graph is identical.

use std::collections::{HashMap, HashSet};
use tm_core::action::Kind;
use tm_core::history::{HistoryIndex, Owner};
use tm_core::ids::{Reg, Value, V_INIT};
use tm_core::trace::History;

/// A node, mirroring `tm_core::graph::Node` indices: transactions first
/// (index = txn id), then non-transactional accesses (`ntxn + ntx id`).
pub type NodeId = usize;

/// The incrementally built graph components.
#[derive(Debug, Default)]
pub struct IncrementalGraph {
    pub nnodes: usize,
    pub vis: Vec<bool>,
    /// Read dependencies (from, to, reg).
    pub wr: HashSet<(NodeId, NodeId, u32)>,
    /// Anti-dependencies (from, to, reg).
    pub rw: HashSet<(NodeId, NodeId, u32)>,
    /// Per-register WW order (visible writers, append-only).
    pub ww: Vec<Vec<NodeId>>,
    /// Per-register readers seen so far: (node, value read).
    readers: Vec<Vec<(NodeId, Value)>>,
    /// value -> (writer node, register).
    writer_of: HashMap<Value, (NodeId, Reg)>,
    /// Registers written by each transaction node (for TXVIS).
    writes_of: HashMap<NodeId, Vec<Reg>>,
}

impl IncrementalGraph {
    fn ensure_reg(&mut self, x: Reg) {
        let need = x.idx() + 1;
        if self.ww.len() < need {
            self.ww.resize_with(need, Vec::new);
            self.readers.resize_with(need, Vec::new);
        }
    }

    /// TXBEGIN / node creation (invisible for transactions).
    fn add_node(&mut self, n: NodeId, visible: bool) {
        if n >= self.nnodes {
            self.nnodes = n + 1;
            self.vis.resize(self.nnodes, false);
        }
        self.vis[n] = visible;
    }

    /// Make a transaction visible and append it to WW for each register it
    /// wrote (Fig 10 TXVIS), deriving WW-induced anti-dependencies from the
    /// readers seen so far.
    fn txvis(&mut self, n: NodeId) {
        if self.vis[n] {
            return;
        }
        self.vis[n] = true;
        let regs = self.writes_of.get(&n).cloned().unwrap_or_default();
        for x in regs {
            self.append_writer(n, x);
        }
    }

    /// Append a (now visible) writer to WWx; every prior reader of x
    /// anti-depends on it (Fig 10 TXVIS / NTXWRITE RW rule).
    fn append_writer(&mut self, n: NodeId, x: Reg) {
        self.ensure_reg(x);
        if self.ww[x.idx()].contains(&n) {
            return;
        }
        self.ww[x.idx()].push(n);
        for &(r, _) in &self.readers[x.idx()] {
            if r != n {
                self.rw.insert((r, n, x.0));
            }
        }
    }

    /// A read of value `v` from register `x` by node `n` (Fig 10 TXREAD /
    /// NTXREAD).
    fn read(&mut self, n: NodeId, x: Reg, v: Value) {
        self.ensure_reg(x);
        if v == V_INIT {
            // Anti-depend on every visible writer of x, present and future
            // (future ones via the readers list).
            for &w in &self.ww[x.idx()] {
                if w != n {
                    self.rw.insert((n, w, x.0));
                }
            }
        } else if let Some(&(w, wx)) = self.writer_of.get(&v) {
            if wx == x && w != n {
                // Reading w's value proves w's write-back happened: force
                // visibility now if its committed action is still pending.
                if !self.vis[w] {
                    self.txvis(w);
                }
                self.wr.insert((w, n, x.0));
                // Anti-depend on writers ordered after w.
                if let Some(p) = self.ww[x.idx()].iter().position(|&m| m == w) {
                    for &later in &self.ww[x.idx()][p + 1..] {
                        if later != n {
                            self.rw.insert((n, later, x.0));
                        }
                    }
                }
            }
        }
        self.readers[x.idx()].push((n, v));
    }
}

/// Replay a history through the Fig 10 graph updates.
pub fn build_incremental(h: &History) -> IncrementalGraph {
    let ix = HistoryIndex::new(h);
    let ntxn = ix.txns.len();
    let node_of = |owner: Owner| -> Option<NodeId> {
        match owner {
            Owner::Txn(t) => Some(t),
            Owner::Ntx(a) => Some(ntxn + a),
            Owner::Fence(_) => None,
        }
    };
    let mut g = IncrementalGraph::default();
    // Map responses back to requests.
    let mut req_of: Vec<Option<usize>> = vec![None; h.len()];
    for (req, resp) in ix.resp_of.iter().enumerate() {
        if let Some(r) = *resp {
            req_of[r] = Some(req);
        }
    }

    for (i, a) in h.actions().iter().enumerate() {
        let Some(n) = node_of(ix.owner[i]) else {
            continue;
        };
        match a.kind {
            Kind::TxBegin => g.add_node(n, false),
            Kind::Write(x, v) => {
                // Record the write; for a non-transactional access this also
                // creates the visible node and appends it to WW.
                g.add_node(n, g.vis.get(n).copied().unwrap_or(false));
                g.writer_of.insert(v, (n, x));
                if matches!(ix.owner[i], Owner::Ntx(_)) {
                    g.vis[n] = true;
                    g.append_writer(n, x);
                } else {
                    g.writes_of.entry(n).or_default().push(x);
                }
            }
            Kind::RetVal(v) => {
                let Some(ri) = req_of[i] else { continue };
                if let Kind::Read(x) = h.actions()[ri].kind {
                    g.add_node(n, matches!(ix.owner[i], Owner::Ntx(_)));
                    g.read(n, x, v);
                }
            }
            Kind::Committed => g.txvis(n),
            _ => {}
        }
    }
    g
}

/// Compare the incremental graph against the batch construction of Def 6.3
/// seeded with the incremental WW order. Returns a description of the first
/// difference, if any.
pub fn diff_with_batch(h: &History) -> Option<String> {
    use tm_core::graph::{build_graph, WwStrategy};
    use tm_core::relations::HbBuilder;

    let inc = build_incremental(h);
    let ix = HistoryIndex::new(h);
    let hb = HbBuilder::build(h, &ix).closure();
    let nregs = ix.nregs;
    let mut orders = inc.ww.clone();
    orders.resize_with(nregs, Vec::new);
    // Visibility of commit-pending transactions: mirror the incremental one.
    let pending_vis: Vec<bool> = ix
        .txns
        .iter()
        .enumerate()
        .filter(|(_, t)| t.status == tm_core::history::TxnStatus::CommitPending)
        .map(|(t, _)| inc.vis.get(t).copied().unwrap_or(false))
        .collect();
    let batch = build_graph(h, &ix, &hb, &pending_vis, &WwStrategy::Explicit(orders));

    // vis
    for (n, &v) in batch.vis.iter().enumerate() {
        let iv = inc.vis.get(n).copied().unwrap_or(false);
        if v != iv {
            return Some(format!("vis({n}): batch={v} inc={iv}"));
        }
    }
    // WR sets
    let batch_wr: HashSet<(usize, usize, u32)> =
        batch.wr.iter().map(|&(a, b, x)| (a, b, x.0)).collect();
    if batch_wr != inc.wr {
        return Some(format!(
            "WR differs: batch-only {:?}, inc-only {:?}",
            batch_wr.difference(&inc.wr).collect::<Vec<_>>(),
            inc.wr.difference(&batch_wr).collect::<Vec<_>>()
        ));
    }
    // RW sets
    let batch_rw: HashSet<(usize, usize, u32)> =
        batch.rw.iter().map(|&(a, b, x)| (a, b, x.0)).collect();
    if batch_rw != inc.rw {
        return Some(format!(
            "RW differs: batch-only {:?}, inc-only {:?}",
            batch_rw.difference(&inc.rw).collect::<Vec<_>>(),
            inc.rw.difference(&batch_rw).collect::<Vec<_>>()
        ));
    }
    // WW orders (batch may have empty trailing registers).
    for x in 0..nregs {
        let empty = Vec::new();
        let iw = inc.ww.get(x).unwrap_or(&empty);
        if &batch.ww[x] != iw {
            return Some(format!(
                "WW[{x}] differs: batch={:?} inc={:?}",
                batch.ww[x], iw
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use crate::explorer::{explore_traces, Limits, PathStatus};
    use crate::expr::*;
    use crate::tl2_spec::{Tl2Config, Tl2Spec};
    use tm_core::ids::Reg as CReg;

    /// Every terminal TL2 history of the fenced privatization program yields
    /// identical incremental and batch graphs.
    #[test]
    fn incremental_matches_batch_on_fig1a() {
        let xp = CReg(0);
        let x = CReg(1);
        let p = Program::new(vec![
            seq([
                atomic(Var(0), [write(xp, cst(1))]),
                fence(),
                if_then(is_committed(Var(0)), write(x, cst(2))),
            ]),
            atomic(
                Var(0),
                [
                    read(Var(1), xp),
                    if_then(eq(v(Var(1)), cst(0)), write(x, cst(42))),
                ],
            ),
        ])
        .unwrap();
        let lim = Limits {
            max_traces: 600,
            ..Limits::default()
        };
        let mut checked = 0;
        explore_traces(
            &p,
            Tl2Spec::new(p.nregs, 2, Tl2Config::default()),
            &lim,
            &mut |tr, status| {
                if status != PathStatus::Terminal {
                    return;
                }
                let h = tr.history();
                if let Some(d) = diff_with_batch(&h) {
                    panic!("graphs differ: {d}\n{}", tm_core::textio::to_text(&h));
                }
                checked += 1;
            },
        );
        assert!(checked > 50, "only {checked} histories checked");
    }

    /// Same for a read-heavy publication-style program.
    #[test]
    fn incremental_matches_batch_on_fig2() {
        let xp = CReg(0);
        let x = CReg(1);
        let p = Program::new(vec![
            seq([write(x, cst(42)), atomic(Var(0), [write(xp, cst(1))])]),
            atomic(
                Var(0),
                [
                    read(Var(1), xp),
                    if_then(eq(v(Var(1)), cst(1)), read(Var(2), x)),
                ],
            ),
        ])
        .unwrap();
        let lim = Limits {
            max_traces: 600,
            ..Limits::default()
        };
        let mut checked = 0;
        explore_traces(
            &p,
            Tl2Spec::new(p.nregs, 2, Tl2Config::default()),
            &lim,
            &mut |tr, status| {
                if status != PathStatus::Terminal {
                    return;
                }
                if let Some(d) = diff_with_batch(&tr.history()) {
                    panic!("graphs differ: {d}");
                }
                checked += 1;
            },
        );
        assert!(checked > 50);
    }

    /// Hand-built history: reader of v_init anti-depends on later writers in
    /// both constructions.
    #[test]
    fn vinit_rw_agrees() {
        use tm_core::action::Action;
        use tm_core::ids::ThreadId;
        let a = |id: u64, t: u32, k: Kind| Action::new(id, ThreadId(t), k);
        let h = History::new(vec![
            a(0, 1, Kind::TxBegin),
            a(1, 1, Kind::Ok),
            a(2, 1, Kind::Read(CReg(0))),
            a(3, 1, Kind::RetVal(0)),
            a(4, 1, Kind::TxCommit),
            a(5, 1, Kind::Committed),
            a(6, 0, Kind::Write(CReg(0), 7)),
            a(7, 0, Kind::RetUnit),
        ]);
        let g = build_incremental(&h);
        // Reader (txn node 0) anti-depends on the ntx writer (node 1).
        assert!(g.rw.contains(&(0, 1, 0)), "{:?}", g.rw);
        assert_eq!(diff_with_batch(&h), None);
    }
}
