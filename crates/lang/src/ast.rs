//! The command language of Sec 2.1:
//!
//! ```text
//! C ::= c | C ; C | if (b) then C else C | while (b) do C
//!     | l := atomic {C} | l := x.read() | x.write(e) | fence
//! ```
//!
//! plus `Program` — a parallel composition of one command per thread.

use crate::expr::{BExpr, Expr, Var};
use tm_core::ids::Reg;

/// Primitive commands operating on local variables.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PComm {
    /// `l := e`
    Assign(Var, Expr),
    /// No-op (useful as an `else` branch).
    Nop,
}

/// Commands.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Com {
    Prim(PComm),
    Seq(Vec<Com>),
    If(BExpr, Box<Com>, Box<Com>),
    While(BExpr, Box<Com>),
    /// `l := atomic { C }` — `l` receives `COMMITTED` or `ABORTED`.
    Atomic(Var, Box<Com>),
    /// `l := x.read()`
    Read(Var, Reg),
    /// `x.write(e)`
    Write(Reg, Expr),
    Fence,
}

/// A program: one command per thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    pub threads: Vec<Com>,
    /// Number of local variables per thread (max index + 1).
    pub nvars: Vec<u16>,
    /// Number of registers (max index + 1).
    pub nregs: u32,
}

/// Structural errors caught at program construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// Nested `atomic` blocks are forbidden (Sec 2.1).
    NestedAtomic,
    /// `fence` may only be used outside transactions (Sec 2.1).
    FenceInsideAtomic,
}

impl Program {
    /// Build and validate a program.
    pub fn new(threads: Vec<Com>) -> Result<Program, ProgramError> {
        for c in &threads {
            check(c, false)?;
        }
        let nvars = threads
            .iter()
            .map(|c| max_var(c).map_or(0, |v| v + 1))
            .collect();
        let nregs = threads
            .iter()
            .filter_map(max_reg)
            .max()
            .map_or(0, |r| r + 1);
        Ok(Program {
            threads,
            nvars,
            nregs,
        })
    }

    pub fn nthreads(&self) -> usize {
        self.threads.len()
    }
}

fn check(c: &Com, in_atomic: bool) -> Result<(), ProgramError> {
    match c {
        Com::Prim(_) | Com::Read(..) | Com::Write(..) => Ok(()),
        Com::Seq(cs) => cs.iter().try_for_each(|c| check(c, in_atomic)),
        Com::If(_, a, b) => {
            check(a, in_atomic)?;
            check(b, in_atomic)
        }
        Com::While(_, body) => check(body, in_atomic),
        Com::Atomic(_, body) => {
            if in_atomic {
                return Err(ProgramError::NestedAtomic);
            }
            check(body, true)
        }
        Com::Fence => {
            if in_atomic {
                return Err(ProgramError::FenceInsideAtomic);
            }
            Ok(())
        }
    }
}

fn max_var(c: &Com) -> Option<u16> {
    match c {
        Com::Prim(PComm::Assign(v, e)) => Some(v.0).max(e.max_var()),
        Com::Prim(PComm::Nop) => None,
        Com::Seq(cs) => cs.iter().filter_map(max_var).max(),
        Com::If(b, x, y) => b.max_var().max(max_var(x)).max(max_var(y)),
        Com::While(b, body) => b.max_var().max(max_var(body)),
        Com::Atomic(v, body) => Some(v.0).max(max_var(body)),
        Com::Read(v, _) => Some(v.0),
        Com::Write(_, e) => e.max_var(),
        Com::Fence => None,
    }
}

fn max_reg(c: &Com) -> Option<u32> {
    match c {
        Com::Prim(_) | Com::Fence => None,
        Com::Seq(cs) => cs.iter().filter_map(max_reg).max(),
        Com::If(_, x, y) => max_reg(x).max(max_reg(y)),
        Com::While(_, body) => max_reg(body),
        Com::Atomic(_, body) => max_reg(body),
        Com::Read(_, x) | Com::Write(x, _) => Some(x.0),
    }
}

// ---- Builder helpers. ----

pub fn assign(l: Var, e: Expr) -> Com {
    Com::Prim(PComm::Assign(l, e))
}
pub fn nop() -> Com {
    Com::Prim(PComm::Nop)
}
pub fn seq(cs: impl IntoIterator<Item = Com>) -> Com {
    Com::Seq(cs.into_iter().collect())
}
pub fn if_(b: BExpr, then: Com, els: Com) -> Com {
    Com::If(b, Box::new(then), Box::new(els))
}
pub fn if_then(b: BExpr, then: Com) -> Com {
    if_(b, then, nop())
}
pub fn while_(b: BExpr, body: Com) -> Com {
    Com::While(b, Box::new(body))
}
/// `l := atomic { body… }`
pub fn atomic(l: Var, body: impl IntoIterator<Item = Com>) -> Com {
    Com::Atomic(l, Box::new(seq(body)))
}
pub fn read(l: Var, x: Reg) -> Com {
    Com::Read(l, x)
}
pub fn write(x: Reg, e: Expr) -> Com {
    Com::Write(x, e)
}
pub fn fence() -> Com {
    Com::Fence
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::*;

    #[test]
    fn build_fig1a_shape() {
        // Fig 1(a): thread 0 privatizes and writes non-transactionally.
        let l = Var(0);
        let xp = Reg(0);
        let x = Reg(1);
        let p = Program::new(vec![
            seq([
                atomic(l, [write(xp, cst(1))]),
                fence(),
                if_then(is_committed(l), write(x, cst(2))),
            ]),
            seq([atomic(
                Var(0),
                [
                    read(Var(1), xp),
                    if_then(eq(v(Var(1)), cst(0)), write(x, cst(42))),
                ],
            )]),
        ])
        .unwrap();
        assert_eq!(p.nthreads(), 2);
        assert_eq!(p.nvars, vec![1, 2]);
        assert_eq!(p.nregs, 2);
    }

    #[test]
    fn nested_atomic_rejected() {
        let p = Program::new(vec![atomic(Var(0), [atomic(Var(1), [nop()])])]);
        assert_eq!(p.unwrap_err(), ProgramError::NestedAtomic);
    }

    #[test]
    fn fence_inside_atomic_rejected() {
        let p = Program::new(vec![atomic(Var(0), [fence()])]);
        assert_eq!(p.unwrap_err(), ProgramError::FenceInsideAtomic);
    }

    #[test]
    fn fence_outside_atomic_ok() {
        assert!(Program::new(vec![seq([fence(), nop()])]).is_ok());
    }

    #[test]
    fn var_counting_counts_loop_and_branch_vars() {
        let p = Program::new(vec![seq([
            while_(eq(v(Var(3)), cst(0)), read(Var(3), Reg(0))),
            if_(ne(v(Var(5)), cst(1)), nop(), assign(Var(2), cst(9))),
        ])])
        .unwrap();
        assert_eq!(p.nvars, vec![6]);
    }
}
