//! Per-thread execution machine: runs the thread-local fragment of the
//! semantics of Fig 8 (control flow, primitive commands) and yields at each
//! *visible* operation (TM request, non-transactional access, or fence),
//! which the explorer then schedules.
//!
//! Local-variable roll-back on abort (the `eval` of A.2, which discards the
//! effects of actions inside aborted transactions) is implemented by
//! snapshotting locals and continuation at `txbegin` and restoring them when
//! the transaction aborts.

use crate::ast::{Com, PComm};
use crate::expr::{Var, ABORTED, COMMITTED};
use tm_core::action::PrimTag;
use tm_core::ids::{Reg, Value};

/// A continuation entry.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Task {
    Exec(Com),
    /// After a while-body finishes, re-test the condition.
    Loop(crate::expr::BExpr, Com),
    /// Marks the end of an atomic block: reaching it issues `txcommit`.
    EndAtomic,
}

/// What response the thread is waiting for, and what to do with it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Await {
    Begin,
    Read(Var),
    Write,
    Commit,
    Fence,
}

/// A visible operation the machine wants to perform next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VisOp {
    /// `txbegin` of `l := atomic {…}`.
    Begin,
    /// Read (transactional or not, depending on `in_txn`).
    Read(Var, Reg),
    /// Write of an evaluated *user* value.
    Write(Reg, u64),
    /// `txcommit`.
    Commit,
    /// `fence`.
    Fence,
}

/// Result of running local steps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NextVisible {
    Op(VisOp),
    /// The thread's command terminated.
    Done,
    /// Local step budget exceeded: a register-free infinite loop.
    LocalDivergence,
}

/// A primitive-action record produced while running locals: `(tag)` is
/// emitted as a `Prim` action by the caller.
pub type PrimRecord = PrimTag;

fn prim_tag(var: Var, value: Value) -> PrimTag {
    // var(16) | seq mod 2^16 (16) | user value (32): collision-free for
    // traces with < 2^16 writes, which is far beyond explorer limits.
    let user = value & 0xFFFF_FFFF;
    let seq = (value >> 32) & 0xFFFF;
    PrimTag((u64::from(var.0) << 48) | (seq << 32) | user)
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ThreadState {
    pub stack: Vec<Task>,
    pub locals: Vec<Value>,
    pub in_txn: bool,
    /// The variable receiving committed/aborted for the current atomic block.
    txn_result: Option<Var>,
    /// (locals, continuation) captured at txbegin, restored on abort.
    snapshot: Option<(Vec<Value>, Vec<Task>)>,
    pub awaiting: Option<Await>,
}

impl ThreadState {
    pub fn new(body: Com, nvars: u16) -> Self {
        ThreadState {
            stack: vec![Task::Exec(body)],
            locals: vec![0; nvars as usize],
            in_txn: false,
            txn_result: None,
            snapshot: None,
            awaiting: None,
        }
    }

    pub fn is_done(&self) -> bool {
        self.stack.is_empty() && self.awaiting.is_none()
    }

    /// Run local steps until a visible operation (returned *without* being
    /// submitted), termination, or the local step budget runs out. Assign
    /// effects are appended to `prims` for the caller to emit as actions.
    pub fn next_visible(&mut self, budget: u32, prims: &mut Vec<PrimRecord>) -> NextVisible {
        assert!(
            self.awaiting.is_none(),
            "cannot run while awaiting a response"
        );
        let mut steps = 0u32;
        loop {
            if steps >= budget {
                return NextVisible::LocalDivergence;
            }
            steps += 1;
            let Some(task) = self.stack.pop() else {
                return NextVisible::Done;
            };
            match task {
                Task::Exec(c) => match c {
                    Com::Prim(PComm::Nop) => {}
                    Com::Prim(PComm::Assign(l, e)) => {
                        let val = e.eval(&self.locals);
                        self.locals[l.0 as usize] = val; // user value, tag 0
                        prims.push(prim_tag(l, val));
                    }
                    Com::Seq(cs) => {
                        for c in cs.into_iter().rev() {
                            self.stack.push(Task::Exec(c));
                        }
                    }
                    Com::If(b, then, els) => {
                        let taken = if b.eval(&self.locals) { then } else { els };
                        self.stack.push(Task::Exec(*taken));
                    }
                    Com::While(b, body) => {
                        if b.eval(&self.locals) {
                            self.stack.push(Task::Loop(b, (*body).clone()));
                            self.stack.push(Task::Exec(*body));
                        }
                    }
                    Com::Atomic(l, body) => {
                        assert!(!self.in_txn, "nested atomic rejected at build time");
                        // Snapshot the continuation *after* the block.
                        self.snapshot = Some((self.locals.clone(), self.stack.clone()));
                        self.txn_result = Some(l);
                        // Queue body then the commit marker.
                        self.stack.push(Task::EndAtomic);
                        self.stack.push(Task::Exec(*body));
                        return NextVisible::Op(VisOp::Begin);
                    }
                    Com::Read(l, x) => return NextVisible::Op(VisOp::Read(l, x)),
                    Com::Write(x, e) => {
                        let user = e.eval(&self.locals);
                        return NextVisible::Op(VisOp::Write(x, user));
                    }
                    Com::Fence => {
                        assert!(!self.in_txn, "fence inside atomic rejected at build time");
                        return NextVisible::Op(VisOp::Fence);
                    }
                },
                Task::Loop(b, body) => {
                    if b.eval(&self.locals) {
                        self.stack.push(Task::Loop(b, body.clone()));
                        self.stack.push(Task::Exec(body));
                    }
                }
                Task::EndAtomic => return NextVisible::Op(VisOp::Commit),
            }
        }
    }

    /// Apply the result of a non-transactional (direct) read: `l := v`.
    pub fn apply_direct_read(&mut self, l: Var, v: Value, prims: &mut Vec<PrimRecord>) {
        debug_assert!(!self.in_txn);
        self.locals[l.0 as usize] = v;
        prims.push(prim_tag(l, v));
    }

    /// Record that the visible op was submitted and what we now await.
    pub fn submitted(&mut self, a: Await) {
        debug_assert!(self.awaiting.is_none());
        if a == Await::Begin {
            self.in_txn = true;
        }
        self.awaiting = Some(a);
    }

    /// Apply a TM response. Returns prim records to emit (e.g. `l := v`).
    pub fn apply_response(&mut self, resp: crate::oracle::Resp, prims: &mut Vec<PrimRecord>) {
        use crate::oracle::Resp;
        let a = self.awaiting.take().expect("no pending response");
        match (a, resp) {
            (Await::Begin, Resp::Ok) => { /* body already queued */ }
            (Await::Begin, Resp::Aborted) => self.abort_txn(prims),
            (Await::Read(l), Resp::Val(v)) => {
                self.locals[l.0 as usize] = v;
                prims.push(prim_tag(l, v));
            }
            (Await::Read(_), Resp::Aborted) => self.abort_txn(prims),
            (Await::Write, Resp::Unit) => {}
            (Await::Write, Resp::Aborted) => self.abort_txn(prims),
            (Await::Commit, Resp::Committed) => {
                let l = self.txn_result.take().expect("in atomic block");
                self.snapshot = None;
                self.in_txn = false;
                self.locals[l.0 as usize] = COMMITTED;
                prims.push(prim_tag(l, COMMITTED));
            }
            (Await::Commit, Resp::Aborted) => self.abort_txn(prims),
            (Await::Fence, Resp::FenceEnd) => {}
            (a, r) => panic!("response {r:?} does not match await {a:?}"),
        }
    }

    /// Abort handling: restore locals and continuation from the txbegin
    /// snapshot (local-variable roll-back per A.2), then store `ABORTED` in
    /// the result variable.
    fn abort_txn(&mut self, prims: &mut Vec<PrimRecord>) {
        let (locals, stack) = self.snapshot.take().expect("abort outside transaction");
        self.locals = locals;
        self.stack = stack;
        self.in_txn = false;
        let l = self.txn_result.take().expect("in atomic block");
        self.locals[l.0 as usize] = ABORTED;
        prims.push(prim_tag(l, ABORTED));
    }

    /// User-visible values of all locals (for outcome collection).
    pub fn user_locals(&self) -> Vec<u64> {
        self.locals.iter().map(|&v| crate::expr::user(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use crate::expr::*;
    use crate::oracle::Resp;

    fn run_to_op(ts: &mut ThreadState) -> NextVisible {
        let mut prims = Vec::new();
        ts.next_visible(10_000, &mut prims)
    }

    #[test]
    fn straight_line_locals() {
        let prog = seq([
            assign(Var(0), cst(5)),
            assign(Var(1), add(v(Var(0)), cst(2))),
        ]);
        let mut ts = ThreadState::new(prog, 2);
        let mut prims = Vec::new();
        assert_eq!(ts.next_visible(100, &mut prims), NextVisible::Done);
        assert_eq!(ts.user_locals(), vec![5, 7]);
        assert_eq!(prims.len(), 2);
    }

    #[test]
    fn if_branches() {
        let prog = if_(
            eq(v(Var(0)), cst(0)),
            assign(Var(1), cst(1)),
            assign(Var(1), cst(2)),
        );
        let mut ts = ThreadState::new(prog, 2);
        assert_eq!(run_to_op(&mut ts), NextVisible::Done);
        assert_eq!(ts.user_locals()[1], 1);
    }

    #[test]
    fn while_loop_terminates() {
        // while (l0 < 3) l0 := l0 + 1
        let prog = while_(
            lt(v(Var(0)), cst(3)),
            assign(Var(0), add(v(Var(0)), cst(1))),
        );
        let mut ts = ThreadState::new(prog, 1);
        assert_eq!(run_to_op(&mut ts), NextVisible::Done);
        assert_eq!(ts.user_locals()[0], 3);
    }

    #[test]
    fn pure_local_infinite_loop_detected() {
        let prog = while_(BExpr::Const(true), nop());
        let mut ts = ThreadState::new(prog, 0);
        assert_eq!(run_to_op(&mut ts), NextVisible::LocalDivergence);
    }

    #[test]
    fn read_yields_visible_op() {
        let prog = read(Var(0), Reg(3));
        let mut ts = ThreadState::new(prog, 1);
        assert_eq!(
            run_to_op(&mut ts),
            NextVisible::Op(VisOp::Read(Var(0), Reg(3)))
        );
        assert!(!ts.in_txn);
    }

    #[test]
    fn write_evaluates_user_value() {
        let prog = seq([
            assign(Var(0), cst(6)),
            write(Reg(1), add(v(Var(0)), cst(1))),
        ]);
        let mut ts = ThreadState::new(prog, 1);
        assert_eq!(run_to_op(&mut ts), NextVisible::Op(VisOp::Write(Reg(1), 7)));
    }

    #[test]
    fn atomic_commit_path() {
        let l = Var(0);
        let prog = atomic(l, [write(Reg(0), cst(1))]);
        let mut ts = ThreadState::new(prog, 1);
        assert_eq!(run_to_op(&mut ts), NextVisible::Op(VisOp::Begin));
        ts.submitted(Await::Begin);
        assert!(ts.in_txn);
        let mut prims = Vec::new();
        ts.apply_response(Resp::Ok, &mut prims);
        assert_eq!(run_to_op(&mut ts), NextVisible::Op(VisOp::Write(Reg(0), 1)));
        ts.submitted(Await::Write);
        ts.apply_response(Resp::Unit, &mut prims);
        assert_eq!(run_to_op(&mut ts), NextVisible::Op(VisOp::Commit));
        ts.submitted(Await::Commit);
        ts.apply_response(Resp::Committed, &mut prims);
        assert!(!ts.in_txn);
        assert_eq!(run_to_op(&mut ts), NextVisible::Done);
        assert_eq!(ts.user_locals()[0], COMMITTED);
    }

    #[test]
    fn abort_rolls_back_locals_and_skips_body() {
        let l = Var(0);
        // l1 := 10; l1 := atomic { l1 := 99; read... } — abort at the read.
        let prog = seq([
            assign(Var(1), cst(10)),
            atomic(
                l,
                [
                    assign(Var(1), cst(99)),
                    read(Var(1), Reg(0)),
                    write(Reg(0), cst(5)),
                ],
            ),
        ]);
        let mut ts = ThreadState::new(prog, 2);
        assert_eq!(run_to_op(&mut ts), NextVisible::Op(VisOp::Begin));
        ts.submitted(Await::Begin);
        let mut prims = Vec::new();
        ts.apply_response(Resp::Ok, &mut prims);
        // Body runs: l1 := 99, then the read becomes visible.
        assert_eq!(
            run_to_op(&mut ts),
            NextVisible::Op(VisOp::Read(Var(1), Reg(0)))
        );
        assert_eq!(ts.user_locals()[1], 99);
        ts.submitted(Await::Read(Var(1)));
        ts.apply_response(Resp::Aborted, &mut prims);
        // Rolled back: l1 back to 10, result var = ABORTED, body skipped.
        assert_eq!(ts.user_locals()[1], 10);
        assert_eq!(ts.user_locals()[0], ABORTED);
        assert!(!ts.in_txn);
        assert_eq!(run_to_op(&mut ts), NextVisible::Done);
    }

    #[test]
    fn abort_at_begin() {
        let l = Var(0);
        let prog = atomic(l, [write(Reg(0), cst(1))]);
        let mut ts = ThreadState::new(prog, 1);
        assert_eq!(run_to_op(&mut ts), NextVisible::Op(VisOp::Begin));
        ts.submitted(Await::Begin);
        let mut prims = Vec::new();
        ts.apply_response(Resp::Aborted, &mut prims);
        assert_eq!(ts.user_locals()[0], ABORTED);
        assert_eq!(run_to_op(&mut ts), NextVisible::Done);
    }

    #[test]
    fn fence_visible() {
        let prog = fence();
        let mut ts = ThreadState::new(prog, 0);
        assert_eq!(run_to_op(&mut ts), NextVisible::Op(VisOp::Fence));
        ts.submitted(Await::Fence);
        let mut prims = Vec::new();
        ts.apply_response(Resp::FenceEnd, &mut prims);
        assert_eq!(run_to_op(&mut ts), NextVisible::Done);
    }
}
