//! # tm-lang — the paper's programming language, made executable
//!
//! Implements Sec 2 and Appendix A of *Safe Privatization in Transactional
//! Memory* (Khyzha et al., PPoPP 2018):
//!
//! * [`ast`]/[`expr`] — the command language `C ::= c | C;C | if | while |
//!   l := atomic {C} | l := x.read() | x.write(e) | fence` with thread-local
//!   variables (Sec 2.1);
//! * [`machine`] — the thread-local small-step semantics of Fig 8, with
//!   local-variable roll-back on abort (A.2);
//! * [`oracle`] — the TM interface at micro-step granularity, plus three
//!   implementations:
//!   [`atomic_oracle::AtomicOracle`] (the idealized strongly atomic TM of
//!   Sec 2.4), [`tl2_spec::Tl2Spec`] (a fine-grained executable TL2, Fig 9),
//!   and [`glock_oracle::GlockOracle`] (a single-global-lock TM);
//! * [`explorer`] — systematic schedule exploration: terminal outcomes with
//!   divergence/deadlock detection, and full trace enumeration feeding the
//!   `tm-core` checkers (DRF, strong opacity, the Fundamental Property).
//!
//! Non-transactional accesses are uninstrumented single memory accesses, so
//! the TL2 model exhibits the paper's delayed-commit and doomed-transaction
//! anomalies precisely where a real weakly atomic STM would.

pub mod ast;
pub mod atomic_oracle;
pub mod explorer;
pub mod expr;
pub mod glock_oracle;
pub mod graph_updates;
pub mod machine;
pub mod oracle;
pub mod tl2_spec;
pub mod undo_spec;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::ast::{
        assign, atomic, fence, if_, if_then, nop, read, seq, while_, write, Com, Program,
    };
    pub use crate::atomic_oracle::AtomicOracle;
    pub use crate::explorer::{
        explore_outcomes, explore_traces, ExploreResult, Limits, Outcome, PathStatus,
    };
    pub use crate::expr::{
        add, and, cst, eq, is_committed, le, lt, ne, not, or, sub, v, Var, ABORTED, COMMITTED,
    };
    pub use crate::glock_oracle::GlockOracle;
    pub use crate::oracle::{Oracle, Req, Resp};
    pub use crate::tl2_spec::{ImplicitFence, Tl2Config, Tl2Spec};
    pub use crate::undo_spec::UndoSpec;
}
