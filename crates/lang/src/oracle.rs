//! The TM oracle interface: how the explorer drives a TM implementation at
//! micro-step granularity.
//!
//! A thread submits a request (txbegin / transactional read / write /
//! txcommit / fence); the oracle then advances that request through
//! *micro-steps*, each corresponding to one shared-memory access of the TM
//! algorithm. The scheduler interleaves micro-steps of different threads
//! freely, which is what lets weakly atomic anomalies (delayed commit, doomed
//! transactions) manifest in the model exactly as they do in a real STM.
//!
//! Non-transactional accesses are *uninstrumented* single accesses
//! ([`Oracle::direct_read`]/[`Oracle::direct_write`]): they bypass all TM
//! metadata, matching the paper's setting where such accesses are not
//! instrumented (Sec 1).

use tm_core::ids::{Reg, Value};

/// A request submitted by a thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Req {
    /// `txbegin`.
    Begin,
    /// Transactional `x.read()`.
    Read(Reg),
    /// Transactional `x.write(v)` (value already uniqueness-tagged).
    Write(Reg, Value),
    /// `txcommit`.
    Commit,
    /// `fence` begin.
    FenceBegin,
}

/// A response completing a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resp {
    /// `ok` (txbegin succeeded).
    Ok,
    /// `aborted` (any transactional request may be answered this way).
    Aborted,
    /// `ret(v)` for a read.
    Val(Value),
    /// `ret(⊥)` for a write.
    Unit,
    /// `committed`.
    Committed,
    /// `fend`.
    FenceEnd,
}

/// A TM implementation driven at micro-step granularity.
///
/// Implementations must be `Clone + Eq + Hash`: the explorer snapshots oracle
/// state when branching and memoizes visited states.
pub trait Oracle: Clone + Eq + std::hash::Hash {
    /// May thread `t` start a new visible operation now? The strongly atomic
    /// oracle answers `false` for every other thread while a transaction is
    /// open — that is what makes its histories non-interleaved.
    fn can_submit(&self, t: usize) -> bool;

    /// Submit a request for thread `t`. Must only be called when `t` has no
    /// pending request and `can_submit(t)`.
    fn submit(&mut self, t: usize, req: Req);

    /// Number of distinct outcomes thread `t`'s next micro-step can have.
    /// `0` means the thread is blocked (e.g. waiting on a lock or a fence).
    /// `> 1` exposes TM-internal nondeterminism (e.g. spurious aborts) to the
    /// explorer, which branches over each choice.
    fn step_choices(&self, t: usize) -> u32;

    /// Advance thread `t`'s pending request by one micro-step, taking the
    /// given choice. Returns `Some(resp)` when the request completes.
    fn step(&mut self, t: usize, choice: u32) -> Option<Resp>;

    /// Uninstrumented non-transactional read: a single memory access.
    fn direct_read(&mut self, t: usize, x: Reg) -> Value;

    /// Uninstrumented non-transactional write: a single memory access.
    fn direct_write(&mut self, t: usize, x: Reg, v: Value);

    /// Current register contents (used for postconditions on final states).
    fn regs(&self) -> &[Value];

    /// Does thread `t` have a submitted, unanswered request?
    fn has_pending(&self, t: usize) -> bool;
}
