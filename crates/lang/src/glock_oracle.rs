//! A global-lock TM oracle: every atomic block runs under one global mutex.
//! Strongly atomic for DRF programs by construction (transactions are
//! serialized and never abort), at the price of zero concurrency — the
//! baseline "safe but slow" point in the design space.
//!
//! Non-transactional accesses remain uninstrumented: a racy program can still
//! observe a transaction's intermediate state, just as with a real
//! single-lock STM.

use crate::oracle::{Oracle, Req, Resp};
use tm_core::ids::{Reg, Value};

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GlockOracle {
    regs: Vec<Value>,
    lock_owner: Option<usize>,
    pending: Vec<Option<Req>>,
}

impl GlockOracle {
    pub fn new(nregs: u32, nthreads: usize) -> Self {
        GlockOracle {
            regs: vec![0; nregs as usize],
            lock_owner: None,
            pending: vec![None; nthreads],
        }
    }
}

impl Oracle for GlockOracle {
    fn can_submit(&self, _t: usize) -> bool {
        true
    }

    fn submit(&mut self, t: usize, req: Req) {
        debug_assert!(self.pending[t].is_none());
        self.pending[t] = Some(req);
    }

    fn step_choices(&self, t: usize) -> u32 {
        let Some(req) = self.pending[t] else { return 0 };
        match req {
            // Begin and fences wait for the lock to be free.
            Req::Begin | Req::FenceBegin => u32::from(self.lock_owner.is_none()),
            Req::Read(_) | Req::Write(..) | Req::Commit => 1,
        }
    }

    fn step(&mut self, t: usize, _choice: u32) -> Option<Resp> {
        let req = self.pending[t].take().expect("no pending request");
        match req {
            Req::Begin => {
                debug_assert!(self.lock_owner.is_none());
                self.lock_owner = Some(t);
                Some(Resp::Ok)
            }
            Req::Read(x) => {
                debug_assert_eq!(self.lock_owner, Some(t));
                Some(Resp::Val(self.regs[x.idx()]))
            }
            Req::Write(x, v) => {
                debug_assert_eq!(self.lock_owner, Some(t));
                self.regs[x.idx()] = v; // in place: commits are trivial
                Some(Resp::Unit)
            }
            Req::Commit => {
                debug_assert_eq!(self.lock_owner, Some(t));
                self.lock_owner = None;
                Some(Resp::Committed)
            }
            Req::FenceBegin => {
                // Lock free means no transaction is active: quiescent.
                debug_assert!(self.lock_owner.is_none());
                Some(Resp::FenceEnd)
            }
        }
    }

    fn direct_read(&mut self, _t: usize, x: Reg) -> Value {
        self.regs[x.idx()] // uninstrumented: ignores the lock
    }

    fn direct_write(&mut self, _t: usize, x: Reg, v: Value) {
        self.regs[x.idx()] = v;
    }

    fn regs(&self) -> &[Value] {
        &self.regs
    }

    fn has_pending(&self, t: usize) -> bool {
        self.pending[t].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialized_transactions() {
        let mut o = GlockOracle::new(1, 2);
        o.submit(0, Req::Begin);
        assert_eq!(o.step(0, 0), Some(Resp::Ok));
        o.submit(1, Req::Begin);
        assert_eq!(o.step_choices(1), 0, "t1 blocked while t0 holds the lock");
        o.submit(0, Req::Write(Reg(0), 0x1_0000_0001));
        o.step(0, 0);
        o.submit(0, Req::Commit);
        assert_eq!(o.step(0, 0), Some(Resp::Committed));
        assert_eq!(o.step_choices(1), 1);
        assert_eq!(o.step(1, 0), Some(Resp::Ok));
    }

    #[test]
    fn fence_waits_for_lock() {
        let mut o = GlockOracle::new(1, 2);
        o.submit(0, Req::Begin);
        o.step(0, 0);
        o.submit(1, Req::FenceBegin);
        assert_eq!(o.step_choices(1), 0);
        o.submit(0, Req::Commit);
        o.step(0, 0);
        assert_eq!(o.step(1, 0), Some(Resp::FenceEnd));
    }

    #[test]
    fn direct_access_bypasses_lock() {
        let mut o = GlockOracle::new(1, 2);
        o.submit(0, Req::Begin);
        o.step(0, 0);
        // Racy by definition, but must not block.
        o.direct_write(1, Reg(0), 0x2_0000_0009);
        assert_eq!(o.direct_read(1, Reg(0)), 0x2_0000_0009);
    }
}
