//! The idealized atomic TM oracle: transactions execute without interleaving
//! with other transactions or non-transactional accesses (Sec 2.4). Driving
//! programs against this oracle realizes the *strongly atomic semantics*
//! `[[P]](H_atomic, s)` — it is the reference against which DRF is checked
//! (Def 3.3 with `H = H_atomic`) and against which weak TMs are compared.

use crate::oracle::{Oracle, Req, Resp};
use tm_core::ids::{Reg, Value};

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AtomicOracle {
    regs: Vec<Value>,
    /// The thread whose transaction is currently open, with its write buffer.
    active: Option<(usize, Vec<(Reg, Value)>)>,
    pending: Vec<Option<Req>>,
    /// Offer spurious abort branches at txbegin and txcommit. `H_atomic`
    /// permits transactions to abort at any time; exploring the abort
    /// branches makes DRF checking complete for programs that behave
    /// differently on abort paths.
    spurious_aborts: bool,
}

impl AtomicOracle {
    pub fn new(nregs: u32, nthreads: usize, spurious_aborts: bool) -> Self {
        AtomicOracle {
            regs: vec![0; nregs as usize],
            active: None,
            pending: vec![None; nthreads],
            spurious_aborts,
        }
    }

    fn buffered(&self, x: Reg) -> Option<Value> {
        let (_, ws) = self.active.as_ref()?;
        ws.iter().rev().find(|(y, _)| *y == x).map(|&(_, v)| v)
    }
}

impl Oracle for AtomicOracle {
    fn can_submit(&self, t: usize) -> bool {
        match &self.active {
            None => true,
            Some((owner, _)) => *owner == t,
        }
    }

    fn submit(&mut self, t: usize, req: Req) {
        debug_assert!(self.pending[t].is_none());
        debug_assert!(self.can_submit(t));
        self.pending[t] = Some(req);
    }

    fn step_choices(&self, t: usize) -> u32 {
        let Some(req) = self.pending[t] else { return 0 };
        match req {
            Req::Begin => {
                if self.active.is_none() {
                    if self.spurious_aborts {
                        2
                    } else {
                        1
                    }
                } else {
                    0 // wait until the open transaction completes
                }
            }
            Req::Read(_) | Req::Write(..) => 1,
            Req::Commit => {
                if self.spurious_aborts {
                    2
                } else {
                    1
                }
            }
            Req::FenceBegin => {
                if self.active.is_none() {
                    1
                } else {
                    0
                }
            }
        }
    }

    fn step(&mut self, t: usize, choice: u32) -> Option<Resp> {
        let req = self.pending[t].take().expect("no pending request");
        match req {
            Req::Begin => {
                debug_assert!(self.active.is_none());
                if choice == 1 {
                    return Some(Resp::Aborted);
                }
                self.active = Some((t, Vec::new()));
                Some(Resp::Ok)
            }
            Req::Read(x) => {
                debug_assert_eq!(self.active.as_ref().map(|a| a.0), Some(t));
                let v = self.buffered(x).unwrap_or(self.regs[x.idx()]);
                Some(Resp::Val(v))
            }
            Req::Write(x, v) => {
                debug_assert_eq!(self.active.as_ref().map(|a| a.0), Some(t));
                self.active.as_mut().unwrap().1.push((x, v));
                Some(Resp::Unit)
            }
            Req::Commit => {
                let (owner, ws) = self.active.take().expect("commit with no open txn");
                debug_assert_eq!(owner, t);
                if choice == 1 {
                    return Some(Resp::Aborted); // buffered writes discarded
                }
                for (x, v) in ws {
                    self.regs[x.idx()] = v;
                }
                Some(Resp::Committed)
            }
            Req::FenceBegin => {
                debug_assert!(self.active.is_none());
                Some(Resp::FenceEnd)
            }
        }
    }

    fn direct_read(&mut self, _t: usize, x: Reg) -> Value {
        debug_assert!(self.active.is_none(), "gated by can_submit");
        self.regs[x.idx()]
    }

    fn direct_write(&mut self, _t: usize, x: Reg, v: Value) {
        debug_assert!(self.active.is_none(), "gated by can_submit");
        self.regs[x.idx()] = v;
    }

    fn regs(&self) -> &[Value] {
        &self.regs
    }

    fn has_pending(&self, t: usize) -> bool {
        self.pending[t].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_blocks_others() {
        let mut o = AtomicOracle::new(2, 2, false);
        o.submit(0, Req::Begin);
        assert_eq!(o.step(0, 0), Some(Resp::Ok));
        assert!(!o.can_submit(1));
        assert!(o.can_submit(0));
        o.submit(0, Req::Commit);
        assert_eq!(o.step(0, 0), Some(Resp::Committed));
        assert!(o.can_submit(1));
    }

    #[test]
    fn write_buffering_and_own_reads() {
        let mut o = AtomicOracle::new(1, 1, false);
        o.submit(0, Req::Begin);
        o.step(0, 0);
        o.submit(0, Req::Write(Reg(0), 0x1_0000_0001));
        assert_eq!(o.step(0, 0), Some(Resp::Unit));
        // Registers untouched until commit.
        assert_eq!(o.regs()[0], 0);
        o.submit(0, Req::Read(Reg(0)));
        assert_eq!(o.step(0, 0), Some(Resp::Val(0x1_0000_0001)));
        o.submit(0, Req::Commit);
        assert_eq!(o.step(0, 0), Some(Resp::Committed));
        assert_eq!(o.regs()[0], 0x1_0000_0001);
    }

    #[test]
    fn abort_discards_writes() {
        let mut o = AtomicOracle::new(1, 1, true);
        o.submit(0, Req::Begin);
        assert_eq!(o.step_choices(0), 2);
        o.step(0, 0);
        o.submit(0, Req::Write(Reg(0), 0x1_0000_0007));
        o.step(0, 0);
        o.submit(0, Req::Commit);
        assert_eq!(o.step(0, 1), Some(Resp::Aborted));
        assert_eq!(o.regs()[0], 0);
    }

    #[test]
    fn spurious_abort_at_begin() {
        let mut o = AtomicOracle::new(1, 1, true);
        o.submit(0, Req::Begin);
        assert_eq!(o.step(0, 1), Some(Resp::Aborted));
        assert!(o.active.is_none());
    }

    #[test]
    fn fence_immediate_when_no_txn() {
        let mut o = AtomicOracle::new(1, 2, false);
        o.submit(1, Req::FenceBegin);
        assert_eq!(o.step_choices(1), 1);
        assert_eq!(o.step(1, 0), Some(Resp::FenceEnd));
    }

    #[test]
    fn fence_blocked_while_txn_open() {
        let mut o = AtomicOracle::new(1, 2, false);
        o.submit(0, Req::Begin);
        o.step(0, 0);
        // A fence submitted earlier by t1 would block; here can_submit
        // already prevents submission, and step_choices would be 0.
        assert!(!o.can_submit(1));
    }
}
