//! A fine-grained executable specification of TL2 (paper Fig 9), driven at
//! one shared-memory access per micro-step so the explorer can interleave TM
//! internals with program actions. This granularity is what lets the model
//! exhibit the paper's anomalies:
//!
//! * **delayed commit** (Fig 1(a)): commit write-back is one micro-step per
//!   register, so a non-transactional write can land between a privatizing
//!   commit and a concurrent transaction's write-back;
//! * **doomed transactions** (Fig 1(b)): transactional reads fetch `reg[x]`
//!   directly and validate against versions, so an uninstrumented
//!   non-transactional write is visible to a doomed (zombie) transaction.
//!
//! Configuration covers the paper's correct design (explicit fences,
//! [`ImplicitFence::None`]) and two related designs used by experiments:
//! implicit post-commit quiescence ([`ImplicitFence::AfterEvery`], the
//! "fence after every transaction" regime of Yoo et al.), and the GCC libitm
//! bug class ([`ImplicitFence::SkipReadOnly`]): quiescence elided after
//! read-only transactions (paper Sec 1, \[43\]).
//!
//! Deviations from the paper's pseudocode, all documented in DESIGN.md:
//! * locks record their owner so read-set validation does not spuriously
//!   fail on self-held locks (classic TL2; unreachable in Fig 9's own code
//!   since reads of write-set registers short-circuit);
//! * per-register write-back (`reg[x] := v; ver[x] := wver; unlock`) is a
//!   single micro-step — anomalies live at register granularity;
//! * the committed/aborted response and the `active[t] := false` clear are
//!   one micro-step, which is equivalent for every observer (appendix C.2
//!   requires the response to precede the clear; merging preserves that).

use crate::oracle::{Oracle, Req, Resp};
use tm_core::ids::{Reg, Value};

/// Post-commit quiescence policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ImplicitFence {
    /// The paper's TL2: privatization safety comes from explicit fences.
    None,
    /// Quiesce after every committed transaction (safe, slow).
    AfterEvery,
    /// Quiesce only after transactions that wrote something — the GCC bug
    /// class: read-only transactions skip quiescence (Sec 1, \[43\]).
    SkipReadOnly,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Tl2Config {
    pub implicit_fence: ImplicitFence,
    /// Check the Fig 11 invariant subset after every micro-step (panics on
    /// violation; used by tests).
    pub check_invariants: bool,
}

impl Default for Tl2Config {
    fn default() -> Self {
        Tl2Config {
            implicit_fence: ImplicitFence::None,
            check_invariants: false,
        }
    }
}

/// Per-thread transaction metadata (Fig 9 lines 4–7).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
struct TxnMeta {
    rver: Option<u64>,
    rset: Vec<Reg>,
    /// Sorted by register; at most one entry per register (latest value).
    wset: Vec<(Reg, Value)>,
}

impl TxnMeta {
    fn reset(&mut self) {
        self.rver = None;
        self.rset.clear();
        self.wset.clear();
    }
    fn wset_lookup(&self, x: Reg) -> Option<Value> {
        self.wset
            .binary_search_by_key(&x, |&(r, _)| r)
            .ok()
            .map(|i| self.wset[i].1)
    }
    fn wset_upsert(&mut self, x: Reg, v: Value) {
        match self.wset.binary_search_by_key(&x, |&(r, _)| r) {
            Ok(i) => self.wset[i].1 = v,
            Err(i) => self.wset.insert(i, (x, v)),
        }
    }
    fn rset_insert(&mut self, x: Reg) {
        if let Err(i) = self.rset.binary_search(&x) {
            self.rset.insert(i, x);
        }
    }
}

/// The micro-step state machine for one in-flight request.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Op {
    BeginSetActive,
    BeginReadClock,
    /// Read satisfied from the write set (one local step).
    ReadLocal {
        x: Reg,
    },
    /// Fig 9 line 17: `ts1 := ver[x]`.
    ReadV1 {
        x: Reg,
    },
    /// line 18: `value := reg[x]`.
    ReadVal {
        x: Reg,
        ts1: u64,
    },
    /// line 19: `locked := lock[x].test()`.
    ReadLock {
        x: Reg,
        ts1: u64,
        val: Value,
    },
    /// line 20–23: `ts2 := ver[x]`, then validate.
    ReadV2 {
        x: Reg,
        ts1: u64,
        val: Value,
        locked: bool,
    },
    /// Buffer the write (line 27 of `write`).
    WriteBuf {
        x: Reg,
        v: Value,
    },
    /// Commit: acquiring lock for `wset[i]` (lines 11–18).
    CommitLock {
        i: usize,
    },
    /// Commit failure: releasing `wset[0..upto]`, then abort.
    CommitUnlockAbort {
        k: usize,
        upto: usize,
    },
    /// `wver := fetch_and_increment(clock) + 1` (line 19).
    CommitClock,
    /// Validate `rset[j]` (lines 20–26).
    CommitValidate {
        j: usize,
        wver: u64,
    },
    /// Write back `wset[k]` (lines 27–30, one step per register).
    CommitWriteback {
        k: usize,
        wver: u64,
    },
    /// Post-commit implicit quiescence (modelled TMs only).
    QuiesceSnap {
        u: usize,
        waits: Vec<bool>,
        commit: bool,
    },
    QuiesceWait {
        u: usize,
        waits: Vec<bool>,
        commit: bool,
    },
}

/// The TL2 specification oracle.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Tl2Spec {
    clock: u64,
    reg: Vec<Value>,
    ver: Vec<u64>,
    lock: Vec<Option<u16>>,
    active: Vec<bool>,
    /// True while a thread runs its post-commit implicit quiescence; such
    /// threads are skipped by *implicit* quiescence of others (avoids mutual
    /// waiting), but explicit fences still wait for their response.
    quiescing: Vec<bool>,
    txn: Vec<TxnMeta>,
    ops: Vec<Option<Op>>,
    cfg: Tl2Config,
}

impl Tl2Spec {
    pub fn new(nregs: u32, nthreads: usize, cfg: Tl2Config) -> Self {
        Tl2Spec {
            clock: 0,
            reg: vec![0; nregs as usize],
            ver: vec![0; nregs as usize],
            lock: vec![None; nregs as usize],
            active: vec![false; nthreads],
            quiescing: vec![false; nthreads],
            txn: (0..nthreads).map(|_| TxnMeta::default()).collect(),
            ops: vec![None; nthreads],
            cfg,
        }
    }

    fn locked_by_other(&self, x: Reg, t: usize) -> bool {
        self.lock[x.idx()].is_some_and(|o| o as usize != t)
    }

    /// Abort epilogue: reset metadata, clear the active flag, respond.
    fn finish_abort(&mut self, t: usize) -> Option<Resp> {
        self.txn[t].reset();
        self.active[t] = false;
        Some(Resp::Aborted)
    }

    /// Commit epilogue: either respond directly or start implicit quiescence.
    fn finish_commit(&mut self, t: usize) -> Option<Resp> {
        let wrote = !self.txn[t].wset.is_empty();
        let quiesce = match self.cfg.implicit_fence {
            ImplicitFence::None => false,
            ImplicitFence::AfterEvery => true,
            ImplicitFence::SkipReadOnly => wrote,
        };
        if quiesce {
            self.quiescing[t] = true;
            let n = self.active.len();
            self.ops[t] = Some(Op::QuiesceSnap {
                u: 0,
                waits: vec![false; n],
                commit: true,
            });
            None
        } else {
            self.txn[t].reset();
            self.active[t] = false;
            Some(Resp::Committed)
        }
    }

    #[cfg(test)]
    pub(crate) fn clock(&self) -> u64 {
        self.clock
    }

    /// Fig 11 invariant subset, checked after every micro-step when enabled.
    fn check_invariants(&self) {
        // INV.7b: all read timestamps are bounded by the clock.
        for (t, m) in self.txn.iter().enumerate() {
            if let Some(rv) = m.rver {
                assert!(
                    rv <= self.clock,
                    "INV.7b: rver[{t}]={rv} > clock={}",
                    self.clock
                );
            }
            // Threads with a read set have a read timestamp (INV.7d).
            if !m.rset.is_empty() {
                assert!(
                    m.rver.is_some(),
                    "INV.7d: rset nonempty but rver unset (t{t})"
                );
            }
        }
        for (x, &vx) in self.ver.iter().enumerate() {
            assert!(
                vx <= self.clock,
                "version ver[x{x}]={vx} > clock={}",
                self.clock
            );
        }
        // INV.8e analog: a held lock belongs to a thread currently committing
        // a write set containing that register.
        for (x, l) in self.lock.iter().enumerate() {
            if let Some(owner) = *l {
                let t = owner as usize;
                let committing = matches!(
                    self.ops[t],
                    Some(
                        Op::CommitLock { .. }
                            | Op::CommitUnlockAbort { .. }
                            | Op::CommitClock
                            | Op::CommitValidate { .. }
                            | Op::CommitWriteback { .. }
                    )
                );
                assert!(
                    committing,
                    "INV.8e: lock x{x} held by t{t} which is not committing"
                );
                assert!(
                    self.txn[t].wset.iter().any(|&(r, _)| r.idx() == x),
                    "INV.8e: lock x{x} held by t{t} but x not in its write set"
                );
            }
        }
        // INV.7a: while committing, rver < wver.
        for (t, op) in self.ops.iter().enumerate() {
            let wver = match op {
                Some(Op::CommitValidate { wver, .. }) | Some(Op::CommitWriteback { wver, .. }) => {
                    Some(*wver)
                }
                _ => None,
            };
            if let (Some(wv), Some(rv)) = (wver, self.txn[t].rver) {
                assert!(rv < wv, "INV.7a: rver[{t}]={rv} >= wver={wv}");
                assert!(wv <= self.clock, "INV.7b: wver={wv} > clock={}", self.clock);
            }
        }
    }
}

impl Oracle for Tl2Spec {
    fn can_submit(&self, _t: usize) -> bool {
        true
    }

    fn submit(&mut self, t: usize, req: Req) {
        debug_assert!(self.ops[t].is_none());
        self.ops[t] = Some(match req {
            Req::Begin => Op::BeginSetActive,
            Req::Read(x) => {
                if self.txn[t].wset_lookup(x).is_some() {
                    Op::ReadLocal { x }
                } else {
                    Op::ReadV1 { x }
                }
            }
            Req::Write(x, v) => Op::WriteBuf { x, v },
            Req::Commit => {
                if self.txn[t].wset.is_empty() {
                    Op::CommitClock
                } else {
                    Op::CommitLock { i: 0 }
                }
            }
            Req::FenceBegin => {
                let n = self.active.len();
                Op::QuiesceSnap {
                    u: 0,
                    waits: vec![false; n],
                    commit: false,
                }
            }
        });
    }

    fn step_choices(&self, t: usize) -> u32 {
        match &self.ops[t] {
            None => 0,
            Some(Op::QuiesceWait { u, waits, commit }) => {
                // Find the next slot we must wait for; blocked while the
                // current one is still active.
                let mut u = *u;
                while u < waits.len() {
                    let skip = u == t || !waits[u] || (*commit && self.quiescing[u]);
                    if !skip && self.active[u] {
                        return 0; // blocked on u
                    }
                    if !skip && !self.active[u] {
                        return 1; // observe u quiescent: one step
                    }
                    u += 1;
                }
                1 // nothing left to wait for: finishing step
            }
            Some(_) => 1,
        }
    }

    fn step(&mut self, t: usize, _choice: u32) -> Option<Resp> {
        let op = self.ops[t].take().expect("no pending op");
        let resp = match op {
            Op::BeginSetActive => {
                self.active[t] = true;
                self.ops[t] = Some(Op::BeginReadClock);
                None
            }
            Op::BeginReadClock => {
                self.txn[t].rver = Some(self.clock);
                Some(Resp::Ok)
            }
            Op::ReadLocal { x } => {
                let v = self.txn[t]
                    .wset_lookup(x)
                    .expect("read-local without wset entry");
                Some(Resp::Val(v))
            }
            Op::ReadV1 { x } => {
                let ts1 = self.ver[x.idx()];
                self.ops[t] = Some(Op::ReadVal { x, ts1 });
                None
            }
            Op::ReadVal { x, ts1 } => {
                let val = self.reg[x.idx()];
                self.ops[t] = Some(Op::ReadLock { x, ts1, val });
                None
            }
            Op::ReadLock { x, ts1, val } => {
                let locked = self.locked_by_other(x, t);
                self.ops[t] = Some(Op::ReadV2 {
                    x,
                    ts1,
                    val,
                    locked,
                });
                None
            }
            Op::ReadV2 {
                x,
                ts1,
                val,
                locked,
            } => {
                let ts2 = self.ver[x.idx()];
                let rver = self.txn[t].rver.expect("read before begin");
                if locked || ts1 != ts2 || rver < ts2 {
                    self.finish_abort(t)
                } else {
                    self.txn[t].rset_insert(x);
                    Some(Resp::Val(val))
                }
            }
            Op::WriteBuf { x, v } => {
                self.txn[t].wset_upsert(x, v);
                Some(Resp::Unit)
            }
            Op::CommitLock { i } => {
                let x = self.txn[t].wset[i].0;
                if self.lock[x.idx()].is_some() {
                    // trylock failed: release 0..i then abort.
                    if i == 0 {
                        self.finish_abort(t)
                    } else {
                        self.ops[t] = Some(Op::CommitUnlockAbort { k: 0, upto: i });
                        None
                    }
                } else {
                    self.lock[x.idx()] = Some(t as u16);
                    if i + 1 == self.txn[t].wset.len() {
                        self.ops[t] = Some(Op::CommitClock);
                    } else {
                        self.ops[t] = Some(Op::CommitLock { i: i + 1 });
                    }
                    None
                }
            }
            Op::CommitUnlockAbort { k, upto } => {
                let x = self.txn[t].wset[k].0;
                debug_assert_eq!(self.lock[x.idx()], Some(t as u16));
                self.lock[x.idx()] = None;
                if k + 1 == upto {
                    self.finish_abort(t)
                } else {
                    self.ops[t] = Some(Op::CommitUnlockAbort { k: k + 1, upto });
                    None
                }
            }
            Op::CommitClock => {
                self.clock += 1;
                let wver = self.clock;
                if self.txn[t].rset.is_empty() {
                    if self.txn[t].wset.is_empty() {
                        self.finish_commit(t)
                    } else {
                        self.ops[t] = Some(Op::CommitWriteback { k: 0, wver });
                        None
                    }
                } else {
                    self.ops[t] = Some(Op::CommitValidate { j: 0, wver });
                    None
                }
            }
            Op::CommitValidate { j, wver } => {
                let x = self.txn[t].rset[j];
                let bad = self.locked_by_other(x, t)
                    || self.txn[t].rver.expect("validate before begin") < self.ver[x.idx()];
                if bad {
                    let upto = self.txn[t].wset.len();
                    if upto == 0 {
                        self.finish_abort(t)
                    } else {
                        self.ops[t] = Some(Op::CommitUnlockAbort { k: 0, upto });
                        None
                    }
                } else if j + 1 == self.txn[t].rset.len() {
                    if self.txn[t].wset.is_empty() {
                        self.finish_commit(t)
                    } else {
                        self.ops[t] = Some(Op::CommitWriteback { k: 0, wver });
                        None
                    }
                } else {
                    self.ops[t] = Some(Op::CommitValidate { j: j + 1, wver });
                    None
                }
            }
            Op::CommitWriteback { k, wver } => {
                let (x, v) = self.txn[t].wset[k];
                self.reg[x.idx()] = v;
                self.ver[x.idx()] = wver;
                self.lock[x.idx()] = None;
                if k + 1 == self.txn[t].wset.len() {
                    self.finish_commit(t)
                } else {
                    self.ops[t] = Some(Op::CommitWriteback { k: k + 1, wver });
                    None
                }
            }
            Op::QuiesceSnap {
                u,
                mut waits,
                commit,
            } => {
                // One micro-step per scanned flag (Fig 7 lines 35–36).
                waits[u] = self.active[u];
                if u + 1 == waits.len() {
                    self.ops[t] = Some(Op::QuiesceWait {
                        u: 0,
                        waits,
                        commit,
                    });
                } else {
                    self.ops[t] = Some(Op::QuiesceSnap {
                        u: u + 1,
                        waits,
                        commit,
                    });
                }
                None
            }
            Op::QuiesceWait {
                mut u,
                waits,
                commit,
            } => {
                // Advance past slots that need no waiting or are quiescent.
                while u < waits.len() {
                    let skip = u == t || !waits[u] || (commit && self.quiescing[u]);
                    if skip || !self.active[u] {
                        u += 1;
                        continue;
                    }
                    break;
                }
                if u >= waits.len() {
                    if commit {
                        self.quiescing[t] = false;
                        self.txn[t].reset();
                        self.active[t] = false;
                        Some(Resp::Committed)
                    } else {
                        Some(Resp::FenceEnd)
                    }
                } else {
                    // Still waiting on slot u (step_choices guaranteed it is
                    // quiescent when this step was scheduled; re-store state).
                    self.ops[t] = Some(Op::QuiesceWait { u, waits, commit });
                    None
                }
            }
        };
        if self.cfg.check_invariants {
            self.check_invariants();
        }
        resp
    }

    fn direct_read(&mut self, _t: usize, x: Reg) -> Value {
        self.reg[x.idx()] // uninstrumented: no version or lock checks
    }

    fn direct_write(&mut self, _t: usize, x: Reg, v: Value) {
        self.reg[x.idx()] = v; // uninstrumented: does not bump the version
    }

    fn regs(&self) -> &[Value] {
        &self.reg
    }

    fn has_pending(&self, t: usize) -> bool {
        self.ops[t].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(o: &mut Tl2Spec, t: usize) -> Resp {
        loop {
            assert!(o.step_choices(t) > 0, "blocked");
            if let Some(r) = o.step(t, 0) {
                return r;
            }
        }
    }

    fn cfg_checked() -> Tl2Config {
        Tl2Config {
            implicit_fence: ImplicitFence::None,
            check_invariants: true,
        }
    }

    #[test]
    fn write_then_commit_updates_registers() {
        let mut o = Tl2Spec::new(2, 1, cfg_checked());
        o.submit(0, Req::Begin);
        assert_eq!(drive(&mut o, 0), Resp::Ok);
        o.submit(0, Req::Write(Reg(0), 0x1_0000_0005));
        assert_eq!(drive(&mut o, 0), Resp::Unit);
        assert_eq!(o.regs()[0], 0, "buffered until commit");
        o.submit(0, Req::Commit);
        assert_eq!(drive(&mut o, 0), Resp::Committed);
        assert_eq!(o.regs()[0], 0x1_0000_0005);
        assert_eq!(o.clock(), 1);
        assert!(!o.active[0]);
        assert!(o.lock.iter().all(Option::is_none));
    }

    #[test]
    fn read_own_write() {
        let mut o = Tl2Spec::new(1, 1, cfg_checked());
        o.submit(0, Req::Begin);
        drive(&mut o, 0);
        o.submit(0, Req::Write(Reg(0), 0x1_0000_0009));
        drive(&mut o, 0);
        o.submit(0, Req::Read(Reg(0)));
        assert_eq!(drive(&mut o, 0), Resp::Val(0x1_0000_0009));
    }

    #[test]
    fn stale_read_aborts() {
        let mut o = Tl2Spec::new(1, 2, cfg_checked());
        // t0 begins with rver = 0.
        o.submit(0, Req::Begin);
        drive(&mut o, 0);
        // t1 commits a write, advancing the clock and ver[x] to 1.
        o.submit(1, Req::Begin);
        drive(&mut o, 1);
        o.submit(1, Req::Write(Reg(0), 0x1_0000_0002));
        drive(&mut o, 1);
        o.submit(1, Req::Commit);
        assert_eq!(drive(&mut o, 1), Resp::Committed);
        // t0's read sees ver[x]=1 > rver=0: abort.
        o.submit(0, Req::Read(Reg(0)));
        assert_eq!(drive(&mut o, 0), Resp::Aborted);
    }

    #[test]
    fn read_of_locked_register_aborts() {
        let mut o = Tl2Spec::new(1, 2, cfg_checked());
        o.submit(0, Req::Begin);
        drive(&mut o, 0);
        // t1 starts committing a write to x0 and stops after acquiring the lock.
        o.submit(1, Req::Begin);
        drive(&mut o, 1);
        o.submit(1, Req::Write(Reg(0), 0x1_0000_0002));
        drive(&mut o, 1);
        o.submit(1, Req::Commit);
        assert!(o.step(1, 0).is_none()); // CommitLock: lock acquired
                                         // t0 reads x0: observes the lock and aborts.
        o.submit(0, Req::Read(Reg(0)));
        assert_eq!(drive(&mut o, 0), Resp::Aborted);
        // Let t1 finish.
        assert_eq!(drive(&mut o, 1), Resp::Committed);
    }

    #[test]
    fn lock_conflict_aborts_second_committer() {
        let mut o = Tl2Spec::new(1, 2, cfg_checked());
        for t in 0..2 {
            o.submit(t, Req::Begin);
            drive(&mut o, t);
            o.submit(t, Req::Write(Reg(0), 0x1_0000_0002 + t as u64));
            drive(&mut o, t);
        }
        o.submit(0, Req::Commit);
        assert!(o.step(0, 0).is_none()); // t0 holds the lock
        o.submit(1, Req::Commit);
        assert_eq!(drive(&mut o, 1), Resp::Aborted); // trylock fails
        assert_eq!(drive(&mut o, 0), Resp::Committed);
    }

    #[test]
    fn doomed_read_sees_uninstrumented_write() {
        // The doomed-transaction ingredient: a direct write is visible to a
        // transactional read without a version bump, so validation passes.
        let mut o = Tl2Spec::new(1, 2, cfg_checked());
        o.submit(0, Req::Begin);
        drive(&mut o, 0);
        o.direct_write(1, Reg(0), 0x1_0000_0042);
        o.submit(0, Req::Read(Reg(0)));
        assert_eq!(drive(&mut o, 0), Resp::Val(0x1_0000_0042));
    }

    #[test]
    fn explicit_fence_waits_for_active_txn() {
        let mut o = Tl2Spec::new(1, 2, cfg_checked());
        o.submit(0, Req::Begin);
        drive(&mut o, 0);
        o.submit(1, Req::FenceBegin);
        // Snapshot scan: 2 steps.
        assert!(o.step(1, 0).is_none());
        assert!(o.step(1, 0).is_none());
        // Now waiting on t0.
        assert_eq!(o.step_choices(1), 0);
        // t0 commits (empty read/write sets).
        o.submit(0, Req::Commit);
        assert_eq!(drive(&mut o, 0), Resp::Committed);
        assert_eq!(drive(&mut o, 1), Resp::FenceEnd);
    }

    #[test]
    fn fence_ignores_later_txns() {
        let mut o = Tl2Spec::new(1, 2, cfg_checked());
        o.submit(1, Req::FenceBegin);
        assert!(o.step(1, 0).is_none());
        assert!(o.step(1, 0).is_none());
        // t0 begins after the snapshot: fence must not wait.
        o.submit(0, Req::Begin);
        drive(&mut o, 0);
        assert_eq!(drive(&mut o, 1), Resp::FenceEnd);
    }

    #[test]
    fn implicit_fence_after_writer_commit() {
        let cfg = Tl2Config {
            implicit_fence: ImplicitFence::AfterEvery,
            check_invariants: true,
        };
        let mut o = Tl2Spec::new(1, 2, cfg);
        // t1 opens a transaction that stays active.
        o.submit(1, Req::Begin);
        drive(&mut o, 1);
        // t0 commits a write: its commit must quiesce, i.e. block on t1.
        o.submit(0, Req::Begin);
        drive(&mut o, 0);
        o.submit(0, Req::Write(Reg(0), 0x1_0000_0002));
        drive(&mut o, 0);
        o.submit(0, Req::Commit);
        // Drive until blocked.
        while o.step_choices(0) > 0 {
            if o.step(0, 0).is_some() {
                panic!("commit completed without quiescing");
            }
        }
        // Unblock by completing t1.
        o.submit(1, Req::Commit);
        assert_eq!(drive(&mut o, 1), Resp::Committed);
        assert_eq!(drive(&mut o, 0), Resp::Committed);
    }

    #[test]
    fn skip_read_only_does_not_quiesce_ro_commit() {
        let cfg = Tl2Config {
            implicit_fence: ImplicitFence::SkipReadOnly,
            check_invariants: true,
        };
        let mut o = Tl2Spec::new(1, 2, cfg);
        // t1 stays active.
        o.submit(1, Req::Begin);
        drive(&mut o, 1);
        // t0 runs a read-only transaction: commit must NOT block (the bug).
        o.submit(0, Req::Begin);
        drive(&mut o, 0);
        o.submit(0, Req::Read(Reg(0)));
        drive(&mut o, 0);
        o.submit(0, Req::Commit);
        assert_eq!(drive(&mut o, 0), Resp::Committed);
    }

    #[test]
    fn read_only_commit_increments_clock_per_fig7() {
        let mut o = Tl2Spec::new(1, 1, cfg_checked());
        o.submit(0, Req::Begin);
        drive(&mut o, 0);
        o.submit(0, Req::Read(Reg(0)));
        drive(&mut o, 0);
        o.submit(0, Req::Commit);
        drive(&mut o, 0);
        assert_eq!(o.clock(), 1, "Fig 7 line 19 increments unconditionally");
    }
}
