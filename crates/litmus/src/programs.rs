//! The paper's example programs as litmus tests.
//!
//! Register map conventions: `XP = x0` is the guard flag (`x_is_private`,
//! inverted to `x_is_public` where the paper's initial value is `true`,
//! since registers start at 0), `X = x1` is the guarded data register.

use crate::{Litmus, DIVERGENCE_FORBIDDEN, DIVERGENCE_IGNORED};
use tm_core::ids::Reg;
use tm_lang::prelude::*;

pub const XP: Reg = Reg(0);
pub const X: Reg = Reg(1);

/// Fig 1(a) — the delayed commit problem.
///
/// ```text
/// t0: l := atomic { x_is_private := 1 }        t1: atomic { l1 := x_is_private
///     [fence]                                          if l1 == 0 { x := 42 } }
///     if l == committed { x := 1 }   // ν
/// ```
/// Postcondition: `l = committed ⇒ x = 1`.
pub fn fig1a(with_fence: bool) -> Litmus {
    let l = Var(0);
    let mut t0 = vec![atomic(l, [write(XP, cst(1))])];
    if with_fence {
        t0.push(fence());
    }
    t0.push(if_then(is_committed(l), write(X, cst(1))));

    let t1 = atomic(
        Var(0),
        [
            read(Var(1), XP),
            if_then(eq(v(Var(1)), cst(0)), write(X, cst(42))),
        ],
    );

    Litmus {
        name: if with_fence {
            "fig1a_fenced"
        } else {
            "fig1a_unfenced"
        },
        description: "Fig 1(a): privatization, delayed commit problem",
        program: Program::new(vec![seq(t0), t1]).unwrap(),
        postcondition: |o| !(o.locals[0][0] == COMMITTED && o.regs[X.idx()] != 1),
        divergence: DIVERGENCE_FORBIDDEN,
        expect_drf: with_fence,
    }
}

/// Fig 1(b) — the doomed transaction problem.
///
/// ```text
/// t0: l := atomic { x_is_private := 1 }        t1: atomic { l1 := x_is_private
///     [fence]                                          if l1 == 0 {
///     if l == committed { x := 1 }   // ν                 while (x == 1) {} } }
/// ```
/// Safety property: t1's loop terminates (no divergence). A doomed t1 that
/// observes ν's uninstrumented write spins forever.
pub fn fig1b(with_fence: bool) -> Litmus {
    let l = Var(0);
    let mut t0 = vec![atomic(l, [write(XP, cst(1))])];
    if with_fence {
        t0.push(fence());
    }
    t0.push(if_then(is_committed(l), write(X, cst(1))));

    let t1 = atomic(
        Var(0),
        [
            read(Var(1), XP),
            if_then(
                eq(v(Var(1)), cst(0)),
                seq([
                    read(Var(2), X),
                    while_(eq(v(Var(2)), cst(1)), read(Var(2), X)),
                ]),
            ),
        ],
    );

    Litmus {
        name: if with_fence {
            "fig1b_fenced"
        } else {
            "fig1b_unfenced"
        },
        description: "Fig 1(b): privatization, doomed transaction problem",
        program: Program::new(vec![seq(t0), t1]).unwrap(),
        postcondition: |_| true,
        divergence: DIVERGENCE_FORBIDDEN,
        expect_drf: with_fence,
    }
}

/// Fig 2 — publication.
///
/// The paper's `x_is_private` starts true; we use the inverted flag
/// `x_is_public` (register XP) starting at 0.
///
/// ```text
/// t0: x := 42            // ν, non-transactional
///     l1 := atomic { x_is_public := 1 }
/// t1: l2 := atomic { l3 := x_is_public; if l3 == 1 { l4 := x } }
/// ```
/// Postcondition: `l2 = committed ∧ l4 ≠ 0 ⇒ l4 = 42`.
pub fn fig2() -> Litmus {
    let t0 = seq([write(X, cst(42)), atomic(Var(0), [write(XP, cst(1))])]);
    let t1 = atomic(
        Var(0),
        [
            read(Var(1), XP),
            if_then(eq(v(Var(1)), cst(1)), read(Var(2), X)),
        ],
    );
    Litmus {
        name: "fig2_publication",
        description: "Fig 2: publication idiom",
        program: Program::new(vec![t0, t1]).unwrap(),
        postcondition: |o| {
            let l2 = o.locals[1][0];
            let l4 = o.locals[1][2];
            !(l2 == COMMITTED && l4 != 0 && l4 != 42)
        },
        divergence: DIVERGENCE_FORBIDDEN,
        expect_drf: true,
    }
}

/// Fig 3 — the racy program.
///
/// ```text
/// t0: l := atomic { x := 1; y := 2 }      t1: l1 := x; l2 := y   // both ν
/// ```
/// Postcondition: `x = l1 ⇒ y = l2` (the reads see none or all of T).
pub fn fig3(with_fence: bool) -> Litmus {
    let t0 = atomic(Var(0), [write(Reg(0), cst(1)), write(Reg(1), cst(2))]);
    let t1 = if with_fence {
        // "Inserting fences will not make it DRF" (Sec 3).
        seq([fence(), read(Var(0), Reg(0)), fence(), read(Var(1), Reg(1))])
    } else {
        seq([read(Var(0), Reg(0)), read(Var(1), Reg(1))])
    };
    Litmus {
        name: if with_fence {
            "fig3_fenced"
        } else {
            "fig3_racy"
        },
        description: "Fig 3: racy mixed access",
        program: Program::new(vec![t0, t1]).unwrap(),
        postcondition: |o| {
            let (l1, l2) = (o.locals[1][0], o.locals[1][1]);
            !(o.regs[0] == l1 && o.regs[1] != l2)
        },
        divergence: DIVERGENCE_FORBIDDEN,
        expect_drf: false,
    }
}

/// Fig 6 — privatization by agreement outside transactions.
///
/// ```text
/// t0: l1 := atomic { x := 42 }         t1: do { l2 := x_is_ready } while(!l2)
///     x_is_ready := 1   // ν                l3 := x    // ν''
/// ```
/// Postcondition: `l1 = committed ⇒ l3 = 42`. The spin loop diverges under
/// unfair schedules, so divergence is ignored (fairness assumption).
pub fn fig6() -> Litmus {
    let xr = XP; // x_is_ready
    let t0 = seq([atomic(Var(0), [write(X, cst(42))]), write(xr, cst(1))]);
    let t1 = seq([
        read(Var(0), xr),
        while_(eq(v(Var(0)), cst(0)), read(Var(0), xr)),
        read(Var(1), X),
    ]);
    Litmus {
        name: "fig6_agreement",
        description: "Fig 6: privatization by agreement outside transactions",
        program: Program::new(vec![t0, t1]).unwrap(),
        postcondition: |o| !(o.locals[0][0] == COMMITTED && o.locals[1][1] != 42),
        divergence: DIVERGENCE_IGNORED,
        expect_drf: true,
    }
}

/// Sec 2.2 — privatize, modify non-transactionally, publish back.
///
/// ```text
/// t0: l0 := atomic { x_is_private := 1 }
///     [fence]
///     if l0 == committed {
///         l1 := x; x := l1 + 5        // ν reads + writes
///         l2 := atomic { x_is_private := 0 }
///     }
/// t1: l0 := atomic { l1 := x_is_private
///                    if l1 == 0 { l2 := x; x := 42 } }
/// ```
/// Postcondition: if everything committed and the final value is 42, then t1
/// must have observed the privatized modification (it ran after publication).
pub fn privatize_modify_publish(with_fence: bool) -> Litmus {
    let mut t0 = vec![atomic(Var(0), [write(XP, cst(1))])];
    if with_fence {
        t0.push(fence());
    }
    t0.push(if_then(
        is_committed(Var(0)),
        seq([
            read(Var(1), X),
            write(X, add(v(Var(1)), cst(5))),
            atomic(Var(2), [write(XP, cst(0))]),
        ]),
    ));
    let t1 = atomic(
        Var(0),
        [
            read(Var(1), XP),
            if_then(
                eq(v(Var(1)), cst(0)),
                seq([read(Var(2), X), write(X, cst(42))]),
            ),
        ],
    );
    Litmus {
        name: if with_fence {
            "pmp_fenced"
        } else {
            "pmp_unfenced"
        },
        description: "Sec 2.2: privatize, modify non-transactionally, publish",
        program: Program::new(vec![seq(t0), t1]).unwrap(),
        postcondition: |o| {
            let t0_priv = o.locals[0][0];
            let t0_pub = o.locals[0][2];
            let t1_c = o.locals[1][0];
            let t1_seen = o.locals[1][2];
            if t0_priv == COMMITTED
                && t0_pub == COMMITTED
                && t1_c == COMMITTED
                && o.regs[X.idx()] == 42
            {
                // t1's write of 42 is final: t1 must have run after
                // publication, seeing the modified value (0+5 or 42+5).
                t1_seen == 5 || t1_seen == 47
            } else {
                true
            }
        },
        divergence: DIVERGENCE_FORBIDDEN,
        expect_drf: with_fence,
    }
}

/// The GCC libitm bug class (Sec 1, \[43\]): quiescence elided after read-only
/// transactions. Three threads:
///
/// ```text
/// t0 (A): atomic { x_is_private := 1 }                      // privatizer
/// t1 (B): l0 := atomic { l1 := x_is_private }  // READ-ONLY observer
///         [fence]  (only in the fenced variant)
///         if l1 == 1 { x := 7 }                // ν
/// t2 (C): atomic { l1 := x_is_private; if l1 == 0 { x := 42 } }
/// ```
/// Postcondition: `B committed ∧ B.l1 = 1 ⇒ x = 7` — C's delayed write-back
/// must not overwrite ν. Run against `ImplicitFence::{AfterEvery,
/// SkipReadOnly}` to reproduce the bug: the read-only observer's commit skips
/// quiescence, so C's write-back lands after ν.
pub fn gcc_bug(with_explicit_fence: bool) -> Litmus {
    let t0 = atomic(Var(0), [write(XP, cst(1))]);
    let mut t1 = vec![atomic(Var(0), [read(Var(1), XP)])];
    if with_explicit_fence {
        t1.push(fence());
    }
    t1.push(if_then(
        and(is_committed(Var(0)), eq(v(Var(1)), cst(1))),
        write(X, cst(7)),
    ));
    let t2 = atomic(
        Var(0),
        [
            read(Var(1), XP),
            if_then(eq(v(Var(1)), cst(0)), write(X, cst(42))),
        ],
    );
    Litmus {
        name: if with_explicit_fence {
            "gccbug_fenced"
        } else {
            "gccbug_unfenced"
        },
        description: "Read-only privatizing observer (GCC libitm bug class)",
        program: Program::new(vec![t0, seq(t1), t2]).unwrap(),
        postcondition: |o| {
            let b_committed = o.locals[1][0] == COMMITTED;
            let b_saw_private = o.locals[1][1] == 1;
            !(b_committed && b_saw_private && o.regs[X.idx()] != 7)
        },
        divergence: DIVERGENCE_FORBIDDEN,
        expect_drf: with_explicit_fence,
    }
}

/// All litmus tests in their canonical configurations.
pub fn all() -> Vec<Litmus> {
    vec![
        fig1a(false),
        fig1a(true),
        fig1b(false),
        fig1b(true),
        fig2(),
        fig3(false),
        fig3(true),
        fig6(),
        privatize_modify_publish(false),
        privatize_modify_publish(true),
        gcc_bug(false),
        gcc_bug(true),
    ]
}
