//! # tm-litmus — the paper's example programs as executable litmus tests
//!
//! Each [`Litmus`] bundles a program from the paper (Figs 1(a), 1(b), 2, 3,
//! 6, the Sec 2.2 privatize–modify–publish idiom, and the GCC read-only-
//! fence-elision bug class from Sec 1) with its postcondition, its
//! divergence policy, and its expected DRF verdict.
//!
//! The [`runner`] module evaluates a litmus against any TM configuration:
//! postcondition over all explored outcomes, divergence detection (the
//! doomed-transaction symptom), DRF checking under the strongly atomic
//! semantics (the programmer's side of the paper's contract, Theorem 5.3),
//! and strong-opacity spot checks of explored histories (the TM's side).
//!
//! The [`concrete`] module carries the same idioms over to the *runtime*
//! STMs of `tm-stm`: real threads, any storage backend, recorded histories,
//! deterministic final states — the substrate of the cross-backend
//! conformance suite.

pub mod concrete;
pub mod programs;
pub mod runner;

use tm_lang::explorer::Outcome;
use tm_lang::prelude::Program;

/// How to treat divergence (an infinite execution) for a litmus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Divergence {
    /// Divergence is a violation (e.g. a doomed transaction's zombie loop).
    Forbidden,
    /// Divergence is expected under unfair schedules (spin loops waiting for
    /// another thread); ignore it.
    Ignored,
}

pub const DIVERGENCE_FORBIDDEN: Divergence = Divergence::Forbidden;
pub const DIVERGENCE_IGNORED: Divergence = Divergence::Ignored;

/// A litmus test: a program plus its specification.
pub struct Litmus {
    pub name: &'static str,
    pub description: &'static str,
    pub program: Program,
    /// Must hold of every terminal outcome under strong atomicity — and, for
    /// DRF programs, under every correct TM (the Fundamental Property).
    pub postcondition: fn(&Outcome) -> bool,
    pub divergence: Divergence,
    /// Expected DRF verdict under the strongly atomic semantics.
    pub expect_drf: bool,
}

pub use runner::{check_drf_atomic, run, DrfReport, RunReport, TmKind};
