//! Concrete litmus scenarios for the *runtime* STMs (`tm-stm`), the
//! executable counterpart of the spec-level programs in
//! [`crate::programs`]: the same idioms — bank transfer, privatization,
//! publication — driven through the shared [`StmHandle`] interface on real
//! threads, against any storage backend, with optional history recording so
//! the `tm-core` checkers can pass verdicts on what actually ran.
//!
//! Every scenario is designed to have a *deterministic final state* under
//! any correct TM (transfer deltas commute; the privatization owner settles
//! the data register last, under privatization), so a conformance suite can
//! assert bit-identical outcomes across backends that schedule completely
//! differently.
//!
//! Histories must have globally unique, non-initial write values (Def A.1
//! clause 3 — that is how the checkers infer reads-from), so scenarios that
//! rewrite the same logical state tag every write with a unique nonce and
//! report the *projected* semantic state (e.g. the balance bits) as their
//! final registers.

use std::collections::VecDeque;
use std::sync::Arc;
use tm_core::hb::is_drf;
use tm_core::opacity::{check_strong_opacity, CheckOptions};
use tm_core::trace::History;
use tm_stm::prelude::*;
use tm_stm::runtime::{PolicyKind, Stm, StmConfig};

/// A runtime STM backend to drive a scenario against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// TL2 with one ownership record per register (GV1 clock).
    Tl2PerRegister,
    /// TL2 over a striped orec table.
    Tl2Striped {
        stripes: usize,
    },
    /// TL2 over the *adaptive* striped orec table, with a hair-trigger
    /// growth policy (start 1, threshold 5%, window 8) so generation
    /// rehashes actually happen mid-scenario: the resize machinery must be
    /// invisible to every correctness verdict.
    Tl2Adaptive,
    /// TL2 (per-register orecs) under an alternative version clock —
    /// the clock axis must be invisible to every correctness verdict.
    Tl2Clock {
        clock: ClockKind,
    },
    /// TL2 fully self-tuned: the contention governor owns the table
    /// (adaptive stripes with the shrink side armed) *and* the clock
    /// ([`ClockKind::Auto`], telemetry-driven GV1 ↔ GV5 handoffs). The
    /// governor may resize and switch disciplines mid-scenario; none of it
    /// may be visible to any correctness verdict.
    Tl2Auto,
    Norec,
    Glock,
}

impl Backend {
    pub const ALL: [Backend; 8] = [
        Backend::Tl2PerRegister,
        Backend::Tl2Striped { stripes: 8 },
        Backend::Tl2Adaptive,
        Backend::Tl2Clock {
            clock: ClockKind::Gv4,
        },
        Backend::Tl2Clock {
            clock: ClockKind::Gv5,
        },
        Backend::Tl2Auto,
        Backend::Norec,
        Backend::Glock,
    ];

    /// The growth policy [`Backend::Tl2Adaptive`] runs: deliberately
    /// aggressive, so conformance scenarios cross generation rehashes.
    pub fn adaptive_policy() -> AdaptivePolicy {
        AdaptivePolicy {
            start: 1,
            max: 64,
            threshold: 5,
            window: 8,
        }
    }

    pub fn label(&self) -> String {
        match self {
            Backend::Tl2PerRegister => "tl2/per-register".into(),
            Backend::Tl2Striped { stripes } => format!("tl2/striped-{stripes}"),
            Backend::Tl2Adaptive => "tl2/adaptive".into(),
            Backend::Tl2Clock { clock } => format!("tl2/{}", clock.label()),
            Backend::Tl2Auto => "tl2/auto".into(),
            Backend::Norec => "norec".into(),
            Backend::Glock => "glock".into(),
        }
    }

    /// Does this backend's `fence()` actually quiesce (and hence appear in
    /// recorded histories)? NOrec and the global lock are
    /// privatization-safe *without* fences (NOrec by value-based
    /// validation, glock because every transaction runs entirely under the
    /// lock — no zombies, no delayed commits); their histories carry no
    /// fence actions, so the paper's DRF discipline is not obliged to
    /// classify their privatizing runs as race-free.
    pub fn fences_are_real(&self) -> bool {
        !matches!(self, Backend::Norec | Backend::Glock)
    }

    /// Can two transactions be mid-body at the same time? False only for
    /// the global lock, where a transaction parked mid-body holds the lock
    /// and any concurrent transaction would deadlock against it. Scenarios
    /// that park a transaction to stage a conflict (MapRehash) skip the
    /// parked handshake on such backends — the same operations run, just
    /// without the forced overlap.
    pub fn txns_can_overlap(&self) -> bool {
        !matches!(self, Backend::Glock)
    }
}

/// A concrete scenario over `nregs()` registers and `nthreads()` threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// Unconditional ring transfers plus a running audit: purely
    /// transactional, so DRF for every backend.
    Bank,
    /// Flag-guarded privatize → fence → direct writes → publish cycles,
    /// settled by a final privatized write.
    Privatization,
    /// Fig 2: non-transactional payload write published by a transactional
    /// flag write; safe without fences via `xpo;txwr`.
    Publication,
    /// K threads privatize disjoint regions concurrently through *batched*
    /// asynchronous fences (`fence_async`): tickets issued in lockstep
    /// coalesce behind shared grace periods, guarded cross-traffic gives
    /// the fences something to wait out, and each thread settles its own
    /// region under a final privatization.
    EpochBatch,
    /// One writer stamps a whole register block per round; two read-only
    /// auditors repeatedly snapshot the block and demand a consistent
    /// round in every snapshot. The read-dominated shape that stresses
    /// read-path fast paths and the version-clock backends (a GV5 reader
    /// trails fresh stamps and must recover with one refresh).
    ReaderHeavy,
    /// The ROADMAP's *long-transaction* scenario: one transaction parks
    /// mid-body (on a side channel) while the owner privatizes and issues
    /// a fence around it. The fence — however it is driven, including by a
    /// background driver — must not retire its grace period while the
    /// straddling transaction is live, and the owner's post-fence direct
    /// writes settle the final state deterministically.
    LongTx,
    /// The ROADMAP's *map-rehash* scenario: a [`TxMap`] workload that
    /// forces the adaptive orec table to grow mid-traffic. One thread
    /// stages stripe-sharing conflicts each round (parking a reading
    /// transaction while the other thread commits a disjoint
    /// single-register bump — a guaranteed *false* conflict on a small
    /// stripe table) while both keep inserting fresh collision-free keys;
    /// it ends with a freeze + privatized snapshot. On
    /// [`Backend::Tl2Adaptive`] the forced false-conflict rate must
    /// publish at least one doubled generation.
    MapRehash,
    /// Reader/writer *handoff*: ownership of a two-register block
    /// alternates between a writer (privatize → fence → direct writes →
    /// publish) and a reader (guarded transactional snapshot → privatize →
    /// fence → direct reads → hand back), with a transactional flag
    /// carrying the phase in both directions. Both sides fence, so the
    /// discipline is exercised for reader-side privatization too.
    ReaderWriterHandoff,
    /// Bounded producer/consumer over the *typed* frontend: a
    /// `TVar<VecDeque<u64>>` queue where the producer blocks (via
    /// `Transaction::retry`) when the queue is full and the consumer
    /// blocks when it is empty — the handoff shape pure spinning cannot
    /// express. FIFO order, the item sum, and the item count are settled
    /// into plain registers after the run; displaced queue boxes flow
    /// through the grace engine's deferred reclamation on every backend.
    TVarQueue,
    /// The service harness's conformance scale: the same workload *shape*
    /// as `tm-service`'s sharded KV store (zipfian key popularity via
    /// `tm_service::Zipf`, the get/put/rmw/scan op mix via
    /// `tm_service::OpMix`), re-expressed over plain registers so every
    /// write can carry a per-attempt nonce and the history records
    /// cleanly. Two zipfian clients issue guarded mixed traffic into two
    /// register shards while an owner cycles privatize → fence →
    /// double-read scan → stamp → publish-back over them, then settles
    /// each shard under a final privatization.
    Service,
    /// The ROADMAP's *mixed publication-under-load* scenario: one writer
    /// repeatedly re-privatizes, rewrites, and republishes a payload
    /// (round 1 is the pure Fig 2 publication — fresh data, `xpo;txwr`,
    /// no fence; later rounds each cross a privatization fence) while two
    /// readers hammer the flag with guarded transactional snapshots. Any
    /// torn payload a reader observes under a published flag counts as
    /// lost.
    PubUnderLoad,
}

impl Scenario {
    pub const ALL: [Scenario; 11] = [
        Scenario::Bank,
        Scenario::Privatization,
        Scenario::Publication,
        Scenario::EpochBatch,
        Scenario::ReaderHeavy,
        Scenario::LongTx,
        Scenario::MapRehash,
        Scenario::ReaderWriterHandoff,
        Scenario::TVarQueue,
        Scenario::Service,
        Scenario::PubUnderLoad,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            Scenario::Bank => "bank",
            Scenario::Privatization => "privatization",
            Scenario::Publication => "publication",
            Scenario::EpochBatch => "epoch_batch",
            Scenario::ReaderHeavy => "reader_heavy",
            Scenario::LongTx => "long_tx",
            Scenario::MapRehash => "map_rehash",
            Scenario::ReaderWriterHandoff => "reader_writer_handoff",
            Scenario::TVarQueue => "tvar_queue",
            Scenario::Service => "service",
            Scenario::PubUnderLoad => "pub_under_load",
        }
    }

    pub fn nregs(&self) -> usize {
        match self {
            Scenario::Bank => BANK_ACCOUNTS,
            Scenario::Privatization | Scenario::Publication => 2,
            Scenario::EpochBatch => 2 * EB_THREADS,
            Scenario::ReaderHeavy => RH_REGS,
            Scenario::LongTx => 3,
            Scenario::MapRehash => MR_REGS,
            Scenario::ReaderWriterHandoff => 3,
            Scenario::TVarQueue => TQ_REGS,
            Scenario::Service => SV_REGS,
            Scenario::PubUnderLoad => 2,
        }
    }

    pub fn nthreads(&self) -> usize {
        match self {
            Scenario::Bank => 3,
            Scenario::Privatization
            | Scenario::Publication
            | Scenario::LongTx
            | Scenario::MapRehash
            | Scenario::ReaderWriterHandoff
            | Scenario::TVarQueue => 2,
            Scenario::EpochBatch => EB_THREADS,
            Scenario::ReaderHeavy => 1 + RH_READERS,
            // Owner + two zipfian clients / writer + two readers.
            Scenario::Service | Scenario::PubUnderLoad => 3,
        }
    }

    /// Does the scenario's history contain fence actions on fencing
    /// backends?
    pub fn uses_fences(&self) -> bool {
        matches!(
            self,
            Scenario::Privatization
                | Scenario::EpochBatch
                | Scenario::LongTx
                | Scenario::MapRehash
                | Scenario::ReaderWriterHandoff
                | Scenario::Service
                | Scenario::PubUnderLoad
        )
    }

    /// Can this scenario's workload satisfy Def A.1 clause 3 (globally
    /// unique, non-initial write values) in a recorded history?
    ///
    /// [`Scenario::MapRehash`] cannot: [`TxMap`] writes fixed encodings —
    /// key words (`key + KEY_BIAS`), tombstones, the freeze flag — that a
    /// retried attempt repeats verbatim, so under any abort the recorded
    /// history is structurally ill-formed whatever the TM did. The
    /// conformance suite runs it unrecorded (behavioral conformance only:
    /// deterministic finals, zero lost updates, identical across backends)
    /// and documents the exemption, like the NOrec/Glock fence exemption.
    ///
    /// [`Scenario::TVarQueue`] cannot either: the typed frontend's register
    /// writes are heap addresses — run-dependent values the checkers'
    /// reads-from inference (clause 3) cannot normalize — so it too runs
    /// unrecorded, asserting behavioral conformance only.
    ///
    /// [`Scenario::Service`] exists precisely to record what `tm-service`
    /// cannot (the full-scale harness writes `TxMap` encodings and typed
    /// heap addresses): the same workload shape over plain registers,
    /// every write — including the owner's privatized direct stamps —
    /// carrying a per-attempt nonce.
    pub fn records_cleanly(&self) -> bool {
        !matches!(self, Scenario::MapRehash | Scenario::TVarQueue)
    }
}

/// Everything one scenario run produces.
#[derive(Clone, Debug)]
pub struct ScenarioRun {
    pub backend: Backend,
    pub scenario: Scenario,
    /// Snapshot of every register after all threads joined.
    pub final_regs: Vec<u64>,
    /// Updates the scenario observed being lost (must be 0 for a correct TM).
    pub lost_updates: u64,
    /// The recorded history, when recording was requested *and* the
    /// scenario [`Scenario::records_cleanly`].
    pub history: Option<History>,
    /// Adaptive-table generations published during the run (`Some` only
    /// on [`Backend::Tl2Adaptive`] and [`Backend::Tl2Auto`]).
    pub stripe_resizes: Option<u64>,
}

/// Offline checker verdicts on a recorded history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckerVerdict {
    /// Well-formed per Def 2.1/A.1.
    pub well_formed: bool,
    /// Data-race free per Def 3.2.
    pub drf: bool,
    /// Strongly opaque with a verified witness — only checked for DRF
    /// histories (strong opacity quantifies over those, Def 4.2).
    pub opaque: Option<bool>,
}

/// Run the `tm-core` checkers over a recorded history.
pub fn check(history: &History) -> CheckerVerdict {
    let well_formed = history.validate().is_ok();
    if !well_formed {
        return CheckerVerdict {
            well_formed,
            drf: false,
            opaque: None,
        };
    }
    let drf = is_drf(history);
    let opaque = drf.then(|| check_strong_opacity(history, &CheckOptions::default()).is_ok());
    CheckerVerdict {
        well_formed,
        drf,
        opaque,
    }
}

/// Run `scenario` on `backend`, recording a history if `record`, under
/// the process default [`DriverMode`] (see [`DriverMode::from_env`]).
pub fn run_scenario(scenario: Scenario, backend: Backend, record: bool) -> ScenarioRun {
    run_scenario_mode(scenario, backend, record, DriverMode::from_env())
}

/// Run `scenario` on `backend` under an explicit grace-period
/// [`DriverMode`] — the conformance axis: every scenario must behave and
/// check out identically whether the engine is driven cooperatively or by
/// a runtime-owned background driver.
pub fn run_scenario_mode(
    scenario: Scenario,
    backend: Backend,
    record: bool,
    mode: DriverMode,
) -> ScenarioRun {
    let nregs = scenario.nregs();
    let nthreads = scenario.nthreads();
    let record = record && scenario.records_cleanly();
    let recorder = record.then(|| Arc::new(Recorder::new(nthreads)));
    let mut cfg = StmConfig::new(nregs, nthreads).grace_driver(mode);
    cfg.recorder = recorder.clone();
    let mut stripe_resizes = None;
    let (final_regs, lost_updates) = match backend {
        Backend::Tl2PerRegister => drive(scenario, &Tl2Stm::with_config(cfg), backend),
        Backend::Tl2Striped { stripes } => drive(
            scenario,
            &Tl2Stm::with_config(cfg.striped(stripes)),
            backend,
        ),
        Backend::Tl2Adaptive => {
            let stm = Tl2Stm::with_config(cfg.adaptive_stripes(Backend::adaptive_policy()));
            let out = drive(scenario, &stm, backend);
            stripe_resizes = Some(stm.stripe_resizes());
            out
        }
        Backend::Tl2Clock { clock } => {
            drive(scenario, &Tl2Stm::with_config(cfg.clock(clock)), backend)
        }
        Backend::Tl2Auto => {
            // The governed backend: same hair-trigger adaptive policy as
            // `Tl2Adaptive` (so the grow side still fires mid-scenario),
            // plus the auto clock — which arms shrink and lets the
            // governor switch disciplines under live traffic.
            let stm = Tl2Stm::with_config(
                cfg.adaptive_stripes(Backend::adaptive_policy())
                    .clock(ClockKind::Auto),
            );
            let out = drive(scenario, &stm, backend);
            stripe_resizes = Some(stm.stripe_resizes());
            out
        }
        Backend::Norec => drive(scenario, &NorecStm::with_config(cfg), backend),
        Backend::Glock => drive(scenario, &GlockStm::with_config(cfg), backend),
    };
    ScenarioRun {
        backend,
        scenario,
        final_regs,
        lost_updates,
        history: recorder.map(|r| r.snapshot_history()),
        stripe_resizes,
    }
}

fn drive<K: PolicyKind>(scenario: Scenario, stm: &Stm<K>, backend: Backend) -> (Vec<u64>, u64) {
    let lost = match scenario {
        Scenario::Bank => bank(stm),
        Scenario::Privatization => privatization(stm),
        Scenario::Publication => publication(stm),
        Scenario::EpochBatch => epoch_batch(stm),
        Scenario::ReaderHeavy => reader_heavy(stm),
        Scenario::LongTx => long_tx(stm, backend.fences_are_real()),
        Scenario::MapRehash => map_rehash(stm, backend.txns_can_overlap()),
        Scenario::ReaderWriterHandoff => reader_writer_handoff(stm),
        Scenario::TVarQueue => tvar_queue(stm),
        Scenario::Service => service(stm),
        Scenario::PubUnderLoad => pub_under_load(stm),
    };
    let final_regs = (0..scenario.nregs())
        .map(|x| project(scenario, x, stm.peek(x)))
        .collect();
    (final_regs, lost)
}

/// Project a raw register value to its semantic content (strip nonces).
fn project(scenario: Scenario, x: usize, v: u64) -> u64 {
    match scenario {
        Scenario::Bank => v & BAL_MASK,
        Scenario::Privatization if x == PRIV_FLAG => v & PRIV_PHASE_MASK,
        Scenario::Privatization | Scenario::Publication => v,
        // Even registers are region flags (keep the phase), odd are the
        // settled region data (keep the value).
        Scenario::EpochBatch if x.is_multiple_of(2) => v & EB_PHASE_MASK,
        Scenario::EpochBatch => v,
        // The round lives in the low bits; the rest is a per-write nonce.
        Scenario::ReaderHeavy => v & RH_ROUND_MASK,
        Scenario::LongTx if x == LT_FLAG => v & LT_PHASE_MASK,
        Scenario::LongTx if x == LT_SIDE => v & LT_SIDE_MASK,
        Scenario::LongTx => v,
        // The scratch registers carry per-attempt/per-round nonces whose
        // counts are backend-dependent (they exist to give the staged
        // conflict a write set and the bump a single-register commit);
        // everything else — map layout, freeze flag — is exact.
        Scenario::MapRehash if x == MR_SCRATCH || x == MR_SCRATCH_B => 0,
        Scenario::MapRehash => v,
        Scenario::ReaderWriterHandoff if x == RW_FLAG => v & RW_PHASE_MASK,
        Scenario::ReaderWriterHandoff => v,
        // The settle registers are exact; the typed register was reset to
        // the 0 sentinel when the `TypedStm` instance dropped.
        Scenario::TVarQueue => v,
        // Shard flags carry the phase under a nonce; settled shard data is
        // exact.
        Scenario::Service if x.is_multiple_of(SV_SHARD_REGS) => v & SV_PHASE_MASK,
        Scenario::Service => v,
        // The flag's semantic content is phase + round; the payload is
        // exact.
        Scenario::PubUnderLoad if x == PU_FLAG => v & PU_SEM_MASK,
        Scenario::PubUnderLoad => v,
    }
}

const BANK_ACCOUNTS: usize = 4;
const BANK_INIT: u64 = 1_000;
const BANK_ITERS: u64 = 12;
/// Balances live in the low bits; the rest of the word is a unique nonce
/// (Def A.1 clause 3 requires globally unique write values).
const BAL_MASK: u64 = (1 << 24) - 1;

#[inline]
fn bal(v: u64) -> u64 {
    v & BAL_MASK
}

#[inline]
fn with_nonce(balance: u64, nonce: u64) -> u64 {
    debug_assert!(balance <= BAL_MASK && nonce > 0);
    (nonce << 24) | balance
}

/// Expected deterministic final balances: thread `t` moves `BANK_ITERS`
/// units from account `t` to account `t + 1`.
pub fn bank_expected_finals() -> Vec<u64> {
    let mut regs = vec![BANK_INIT; BANK_ACCOUNTS];
    for t in 0..3 {
        regs[t] -= BANK_ITERS;
        regs[t + 1] += BANK_ITERS;
    }
    regs
}

fn bank<F: StmFactory>(stm: &F) -> u64 {
    {
        let mut h = stm.handle(0);
        h.atomic(|tx| {
            for a in 0..BANK_ACCOUNTS {
                tx.write(a, with_nonce(BANK_INIT, 1 + a as u64))?;
            }
            Ok(())
        });
    }
    std::thread::scope(|s| {
        for t in 0..3usize {
            let stm = stm.clone();
            s.spawn(move || {
                let mut h = stm.handle(t);
                let (from, to) = (t, t + 1);
                // Per-thread disjoint nonce space, above the init nonces.
                // Advanced *inside* the body: an aborted attempt's writes
                // stay in the history, so a retry may not repeat values.
                let mut nonce = 100 + ((t as u64 + 1) << 32);
                for i in 0..BANK_ITERS {
                    h.atomic(|tx| {
                        nonce += 2;
                        let a = bal(tx.read(from)?);
                        let b = bal(tx.read(to)?);
                        tx.write(from, with_nonce(a - 1, nonce))?;
                        tx.write(to, with_nonce(b + 1, nonce + 1))
                    });
                    // Transfers commute, so the audit sum is invariant in
                    // every consistent snapshot.
                    if i % 6 == 0 {
                        let sum = h.atomic(|tx| {
                            let mut s = 0u64;
                            for a in 0..BANK_ACCOUNTS {
                                s += bal(tx.read(a)?);
                            }
                            Ok(s)
                        });
                        assert_eq!(sum, BANK_INIT * BANK_ACCOUNTS as u64, "inconsistent audit");
                    }
                }
            });
        }
    });
    0
}

const PRIV_FLAG: usize = 0;
const PRIV_DATA: usize = 1;
const PRIV_ROUNDS: u64 = 6;
/// Low flag bits carry the phase (1 = privatized, 2 = open); the bits above
/// are a unique per-write nonce. `v_init = 0` reads as phase 0 = open.
const PRIV_PHASE_MASK: u64 = 3;
const PRIV_PRIVATE: u64 = 1;
const PRIV_OPEN: u64 = 2;
/// The value the owner settles the (still privatized) data register to.
pub const PRIV_FINAL: u64 = 0xF1A1;

/// Expected deterministic final registers: privatized (flag phase 1),
/// settled data.
pub fn privatization_expected_finals() -> Vec<u64> {
    vec![PRIV_PRIVATE, PRIV_FINAL]
}

fn privatization<F: StmFactory>(stm: &F) -> u64 {
    std::thread::scope(|s| {
        let owner = {
            let stm = stm.clone();
            s.spawn(move || {
                let mut h = stm.handle(0);
                let mut lost = 0u64;
                // Unique flag values per attempt (aborted attempts keep
                // their writes in the history).
                let mut flag_nonce = 0u64;
                let mut set_flag = |h: &mut F::Handle, phase: u64| {
                    h.atomic(|tx| {
                        flag_nonce += 1;
                        tx.write(PRIV_FLAG, (flag_nonce << 2) | phase)
                    });
                };
                for i in 1..=PRIV_ROUNDS {
                    set_flag(&mut h, PRIV_PRIVATE);
                    h.fence();
                    let marker = 0x4000_0000_0000_0000 | i;
                    h.write_direct(PRIV_DATA, marker);
                    if h.read_direct(PRIV_DATA) != marker {
                        lost += 1;
                    }
                    set_flag(&mut h, PRIV_OPEN);
                    h.fence();
                }
                // Settle: privatize once more and leave the data register at
                // a known value — guarded workers can never overwrite it.
                set_flag(&mut h, PRIV_PRIVATE);
                h.fence();
                h.write_direct(PRIV_DATA, PRIV_FINAL);
                lost
            })
        };
        {
            let stm = stm.clone();
            s.spawn(move || {
                let mut h = stm.handle(1);
                let mut data_nonce = 0x2000_0000_0000_0000u64;
                for _ in 0..2 * PRIV_ROUNDS {
                    h.atomic(|tx| {
                        data_nonce += 1;
                        let flag = tx.read(PRIV_FLAG)?;
                        if flag & PRIV_PHASE_MASK != PRIV_PRIVATE {
                            tx.write(PRIV_DATA, data_nonce)?;
                        }
                        Ok(())
                    });
                }
            });
        }
        owner.join().unwrap()
    })
}

const PUB_FLAG: usize = 0;
const PUB_DATA: usize = 1;
/// The published payload.
pub const PUB_PAYLOAD: u64 = 0xFEED;

/// Expected deterministic final registers: published flag, intact payload.
pub fn publication_expected_finals() -> Vec<u64> {
    vec![1, PUB_PAYLOAD]
}

fn publication<F: StmFactory>(stm: &F) -> u64 {
    std::thread::scope(|s| {
        let consumer = {
            let stm = stm.clone();
            s.spawn(move || {
                let mut h = stm.handle(1);
                loop {
                    let seen = h.atomic(|tx| {
                        if tx.read(PUB_FLAG)? != 0 {
                            Ok(Some(tx.read(PUB_DATA)?))
                        } else {
                            Ok(None)
                        }
                    });
                    if let Some(data) = seen {
                        return data;
                    }
                    std::thread::yield_now();
                }
            })
        };
        let mut h = stm.handle(0);
        h.write_direct(PUB_DATA, PUB_PAYLOAD); // ν: non-transactional
        h.atomic(|tx| tx.write(PUB_FLAG, 1)); // publish (xpo;txwr edge)
        let seen = consumer.join().unwrap();
        u64::from(seen != PUB_PAYLOAD)
    })
}

const EB_THREADS: usize = 3;
const EB_ROUNDS: u64 = 4;
/// Low flag bits carry the phase, mirroring the privatization scenario.
const EB_PHASE_MASK: u64 = 3;
const EB_PRIVATE: u64 = 1;
const EB_OPEN: u64 = 2;
/// Thread `t` settles its region's data register to `EB_SETTLE_BASE + t`.
pub const EB_SETTLE_BASE: u64 = 0xEB00;

/// Region `t`'s privatization flag register.
fn eb_flag(t: usize) -> usize {
    2 * t
}

/// Region `t`'s data register.
fn eb_data(t: usize) -> usize {
    2 * t + 1
}

/// Expected deterministic final registers: every region privatized (flag
/// phase 1) with settled data.
pub fn epoch_batch_expected_finals() -> Vec<u64> {
    (0..EB_THREADS)
        .flat_map(|t| [EB_PRIVATE, EB_SETTLE_BASE + t as u64])
        .collect()
}

/// K threads each own a disjoint region (flag + data register) and cycle
/// privatize → batched fence → direct write → publish, while also sending
/// guarded transactional traffic into every *other* region. Barriers keep
/// the rounds in lockstep so all K fence tickets of a round are issued in
/// the same open grace period — the batched path resolves them all on one
/// epoch-table scan. Each thread ends by privatizing its region once more
/// and settling the data register to a known value, so the final state is
/// deterministic under any correct TM.
///
/// Write-value uniqueness (Def A.1 clause 3) is by disjoint value spaces:
/// flag writes carry `(t+1) << 40`, guarded data writes `(t+1) << 48`,
/// direct markers bit 62, settle values live below 2^16; nonces advance
/// per *attempt* so aborted attempts never repeat a value.
fn epoch_batch<F: StmFactory>(stm: &F) -> u64 {
    use std::sync::Barrier;
    let privatize = Barrier::new(EB_THREADS);
    let issued = Barrier::new(EB_THREADS);
    std::thread::scope(|s| {
        let mut workers = Vec::new();
        for t in 0..EB_THREADS {
            let stm = stm.clone();
            let privatize = &privatize;
            let issued = &issued;
            workers.push(s.spawn(move || {
                let mut h = stm.handle(t);
                let tt = t as u64;
                let mut lost = 0u64;
                let mut flag_nonce = 0u64;
                let mut data_nonce = 0u64;
                for round in 1..=EB_ROUNDS {
                    // Lockstep privatization: every thread sets its flag and
                    // issues its fence ticket before any thread joins, so
                    // the K tickets coalesce behind one grace period.
                    privatize.wait();
                    h.atomic(|tx| {
                        flag_nonce += 1;
                        tx.write(
                            eb_flag(t),
                            ((tt + 1) << 40) | (flag_nonce << 2) | EB_PRIVATE,
                        )
                    });
                    let ticket = h.fence_async();
                    issued.wait();
                    h.fence_join(ticket);
                    // The region is private: uninstrumented access is safe.
                    let marker = (1u64 << 62) | (tt << 8) | round;
                    h.write_direct(eb_data(t), marker);
                    if h.read_direct(eb_data(t)) != marker {
                        lost += 1;
                    }
                    h.atomic(|tx| {
                        flag_nonce += 1;
                        tx.write(eb_flag(t), ((tt + 1) << 40) | (flag_nonce << 2) | EB_OPEN)
                    });
                    // Guarded cross-traffic into the other regions — the
                    // transactions the other threads' fences wait out.
                    for j in (0..EB_THREADS).filter(|&j| j != t) {
                        h.atomic(|tx| {
                            data_nonce += 1;
                            let flag = tx.read(eb_flag(j))?;
                            if flag & EB_PHASE_MASK != EB_PRIVATE {
                                tx.write(eb_data(j), ((tt + 1) << 48) | data_nonce)?;
                            }
                            Ok(())
                        });
                    }
                }
                // Settle: privatize once more and leave the data register at
                // a known value guarded writers can never overwrite.
                privatize.wait();
                h.atomic(|tx| {
                    flag_nonce += 1;
                    tx.write(
                        eb_flag(t),
                        ((tt + 1) << 40) | (flag_nonce << 2) | EB_PRIVATE,
                    )
                });
                let ticket = h.fence_async();
                issued.wait();
                h.fence_join(ticket);
                h.write_direct(eb_data(t), EB_SETTLE_BASE + tt);
                lost
            }));
        }
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    })
}

const RH_REGS: usize = 4;
const RH_READERS: usize = 2;
const RH_ROUNDS: u64 = 6;
const RH_READS: u64 = 20;
/// Rounds live in the low 16 bits; the bits above are a unique per-write
/// nonce (Def A.1 clause 3).
const RH_ROUND_MASK: u64 = (1 << 16) - 1;

/// Expected deterministic final registers: every register carries the last
/// round the writer stamped.
pub fn reader_heavy_expected_finals() -> Vec<u64> {
    vec![RH_ROUNDS; RH_REGS]
}

/// One writer stamps the whole block with the round number each round; two
/// read-only auditors snapshot the block `RH_READS` times each and demand
/// every snapshot shows one single round across all registers — the
/// read-mostly opacity workload. Auditors never write, so the final state
/// is the writer's last round, deterministically. Returns the number of
/// torn (mixed-round) snapshots observed: 0 for any opaque TM.
fn reader_heavy<F: StmFactory>(stm: &F) -> u64 {
    std::thread::scope(|s| {
        let mut auditors = Vec::new();
        for r in 0..RH_READERS {
            let stm = stm.clone();
            auditors.push(s.spawn(move || {
                let mut h = stm.handle(1 + r);
                let mut torn = 0u64;
                for _ in 0..RH_READS {
                    let rounds = h.atomic(|tx| {
                        let first = tx.read(0)? & RH_ROUND_MASK;
                        for x in 1..RH_REGS {
                            if tx.read(x)? & RH_ROUND_MASK != first {
                                return Ok(None);
                            }
                        }
                        Ok(Some(first))
                    });
                    if rounds.is_none() {
                        torn += 1;
                    }
                    std::thread::yield_now();
                }
                torn
            }));
        }
        let writer = {
            let stm = stm.clone();
            s.spawn(move || {
                let mut h = stm.handle(0);
                // Nonces advance per write *inside* the body: aborted
                // attempts keep their writes in the history, so a retry may
                // not repeat values.
                let mut nonce = 0u64;
                for round in 1..=RH_ROUNDS {
                    h.atomic(|tx| {
                        for x in 0..RH_REGS {
                            nonce += 1;
                            tx.write(x, (nonce << 16) | round)?;
                        }
                        Ok(())
                    });
                    std::thread::yield_now();
                }
            })
        };
        writer.join().unwrap();
        auditors.into_iter().map(|a| a.join().unwrap()).sum()
    })
}

const LT_FLAG: usize = 0;
const LT_DATA: usize = 1;
const LT_SIDE: usize = 2;
/// Low flag bits carry the phase, mirroring the privatization scenario.
const LT_PHASE_MASK: u64 = 3;
const LT_PRIVATE: u64 = 1;
/// The value the owner settles the privatized data register to.
pub const LT_FINAL: u64 = 0x17F1;
/// The semantic payload of the straddler's side-register write (low 16
/// bits; the bits above are a per-attempt nonce).
pub const LT_SIDE_MARK: u64 = 0x51DE;
const LT_SIDE_MASK: u64 = (1 << 16) - 1;

/// Expected deterministic final registers: privatized flag, owner-settled
/// data, straddler-written side register.
pub fn long_tx_expected_finals() -> Vec<u64> {
    vec![LT_PRIVATE, LT_FINAL, LT_SIDE_MARK]
}

/// The long-transaction scenario: a fence must not retire while a
/// transaction that was active at issue is still (slowly) running.
///
/// Shape: the owner privatizes `LT_DATA` (flag transaction) *first*; the
/// straddler then opens a transaction on the unprivatized `LT_SIDE`
/// register and parks mid-body on a side channel. The owner issues its
/// fence while the straddler is parked — so the straddling transaction
/// brackets the whole fence — and on quiescing backends asserts the
/// ticket stays unresolved (against every driver: cooperative pollers AND
/// the background driver must not retire the period early). Only then is
/// the straddler released; the joined fence guarantees its commit, after
/// which the owner settles `LT_DATA` directly.
///
/// Ordering discipline (why the owner's flag transaction commits before
/// the straddler begins): under the global-lock backend a transaction
/// parked mid-body holds the lock, so any later transaction by another
/// thread would deadlock against it — the scenario therefore does all its
/// transactional work on the owner *before* parking the straddler, which
/// also makes the straddler's flag read deterministic.
fn long_tx<F: StmFactory>(stm: &F, real_fences: bool) -> u64 {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    let stage = AtomicUsize::new(0);
    let go = AtomicBool::new(false);
    std::thread::scope(|s| {
        let straddler = {
            let stm = stm.clone();
            let stage = &stage;
            let go = &go;
            s.spawn(move || {
                // Begin only after the owner's flag transaction committed.
                while stage.load(Ordering::SeqCst) < 1 {
                    std::thread::yield_now();
                }
                let mut h = stm.handle(1);
                // Nonce advances per attempt: an aborted attempt's write
                // stays in the history and may not repeat its value.
                let mut nonce = 0u64;
                h.atomic(|tx| {
                    nonce += 1;
                    // Guarded read: the region is privatized, so the
                    // discipline routes this transaction to the side
                    // register only. Deterministic by the stage ordering.
                    let flag = tx.read(LT_FLAG)?;
                    assert_eq!(flag & LT_PHASE_MASK, LT_PRIVATE, "began before the flag?");
                    // Tell the owner we are mid-transaction…
                    stage.store(2, Ordering::SeqCst);
                    // …and stay there until released: the slow part the
                    // fence has to wait out.
                    while !go.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                    tx.write(LT_SIDE, (nonce << 16) | LT_SIDE_MARK)
                });
            })
        };
        let mut h = stm.handle(0);
        let mut flag_nonce = 1u64;
        h.atomic(|tx| {
            flag_nonce += 1;
            tx.write(LT_FLAG, (flag_nonce << 2) | LT_PRIVATE)
        });
        stage.store(1, Ordering::SeqCst);
        while stage.load(Ordering::SeqCst) < 2 {
            std::thread::yield_now();
        }
        let mut ticket = h.fence_async();
        if real_fences {
            // Ample time for a buggy driver to retire the period early.
            std::thread::sleep(std::time::Duration::from_millis(5));
            assert!(
                !ticket.poll(),
                "fence retired with the straddling transaction still live"
            );
        }
        go.store(true, Ordering::SeqCst);
        h.fence_join(ticket);
        // The straddler has committed; the privatized register is ours.
        h.write_direct(LT_DATA, LT_FINAL);
        let lost = u64::from(h.read_direct(LT_DATA) != LT_FINAL);
        straddler.join().unwrap();
        lost
    })
}

const MR_CAP: usize = 32;
const MR_ROUNDS: usize = 12;
/// Scratch register the staged conflict transaction writes (outside the
/// map region; projected out of the finals).
const MR_SCRATCH: usize = TxMap::regs_needed(MR_CAP);
/// The bumper thread's scratch register: its round bump must be a
/// *single-register* commit so the stripe's writer hint names exactly one
/// register and the staged abort classifies as a false conflict (a
/// multi-register commit hints `Shared`, which conservatively does not).
const MR_SCRATCH_B: usize = MR_SCRATCH + 1;
const MR_REGS: usize = MR_SCRATCH_B + 1;
/// Value of the pre-seeded probe key.
pub const MR_VAL_SEED: u64 = 0xA000_0000;

/// Base value of inserter `who`'s round keys (`who` 0 = the conflict
/// thread, 1 = the bumper thread).
fn mr_val(who: usize, round: usize) -> u64 {
    (0xA000_0000 + 0x1000_0000 * who as u64) | round as u64
}

/// The scenario's key set: `2 * MR_ROUNDS + 1` keys with pairwise-distinct
/// home slots, so the final map layout is deterministic whatever order the
/// inserts commit in. `keys[0]` is the seed/probe key; `keys[r]` is thread
/// A's round-`r` key; `keys[MR_ROUNDS + r]` thread B's.
fn mr_keys() -> Vec<u64> {
    let m = TxMap::new(0, MR_CAP);
    let mut used = [false; MR_CAP];
    let mut keys = Vec::with_capacity(2 * MR_ROUNDS + 1);
    let mut k = 1u64;
    while keys.len() < 2 * MR_ROUNDS + 1 {
        let s = m.home_slot(k);
        if !used[s] {
            used[s] = true;
            keys.push(k);
        }
        k += 1;
    }
    keys
}

/// Expected deterministic final registers: the map frozen (flag 1), every
/// key in its home slot with its fixed value, scratch projected to 0.
pub fn map_rehash_expected_finals() -> Vec<u64> {
    let m = TxMap::new(0, MR_CAP);
    let mut regs = vec![0u64; MR_REGS];
    regs[0] = 1; // left frozen by the final snapshot
    let keys = mr_keys();
    let mut put = |key: u64, val: u64| {
        // The documented TxMap layout: [flag][slot0 key][slot0 val]…, keys
        // stored biased by KEY_BIAS; collision-free keys sit in their home
        // slots.
        let s = m.home_slot(key);
        regs[1 + 2 * s] = key + tm_stm::map::KEY_BIAS;
        regs[2 + 2 * s] = val;
    };
    put(keys[0], MR_VAL_SEED);
    for r in 1..=MR_ROUNDS {
        put(keys[r], mr_val(0, r));
        put(keys[MR_ROUNDS + r], mr_val(1, r));
    }
    regs
}

/// The map-rehash scenario: [`TxMap`] traffic engineered to force adaptive
/// orec-table growth mid-stream, settled by a freeze + privatized snapshot.
///
/// Per round, thread A opens a transaction that reads the seed key (flag +
/// home slot in its read set) and writes a scratch register, then *parks*
/// mid-body; thread B commits a single-register bump of its own scratch
/// register. On a small stripe table that commit bumps a stripe A read, so
/// A's commit-time validation fails — and since the stripe's last
/// committed writer is B's scratch register, not A's, the abort is
/// classified *false*, feeding the adaptive growth window. A's retry
/// commits; both threads then insert their round keys (collision-free,
/// fixed values) and the staging advances. On backends where a parked
/// transaction would block everyone (`!park_ok`: the global lock) the same
/// operations run without the forced overlap.
///
/// Ends with `freeze` + `iter_frozen`: the privatized snapshot must
/// contain every key with its exact value (anything missing counts as a
/// lost update), and the map is left frozen so the final state is
/// deterministic.
fn map_rehash<F: StmFactory>(stm: &F, park_ok: bool) -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    let m = TxMap::new(0, MR_CAP);
    let keys = mr_keys();
    let seed_key = keys[0];
    let stage = AtomicU64::new(0);
    const SEEDED: u64 = 1;
    let parked = |r: usize| 10 * r as u64 + 1;
    let bumped = |r: usize| 10 * r as u64 + 2;
    let done = |r: usize| 10 * r as u64 + 3;
    // B has committed its last round insert; A may freeze.
    let b_done = 10 * MR_ROUNDS as u64 + 4;
    // Stage values increase monotonically over the run, so waits are
    // `>=`, never `==`: the producer may have advanced past the awaited
    // value before the consumer ever observes it.
    let await_stage = |v: u64| {
        while stage.load(Ordering::SeqCst) < v {
            std::thread::yield_now();
        }
    };
    std::thread::scope(|s| {
        // Thread B: the stripe bumper. Waits until A is parked (or has
        // committed its conflict transaction, when parking is disabled),
        // commits a single-register bump — the stripe-sharing write whose
        // hint classifies A's abort as false — releases A, then inserts
        // its own round key once A's round is settled.
        {
            let stm = stm.clone();
            let (stage, keys) = (&stage, &keys);
            s.spawn(move || {
                let mut h = stm.handle(1);
                let mut bump_nonce = 0u64;
                await_stage(SEEDED);
                for r in 1..=MR_ROUNDS {
                    await_stage(parked(r));
                    h.atomic(|tx| {
                        bump_nonce += 1;
                        tx.write(MR_SCRATCH_B, (2 << 50) | bump_nonce)
                    });
                    stage.store(bumped(r), Ordering::SeqCst);
                    await_stage(done(r));
                    h.atomic(|tx| m.insert(tx, keys[MR_ROUNDS + r], mr_val(1, r)).map(|_| ()));
                }
                stage.store(b_done, Ordering::SeqCst);
            });
        }
        // Thread A: conflict stager, inserter, and finally the freezer.
        let mut h = stm.handle(0);
        h.atomic(|tx| m.insert(tx, seed_key, MR_VAL_SEED).map(|_| ()));
        stage.store(SEEDED, Ordering::SeqCst);
        let mut scratch_nonce = 0u64;
        // `r` is the round number (staging values, key index, value tag),
        // not a plain iteration index.
        #[allow(clippy::needless_range_loop)]
        for r in 1..=MR_ROUNDS {
            let mut first = true;
            h.atomic(|tx| {
                scratch_nonce += 1;
                let v = m.get(tx, seed_key)?;
                debug_assert_eq!(v, Some(MR_VAL_SEED));
                tx.write(MR_SCRATCH, (1 << 50) | scratch_nonce)?;
                if park_ok && first {
                    first = false;
                    stage.store(parked(r), Ordering::SeqCst);
                    await_stage(bumped(r));
                }
                Ok(())
            });
            if !park_ok {
                stage.store(parked(r), Ordering::SeqCst);
                await_stage(bumped(r));
            }
            h.atomic(|tx| m.insert(tx, keys[r], mr_val(0, r)).map(|_| ()));
            stage.store(done(r), Ordering::SeqCst);
        }
        // Wait for B's last insert before freezing: a frozen map aborts
        // transactional inserts forever (that is its contract), so the
        // freeze must be quiescent.
        await_stage(b_done);
        // Privatized snapshot: freeze (one flag write + fence), then bulk
        // reads; every key must be present with its exact value. The map
        // stays frozen, so the finals are deterministic.
        m.freeze(&mut h);
        let snap = m.iter_frozen(&mut h);
        let mut lost = 0u64;
        let mut expect = |key: u64, val: u64| {
            if !snap.iter().any(|&(k, v)| k == key && v == val) {
                lost += 1;
            }
        };
        expect(seed_key, MR_VAL_SEED);
        for r in 1..=MR_ROUNDS {
            expect(keys[r], mr_val(0, r));
            expect(keys[MR_ROUNDS + r], mr_val(1, r));
        }
        lost
    })
}

const RW_FLAG: usize = 0;
const RW_D0: usize = 1;
const RW_D1: usize = 2;
const RW_ROUNDS: u64 = 4;
/// Low flag bits carry the phase; the bits above are a per-write nonce
/// (per thread: bit 40/41 discriminates the two nonce spaces).
const RW_PHASE_MASK: u64 = 7;
const RW_W_OWNS: u64 = 1;
const RW_SHARED: u64 = 2;
const RW_R_OWNS: u64 = 3;
const RW_W_TURN: u64 = 4;
/// The values the writer settles the block to under its final ownership.
pub const RW_FINAL0: u64 = 0x30D0;
/// Companion settle value for the second data register.
pub const RW_FINAL1: u64 = 0x30D1;

/// The writer's round-`r` marker for data register `i`.
fn rw_mark(round: u64, i: u64) -> u64 {
    (1 << 62) | (round << 8) | i
}

/// Expected deterministic final registers: writer-owned flag, settled
/// block.
pub fn reader_writer_handoff_expected_finals() -> Vec<u64> {
    vec![RW_W_OWNS, RW_FINAL0, RW_FINAL1]
}

/// The reader/writer handoff scenario: ownership of the data block passes
/// writer → reader → writer every round, each direction crossing its own
/// privatization fence.
///
/// Writer rounds: privatize (flag := W_OWNS) → fence → direct-write both
/// data registers → publish (flag := SHARED) → await W_TURN. Reader
/// rounds: await SHARED with a *consistent* guarded snapshot of the block
/// (both registers must carry the same round — a torn pair counts as
/// lost) → privatize (flag := R_OWNS) → fence → verify by direct reads →
/// hand back (flag := W_TURN). After the last round the writer privatizes
/// once more and settles the block, so the finals are deterministic.
fn reader_writer_handoff<F: StmFactory>(stm: &F) -> u64 {
    fn set_phase<H: StmHandle>(h: &mut H, who: u64, nonce: &mut u64, phase: u64) {
        h.atomic(|tx| {
            *nonce += 1;
            tx.write(RW_FLAG, (1 << (40 + who)) | (*nonce << 3) | phase)
        });
    }
    fn phase_of<H: StmHandle>(h: &mut H) -> u64 {
        h.atomic(|tx| tx.read(RW_FLAG)) & RW_PHASE_MASK
    }
    std::thread::scope(|s| {
        let reader = {
            let stm = stm.clone();
            s.spawn(move || {
                let mut h = stm.handle(1);
                let mut nonce = 0u64;
                let mut lost = 0u64;
                for r in 1..=RW_ROUNDS {
                    // Await this round's shared phase with a consistent
                    // guarded snapshot (data is only read under the flag).
                    let (d0, d1) = loop {
                        let snap = h.atomic(|tx| {
                            if tx.read(RW_FLAG)? & RW_PHASE_MASK == RW_SHARED {
                                Ok(Some((tx.read(RW_D0)?, tx.read(RW_D1)?)))
                            } else {
                                Ok(None)
                            }
                        });
                        if let Some(pair) = snap {
                            break pair;
                        }
                        std::thread::yield_now();
                    };
                    if d0 != rw_mark(r, 0) || d1 != rw_mark(r, 1) {
                        lost += 1; // torn or stale snapshot
                    }
                    // Reader-side privatization: own the block, verify it
                    // with uninstrumented reads, hand it back.
                    set_phase(&mut h, 1, &mut nonce, RW_R_OWNS);
                    h.fence();
                    if h.read_direct(RW_D0) != rw_mark(r, 0) {
                        lost += 1;
                    }
                    if h.read_direct(RW_D1) != rw_mark(r, 1) {
                        lost += 1;
                    }
                    set_phase(&mut h, 1, &mut nonce, RW_W_TURN);
                }
                lost
            })
        };
        let mut h = stm.handle(0);
        let mut nonce = 0u64;
        let mut lost = 0u64;
        for r in 1..=RW_ROUNDS {
            set_phase(&mut h, 0, &mut nonce, RW_W_OWNS);
            h.fence();
            for i in 0..2u64 {
                let reg = [RW_D0, RW_D1][i as usize];
                h.write_direct(reg, rw_mark(r, i));
                if h.read_direct(reg) != rw_mark(r, i) {
                    lost += 1;
                }
            }
            set_phase(&mut h, 0, &mut nonce, RW_SHARED);
            while phase_of(&mut h) != RW_W_TURN {
                std::thread::yield_now();
            }
        }
        // Settle under one last writer-side privatization.
        set_phase(&mut h, 0, &mut nonce, RW_W_OWNS);
        h.fence();
        h.write_direct(RW_D0, RW_FINAL0);
        h.write_direct(RW_D1, RW_FINAL1);
        if h.read_direct(RW_D0) != RW_FINAL0 || h.read_direct(RW_D1) != RW_FINAL1 {
            lost += 1;
        }
        lost + reader.join().unwrap()
    })
}

/// Settled sum of everything the consumer popped.
const TQ_SUM: usize = 0;
/// Settled count of items the consumer popped.
const TQ_COUNT: usize = 1;
/// The typed register backing the queue `TVar` (holds a boxed pointer
/// while the scenario runs; reset to the 0 sentinel on instance drop).
const TQ_VAR: usize = 2;
const TQ_REGS: usize = 3;
/// Queue capacity — small, so the producer actually blocks on full.
const TQ_CAP: usize = 4;
/// Items pushed; more than `TQ_CAP` so the consumer also blocks on empty.
const TQ_ITEMS: u64 = 24;

/// Expected deterministic final registers: `sum(1..=TQ_ITEMS)`, the item
/// count, and the reset typed register.
pub fn tvar_queue_expected_finals() -> Vec<u64> {
    vec![TQ_ITEMS * (TQ_ITEMS + 1) / 2, TQ_ITEMS, 0]
}

/// Bounded producer/consumer over the typed frontend: a
/// `TVar<VecDeque<u64>>` queue of capacity [`TQ_CAP`], a producer pushing
/// `1..=TQ_ITEMS` that blocks via [`Transaction::retry`] when the queue is
/// full, and a consumer that blocks on empty. Both sides sleep on their
/// read set and are woken by the other side's conflicting commit — a lost
/// wakeup deadlocks the scenario outright, so mere termination is load-
/// bearing. FIFO-order violations and a non-empty residual queue count as
/// lost updates; the popped sum/count settle into plain registers so the
/// finals are deterministic.
fn tvar_queue<K: PolicyKind>(stm: &Stm<K>) -> u64 {
    let typed = TypedStm::over(stm.clone(), TQ_VAR);
    let queue = typed.new_tvar(VecDeque::<u64>::new());
    let (sum, count, mut lost) = std::thread::scope(|s| {
        let producer = {
            let typed = typed.clone();
            let queue = queue.clone();
            s.spawn(move || {
                let mut h = typed.handle(0);
                for item in 1..=TQ_ITEMS {
                    h.atomically(|tx| {
                        let mut q = tx.read(&queue)?;
                        if q.len() >= TQ_CAP {
                            return tx.retry(); // block until the consumer pops
                        }
                        q.push_back(item);
                        tx.write(&queue, q)
                    });
                }
            })
        };
        let mut h = typed.handle(1);
        let mut sum = 0u64;
        let mut count = 0u64;
        let mut lost = 0u64;
        let mut expect = 1u64;
        for _ in 0..TQ_ITEMS {
            let item = h.atomically(|tx| {
                let mut q = tx.read(&queue)?;
                match q.pop_front() {
                    None => tx.retry(), // block until the producer pushes
                    Some(item) => {
                        tx.write(&queue, q)?;
                        Ok(item)
                    }
                }
            });
            if item != expect {
                lost += 1; // FIFO order violated
            }
            expect = item + 1;
            sum += item;
            count += 1;
        }
        producer.join().unwrap();
        let residual = h.atomically(|tx| Ok(tx.read(&queue)?.len() as u64));
        (sum, count, lost + residual)
    });
    // Settle the observations into plain registers, then drop the typed
    // instance so `TQ_VAR` resets to the 0 sentinel (deterministic finals).
    let mut h = stm.handle(0);
    h.write_direct(TQ_SUM, sum);
    h.write_direct(TQ_COUNT, count);
    drop((queue, typed));
    if h.read_direct(TQ_VAR) != 0 {
        lost += 1; // the typed register failed to reset
    }
    lost
}

/// Shards in the conformance-scale service.
const SV_SHARDS: usize = 2;
/// Keys (data registers) per shard.
const SV_KEYS: usize = 3;
/// Registers per shard: one freeze flag + the keys.
const SV_SHARD_REGS: usize = 1 + SV_KEYS;
const SV_REGS: usize = SV_SHARDS * SV_SHARD_REGS;
/// Requests each zipfian client issues.
const SV_OPS: u64 = 40;
/// Owner privatize → scan → publish cycles over the whole store.
const SV_CYCLES: u64 = 3;
/// Low flag bits carry the phase (1 = privatized, 2 = open); bits above
/// are a per-write nonce.
const SV_PHASE_MASK: u64 = 3;
const SV_PRIVATE: u64 = 1;
const SV_OPEN: u64 = 2;
/// Key `i`'s settled value (`SV_SETTLE_BASE + i`, below every nonce
/// space).
pub const SV_SETTLE_BASE: u64 = 0x5E00;

/// Shard `s`'s freeze-flag register.
fn sv_flag(s: usize) -> usize {
    s * SV_SHARD_REGS
}

/// Shard `s`'s data register for in-shard key `k`.
fn sv_data(s: usize, k: usize) -> usize {
    s * SV_SHARD_REGS + 1 + k
}

/// Expected deterministic final registers: every shard left privatized
/// (flag phase 1) with its keys settled to `SV_SETTLE_BASE + global key`.
pub fn service_expected_finals() -> Vec<u64> {
    let mut regs = vec![0u64; SV_REGS];
    for s in 0..SV_SHARDS {
        regs[sv_flag(s)] = SV_PRIVATE;
        for k in 0..SV_KEYS {
            regs[sv_data(s, k)] = SV_SETTLE_BASE + (s * SV_KEYS + k) as u64;
        }
    }
    regs
}

/// The conformance-scale service: the `tm-service` workload shape —
/// zipfian key popularity ([`tm_service::Zipf`] + [`tm_service::spread`]),
/// the mixed op class ([`tm_service::OpMix`]), a store owner running
/// privatize-and-scan / publish-back maintenance — over plain registers
/// with per-attempt nonced values, so the recorded history satisfies
/// Def A.1 clause 3 under any retry schedule (including chaos).
///
/// Clients issue flag-guarded transactional ops (get / put / rmw /
/// whole-shard scan — writes skipped while the shard is privatized);
/// the owner cycles over both shards (privatize → fence → uninstrumented
/// double-read of every key, mismatch = lost → unique direct stamp,
/// read-back mismatch = lost → nonced publish-back), joins the clients,
/// and settles every shard under one final privatization each.
///
/// Value spaces (disjoint, all non-initial): owner stamps carry bit 62,
/// client writes bit `52 + client`, flag nonces bit 44, settle constants
/// sit below 2^16.
fn service<F: StmFactory>(stm: &F) -> u64 {
    use tm_service::{spread, OpMix, SplitMix64, Zipf};
    use tm_stm::telemetry::OpClass;

    let key_space = (SV_SHARDS * SV_KEYS) as u64;
    std::thread::scope(|s| {
        let clients: Vec<_> = (0..2u64)
            .map(|t| {
                let stm = stm.clone();
                s.spawn(move || {
                    let mut h = stm.handle(1 + t as usize);
                    let zipf = Zipf::new(key_space as usize, 0.9);
                    let mix = OpMix::read_heavy();
                    let mut rng = SplitMix64::new(0xC0FFEE ^ ((t + 1) * 0x9E37));
                    // Per-attempt nonce, disjoint per client (bit 52 + t).
                    let mut nonce = 0u64;
                    let tag = 1u64 << (52 + t);
                    for _ in 0..SV_OPS {
                        let class = mix.pick(rng.next_u64());
                        let key = spread(zipf.sample(rng.next_u64()) as u64, key_space) as usize;
                        let (shard, slot) = (key / SV_KEYS, key % SV_KEYS);
                        h.atomic(|tx| {
                            nonce += 1;
                            let open = tx.read(sv_flag(shard))? & SV_PHASE_MASK != SV_PRIVATE;
                            match class {
                                OpClass::Get => {
                                    if open {
                                        tx.read(sv_data(shard, slot))?;
                                    }
                                }
                                OpClass::Put => {
                                    if open {
                                        tx.write(sv_data(shard, slot), tag | nonce)?;
                                    }
                                }
                                OpClass::Rmw => {
                                    if open {
                                        tx.read(sv_data(shard, slot))?;
                                        tx.write(sv_data(shard, slot), tag | nonce)?;
                                    }
                                }
                                OpClass::Scan => {
                                    // Client-side scan is transactional (only
                                    // the owner privatizes): one consistent
                                    // guarded snapshot of the whole shard.
                                    if open {
                                        for k in 0..SV_KEYS {
                                            tx.read(sv_data(shard, k))?;
                                        }
                                    }
                                }
                                OpClass::Publish => unreachable!("never issued directly"),
                            }
                            Ok(())
                        });
                    }
                })
            })
            .collect();

        let mut h = stm.handle(0);
        let mut lost = 0u64;
        let mut flag_nonce = 0u64;
        let mut set_flag = |h: &mut F::Handle, s: usize, phase: u64| {
            h.atomic(|tx| {
                flag_nonce += 1;
                tx.write(sv_flag(s), (1 << 44) | (flag_nonce << 2) | phase)
            });
        };
        for cycle in 0..SV_CYCLES {
            for shard in 0..SV_SHARDS {
                set_flag(&mut h, shard, SV_PRIVATE);
                h.fence();
                for k in 0..SV_KEYS {
                    let reg = sv_data(shard, k);
                    // The privatized snapshot must be stable: two
                    // uninstrumented reads that disagree mean a zombie
                    // writer crossed the fence.
                    if h.read_direct(reg) != h.read_direct(reg) {
                        lost += 1;
                    }
                    let id = 1 + (cycle * key_space) + (shard * SV_KEYS + k) as u64;
                    let stamp = (1 << 62) | id;
                    h.write_direct(reg, stamp);
                    if h.read_direct(reg) != stamp {
                        lost += 1;
                    }
                }
                set_flag(&mut h, shard, SV_OPEN);
            }
        }
        for c in clients {
            c.join().unwrap();
        }
        // Settle: privatize each shard once more and leave its keys at
        // known constants — the clients are gone, so the finals are exact.
        for shard in 0..SV_SHARDS {
            set_flag(&mut h, shard, SV_PRIVATE);
            h.fence();
            for k in 0..SV_KEYS {
                let reg = sv_data(shard, k);
                let settle = SV_SETTLE_BASE + (shard * SV_KEYS + k) as u64;
                h.write_direct(reg, settle);
                if h.read_direct(reg) != settle {
                    lost += 1;
                }
            }
        }
        lost
    })
}

const PU_FLAG: usize = 0;
const PU_DATA: usize = 1;
/// Publication rounds; round 1 is fence-free (fresh data), later rounds
/// re-privatize first.
const PU_ROUNDS: u64 = 4;
/// Low flag bits: phase (1 = privatized, 2 = published); next ten bits:
/// the round; everything above: a per-write nonce.
const PU_PHASE_MASK: u64 = 3;
const PU_PRIVATE: u64 = 1;
const PU_PUBLISHED: u64 = 2;
const PU_ROUND_SHIFT: u64 = 2;
const PU_SEM_MASK: u64 = (1 << 12) - 1;

/// Round `r`'s payload (bit 62 keeps the space disjoint from flags).
fn pu_pay(r: u64) -> u64 {
    (1 << 62) | r
}

/// Expected deterministic final registers: flag published at the last
/// round (nonce stripped), payload intact.
pub fn pub_under_load_expected_finals() -> Vec<u64> {
    vec![
        (PU_ROUNDS << PU_ROUND_SHIFT) | PU_PUBLISHED,
        pu_pay(PU_ROUNDS),
    ]
}

/// Publication races under sustained reader traffic: the writer
/// alternates the payload between published and re-privatized states —
/// round 1 is the paper's Fig 2 publication exactly (non-transactional
/// fresh write, then the publishing flag transaction, no fence); every
/// later round privatizes (flag → fence), verifies the old payload with
/// an uninstrumented read, rewrites it directly, and republishes. Two
/// readers poll with guarded transactional snapshots the whole time: a
/// snapshot that pairs a published flag for round `r` with anything but
/// round `r`'s payload is torn and counts as lost.
fn pub_under_load<F: StmFactory>(stm: &F) -> u64 {
    std::thread::scope(|s| {
        let readers: Vec<_> = (0..2usize)
            .map(|t| {
                let stm = stm.clone();
                s.spawn(move || {
                    let mut h = stm.handle(1 + t);
                    let mut lost = 0u64;
                    let mut seen = 0u64;
                    while seen < PU_ROUNDS {
                        let snap = h.atomic(|tx| {
                            let f = tx.read(PU_FLAG)?;
                            if f & PU_PHASE_MASK == PU_PUBLISHED {
                                Ok(Some((
                                    (f & PU_SEM_MASK) >> PU_ROUND_SHIFT,
                                    tx.read(PU_DATA)?,
                                )))
                            } else {
                                Ok(None)
                            }
                        });
                        if let Some((r, d)) = snap {
                            if d != pu_pay(r) {
                                lost += 1; // torn publication
                            }
                            seen = seen.max(r);
                        }
                        std::thread::yield_now();
                    }
                    lost
                })
            })
            .collect();

        let mut h = stm.handle(0);
        let mut lost = 0u64;
        let mut nonce = 0u64;
        let mut set_flag = |h: &mut F::Handle, phase: u64, round: u64| {
            h.atomic(|tx| {
                nonce += 1;
                tx.write(PU_FLAG, (nonce << 12) | (round << PU_ROUND_SHIFT) | phase)
            });
        };
        for r in 1..=PU_ROUNDS {
            if r == 1 {
                // Fig 2: fresh payload, never yet accessible — publication
                // is safe by `xpo;txwr`, no fence.
                h.write_direct(PU_DATA, pu_pay(1));
            } else {
                set_flag(&mut h, PU_PRIVATE, r);
                h.fence();
                if h.read_direct(PU_DATA) != pu_pay(r - 1) {
                    lost += 1; // the privatized payload went stale
                }
                h.write_direct(PU_DATA, pu_pay(r));
                if h.read_direct(PU_DATA) != pu_pay(r) {
                    lost += 1;
                }
            }
            set_flag(&mut h, PU_PUBLISHED, r);
        }
        readers.into_iter().map(|r| r.join().unwrap()).sum::<u64>() + lost
    })
}

/// Expected deterministic final registers for a scenario.
pub fn expected_finals(scenario: Scenario) -> Vec<u64> {
    match scenario {
        Scenario::Bank => bank_expected_finals(),
        Scenario::Privatization => privatization_expected_finals(),
        Scenario::Publication => publication_expected_finals(),
        Scenario::EpochBatch => epoch_batch_expected_finals(),
        Scenario::ReaderHeavy => reader_heavy_expected_finals(),
        Scenario::LongTx => long_tx_expected_finals(),
        Scenario::MapRehash => map_rehash_expected_finals(),
        Scenario::ReaderWriterHandoff => reader_writer_handoff_expected_finals(),
        Scenario::TVarQueue => tvar_queue_expected_finals(),
        Scenario::Service => service_expected_finals(),
        Scenario::PubUnderLoad => pub_under_load_expected_finals(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_have_deterministic_finals_on_tl2() {
        for sc in Scenario::ALL {
            let run = run_scenario(sc, Backend::Tl2PerRegister, false);
            assert_eq!(run.lost_updates, 0, "{}", sc.label());
            assert_eq!(run.final_regs, expected_finals(sc), "{}", sc.label());
        }
    }

    #[test]
    fn recorded_epoch_batch_history_is_drf_and_opaque() {
        let run = run_scenario(Scenario::EpochBatch, Backend::Tl2PerRegister, true);
        assert_eq!(run.lost_updates, 0);
        assert_eq!(run.final_regs, epoch_batch_expected_finals());
        let v = check(run.history.as_ref().unwrap());
        assert!(
            v.well_formed,
            "batched async fences must record well-formed"
        );
        assert!(v.drf);
        assert_eq!(v.opaque, Some(true));
    }

    /// The long-transaction scenario must hold under BOTH driver modes: a
    /// background driver is exactly the component that could wrongly
    /// retire the straddled period early.
    #[test]
    fn recorded_long_tx_history_holds_under_both_driver_modes() {
        for mode in DriverMode::ALL {
            let run = run_scenario_mode(Scenario::LongTx, Backend::Tl2PerRegister, true, mode);
            assert_eq!(run.lost_updates, 0, "{}", mode.label());
            assert_eq!(
                run.final_regs,
                long_tx_expected_finals(),
                "{}",
                mode.label()
            );
            let v = check(run.history.as_ref().unwrap());
            assert!(
                v.well_formed,
                "{}: straddling txn must not make the history ill-formed",
                mode.label()
            );
            assert!(v.drf, "{}", mode.label());
            assert_eq!(v.opaque, Some(true), "{}", mode.label());
        }
    }

    #[test]
    fn recorded_bank_history_is_drf_and_opaque() {
        let run = run_scenario(Scenario::Bank, Backend::Tl2Striped { stripes: 4 }, true);
        let v = check(run.history.as_ref().unwrap());
        assert!(v.well_formed);
        assert!(v.drf);
        assert_eq!(v.opaque, Some(true));
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = Backend::ALL.iter().map(|b| b.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert!(Backend::Norec.label() == "norec");
        assert!(!Backend::Norec.fences_are_real());
        assert!(
            !Backend::Glock.fences_are_real(),
            "glock fence is immediate"
        );
        assert!(Backend::Tl2PerRegister.fences_are_real());
    }
}
