//! Concrete litmus scenarios for the *runtime* STMs (`tm-stm`), the
//! executable counterpart of the spec-level programs in
//! [`crate::programs`]: the same idioms — bank transfer, privatization,
//! publication — driven through the shared [`StmHandle`] interface on real
//! threads, against any storage backend, with optional history recording so
//! the `tm-core` checkers can pass verdicts on what actually ran.
//!
//! Every scenario is designed to have a *deterministic final state* under
//! any correct TM (transfer deltas commute; the privatization owner settles
//! the data register last, under privatization), so a conformance suite can
//! assert bit-identical outcomes across backends that schedule completely
//! differently.
//!
//! Histories must have globally unique, non-initial write values (Def A.1
//! clause 3 — that is how the checkers infer reads-from), so scenarios that
//! rewrite the same logical state tag every write with a unique nonce and
//! report the *projected* semantic state (e.g. the balance bits) as their
//! final registers.

use std::sync::Arc;
use tm_core::hb::is_drf;
use tm_core::opacity::{check_strong_opacity, CheckOptions};
use tm_core::trace::History;
use tm_stm::prelude::*;
use tm_stm::runtime::StmConfig;

/// A runtime STM backend to drive a scenario against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// TL2 with one ownership record per register (GV1 clock).
    Tl2PerRegister,
    /// TL2 over a striped orec table.
    Tl2Striped {
        stripes: usize,
    },
    /// TL2 (per-register orecs) under an alternative version clock —
    /// the clock axis must be invisible to every correctness verdict.
    Tl2Clock {
        clock: ClockKind,
    },
    Norec,
    Glock,
}

impl Backend {
    pub const ALL: [Backend; 6] = [
        Backend::Tl2PerRegister,
        Backend::Tl2Striped { stripes: 8 },
        Backend::Tl2Clock {
            clock: ClockKind::Gv4,
        },
        Backend::Tl2Clock {
            clock: ClockKind::Gv5,
        },
        Backend::Norec,
        Backend::Glock,
    ];

    pub fn label(&self) -> String {
        match self {
            Backend::Tl2PerRegister => "tl2/per-register".into(),
            Backend::Tl2Striped { stripes } => format!("tl2/striped-{stripes}"),
            Backend::Tl2Clock { clock } => format!("tl2/{}", clock.label()),
            Backend::Norec => "norec".into(),
            Backend::Glock => "glock".into(),
        }
    }

    /// Does this backend's `fence()` actually quiesce (and hence appear in
    /// recorded histories)? NOrec and the global lock are
    /// privatization-safe *without* fences (NOrec by value-based
    /// validation, glock because every transaction runs entirely under the
    /// lock — no zombies, no delayed commits); their histories carry no
    /// fence actions, so the paper's DRF discipline is not obliged to
    /// classify their privatizing runs as race-free.
    pub fn fences_are_real(&self) -> bool {
        !matches!(self, Backend::Norec | Backend::Glock)
    }
}

/// A concrete scenario over `nregs()` registers and `nthreads()` threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// Unconditional ring transfers plus a running audit: purely
    /// transactional, so DRF for every backend.
    Bank,
    /// Flag-guarded privatize → fence → direct writes → publish cycles,
    /// settled by a final privatized write.
    Privatization,
    /// Fig 2: non-transactional payload write published by a transactional
    /// flag write; safe without fences via `xpo;txwr`.
    Publication,
    /// K threads privatize disjoint regions concurrently through *batched*
    /// asynchronous fences (`fence_async`): tickets issued in lockstep
    /// coalesce behind shared grace periods, guarded cross-traffic gives
    /// the fences something to wait out, and each thread settles its own
    /// region under a final privatization.
    EpochBatch,
    /// One writer stamps a whole register block per round; two read-only
    /// auditors repeatedly snapshot the block and demand a consistent
    /// round in every snapshot. The read-dominated shape that stresses
    /// read-path fast paths and the version-clock backends (a GV5 reader
    /// trails fresh stamps and must recover with one refresh).
    ReaderHeavy,
    /// The ROADMAP's *long-transaction* scenario: one transaction parks
    /// mid-body (on a side channel) while the owner privatizes and issues
    /// a fence around it. The fence — however it is driven, including by a
    /// background driver — must not retire its grace period while the
    /// straddling transaction is live, and the owner's post-fence direct
    /// writes settle the final state deterministically.
    LongTx,
}

impl Scenario {
    pub const ALL: [Scenario; 6] = [
        Scenario::Bank,
        Scenario::Privatization,
        Scenario::Publication,
        Scenario::EpochBatch,
        Scenario::ReaderHeavy,
        Scenario::LongTx,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            Scenario::Bank => "bank",
            Scenario::Privatization => "privatization",
            Scenario::Publication => "publication",
            Scenario::EpochBatch => "epoch_batch",
            Scenario::ReaderHeavy => "reader_heavy",
            Scenario::LongTx => "long_tx",
        }
    }

    pub fn nregs(&self) -> usize {
        match self {
            Scenario::Bank => BANK_ACCOUNTS,
            Scenario::Privatization | Scenario::Publication => 2,
            Scenario::EpochBatch => 2 * EB_THREADS,
            Scenario::ReaderHeavy => RH_REGS,
            Scenario::LongTx => 3,
        }
    }

    pub fn nthreads(&self) -> usize {
        match self {
            Scenario::Bank => 3,
            Scenario::Privatization | Scenario::Publication | Scenario::LongTx => 2,
            Scenario::EpochBatch => EB_THREADS,
            Scenario::ReaderHeavy => 1 + RH_READERS,
        }
    }

    /// Does the scenario's history contain fence actions on fencing
    /// backends?
    pub fn uses_fences(&self) -> bool {
        matches!(
            self,
            Scenario::Privatization | Scenario::EpochBatch | Scenario::LongTx
        )
    }
}

/// Everything one scenario run produces.
#[derive(Clone, Debug)]
pub struct ScenarioRun {
    pub backend: Backend,
    pub scenario: Scenario,
    /// Snapshot of every register after all threads joined.
    pub final_regs: Vec<u64>,
    /// Updates the scenario observed being lost (must be 0 for a correct TM).
    pub lost_updates: u64,
    /// The recorded history, when recording was requested.
    pub history: Option<History>,
}

/// Offline checker verdicts on a recorded history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckerVerdict {
    /// Well-formed per Def 2.1/A.1.
    pub well_formed: bool,
    /// Data-race free per Def 3.2.
    pub drf: bool,
    /// Strongly opaque with a verified witness — only checked for DRF
    /// histories (strong opacity quantifies over those, Def 4.2).
    pub opaque: Option<bool>,
}

/// Run the `tm-core` checkers over a recorded history.
pub fn check(history: &History) -> CheckerVerdict {
    let well_formed = history.validate().is_ok();
    if !well_formed {
        return CheckerVerdict {
            well_formed,
            drf: false,
            opaque: None,
        };
    }
    let drf = is_drf(history);
    let opaque = drf.then(|| check_strong_opacity(history, &CheckOptions::default()).is_ok());
    CheckerVerdict {
        well_formed,
        drf,
        opaque,
    }
}

/// Run `scenario` on `backend`, recording a history if `record`, under
/// the process default [`DriverMode`] (see [`DriverMode::from_env`]).
pub fn run_scenario(scenario: Scenario, backend: Backend, record: bool) -> ScenarioRun {
    run_scenario_mode(scenario, backend, record, DriverMode::from_env())
}

/// Run `scenario` on `backend` under an explicit grace-period
/// [`DriverMode`] — the conformance axis: every scenario must behave and
/// check out identically whether the engine is driven cooperatively or by
/// a runtime-owned background driver.
pub fn run_scenario_mode(
    scenario: Scenario,
    backend: Backend,
    record: bool,
    mode: DriverMode,
) -> ScenarioRun {
    let nregs = scenario.nregs();
    let nthreads = scenario.nthreads();
    let recorder = record.then(|| Arc::new(Recorder::new(nthreads)));
    let mut cfg = StmConfig::new(nregs, nthreads).grace_driver(mode);
    cfg.recorder = recorder.clone();
    let real = backend.fences_are_real();
    let (final_regs, lost_updates) = match backend {
        Backend::Tl2PerRegister => drive(scenario, Tl2Stm::with_config(cfg), real),
        Backend::Tl2Striped { stripes } => {
            drive(scenario, Tl2Stm::with_config(cfg.striped(stripes)), real)
        }
        Backend::Tl2Clock { clock } => drive(scenario, Tl2Stm::with_config(cfg.clock(clock)), real),
        Backend::Norec => drive(scenario, NorecStm::with_config(cfg), real),
        Backend::Glock => drive(scenario, GlockStm::with_config(cfg), real),
    };
    ScenarioRun {
        backend,
        scenario,
        final_regs,
        lost_updates,
        history: recorder.map(|r| r.snapshot_history()),
    }
}

fn drive<F: StmFactory>(scenario: Scenario, stm: F, real_fences: bool) -> (Vec<u64>, u64) {
    let lost = match scenario {
        Scenario::Bank => bank(&stm),
        Scenario::Privatization => privatization(&stm),
        Scenario::Publication => publication(&stm),
        Scenario::EpochBatch => epoch_batch(&stm),
        Scenario::ReaderHeavy => reader_heavy(&stm),
        Scenario::LongTx => long_tx(&stm, real_fences),
    };
    let final_regs = (0..scenario.nregs())
        .map(|x| project(scenario, x, stm.peek(x)))
        .collect();
    (final_regs, lost)
}

/// Project a raw register value to its semantic content (strip nonces).
fn project(scenario: Scenario, x: usize, v: u64) -> u64 {
    match scenario {
        Scenario::Bank => v & BAL_MASK,
        Scenario::Privatization if x == PRIV_FLAG => v & PRIV_PHASE_MASK,
        Scenario::Privatization | Scenario::Publication => v,
        // Even registers are region flags (keep the phase), odd are the
        // settled region data (keep the value).
        Scenario::EpochBatch if x.is_multiple_of(2) => v & EB_PHASE_MASK,
        Scenario::EpochBatch => v,
        // The round lives in the low bits; the rest is a per-write nonce.
        Scenario::ReaderHeavy => v & RH_ROUND_MASK,
        Scenario::LongTx if x == LT_FLAG => v & LT_PHASE_MASK,
        Scenario::LongTx if x == LT_SIDE => v & LT_SIDE_MASK,
        Scenario::LongTx => v,
    }
}

const BANK_ACCOUNTS: usize = 4;
const BANK_INIT: u64 = 1_000;
const BANK_ITERS: u64 = 12;
/// Balances live in the low bits; the rest of the word is a unique nonce
/// (Def A.1 clause 3 requires globally unique write values).
const BAL_MASK: u64 = (1 << 24) - 1;

#[inline]
fn bal(v: u64) -> u64 {
    v & BAL_MASK
}

#[inline]
fn with_nonce(balance: u64, nonce: u64) -> u64 {
    debug_assert!(balance <= BAL_MASK && nonce > 0);
    (nonce << 24) | balance
}

/// Expected deterministic final balances: thread `t` moves `BANK_ITERS`
/// units from account `t` to account `t + 1`.
pub fn bank_expected_finals() -> Vec<u64> {
    let mut regs = vec![BANK_INIT; BANK_ACCOUNTS];
    for t in 0..3 {
        regs[t] -= BANK_ITERS;
        regs[t + 1] += BANK_ITERS;
    }
    regs
}

fn bank<F: StmFactory>(stm: &F) -> u64 {
    {
        let mut h = stm.handle(0);
        h.atomic(|tx| {
            for a in 0..BANK_ACCOUNTS {
                tx.write(a, with_nonce(BANK_INIT, 1 + a as u64))?;
            }
            Ok(())
        });
    }
    std::thread::scope(|s| {
        for t in 0..3usize {
            let stm = stm.clone();
            s.spawn(move || {
                let mut h = stm.handle(t);
                let (from, to) = (t, t + 1);
                // Per-thread disjoint nonce space, above the init nonces.
                // Advanced *inside* the body: an aborted attempt's writes
                // stay in the history, so a retry may not repeat values.
                let mut nonce = 100 + ((t as u64 + 1) << 32);
                for i in 0..BANK_ITERS {
                    h.atomic(|tx| {
                        nonce += 2;
                        let a = bal(tx.read(from)?);
                        let b = bal(tx.read(to)?);
                        tx.write(from, with_nonce(a - 1, nonce))?;
                        tx.write(to, with_nonce(b + 1, nonce + 1))
                    });
                    // Transfers commute, so the audit sum is invariant in
                    // every consistent snapshot.
                    if i % 6 == 0 {
                        let sum = h.atomic(|tx| {
                            let mut s = 0u64;
                            for a in 0..BANK_ACCOUNTS {
                                s += bal(tx.read(a)?);
                            }
                            Ok(s)
                        });
                        assert_eq!(sum, BANK_INIT * BANK_ACCOUNTS as u64, "inconsistent audit");
                    }
                }
            });
        }
    });
    0
}

const PRIV_FLAG: usize = 0;
const PRIV_DATA: usize = 1;
const PRIV_ROUNDS: u64 = 6;
/// Low flag bits carry the phase (1 = privatized, 2 = open); the bits above
/// are a unique per-write nonce. `v_init = 0` reads as phase 0 = open.
const PRIV_PHASE_MASK: u64 = 3;
const PRIV_PRIVATE: u64 = 1;
const PRIV_OPEN: u64 = 2;
/// The value the owner settles the (still privatized) data register to.
pub const PRIV_FINAL: u64 = 0xF1A1;

/// Expected deterministic final registers: privatized (flag phase 1),
/// settled data.
pub fn privatization_expected_finals() -> Vec<u64> {
    vec![PRIV_PRIVATE, PRIV_FINAL]
}

fn privatization<F: StmFactory>(stm: &F) -> u64 {
    std::thread::scope(|s| {
        let owner = {
            let stm = stm.clone();
            s.spawn(move || {
                let mut h = stm.handle(0);
                let mut lost = 0u64;
                // Unique flag values per attempt (aborted attempts keep
                // their writes in the history).
                let mut flag_nonce = 0u64;
                let mut set_flag = |h: &mut F::Handle, phase: u64| {
                    h.atomic(|tx| {
                        flag_nonce += 1;
                        tx.write(PRIV_FLAG, (flag_nonce << 2) | phase)
                    });
                };
                for i in 1..=PRIV_ROUNDS {
                    set_flag(&mut h, PRIV_PRIVATE);
                    h.fence();
                    let marker = 0x4000_0000_0000_0000 | i;
                    h.write_direct(PRIV_DATA, marker);
                    if h.read_direct(PRIV_DATA) != marker {
                        lost += 1;
                    }
                    set_flag(&mut h, PRIV_OPEN);
                    h.fence();
                }
                // Settle: privatize once more and leave the data register at
                // a known value — guarded workers can never overwrite it.
                set_flag(&mut h, PRIV_PRIVATE);
                h.fence();
                h.write_direct(PRIV_DATA, PRIV_FINAL);
                lost
            })
        };
        {
            let stm = stm.clone();
            s.spawn(move || {
                let mut h = stm.handle(1);
                let mut data_nonce = 0x2000_0000_0000_0000u64;
                for _ in 0..2 * PRIV_ROUNDS {
                    h.atomic(|tx| {
                        data_nonce += 1;
                        let flag = tx.read(PRIV_FLAG)?;
                        if flag & PRIV_PHASE_MASK != PRIV_PRIVATE {
                            tx.write(PRIV_DATA, data_nonce)?;
                        }
                        Ok(())
                    });
                }
            });
        }
        owner.join().unwrap()
    })
}

const PUB_FLAG: usize = 0;
const PUB_DATA: usize = 1;
/// The published payload.
pub const PUB_PAYLOAD: u64 = 0xFEED;

/// Expected deterministic final registers: published flag, intact payload.
pub fn publication_expected_finals() -> Vec<u64> {
    vec![1, PUB_PAYLOAD]
}

fn publication<F: StmFactory>(stm: &F) -> u64 {
    std::thread::scope(|s| {
        let consumer = {
            let stm = stm.clone();
            s.spawn(move || {
                let mut h = stm.handle(1);
                loop {
                    let seen = h.atomic(|tx| {
                        if tx.read(PUB_FLAG)? != 0 {
                            Ok(Some(tx.read(PUB_DATA)?))
                        } else {
                            Ok(None)
                        }
                    });
                    if let Some(data) = seen {
                        return data;
                    }
                    std::thread::yield_now();
                }
            })
        };
        let mut h = stm.handle(0);
        h.write_direct(PUB_DATA, PUB_PAYLOAD); // ν: non-transactional
        h.atomic(|tx| tx.write(PUB_FLAG, 1)); // publish (xpo;txwr edge)
        let seen = consumer.join().unwrap();
        u64::from(seen != PUB_PAYLOAD)
    })
}

const EB_THREADS: usize = 3;
const EB_ROUNDS: u64 = 4;
/// Low flag bits carry the phase, mirroring the privatization scenario.
const EB_PHASE_MASK: u64 = 3;
const EB_PRIVATE: u64 = 1;
const EB_OPEN: u64 = 2;
/// Thread `t` settles its region's data register to `EB_SETTLE_BASE + t`.
pub const EB_SETTLE_BASE: u64 = 0xEB00;

/// Region `t`'s privatization flag register.
fn eb_flag(t: usize) -> usize {
    2 * t
}

/// Region `t`'s data register.
fn eb_data(t: usize) -> usize {
    2 * t + 1
}

/// Expected deterministic final registers: every region privatized (flag
/// phase 1) with settled data.
pub fn epoch_batch_expected_finals() -> Vec<u64> {
    (0..EB_THREADS)
        .flat_map(|t| [EB_PRIVATE, EB_SETTLE_BASE + t as u64])
        .collect()
}

/// K threads each own a disjoint region (flag + data register) and cycle
/// privatize → batched fence → direct write → publish, while also sending
/// guarded transactional traffic into every *other* region. Barriers keep
/// the rounds in lockstep so all K fence tickets of a round are issued in
/// the same open grace period — the batched path resolves them all on one
/// epoch-table scan. Each thread ends by privatizing its region once more
/// and settling the data register to a known value, so the final state is
/// deterministic under any correct TM.
///
/// Write-value uniqueness (Def A.1 clause 3) is by disjoint value spaces:
/// flag writes carry `(t+1) << 40`, guarded data writes `(t+1) << 48`,
/// direct markers bit 62, settle values live below 2^16; nonces advance
/// per *attempt* so aborted attempts never repeat a value.
fn epoch_batch<F: StmFactory>(stm: &F) -> u64 {
    use std::sync::Barrier;
    let privatize = Barrier::new(EB_THREADS);
    let issued = Barrier::new(EB_THREADS);
    std::thread::scope(|s| {
        let mut workers = Vec::new();
        for t in 0..EB_THREADS {
            let stm = stm.clone();
            let privatize = &privatize;
            let issued = &issued;
            workers.push(s.spawn(move || {
                let mut h = stm.handle(t);
                let tt = t as u64;
                let mut lost = 0u64;
                let mut flag_nonce = 0u64;
                let mut data_nonce = 0u64;
                for round in 1..=EB_ROUNDS {
                    // Lockstep privatization: every thread sets its flag and
                    // issues its fence ticket before any thread joins, so
                    // the K tickets coalesce behind one grace period.
                    privatize.wait();
                    h.atomic(|tx| {
                        flag_nonce += 1;
                        tx.write(
                            eb_flag(t),
                            ((tt + 1) << 40) | (flag_nonce << 2) | EB_PRIVATE,
                        )
                    });
                    let ticket = h.fence_async();
                    issued.wait();
                    h.fence_join(ticket);
                    // The region is private: uninstrumented access is safe.
                    let marker = (1u64 << 62) | (tt << 8) | round;
                    h.write_direct(eb_data(t), marker);
                    if h.read_direct(eb_data(t)) != marker {
                        lost += 1;
                    }
                    h.atomic(|tx| {
                        flag_nonce += 1;
                        tx.write(eb_flag(t), ((tt + 1) << 40) | (flag_nonce << 2) | EB_OPEN)
                    });
                    // Guarded cross-traffic into the other regions — the
                    // transactions the other threads' fences wait out.
                    for j in (0..EB_THREADS).filter(|&j| j != t) {
                        h.atomic(|tx| {
                            data_nonce += 1;
                            let flag = tx.read(eb_flag(j))?;
                            if flag & EB_PHASE_MASK != EB_PRIVATE {
                                tx.write(eb_data(j), ((tt + 1) << 48) | data_nonce)?;
                            }
                            Ok(())
                        });
                    }
                }
                // Settle: privatize once more and leave the data register at
                // a known value guarded writers can never overwrite.
                privatize.wait();
                h.atomic(|tx| {
                    flag_nonce += 1;
                    tx.write(
                        eb_flag(t),
                        ((tt + 1) << 40) | (flag_nonce << 2) | EB_PRIVATE,
                    )
                });
                let ticket = h.fence_async();
                issued.wait();
                h.fence_join(ticket);
                h.write_direct(eb_data(t), EB_SETTLE_BASE + tt);
                lost
            }));
        }
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    })
}

const RH_REGS: usize = 4;
const RH_READERS: usize = 2;
const RH_ROUNDS: u64 = 6;
const RH_READS: u64 = 20;
/// Rounds live in the low 16 bits; the bits above are a unique per-write
/// nonce (Def A.1 clause 3).
const RH_ROUND_MASK: u64 = (1 << 16) - 1;

/// Expected deterministic final registers: every register carries the last
/// round the writer stamped.
pub fn reader_heavy_expected_finals() -> Vec<u64> {
    vec![RH_ROUNDS; RH_REGS]
}

/// One writer stamps the whole block with the round number each round; two
/// read-only auditors snapshot the block `RH_READS` times each and demand
/// every snapshot shows one single round across all registers — the
/// read-mostly opacity workload. Auditors never write, so the final state
/// is the writer's last round, deterministically. Returns the number of
/// torn (mixed-round) snapshots observed: 0 for any opaque TM.
fn reader_heavy<F: StmFactory>(stm: &F) -> u64 {
    std::thread::scope(|s| {
        let mut auditors = Vec::new();
        for r in 0..RH_READERS {
            let stm = stm.clone();
            auditors.push(s.spawn(move || {
                let mut h = stm.handle(1 + r);
                let mut torn = 0u64;
                for _ in 0..RH_READS {
                    let rounds = h.atomic(|tx| {
                        let first = tx.read(0)? & RH_ROUND_MASK;
                        for x in 1..RH_REGS {
                            if tx.read(x)? & RH_ROUND_MASK != first {
                                return Ok(None);
                            }
                        }
                        Ok(Some(first))
                    });
                    if rounds.is_none() {
                        torn += 1;
                    }
                    std::thread::yield_now();
                }
                torn
            }));
        }
        let writer = {
            let stm = stm.clone();
            s.spawn(move || {
                let mut h = stm.handle(0);
                // Nonces advance per write *inside* the body: aborted
                // attempts keep their writes in the history, so a retry may
                // not repeat values.
                let mut nonce = 0u64;
                for round in 1..=RH_ROUNDS {
                    h.atomic(|tx| {
                        for x in 0..RH_REGS {
                            nonce += 1;
                            tx.write(x, (nonce << 16) | round)?;
                        }
                        Ok(())
                    });
                    std::thread::yield_now();
                }
            })
        };
        writer.join().unwrap();
        auditors.into_iter().map(|a| a.join().unwrap()).sum()
    })
}

const LT_FLAG: usize = 0;
const LT_DATA: usize = 1;
const LT_SIDE: usize = 2;
/// Low flag bits carry the phase, mirroring the privatization scenario.
const LT_PHASE_MASK: u64 = 3;
const LT_PRIVATE: u64 = 1;
/// The value the owner settles the privatized data register to.
pub const LT_FINAL: u64 = 0x17F1;
/// The semantic payload of the straddler's side-register write (low 16
/// bits; the bits above are a per-attempt nonce).
pub const LT_SIDE_MARK: u64 = 0x51DE;
const LT_SIDE_MASK: u64 = (1 << 16) - 1;

/// Expected deterministic final registers: privatized flag, owner-settled
/// data, straddler-written side register.
pub fn long_tx_expected_finals() -> Vec<u64> {
    vec![LT_PRIVATE, LT_FINAL, LT_SIDE_MARK]
}

/// The long-transaction scenario: a fence must not retire while a
/// transaction that was active at issue is still (slowly) running.
///
/// Shape: the owner privatizes `LT_DATA` (flag transaction) *first*; the
/// straddler then opens a transaction on the unprivatized `LT_SIDE`
/// register and parks mid-body on a side channel. The owner issues its
/// fence while the straddler is parked — so the straddling transaction
/// brackets the whole fence — and on quiescing backends asserts the
/// ticket stays unresolved (against every driver: cooperative pollers AND
/// the background driver must not retire the period early). Only then is
/// the straddler released; the joined fence guarantees its commit, after
/// which the owner settles `LT_DATA` directly.
///
/// Ordering discipline (why the owner's flag transaction commits before
/// the straddler begins): under the global-lock backend a transaction
/// parked mid-body holds the lock, so any later transaction by another
/// thread would deadlock against it — the scenario therefore does all its
/// transactional work on the owner *before* parking the straddler, which
/// also makes the straddler's flag read deterministic.
fn long_tx<F: StmFactory>(stm: &F, real_fences: bool) -> u64 {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    let stage = AtomicUsize::new(0);
    let go = AtomicBool::new(false);
    std::thread::scope(|s| {
        let straddler = {
            let stm = stm.clone();
            let stage = &stage;
            let go = &go;
            s.spawn(move || {
                // Begin only after the owner's flag transaction committed.
                while stage.load(Ordering::SeqCst) < 1 {
                    std::thread::yield_now();
                }
                let mut h = stm.handle(1);
                // Nonce advances per attempt: an aborted attempt's write
                // stays in the history and may not repeat its value.
                let mut nonce = 0u64;
                h.atomic(|tx| {
                    nonce += 1;
                    // Guarded read: the region is privatized, so the
                    // discipline routes this transaction to the side
                    // register only. Deterministic by the stage ordering.
                    let flag = tx.read(LT_FLAG)?;
                    assert_eq!(flag & LT_PHASE_MASK, LT_PRIVATE, "began before the flag?");
                    // Tell the owner we are mid-transaction…
                    stage.store(2, Ordering::SeqCst);
                    // …and stay there until released: the slow part the
                    // fence has to wait out.
                    while !go.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                    tx.write(LT_SIDE, (nonce << 16) | LT_SIDE_MARK)
                });
            })
        };
        let mut h = stm.handle(0);
        let mut flag_nonce = 1u64;
        h.atomic(|tx| {
            flag_nonce += 1;
            tx.write(LT_FLAG, (flag_nonce << 2) | LT_PRIVATE)
        });
        stage.store(1, Ordering::SeqCst);
        while stage.load(Ordering::SeqCst) < 2 {
            std::thread::yield_now();
        }
        let mut ticket = h.fence_async();
        if real_fences {
            // Ample time for a buggy driver to retire the period early.
            std::thread::sleep(std::time::Duration::from_millis(5));
            assert!(
                !ticket.poll(),
                "fence retired with the straddling transaction still live"
            );
        }
        go.store(true, Ordering::SeqCst);
        h.fence_join(ticket);
        // The straddler has committed; the privatized register is ours.
        h.write_direct(LT_DATA, LT_FINAL);
        let lost = u64::from(h.read_direct(LT_DATA) != LT_FINAL);
        straddler.join().unwrap();
        lost
    })
}

/// Expected deterministic final registers for a scenario.
pub fn expected_finals(scenario: Scenario) -> Vec<u64> {
    match scenario {
        Scenario::Bank => bank_expected_finals(),
        Scenario::Privatization => privatization_expected_finals(),
        Scenario::Publication => publication_expected_finals(),
        Scenario::EpochBatch => epoch_batch_expected_finals(),
        Scenario::ReaderHeavy => reader_heavy_expected_finals(),
        Scenario::LongTx => long_tx_expected_finals(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_have_deterministic_finals_on_tl2() {
        for sc in Scenario::ALL {
            let run = run_scenario(sc, Backend::Tl2PerRegister, false);
            assert_eq!(run.lost_updates, 0, "{}", sc.label());
            assert_eq!(run.final_regs, expected_finals(sc), "{}", sc.label());
        }
    }

    #[test]
    fn recorded_epoch_batch_history_is_drf_and_opaque() {
        let run = run_scenario(Scenario::EpochBatch, Backend::Tl2PerRegister, true);
        assert_eq!(run.lost_updates, 0);
        assert_eq!(run.final_regs, epoch_batch_expected_finals());
        let v = check(run.history.as_ref().unwrap());
        assert!(
            v.well_formed,
            "batched async fences must record well-formed"
        );
        assert!(v.drf);
        assert_eq!(v.opaque, Some(true));
    }

    /// The long-transaction scenario must hold under BOTH driver modes: a
    /// background driver is exactly the component that could wrongly
    /// retire the straddled period early.
    #[test]
    fn recorded_long_tx_history_holds_under_both_driver_modes() {
        for mode in DriverMode::ALL {
            let run = run_scenario_mode(Scenario::LongTx, Backend::Tl2PerRegister, true, mode);
            assert_eq!(run.lost_updates, 0, "{}", mode.label());
            assert_eq!(
                run.final_regs,
                long_tx_expected_finals(),
                "{}",
                mode.label()
            );
            let v = check(run.history.as_ref().unwrap());
            assert!(
                v.well_formed,
                "{}: straddling txn must not make the history ill-formed",
                mode.label()
            );
            assert!(v.drf, "{}", mode.label());
            assert_eq!(v.opaque, Some(true), "{}", mode.label());
        }
    }

    #[test]
    fn recorded_bank_history_is_drf_and_opaque() {
        let run = run_scenario(Scenario::Bank, Backend::Tl2Striped { stripes: 4 }, true);
        let v = check(run.history.as_ref().unwrap());
        assert!(v.well_formed);
        assert!(v.drf);
        assert_eq!(v.opaque, Some(true));
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = Backend::ALL.iter().map(|b| b.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert!(Backend::Norec.label() == "norec");
        assert!(!Backend::Norec.fences_are_real());
        assert!(
            !Backend::Glock.fences_are_real(),
            "glock fence is immediate"
        );
        assert!(Backend::Tl2PerRegister.fences_are_real());
    }
}
