//! Evaluate litmus tests against TM configurations.

use crate::{Divergence, Litmus};
use tm_core::hb::is_drf;
use tm_core::opacity::{check_strong_opacity, CheckOptions};
use tm_lang::explorer::{explore_outcomes, explore_traces, Limits, PathStatus};
use tm_lang::prelude::*;

/// A TM configuration to run a litmus against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TmKind {
    /// The idealized strongly atomic TM (Sec 2.4); `spurious_aborts` explores
    /// abort branches.
    Atomic { spurious_aborts: bool },
    /// The TL2 specification (Fig 9) with a post-commit quiescence policy.
    Tl2 { implicit_fence: ImplicitFence },
    /// The eager in-place/undo-log TM (the paper's "similar problem": abort
    /// rollbacks overwrite privatized data).
    UndoEager,
    /// Single-global-lock TM.
    Glock,
}

impl TmKind {
    pub fn label(&self) -> String {
        match self {
            TmKind::Atomic {
                spurious_aborts: true,
            } => "atomic+aborts".into(),
            TmKind::Atomic {
                spurious_aborts: false,
            } => "atomic".into(),
            TmKind::Tl2 {
                implicit_fence: ImplicitFence::None,
            } => "tl2".into(),
            TmKind::Tl2 {
                implicit_fence: ImplicitFence::AfterEvery,
            } => "tl2+qall".into(),
            TmKind::Tl2 {
                implicit_fence: ImplicitFence::SkipReadOnly,
            } => "tl2+qbug".into(),
            TmKind::UndoEager => "undo".into(),
            TmKind::Glock => "glock".into(),
        }
    }
}

/// Result of running one litmus against one TM.
#[derive(Clone, Debug)]
pub struct RunReport {
    pub tm: TmKind,
    /// Number of distinct terminal outcomes.
    pub outcomes: usize,
    /// Terminal outcomes violating the postcondition.
    pub violations: usize,
    pub diverged: bool,
    pub blocked: bool,
    pub states: usize,
    pub truncated: bool,
}

impl RunReport {
    /// Did the litmus pass under this TM (postcondition on all outcomes, and
    /// no divergence if forbidden)?
    pub fn passed(&self, divergence: Divergence) -> bool {
        self.violations == 0
            && !self.blocked
            && (divergence == Divergence::Ignored || !self.diverged)
    }
}

/// Run a litmus against a TM configuration, exploring all outcomes.
pub fn run(l: &Litmus, tm: TmKind, limits: &Limits) -> RunReport {
    let p = &l.program;
    let n = p.nthreads();
    let r = match tm {
        TmKind::Atomic { spurious_aborts } => {
            explore_outcomes(p, AtomicOracle::new(p.nregs, n, spurious_aborts), limits)
        }
        TmKind::Tl2 { implicit_fence } => {
            let cfg = Tl2Config {
                implicit_fence,
                check_invariants: false,
            };
            explore_outcomes(p, Tl2Spec::new(p.nregs, n, cfg), limits)
        }
        TmKind::UndoEager => explore_outcomes(p, UndoSpec::new(p.nregs, n), limits),
        TmKind::Glock => explore_outcomes(p, GlockOracle::new(p.nregs, n), limits),
    };
    let violations = r.outcomes.iter().filter(|o| !(l.postcondition)(o)).count();
    RunReport {
        tm,
        outcomes: r.outcomes.len(),
        violations,
        diverged: r.diverged,
        blocked: r.blocked,
        states: r.states,
        truncated: r.truncated,
    }
}

/// DRF report for a litmus under the strongly atomic semantics.
#[derive(Clone, Debug)]
pub struct DrfReport {
    /// DRF(P, s, H_atomic): every explored history is race free.
    pub drf: bool,
    /// Number of maximal traces examined.
    pub traces: usize,
    /// Racy histories found (0 if DRF).
    pub racy_traces: usize,
    pub truncated: bool,
}

/// Check `DRF(P, s, H_atomic)` (Def 3.3) by enumerating every maximal trace
/// of the program under the atomic oracle (with spurious aborts, so abort
/// paths are covered) and race-checking each history. Races in a prefix
/// persist in every extension, so checking maximal traces suffices.
pub fn check_drf_atomic(l: &Litmus, limits: &Limits) -> DrfReport {
    let p = &l.program;
    let oracle = AtomicOracle::new(p.nregs, p.nthreads(), true);
    let mut traces = 0usize;
    let mut racy = 0usize;
    let res = explore_traces(p, oracle, limits, &mut |tr, _status| {
        traces += 1;
        if !is_drf(&tr.history()) {
            racy += 1;
        }
    });
    DrfReport {
        drf: racy == 0,
        traces,
        racy_traces: racy,
        truncated: res.truncated,
    }
}

/// Spot-check strong opacity of histories the TL2 spec produces for this
/// program: explore up to `max_checked` maximal traces and verify each
/// DRF history has a verified atomic witness (Theorem 6.5 / Lemma 6.4).
/// Returns `(histories_checked, opacity_failures)`.
pub fn spot_check_tl2_opacity(
    l: &Litmus,
    implicit_fence: ImplicitFence,
    max_checked: usize,
) -> (usize, usize) {
    let p = &l.program;
    let cfg = Tl2Config {
        implicit_fence,
        check_invariants: true,
    };
    let oracle = Tl2Spec::new(p.nregs, p.nthreads(), cfg);
    let limits = Limits {
        max_traces: max_checked,
        ..Limits::default()
    };
    let mut checked = 0usize;
    let mut failures = 0usize;
    explore_traces(p, oracle, &limits, &mut |tr, status| {
        if status != PathStatus::Terminal {
            return;
        }
        let h = tr.history();
        if !is_drf(&h) {
            // Strong opacity quantifies over DRF histories only (Def 4.2).
            return;
        }
        checked += 1;
        if check_strong_opacity(&h, &CheckOptions::default()).is_err() {
            failures += 1;
        }
    });
    (checked, failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    fn limits() -> Limits {
        Limits::default()
    }

    #[test]
    fn fig1a_unfenced_violated_by_tl2_but_not_atomic() {
        let l = programs::fig1a(false);
        let atomic = run(
            &l,
            TmKind::Atomic {
                spurious_aborts: true,
            },
            &limits(),
        );
        assert!(atomic.passed(l.divergence), "{atomic:?}");
        let tl2 = run(
            &l,
            TmKind::Tl2 {
                implicit_fence: ImplicitFence::None,
            },
            &limits(),
        );
        assert!(tl2.violations > 0, "delayed commit must manifest: {tl2:?}");
    }

    #[test]
    fn fig1a_fenced_safe_everywhere() {
        let l = programs::fig1a(true);
        for tm in [
            TmKind::Atomic {
                spurious_aborts: true,
            },
            TmKind::Tl2 {
                implicit_fence: ImplicitFence::None,
            },
            TmKind::Glock,
        ] {
            let r = run(&l, tm, &limits());
            assert!(r.passed(l.divergence), "{tm:?}: {r:?}");
        }
    }

    #[test]
    fn fig1b_unfenced_dooms_a_transaction() {
        let l = programs::fig1b(false);
        let tl2 = run(
            &l,
            TmKind::Tl2 {
                implicit_fence: ImplicitFence::None,
            },
            &limits(),
        );
        assert!(tl2.diverged, "doomed zombie loop must be detected: {tl2:?}");
        let atomic = run(
            &l,
            TmKind::Atomic {
                spurious_aborts: true,
            },
            &limits(),
        );
        assert!(!atomic.diverged, "strong atomicity forbids the zombie loop");
    }

    #[test]
    fn fig1b_fenced_no_divergence() {
        let l = programs::fig1b(true);
        let tl2 = run(
            &l,
            TmKind::Tl2 {
                implicit_fence: ImplicitFence::None,
            },
            &limits(),
        );
        assert!(tl2.passed(l.divergence), "{tl2:?}");
    }

    /// The paper's "similar problem" for in-place TMs: the unfenced Fig 1(a)
    /// fails under the undo TM through the rollback path; the fenced variant
    /// is safe there too.
    #[test]
    fn fig1a_undo_tm_rollback_anomaly() {
        let l = programs::fig1a(false);
        let undo = run(&l, TmKind::UndoEager, &limits());
        assert!(undo.violations > 0, "rollback must clobber ν: {undo:?}");
        let fenced = programs::fig1a(true);
        let r = run(&fenced, TmKind::UndoEager, &limits());
        assert!(r.passed(fenced.divergence), "{r:?}");
    }

    /// Same for the doomed-transaction shape: under the eager TM a zombie
    /// can loop on privatized data unless fenced out.
    #[test]
    fn fig1b_undo_tm() {
        let fenced = programs::fig1b(true);
        let r = run(&fenced, TmKind::UndoEager, &limits());
        assert!(r.passed(fenced.divergence), "{r:?}");
    }

    #[test]
    fn drf_verdicts_match_expectations() {
        for l in programs::all() {
            let d = check_drf_atomic(&l, &limits());
            assert!(!d.truncated, "{}: truncated DRF check", l.name);
            assert_eq!(
                d.drf, l.expect_drf,
                "{}: drf={} expected {}",
                l.name, d.drf, l.expect_drf
            );
        }
    }
}
