//! Actions: the alphabet of traces (paper Fig 4 plus primitive actions).
//!
//! A *TM interface action* marks the control flow of a thread crossing the
//! boundary between the program and the TM: request actions transfer control
//! to the TM, response actions transfer it back. A *primitive action* denotes
//! execution of a thread-local primitive command; it never appears in
//! histories (which are traces projected onto TM interface actions).

use crate::ids::{ActionId, Reg, ThreadId, Value};
use std::fmt;

/// Opaque token identifying a primitive command instance.
///
/// The language layer (`tm-lang`) encodes enough information here (program
/// point and, where relevant, the value assigned) so that token equality is
/// command equality, which is what observational equivalence (Def 5.1)
/// compares.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrimTag(pub u64);

/// The kind of an action (Fig 4).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    // ----- request actions -----
    /// `(a, t, txbegin)`: entering an atomic block.
    TxBegin,
    /// `(a, t, txcommit)`: the transaction tries to commit.
    TxCommit,
    /// `(a, t, write(x, v))`: invocation of `x.write(v)`.
    Write(Reg, Value),
    /// `(a, t, read(x))`: invocation of `x.read()`.
    Read(Reg),
    /// `(a, t, fbegin)`: a transactional fence starts.
    FBegin,

    // ----- response actions -----
    /// `(a, t, ok)`: successful response to `txbegin`.
    Ok,
    /// `(a, t, committed)`: the transaction committed.
    Committed,
    /// `(a, t, aborted)`: the TM aborted the transaction. May respond to any
    /// transactional request.
    Aborted,
    /// `(a, t, ret(⊥))`: response to a `write`.
    RetUnit,
    /// `(a, t, ret(v))`: response to a `read`, annotated with the value read.
    RetVal(Value),
    /// `(a, t, fend)`: the fence completed.
    FEnd,

    // ----- primitive actions (trace-only, never in histories) -----
    /// `(a, t, c)` for a primitive command `c` over thread-local variables.
    Prim(PrimTag),
}

/// One computation step: `(a, t, kind)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Action {
    pub id: ActionId,
    pub thread: ThreadId,
    pub kind: Kind,
}

impl Kind {
    /// Is this a TM interface action (request or response)?
    #[inline]
    pub fn is_tm_interface(self) -> bool {
        !matches!(self, Kind::Prim(_))
    }

    /// Is this a request action?
    #[inline]
    pub fn is_request(self) -> bool {
        matches!(
            self,
            Kind::TxBegin | Kind::TxCommit | Kind::Write(..) | Kind::Read(_) | Kind::FBegin
        )
    }

    /// Is this a response action?
    #[inline]
    pub fn is_response(self) -> bool {
        matches!(
            self,
            Kind::Ok
                | Kind::Committed
                | Kind::Aborted
                | Kind::RetUnit
                | Kind::RetVal(_)
                | Kind::FEnd
        )
    }

    /// The register accessed, if this is a read/write request.
    #[inline]
    pub fn accessed_reg(self) -> Option<Reg> {
        match self {
            Kind::Write(x, _) | Kind::Read(x) => Some(x),
            _ => None,
        }
    }

    /// Is this a write request?
    #[inline]
    pub fn is_write_req(self) -> bool {
        matches!(self, Kind::Write(..))
    }

    /// Is this a read request?
    #[inline]
    pub fn is_read_req(self) -> bool {
        matches!(self, Kind::Read(_))
    }

    /// Is `resp` a legal response to `self` per Fig 4?
    pub fn matches_response(self, resp: Kind) -> bool {
        matches!(
            (self, resp),
            (Kind::TxBegin, Kind::Ok | Kind::Aborted)
                | (Kind::TxCommit, Kind::Committed | Kind::Aborted)
                | (Kind::Write(..), Kind::RetUnit | Kind::Aborted)
                | (Kind::Read(_), Kind::RetVal(_) | Kind::Aborted)
                | (Kind::FBegin, Kind::FEnd)
        )
    }
}

impl Action {
    pub fn new(id: u64, thread: ThreadId, kind: Kind) -> Self {
        Action {
            id: ActionId(id),
            thread,
            kind,
        }
    }
}

impl fmt::Debug for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Kind::TxBegin => write!(f, "txbegin"),
            Kind::TxCommit => write!(f, "txcommit"),
            Kind::Write(x, v) => write!(f, "write({x},{v})"),
            Kind::Read(x) => write!(f, "read({x})"),
            Kind::FBegin => write!(f, "fbegin"),
            Kind::Ok => write!(f, "ok"),
            Kind::Committed => write!(f, "committed"),
            Kind::Aborted => write!(f, "aborted"),
            Kind::RetUnit => write!(f, "ret(⊥)"),
            Kind::RetVal(v) => write!(f, "ret({v})"),
            Kind::FEnd => write!(f, "fend"),
            Kind::Prim(PrimTag(p)) => write!(f, "prim#{p}"),
        }
    }
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?},{},{:?})", self.id, self.thread, self.kind)
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_response_partition() {
        let reqs = [
            Kind::TxBegin,
            Kind::TxCommit,
            Kind::Write(Reg(0), 1),
            Kind::Read(Reg(0)),
            Kind::FBegin,
        ];
        let resps = [
            Kind::Ok,
            Kind::Committed,
            Kind::Aborted,
            Kind::RetUnit,
            Kind::RetVal(3),
            Kind::FEnd,
        ];
        for r in reqs {
            assert!(r.is_request() && !r.is_response() && r.is_tm_interface());
        }
        for r in resps {
            assert!(r.is_response() && !r.is_request() && r.is_tm_interface());
        }
        let p = Kind::Prim(PrimTag(0));
        assert!(!p.is_request() && !p.is_response() && !p.is_tm_interface());
    }

    #[test]
    fn matching_per_fig4() {
        assert!(Kind::TxBegin.matches_response(Kind::Ok));
        assert!(Kind::TxBegin.matches_response(Kind::Aborted));
        assert!(!Kind::TxBegin.matches_response(Kind::Committed));
        assert!(Kind::TxCommit.matches_response(Kind::Committed));
        assert!(Kind::TxCommit.matches_response(Kind::Aborted));
        assert!(Kind::Write(Reg(1), 5).matches_response(Kind::RetUnit));
        assert!(Kind::Write(Reg(1), 5).matches_response(Kind::Aborted));
        assert!(!Kind::Write(Reg(1), 5).matches_response(Kind::RetVal(5)));
        assert!(Kind::Read(Reg(1)).matches_response(Kind::RetVal(5)));
        assert!(Kind::Read(Reg(1)).matches_response(Kind::Aborted));
        assert!(Kind::FBegin.matches_response(Kind::FEnd));
        assert!(!Kind::FBegin.matches_response(Kind::Aborted));
    }

    #[test]
    fn accessed_reg() {
        assert_eq!(Kind::Write(Reg(2), 9).accessed_reg(), Some(Reg(2)));
        assert_eq!(Kind::Read(Reg(3)).accessed_reg(), Some(Reg(3)));
        assert_eq!(Kind::TxBegin.accessed_reg(), None);
    }
}
