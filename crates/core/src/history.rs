//! Structural index over a history: transactions (`txns(H)`), their statuses,
//! non-transactional accesses (`nontxn(H)`), fences, and request/response
//! matching. Everything downstream (happens-before, graphs, the checker)
//! works off this index.

use crate::action::Kind;
use crate::ids::{Reg, ThreadId, Value};
use crate::trace::History;

/// Status of a transaction in a history (Sec 2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TxnStatus {
    /// Ends with a `committed` action.
    Committed,
    /// Ends with an `aborted` action.
    Aborted,
    /// Ends with a `txcommit` request without a response.
    CommitPending,
    /// Anything else.
    Live,
}

/// A transaction: a maximal subsequence of a thread's actions starting at
/// `txbegin`, ending at `committed`/`aborted` if completed.
#[derive(Clone, Debug)]
pub struct Txn {
    pub thread: ThreadId,
    /// Indices (into the history) of the transaction's actions, in order.
    pub actions: Vec<usize>,
    pub status: TxnStatus,
}

/// A non-transactional access: a matching read/write request/response pair
/// outside any transaction. The response may be missing at the very end of a
/// history prefix.
#[derive(Clone, Debug)]
pub struct NtxAccess {
    pub thread: ThreadId,
    pub req: usize,
    pub resp: Option<usize>,
    pub reg: Reg,
    /// `Some(v)` if this is a write of `v`, `None` for a read.
    pub write: Option<Value>,
    /// For reads with a response: the value returned.
    pub read_value: Option<Value>,
}

/// A fence execution: fbegin and (if completed) fend.
#[derive(Clone, Debug)]
pub struct Fence {
    pub thread: ThreadId,
    pub fbegin: usize,
    pub fend: Option<usize>,
}

/// Which structural entity an action belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Owner {
    Txn(usize),
    Ntx(usize),
    Fence(usize),
}

/// Index over a history. Built once, O(n).
#[derive(Clone, Debug)]
pub struct HistoryIndex {
    pub txns: Vec<Txn>,
    pub ntx: Vec<NtxAccess>,
    pub fences: Vec<Fence>,
    /// For each action index: the entity owning it.
    pub owner: Vec<Owner>,
    /// For each request index: the index of its matching response, if present.
    pub resp_of: Vec<Option<usize>>,
    /// Number of threads (max thread id + 1).
    pub nthreads: usize,
    /// Number of registers (max register id + 1).
    pub nregs: usize,
}

impl Txn {
    pub fn first(&self) -> usize {
        self.actions[0]
    }
    pub fn last(&self) -> usize {
        *self.actions.last().unwrap()
    }
    pub fn is_completed(&self) -> bool {
        matches!(self.status, TxnStatus::Committed | TxnStatus::Aborted)
    }
}

impl NtxAccess {
    pub fn is_write(&self) -> bool {
        self.write.is_some()
    }
    pub fn last(&self) -> usize {
        self.resp.unwrap_or(self.req)
    }
}

impl HistoryIndex {
    /// Build the index. The history must be well-formed (`validate()`), which
    /// the debug assertion checks.
    pub fn new(h: &History) -> Self {
        debug_assert_eq!(h.validate(), Ok(()), "history must be well-formed");
        let acts = h.actions();
        let nthreads = acts.iter().map(|a| a.thread.0 + 1).max().unwrap_or(0) as usize;
        let nregs = acts
            .iter()
            .filter_map(|a| a.kind.accessed_reg())
            .map(|r| r.0 + 1)
            .max()
            .unwrap_or(0) as usize;

        let mut txns: Vec<Txn> = Vec::new();
        let mut ntx: Vec<NtxAccess> = Vec::new();
        let mut fences: Vec<Fence> = Vec::new();
        let mut owner: Vec<Owner> = Vec::with_capacity(acts.len());
        let mut resp_of: Vec<Option<usize>> = vec![None; acts.len()];

        // Per-thread state.
        let mut cur_txn: Vec<Option<usize>> = vec![None; nthreads];
        let mut cur_ntx: Vec<Option<usize>> = vec![None; nthreads];
        let mut cur_fence: Vec<Option<usize>> = vec![None; nthreads];
        let mut pending_req: Vec<Option<usize>> = vec![None; nthreads];

        for (i, a) in acts.iter().enumerate() {
            let t = a.thread.idx();
            match a.kind {
                Kind::TxBegin => {
                    let id = txns.len();
                    txns.push(Txn {
                        thread: a.thread,
                        actions: vec![i],
                        status: TxnStatus::Live,
                    });
                    cur_txn[t] = Some(id);
                    pending_req[t] = Some(i);
                    owner.push(Owner::Txn(id));
                }
                Kind::FBegin => {
                    let id = fences.len();
                    fences.push(Fence {
                        thread: a.thread,
                        fbegin: i,
                        fend: None,
                    });
                    cur_fence[t] = Some(id);
                    pending_req[t] = Some(i);
                    owner.push(Owner::Fence(id));
                }
                Kind::FEnd => {
                    let id = cur_fence[t].take().expect("fend matches fbegin");
                    fences[id].fend = Some(i);
                    if let Some(r) = pending_req[t].take() {
                        resp_of[r] = Some(i);
                    }
                    owner.push(Owner::Fence(id));
                }
                Kind::Read(x) | Kind::Write(x, _) => {
                    pending_req[t] = Some(i);
                    if let Some(txid) = cur_txn[t] {
                        txns[txid].actions.push(i);
                        owner.push(Owner::Txn(txid));
                    } else {
                        let id = ntx.len();
                        let write = match a.kind {
                            Kind::Write(_, v) => Some(v),
                            _ => None,
                        };
                        ntx.push(NtxAccess {
                            thread: a.thread,
                            req: i,
                            resp: None,
                            reg: x,
                            write,
                            read_value: None,
                        });
                        cur_ntx[t] = Some(id);
                        owner.push(Owner::Ntx(id));
                    }
                }
                Kind::TxCommit => {
                    let txid = cur_txn[t].expect("txcommit inside a transaction");
                    txns[txid].actions.push(i);
                    txns[txid].status = TxnStatus::CommitPending;
                    pending_req[t] = Some(i);
                    owner.push(Owner::Txn(txid));
                }
                Kind::Ok => {
                    let txid = cur_txn[t].expect("ok inside a transaction");
                    txns[txid].actions.push(i);
                    if let Some(r) = pending_req[t].take() {
                        resp_of[r] = Some(i);
                    }
                    owner.push(Owner::Txn(txid));
                }
                Kind::Committed => {
                    let txid = cur_txn[t].take().expect("committed inside a transaction");
                    txns[txid].actions.push(i);
                    txns[txid].status = TxnStatus::Committed;
                    if let Some(r) = pending_req[t].take() {
                        resp_of[r] = Some(i);
                    }
                    owner.push(Owner::Txn(txid));
                }
                Kind::Aborted => {
                    let txid = cur_txn[t].take().expect("aborted inside a transaction");
                    txns[txid].actions.push(i);
                    txns[txid].status = TxnStatus::Aborted;
                    if let Some(r) = pending_req[t].take() {
                        resp_of[r] = Some(i);
                    }
                    owner.push(Owner::Txn(txid));
                }
                Kind::RetUnit | Kind::RetVal(_) => {
                    if let Some(r) = pending_req[t].take() {
                        resp_of[r] = Some(i);
                    }
                    if let Some(txid) = cur_txn[t] {
                        txns[txid].actions.push(i);
                        owner.push(Owner::Txn(txid));
                    } else {
                        let id = cur_ntx[t].take().expect("response matches ntx access");
                        ntx[id].resp = Some(i);
                        if let Kind::RetVal(v) = a.kind {
                            ntx[id].read_value = Some(v);
                        }
                        owner.push(Owner::Ntx(id));
                    }
                }
                Kind::Prim(_) => unreachable!("histories contain no primitive actions"),
            }
        }

        HistoryIndex {
            txns,
            ntx,
            fences,
            owner,
            resp_of,
            nthreads,
            nregs,
        }
    }

    /// The transaction containing action `i`, if any.
    pub fn txn_of(&self, i: usize) -> Option<usize> {
        match self.owner[i] {
            Owner::Txn(t) => Some(t),
            _ => None,
        }
    }

    /// Is action `i` transactional (inside a transaction)?
    pub fn is_transactional(&self, i: usize) -> bool {
        matches!(self.owner[i], Owner::Txn(_))
    }

    /// Is action `i` non-transactional (a TM interface action outside any
    /// transaction — includes fence actions, per Sec 2.2)?
    pub fn is_nontransactional(&self, i: usize) -> bool {
        !self.is_transactional(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::ids::ThreadId;

    fn a(id: u64, t: u32, kind: Kind) -> Action {
        Action::new(id, ThreadId(t), kind)
    }

    fn sample() -> History {
        // t0: committed txn writing x0=1; then ntx read of x0.
        // t1: live txn that read x0; t2: a fence.
        History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Write(Reg(0), 1)),
            a(3, 0, Kind::RetUnit),
            a(4, 0, Kind::TxCommit),
            a(5, 0, Kind::Committed),
            a(6, 2, Kind::FBegin),
            a(7, 2, Kind::FEnd),
            a(8, 1, Kind::TxBegin),
            a(9, 1, Kind::Ok),
            a(10, 1, Kind::Read(Reg(0))),
            a(11, 1, Kind::RetVal(1)),
            a(12, 0, Kind::Read(Reg(0))),
            a(13, 0, Kind::RetVal(1)),
        ])
    }

    #[test]
    fn index_structure() {
        let h = sample();
        let ix = HistoryIndex::new(&h);
        assert_eq!(ix.txns.len(), 2);
        assert_eq!(ix.txns[0].status, TxnStatus::Committed);
        assert_eq!(ix.txns[0].actions, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(ix.txns[1].status, TxnStatus::Live);
        assert_eq!(ix.ntx.len(), 1);
        assert_eq!(ix.ntx[0].req, 12);
        assert_eq!(ix.ntx[0].resp, Some(13));
        assert_eq!(ix.ntx[0].read_value, Some(1));
        assert!(!ix.ntx[0].is_write());
        assert_eq!(ix.fences.len(), 1);
        assert_eq!(ix.fences[0].fend, Some(7));
        assert_eq!(ix.nthreads, 3);
        assert_eq!(ix.nregs, 1);
    }

    #[test]
    fn owners_and_matching() {
        let h = sample();
        let ix = HistoryIndex::new(&h);
        assert_eq!(ix.owner[0], Owner::Txn(0));
        assert_eq!(ix.owner[6], Owner::Fence(0));
        assert_eq!(ix.owner[12], Owner::Ntx(0));
        assert_eq!(ix.resp_of[0], Some(1));
        assert_eq!(ix.resp_of[2], Some(3));
        assert_eq!(ix.resp_of[4], Some(5));
        assert_eq!(ix.resp_of[6], Some(7));
        assert_eq!(ix.resp_of[10], Some(11));
        assert_eq!(ix.resp_of[12], Some(13));
        assert!(ix.is_transactional(10));
        assert!(ix.is_nontransactional(12));
        assert!(ix.is_nontransactional(6));
    }

    #[test]
    fn commit_pending_status() {
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::TxCommit),
        ]);
        let ix = HistoryIndex::new(&h);
        assert_eq!(ix.txns[0].status, TxnStatus::CommitPending);
    }

    #[test]
    fn aborted_status() {
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Read(Reg(0))),
            a(3, 0, Kind::Aborted),
        ]);
        let ix = HistoryIndex::new(&h);
        assert_eq!(ix.txns[0].status, TxnStatus::Aborted);
        assert_eq!(ix.txns[0].actions, vec![0, 1, 2, 3]);
    }
}
