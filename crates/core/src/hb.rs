//! Conflicts, data races, and data-race freedom (Defs 3.1–3.3), built on the
//! happens-before relation of Def 3.4.

use crate::action::Kind;
use crate::bitrel::BitRel;
use crate::history::HistoryIndex;
use crate::relations::HbBuilder;
use crate::trace::History;

/// A data race: two conflicting actions unordered by happens-before.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Race {
    /// Index of the non-transactional request action.
    pub ntx_action: usize,
    /// Index of the transactional request action.
    pub txn_action: usize,
}

/// The result of analyzing a history: happens-before plus any races.
pub struct HbAnalysis {
    pub hb: BitRel,
    pub races: Vec<Race>,
}

/// Do two request actions conflict (Def 3.1)? `i` must be non-transactional
/// and `j` transactional (or vice versa); they conflict if executed by
/// different threads, access the same register, and at least one writes.
fn conflicting(h: &History, i: usize, j: usize) -> bool {
    let (a, b) = (h.actions()[i], h.actions()[j]);
    if a.thread == b.thread {
        return false;
    }
    match (a.kind.accessed_reg(), b.kind.accessed_reg()) {
        (Some(x), Some(y)) if x == y => a.kind.is_write_req() || b.kind.is_write_req(),
        _ => false,
    }
}

/// Analyze a history: compute `hb(H)` and enumerate all data races.
pub fn analyze(h: &History, ix: &HistoryIndex) -> HbAnalysis {
    let hb = HbBuilder::build(h, ix).closure();
    let races = find_races(h, ix, &hb);
    HbAnalysis { hb, races }
}

/// Enumerate data races given a closed happens-before matrix.
pub fn find_races(h: &History, ix: &HistoryIndex, hb: &BitRel) -> Vec<Race> {
    // Collect transactional access request indices and ntx request indices.
    let mut txn_reqs: Vec<usize> = Vec::new();
    for txn in &ix.txns {
        for &i in &txn.actions {
            let k = h.actions()[i].kind;
            if matches!(k, Kind::Read(_) | Kind::Write(..)) {
                txn_reqs.push(i);
            }
        }
    }
    let mut races = Vec::new();
    for ntx in &ix.ntx {
        let i = ntx.req;
        for &j in &txn_reqs {
            if conflicting(h, i, j) && !hb.has(i, j) && !hb.has(j, i) {
                races.push(Race {
                    ntx_action: i,
                    txn_action: j,
                });
            }
        }
    }
    races
}

/// Is the history data-race free (Def 3.2)?
pub fn is_drf(h: &History) -> bool {
    let ix = HistoryIndex::new(h);
    analyze(h, &ix).races.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::ids::{Reg, ThreadId};

    fn a(id: u64, t: u32, kind: Kind) -> Action {
        Action::new(id, ThreadId(t), kind)
    }

    /// Fig 3 shape: T (t0) writes x,y; ν1,ν2 (t1) read x,y concurrently.
    /// The non-transactional reads race with the transactional writes.
    #[test]
    fn racy_fig3() {
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Write(Reg(0), 1)),
            a(3, 0, Kind::RetUnit),
            a(4, 1, Kind::Read(Reg(0))), // ν1 interleaves with T
            a(5, 1, Kind::RetVal(1)),
            a(6, 0, Kind::Write(Reg(1), 2)),
            a(7, 0, Kind::RetUnit),
            a(8, 1, Kind::Read(Reg(1))), // ν2
            a(9, 1, Kind::RetVal(0)),
            a(10, 0, Kind::TxCommit),
            a(11, 0, Kind::Committed),
        ]);
        assert!(!is_drf(&h));
        let ix = HistoryIndex::new(&h);
        let an = analyze(&h, &ix);
        // ν1 (4) races with the write to x0 (2); ν2 (8) with the write to x1 (6).
        assert!(an.races.contains(&Race {
            ntx_action: 4,
            txn_action: 2
        }));
        assert!(an.races.contains(&Race {
            ntx_action: 8,
            txn_action: 6
        }));
    }

    /// Fig 1 with a fence between T1 and ν: T2 ended before the fence, so the
    /// bf edge orders T2's accesses before ν — no race.
    #[test]
    fn privatization_with_fence_is_drf() {
        let h = History::new(vec![
            // T2 (t1): reads flag x0 (=0: not private), writes x1 := 42.
            a(0, 1, Kind::TxBegin),
            a(1, 1, Kind::Ok),
            a(2, 1, Kind::Read(Reg(0))),
            a(3, 1, Kind::RetVal(0)),
            a(4, 1, Kind::Write(Reg(1), 42)),
            a(5, 1, Kind::RetUnit),
            a(6, 1, Kind::TxCommit),
            a(7, 1, Kind::Committed),
            // T1 (t0): privatizes, setting flag x0 := 1.
            a(8, 0, Kind::TxBegin),
            a(9, 0, Kind::Ok),
            a(10, 0, Kind::Write(Reg(0), 1)),
            a(11, 0, Kind::RetUnit),
            a(12, 0, Kind::TxCommit),
            a(13, 0, Kind::Committed),
            // fence (t0)
            a(14, 0, Kind::FBegin),
            a(15, 0, Kind::FEnd),
            // ν (t0): non-transactional write x1 := 7.
            a(16, 0, Kind::Write(Reg(1), 7)),
            a(17, 0, Kind::RetUnit),
        ]);
        assert!(is_drf(&h));
        // Sanity: T2's write (4) happens-before ν's write (16) via bf.
        let ix = HistoryIndex::new(&h);
        let an = analyze(&h, &ix);
        assert!(an.hb.has(4, 16));
    }

    /// Same shape WITHOUT the fence: T2's accesses to x1 race with ν.
    #[test]
    fn privatization_without_fence_racy() {
        let h = History::new(vec![
            a(0, 1, Kind::TxBegin),
            a(1, 1, Kind::Ok),
            a(2, 1, Kind::Read(Reg(0))),
            a(3, 1, Kind::RetVal(0)),
            a(4, 1, Kind::Write(Reg(1), 42)),
            a(5, 1, Kind::RetUnit),
            a(6, 1, Kind::TxCommit),
            a(7, 1, Kind::Committed),
            a(8, 0, Kind::TxBegin),
            a(9, 0, Kind::Ok),
            a(10, 0, Kind::Write(Reg(0), 1)),
            a(11, 0, Kind::RetUnit),
            a(12, 0, Kind::TxCommit),
            a(13, 0, Kind::Committed),
            a(16, 0, Kind::Write(Reg(1), 7)),
            a(17, 0, Kind::RetUnit),
        ]);
        assert!(!is_drf(&h));
    }

    /// Fig 6 shape: privatization by agreement outside transactions. The
    /// client order cl orders ν (flag write) before ν′ (flag read), hence
    /// T's write before ν′′ — DRF.
    #[test]
    fn privatization_by_agreement_is_drf() {
        let h = History::new(vec![
            // T (t0): writes x1 := 42 transactionally.
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Write(Reg(1), 42)),
            a(3, 0, Kind::RetUnit),
            a(4, 0, Kind::TxCommit),
            a(5, 0, Kind::Committed),
            // ν (t0): sets the flag non-transactionally x0 := 1.
            a(6, 0, Kind::Write(Reg(0), 1)),
            a(7, 0, Kind::RetUnit),
            // ν′ (t1): reads the flag = 1.
            a(8, 1, Kind::Read(Reg(0))),
            a(9, 1, Kind::RetVal(1)),
            // ν′′ (t1): reads x1.
            a(10, 1, Kind::Read(Reg(1))),
            a(11, 1, Kind::RetVal(42)),
        ]);
        assert!(is_drf(&h));
        let ix = HistoryIndex::new(&h);
        let an = analyze(&h, &ix);
        // T's write (2) hb ν′′ (10) via po;cl.
        assert!(an.hb.has(2, 10));
    }

    /// Conflicts require different threads.
    #[test]
    fn same_thread_never_races() {
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Write(Reg(0), 1)),
            a(3, 0, Kind::RetUnit),
            a(4, 0, Kind::TxCommit),
            a(5, 0, Kind::Committed),
            a(6, 0, Kind::Write(Reg(0), 2)),
            a(7, 0, Kind::RetUnit),
        ]);
        assert!(is_drf(&h));
    }

    /// Two non-transactional accesses never race (SC base model).
    #[test]
    fn ntx_ntx_never_races() {
        let h = History::new(vec![
            a(0, 0, Kind::Write(Reg(0), 1)),
            a(1, 0, Kind::RetUnit),
            a(2, 1, Kind::Write(Reg(0), 2)),
            a(3, 1, Kind::RetUnit),
        ]);
        assert!(is_drf(&h));
    }

    /// Read-read pairs do not conflict even across the txn/ntx boundary.
    #[test]
    fn read_read_no_conflict() {
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Read(Reg(0))),
            a(3, 0, Kind::RetVal(0)),
            a(4, 1, Kind::Read(Reg(0))),
            a(5, 1, Kind::RetVal(0)),
            a(6, 0, Kind::TxCommit),
            a(7, 0, Kind::Committed),
        ]);
        assert!(is_drf(&h));
    }
}
