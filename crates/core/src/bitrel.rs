//! Dense bit-matrix relations over action (or node) indices, with transitive
//! closure specialized for execution-order-respecting edge sets (every edge
//! goes from a smaller to a larger index), which is what all the paper's
//! relations satisfy.

/// A binary relation on `{0, …, n-1}` stored as a bit matrix.
#[derive(Clone, PartialEq, Eq)]
pub struct BitRel {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitRel {
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BitRel {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    pub fn add(&mut self, i: usize, j: usize) {
        debug_assert!(i < self.n && j < self.n);
        self.bits[i * self.words_per_row + j / 64] |= 1 << (j % 64);
    }

    #[inline]
    pub fn has(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.n && j < self.n);
        self.bits[i * self.words_per_row + j / 64] & (1 << (j % 64)) != 0
    }

    #[inline]
    fn row(&self, i: usize) -> &[u64] {
        &self.bits[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Union in place.
    pub fn union_with(&mut self, other: &BitRel) {
        debug_assert_eq!(self.n, other.n);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Successors of `i` as an iterator of indices.
    pub fn succs(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let row = self.row(i);
        row.iter()
            .enumerate()
            .flat_map(move |(w, &word)| BitIter { word, base: w * 64 })
    }

    /// Transitive closure, assuming every edge `(i, j)` has `i < j` (true of
    /// all relations derived from execution order). Runs right-to-left:
    /// `reach[i] = edges[i] ∪ ⋃_{j ∈ edges[i]} reach[j]`; row `j > i` is
    /// already final when row `i` is processed.
    pub fn closure_forward(&self) -> BitRel {
        let mut reach = self.clone();
        let wpr = self.words_per_row;
        let mut succs: Vec<usize> = Vec::new();
        for i in (0..self.n).rev() {
            succs.clear();
            succs.extend(self.succs(i));
            for &j in &succs {
                debug_assert!(j > i, "closure_forward requires forward edges");
                let (left, right) = reach.bits.split_at_mut(j * wpr);
                let dst = &mut left[i * wpr..(i + 1) * wpr];
                let src = &right[..wpr];
                for w in 0..wpr {
                    dst[w] |= src[w];
                }
            }
        }
        reach
    }

    /// Does the relation (viewed as a digraph) contain a cycle?
    pub fn has_cycle(&self) -> bool {
        self.topo_sort().is_none()
    }

    /// Topological sort (Kahn). `None` if cyclic. Ties are broken by smallest
    /// index first, so the output is the lexicographically-least topological
    /// order — deterministic and "closest to" the original order.
    pub fn topo_sort(&self) -> Option<Vec<usize>> {
        let n = self.n;
        let mut indeg = vec![0usize; n];
        for i in 0..n {
            for j in self.succs(i) {
                indeg[j] += 1;
            }
        }
        // Min-heap on index for deterministic output.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<Reverse<usize>> =
            (0..n).filter(|&i| indeg[i] == 0).map(Reverse).collect();
        let mut out = Vec::with_capacity(n);
        while let Some(Reverse(i)) = heap.pop() {
            out.push(i);
            for j in self.succs(i) {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    heap.push(Reverse(j));
                }
            }
        }
        (out.len() == n).then_some(out)
    }
}

struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;
    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

impl std::fmt::Debug for BitRel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitRel{{")?;
        let mut first = true;
        for i in 0..self.n {
            for j in self.succs(i) {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{i}->{j}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut r = BitRel::new(100);
        r.add(3, 70);
        r.add(3, 5);
        assert!(r.has(3, 70));
        assert!(r.has(3, 5));
        assert!(!r.has(5, 3));
        assert_eq!(r.succs(3).collect::<Vec<_>>(), vec![5, 70]);
    }

    #[test]
    fn closure_chain() {
        let mut r = BitRel::new(5);
        r.add(0, 1);
        r.add(1, 2);
        r.add(2, 3);
        r.add(3, 4);
        let c = r.closure_forward();
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(c.has(i, j), i < j, "({i},{j})");
            }
        }
    }

    #[test]
    fn closure_diamond() {
        let mut r = BitRel::new(4);
        r.add(0, 1);
        r.add(0, 2);
        r.add(1, 3);
        r.add(2, 3);
        let c = r.closure_forward();
        assert!(c.has(0, 3));
        assert!(!c.has(1, 2));
        assert!(!c.has(2, 1));
    }

    #[test]
    fn topo_sort_dag() {
        let mut r = BitRel::new(4);
        r.add(2, 0);
        r.add(0, 1);
        r.add(0, 3);
        let order = r.topo_sort().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (k, &i) in order.iter().enumerate() {
                p[i] = k;
            }
            p
        };
        assert!(pos[2] < pos[0]);
        assert!(pos[0] < pos[1]);
        assert!(pos[0] < pos[3]);
        assert!(!r.has_cycle());
    }

    #[test]
    fn cycle_detected() {
        let mut r = BitRel::new(3);
        r.add(0, 1);
        r.add(1, 2);
        r.add(2, 0);
        assert!(r.has_cycle());
        assert!(r.topo_sort().is_none());
    }

    #[test]
    fn topo_sort_is_deterministic_min_index() {
        let r = BitRel::new(3);
        assert_eq!(r.topo_sort().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn union() {
        let mut a = BitRel::new(3);
        a.add(0, 1);
        let mut b = BitRel::new(3);
        b.add(1, 2);
        a.union_with(&b);
        assert!(a.has(0, 1) && a.has(1, 2));
    }
}
