//! # tm-core — the formal model of *Safe Privatization in Transactional Memory*
//!
//! This crate makes the definitions of Khyzha, Attiya, Gotsman and Rinetzky
//! (PPoPP 2018) executable:
//!
//! * **Traces and histories** ([`trace`], [`action`]): the action alphabet of
//!   Fig 4 and the well-formedness conditions of Def 2.1/A.1, including the
//!   fence blocking discipline.
//! * **Happens-before and DRF** ([`relations`], [`hb`]): the relations
//!   `po`, `cl`, `af`, `bf`, `xpo ; txwr` of Sec 3, the happens-before
//!   closure of Def 3.4, conflicts (Def 3.1) and data races (Def 3.2).
//! * **The atomic TM** ([`atomic_tm`]): membership in `H_atomic` (Sec 2.4)
//!   via completions and legal reads — the strongly atomic baseline.
//! * **Strong opacity** ([`consistency`], [`graph`], [`opacity`]): history
//!   consistency (Def 6.2), opacity graphs with visibility, read/write/anti
//!   dependencies (Def 6.3), the fenced graphs of Def B.5, and an end-to-end
//!   checker that builds a witness per Lemma 6.4 and re-verifies `H ⊑ S`
//!   (Def 4.1) and `S ∈ H_atomic`.
//! * **Observational refinement** ([`equiv`]): observational equivalence
//!   (Def 5.1) and the constructive Rearrangement Lemma (Lemma B.1), the
//!   engine behind the Fundamental Property (Theorem 5.3).
//!
//! Downstream crates build on this: `tm-lang` explores programs and checks
//! their histories here; `tm-stm` records real concurrent executions and
//! validates them with the same checker.
//!
//! ## Quick example
//!
//! ```
//! use tm_core::prelude::*;
//!
//! // A committed transaction writes x0; another thread then reads it
//! // non-transactionally — safe only because a transactional fence
//! // separates them (the bf edge orders the commit before the fence's end).
//! let h = History::new(vec![
//!     Action::new(0, ThreadId(0), Kind::TxBegin),
//!     Action::new(1, ThreadId(0), Kind::Ok),
//!     Action::new(2, ThreadId(0), Kind::Write(Reg(0), 1)),
//!     Action::new(3, ThreadId(0), Kind::RetUnit),
//!     Action::new(4, ThreadId(0), Kind::TxCommit),
//!     Action::new(5, ThreadId(0), Kind::Committed),
//!     Action::new(6, ThreadId(1), Kind::FBegin),
//!     Action::new(7, ThreadId(1), Kind::FEnd),
//!     Action::new(8, ThreadId(1), Kind::Read(Reg(0))),
//!     Action::new(9, ThreadId(1), Kind::RetVal(1)),
//! ]);
//! assert!(h.validate().is_ok());
//! assert!(tm_core::hb::is_drf(&h));
//! let witness = tm_core::opacity::check_strong_opacity(
//!     &h, &tm_core::opacity::CheckOptions::default()).unwrap();
//! assert_eq!(witness.sequential.len(), h.len());
//! ```

pub mod action;
pub mod atomic_tm;
pub mod bitrel;
pub mod consistency;
pub mod equiv;
pub mod graph;
pub mod hb;
pub mod history;
pub mod ids;
pub mod opacity;
pub mod relations;
pub mod textio;
pub mod trace;

/// Convenient re-exports of the most used types.
pub mod prelude {
    pub use crate::action::{Action, Kind, PrimTag};
    pub use crate::atomic_tm::in_atomic_tm;
    pub use crate::equiv::{observationally_equivalent, rearrange};
    pub use crate::hb::is_drf;
    pub use crate::history::{HistoryIndex, TxnStatus};
    pub use crate::ids::{ActionId, Reg, ThreadId, Value, V_INIT};
    pub use crate::opacity::{check_strong_opacity, CheckOptions};
    pub use crate::trace::{History, Trace};
}
