//! The idealized atomic TM `H_atomic` (Sec 2.4): membership checking for
//! non-interleaved histories via completions and legal reads (Def B.7).

use crate::action::{Action, Kind};
use crate::history::{HistoryIndex, Owner, TxnStatus};
use crate::ids::V_INIT;
use crate::trace::History;

/// Why a history is not in `H_atomic`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AtomicityViolation {
    /// Actions of a transaction interleave with another transaction or a
    /// non-transactional access.
    Interleaved { txn: usize, foreign_action: usize },
    /// No completion makes every read legal; the payload is the index of an
    /// illegal read response in the best attempt.
    NoLegalCompletion { read_resp: usize },
    /// Too many commit-pending transactions to enumerate completions.
    TooManyPending,
}

/// Is the history non-interleaved: no action of another transaction or of a
/// non-transactional access occurs strictly inside a transaction's span?
/// (Fence actions are neither, so they may interleave.)
pub fn is_non_interleaved(ix: &HistoryIndex) -> Result<(), AtomicityViolation> {
    for (tid, txn) in ix.txns.iter().enumerate() {
        let (lo, hi) = (txn.first(), txn.last());
        for i in lo..=hi {
            match ix.owner[i] {
                Owner::Txn(o) if o != tid => {
                    return Err(AtomicityViolation::Interleaved {
                        txn: tid,
                        foreign_action: i,
                    })
                }
                Owner::Ntx(_) => {
                    return Err(AtomicityViolation::Interleaved {
                        txn: tid,
                        foreign_action: i,
                    })
                }
                _ => {}
            }
        }
    }
    Ok(())
}

/// All completions of a non-interleaved history: every commit-pending
/// transaction gets a `committed` or `aborted` response inserted directly
/// after its `txcommit` (this preserves non-interleaving). Capped at 2^16.
pub fn completions(h: &History, ix: &HistoryIndex) -> Result<Vec<History>, AtomicityViolation> {
    let pending: Vec<usize> = ix
        .txns
        .iter()
        .enumerate()
        .filter(|(_, t)| t.status == TxnStatus::CommitPending)
        .map(|(i, _)| i)
        .collect();
    if pending.len() > 16 {
        return Err(AtomicityViolation::TooManyPending);
    }
    let max_id = h.actions().iter().map(|a| a.id.0).max().unwrap_or(0);
    let mut out = Vec::with_capacity(1 << pending.len());
    for mask in 0u32..(1 << pending.len()) {
        let mut acts: Vec<Action> = h.actions().to_vec();
        // Insert from the back so earlier indices stay valid.
        let mut inserts: Vec<(usize, Action)> = Vec::new();
        for (k, &txid) in pending.iter().enumerate() {
            let commit_req = ix.txns[txid].last();
            let kind = if mask & (1 << k) != 0 {
                Kind::Committed
            } else {
                Kind::Aborted
            };
            inserts.push((
                commit_req + 1,
                Action::new(max_id + 1 + k as u64, ix.txns[txid].thread, kind),
            ));
        }
        inserts.sort_by_key(|(pos, _)| std::cmp::Reverse(*pos));
        for (pos, a) in inserts {
            acts.insert(pos, a);
        }
        out.push(History::new(acts));
    }
    Ok(out)
}

/// Check all reads legal (Def B.7) in a completed, non-interleaved history:
/// every read response returns the value of the last preceding write not
/// located in an aborted or live transaction different from the reader's own;
/// `v_init` if there is none. Returns the index of the first illegal read
/// response on failure.
pub fn legal_reads(h: &History, ix: &HistoryIndex) -> Result<(), usize> {
    let acts = h.actions();
    // Per-register stack of (owner, value) for write requests seen so far.
    let nregs = ix.nregs;
    let mut writes: Vec<Vec<(Owner, u64)>> = vec![Vec::new(); nregs];
    // Map responses back to requests.
    let mut req_of: Vec<Option<usize>> = vec![None; acts.len()];
    for (req, resp) in ix.resp_of.iter().enumerate() {
        if let Some(r) = *resp {
            req_of[r] = Some(req);
        }
    }
    for (i, a) in acts.iter().enumerate() {
        match a.kind {
            Kind::Write(x, v) => {
                // Only record writes that get a non-abort response or no
                // response yet: a write answered by `aborted` still belongs
                // to its (aborted) transaction, which the status check skips
                // anyway, so recording all writes is correct.
                writes[x.idx()].push((ix.owner[i], v));
            }
            Kind::RetVal(v) => {
                let Some(ri) = req_of[i] else { continue };
                let Kind::Read(x) = acts[ri].kind else {
                    continue;
                };
                let reader = ix.owner[ri];
                let expected = writes[x.idx()]
                    .iter()
                    .rev()
                    .find(|(owner, _)| match *owner {
                        Owner::Txn(t) => {
                            let st = ix.txns[t].status;
                            let visible = matches!(st, TxnStatus::Committed)
                                || matches!(st, TxnStatus::CommitPending);
                            visible || Owner::Txn(t) == reader
                        }
                        Owner::Ntx(_) => true,
                        Owner::Fence(_) => unreachable!(),
                    })
                    .map(|&(_, v)| v)
                    .unwrap_or(V_INIT);
                if v != expected {
                    return Err(i);
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Is `h ∈ H_atomic`? (Sec 2.4: non-interleaved and some completion has all
/// reads legal.)
pub fn in_atomic_tm(h: &History) -> Result<(), AtomicityViolation> {
    let ix = HistoryIndex::new(h);
    is_non_interleaved(&ix)?;
    let comps = completions(h, &ix)?;
    let mut first_bad = None;
    for c in &comps {
        let cix = HistoryIndex::new(c);
        match legal_reads(c, &cix) {
            Ok(()) => return Ok(()),
            Err(i) => first_bad = Some(first_bad.unwrap_or(i)),
        }
    }
    Err(AtomicityViolation::NoLegalCompletion {
        read_resp: first_bad.unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Reg, ThreadId};

    fn a(id: u64, t: u32, kind: Kind) -> Action {
        Action::new(id, ThreadId(t), kind)
    }

    /// The paper's example H0 (Sec 2.4): committed-pending t1 writing x=1,
    /// live t2 writing x=2, and a non-transactional read of 1 by t3.
    /// H0 ∈ H_atomic via the completion committing t1.
    #[test]
    fn paper_h0_in_atomic() {
        let h = History::new(vec![
            a(0, 1, Kind::TxBegin),
            a(1, 1, Kind::Ok),
            a(2, 1, Kind::Write(Reg(0), 1)),
            a(3, 1, Kind::RetUnit),
            a(4, 1, Kind::TxCommit),
            a(5, 2, Kind::TxBegin),
            a(6, 2, Kind::Ok),
            a(7, 2, Kind::Write(Reg(0), 2)),
            a(8, 3, Kind::Read(Reg(0))),
            a(9, 3, Kind::RetVal(1)),
        ]);
        assert_eq!(in_atomic_tm(&h), Ok(()));
    }

    /// Same shape but the read returns the live transaction's value: not
    /// atomic (a live transaction's writes are invisible).
    #[test]
    fn read_from_live_txn_not_atomic() {
        let h = History::new(vec![
            a(0, 1, Kind::TxBegin),
            a(1, 1, Kind::Ok),
            a(2, 1, Kind::Write(Reg(0), 1)),
            a(3, 1, Kind::RetUnit),
            a(4, 1, Kind::TxCommit),
            a(5, 2, Kind::TxBegin),
            a(6, 2, Kind::Ok),
            a(7, 2, Kind::Write(Reg(0), 2)),
            a(8, 3, Kind::Read(Reg(0))),
            a(9, 3, Kind::RetVal(2)),
        ]);
        assert!(matches!(
            in_atomic_tm(&h),
            Err(AtomicityViolation::NoLegalCompletion { .. })
        ));
    }

    /// Interleaved transactions are rejected.
    #[test]
    fn interleaving_rejected() {
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 1, Kind::TxBegin), // t1 interleaves inside t0's txn
            a(3, 1, Kind::Ok),
            a(4, 1, Kind::TxCommit),
            a(5, 1, Kind::Committed),
            a(6, 0, Kind::TxCommit),
            a(7, 0, Kind::Committed),
        ]);
        assert!(matches!(
            in_atomic_tm(&h),
            Err(AtomicityViolation::Interleaved { .. })
        ));
    }

    /// A read inside a transaction sees the transaction's own earlier write.
    #[test]
    fn own_writes_visible() {
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Write(Reg(0), 5)),
            a(3, 0, Kind::RetUnit),
            a(4, 0, Kind::Read(Reg(0))),
            a(5, 0, Kind::RetVal(5)),
            a(6, 0, Kind::TxCommit),
            a(7, 0, Kind::Committed),
        ]);
        assert_eq!(in_atomic_tm(&h), Ok(()));
    }

    /// An aborted transaction's writes are invisible to later readers.
    #[test]
    fn aborted_writes_invisible() {
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Write(Reg(0), 5)),
            a(3, 0, Kind::RetUnit),
            a(4, 0, Kind::TxCommit),
            a(5, 0, Kind::Aborted),
            a(6, 1, Kind::Read(Reg(0))),
            a(7, 1, Kind::RetVal(0)), // v_init
        ]);
        assert_eq!(in_atomic_tm(&h), Ok(()));

        let bad = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Write(Reg(0), 5)),
            a(3, 0, Kind::RetUnit),
            a(4, 0, Kind::TxCommit),
            a(5, 0, Kind::Aborted),
            a(6, 1, Kind::Read(Reg(0))),
            a(7, 1, Kind::RetVal(5)),
        ]);
        assert!(in_atomic_tm(&bad).is_err());
    }

    /// Non-transactional writes are visible to everyone after them.
    #[test]
    fn ntx_write_visible() {
        let h = History::new(vec![
            a(0, 0, Kind::Write(Reg(0), 9)),
            a(1, 0, Kind::RetUnit),
            a(2, 1, Kind::TxBegin),
            a(3, 1, Kind::Ok),
            a(4, 1, Kind::Read(Reg(0))),
            a(5, 1, Kind::RetVal(9)),
            a(6, 1, Kind::TxCommit),
            a(7, 1, Kind::Committed),
        ]);
        assert_eq!(in_atomic_tm(&h), Ok(()));
    }

    #[test]
    fn completions_enumeration() {
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::TxCommit),
        ]);
        let ix = HistoryIndex::new(&h);
        let comps = completions(&h, &ix).unwrap();
        assert_eq!(comps.len(), 2);
        let statuses: Vec<TxnStatus> = comps
            .iter()
            .map(|c| HistoryIndex::new(c).txns[0].status)
            .collect();
        assert!(statuses.contains(&TxnStatus::Committed));
        assert!(statuses.contains(&TxnStatus::Aborted));
    }
}
