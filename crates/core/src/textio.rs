//! A tiny line-oriented text format for histories, used to persist recorded
//! executions and to ship counterexamples between tools without pulling in a
//! serialization dependency.
//!
//! Format: one action per line, `<id> <thread> <kind>[ <args>]`, e.g.
//! ```text
//! 0 0 txbegin
//! 1 0 ok
//! 2 0 write 3 42
//! 3 0 ret_unit
//! ```

use crate::action::{Action, Kind};
use crate::ids::{Reg, ThreadId};
use crate::trace::History;
use std::fmt::Write as _;

/// Serialize a history to the text format.
pub fn to_text(h: &History) -> String {
    let mut s = String::new();
    for a in h.actions() {
        let _ = write!(s, "{} {} ", a.id.0, a.thread.0);
        match a.kind {
            Kind::TxBegin => s.push_str("txbegin"),
            Kind::TxCommit => s.push_str("txcommit"),
            Kind::Write(x, v) => {
                let _ = write!(s, "write {} {}", x.0, v);
            }
            Kind::Read(x) => {
                let _ = write!(s, "read {}", x.0);
            }
            Kind::FBegin => s.push_str("fbegin"),
            Kind::Ok => s.push_str("ok"),
            Kind::Committed => s.push_str("committed"),
            Kind::Aborted => s.push_str("aborted"),
            Kind::RetUnit => s.push_str("ret_unit"),
            Kind::RetVal(v) => {
                let _ = write!(s, "ret_val {}", v);
            }
            Kind::FEnd => s.push_str("fend"),
            Kind::Prim(_) => unreachable!("histories contain no primitive actions"),
        }
        s.push('\n');
    }
    s
}

/// Parse the text format back into a history.
pub fn from_text(text: &str) -> Result<History, String> {
    let mut actions = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let err = |what: &str| format!("line {}: {}", ln + 1, what);
        let id: u64 = parts
            .next()
            .ok_or_else(|| err("missing id"))?
            .parse()
            .map_err(|_| err("bad id"))?;
        let t: u32 = parts
            .next()
            .ok_or_else(|| err("missing thread"))?
            .parse()
            .map_err(|_| err("bad thread"))?;
        let kind = match parts.next().ok_or_else(|| err("missing kind"))? {
            "txbegin" => Kind::TxBegin,
            "txcommit" => Kind::TxCommit,
            "write" => {
                let x: u32 = parts
                    .next()
                    .ok_or_else(|| err("missing reg"))?
                    .parse()
                    .map_err(|_| err("bad reg"))?;
                let v: u64 = parts
                    .next()
                    .ok_or_else(|| err("missing value"))?
                    .parse()
                    .map_err(|_| err("bad value"))?;
                Kind::Write(Reg(x), v)
            }
            "read" => {
                let x: u32 = parts
                    .next()
                    .ok_or_else(|| err("missing reg"))?
                    .parse()
                    .map_err(|_| err("bad reg"))?;
                Kind::Read(Reg(x))
            }
            "fbegin" => Kind::FBegin,
            "ok" => Kind::Ok,
            "committed" => Kind::Committed,
            "aborted" => Kind::Aborted,
            "ret_unit" => Kind::RetUnit,
            "ret_val" => {
                let v: u64 = parts
                    .next()
                    .ok_or_else(|| err("missing value"))?
                    .parse()
                    .map_err(|_| err("bad value"))?;
                Kind::RetVal(v)
            }
            "fend" => Kind::FEnd,
            other => return Err(err(&format!("unknown kind {other:?}"))),
        };
        actions.push(Action::new(id, ThreadId(t), kind));
    }
    Ok(History::new(actions))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = History::new(vec![
            Action::new(0, ThreadId(0), Kind::TxBegin),
            Action::new(1, ThreadId(0), Kind::Ok),
            Action::new(2, ThreadId(0), Kind::Write(Reg(3), 42)),
            Action::new(3, ThreadId(0), Kind::RetUnit),
            Action::new(4, ThreadId(0), Kind::TxCommit),
            Action::new(5, ThreadId(0), Kind::Committed),
            Action::new(6, ThreadId(1), Kind::Read(Reg(3))),
            Action::new(7, ThreadId(1), Kind::RetVal(42)),
            Action::new(8, ThreadId(2), Kind::FBegin),
            Action::new(9, ThreadId(2), Kind::FEnd),
            Action::new(10, ThreadId(1), Kind::TxBegin),
            Action::new(11, ThreadId(1), Kind::Aborted),
        ]);
        let text = to_text(&h);
        let h2 = from_text(&text).unwrap();
        assert_eq!(h.actions(), h2.actions());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let h = from_text("# header\n\n0 0 txbegin\n1 0 ok\n").unwrap();
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn errors_reported_with_line() {
        assert!(from_text("0 0 frobnicate").unwrap_err().contains("line 1"));
        assert!(from_text("x 0 txbegin").unwrap_err().contains("bad id"));
    }
}
