//! Observational equivalence (Def 5.1) and the constructive Rearrangement
//! Lemma (Lemma B.1): a trace whose history `H` satisfies `H ⊑ S` can be
//! reordered into an observationally equivalent trace with history `S`.

use crate::action::Action;
use crate::history::HistoryIndex;
use crate::ids::{ActionId, ThreadId};
use crate::trace::{History, Trace};
use std::collections::{HashMap, HashSet};

/// The set of action ids belonging to non-transactional *accesses* (not
/// fences) of a trace.
fn ntx_access_ids(tr: &Trace) -> HashSet<ActionId> {
    let h = tr.history();
    let ix = HistoryIndex::new(&h);
    let mut ids = HashSet::new();
    for acc in &ix.ntx {
        ids.insert(h.actions()[acc.req].id);
        if let Some(r) = acc.resp {
            ids.insert(h.actions()[r].id);
        }
    }
    ids
}

/// `τ |nontx`: the subsequence of actions from non-transactional accesses.
pub fn project_nontx(tr: &Trace) -> Vec<Action> {
    let ids = ntx_access_ids(tr);
    tr.actions()
        .iter()
        .copied()
        .filter(|a| ids.contains(&a.id))
        .collect()
}

/// Observational equivalence `τ ~ τ'` (Def 5.1): equal per-thread projections
/// and equal non-transactional-access projections.
pub fn observationally_equivalent(t1: &Trace, t2: &Trace) -> bool {
    let threads: HashSet<ThreadId> = t1
        .actions()
        .iter()
        .chain(t2.actions())
        .map(|a| a.thread)
        .collect();
    for t in threads {
        if t1.per_thread(t) != t2.per_thread(t) {
            return false;
        }
    }
    project_nontx(t1) == project_nontx(t2)
}

/// Rearrangement (Lemma B.1, constructive): given a trace `tr` with
/// `history(tr) = H` and a witness history `S` that is a permutation of `H`,
/// build the trace `tr_s` with `history(tr_s) = S` and `tr_s ~ tr`.
///
/// Construction: walk `S`; before emitting a TM action of thread `t`, emit
/// the primitive actions of `t` that preceded it in `tr|t`. Left-over
/// primitives (after a thread's last TM action) are appended at the end.
pub fn rearrange(tr: &Trace, s: &History) -> Trace {
    // For each TM action id: the primitive actions (of the same thread) that
    // immediately precede it in tr.
    let mut prims_before: HashMap<ActionId, Vec<Action>> = HashMap::new();
    let mut pending: HashMap<ThreadId, Vec<Action>> = HashMap::new();
    for &a in tr.actions() {
        if a.kind.is_tm_interface() {
            let v = pending.remove(&a.thread).unwrap_or_default();
            prims_before.insert(a.id, v);
        } else {
            pending.entry(a.thread).or_default().push(a);
        }
    }

    let mut out: Vec<Action> = Vec::with_capacity(tr.len());
    for &a in s.actions() {
        if let Some(ps) = prims_before.remove(&a.id) {
            out.extend(ps);
        }
        out.push(a);
    }
    // Trailing primitives, deterministic thread order.
    let mut rest: Vec<(ThreadId, Vec<Action>)> = pending.into_iter().collect();
    rest.sort_by_key(|(t, _)| *t);
    for (_, ps) in rest {
        out.extend(ps);
    }
    Trace::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Kind, PrimTag};
    use crate::ids::Reg;

    fn a(id: u64, t: u32, kind: Kind) -> Action {
        Action::new(id, ThreadId(t), kind)
    }

    #[test]
    fn equivalence_reflexive() {
        let tr = Trace::new(vec![
            a(0, 0, Kind::Prim(PrimTag(1))),
            a(1, 0, Kind::Read(Reg(0))),
            a(2, 0, Kind::RetVal(0)),
        ]);
        assert!(observationally_equivalent(&tr, &tr));
    }

    #[test]
    fn reordering_across_threads_is_equivalent_if_ntx_order_kept() {
        let t1 = Trace::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 1, Kind::TxBegin),
            a(3, 1, Kind::Ok),
            a(4, 0, Kind::TxCommit),
            a(5, 0, Kind::Committed),
            a(6, 1, Kind::TxCommit),
            a(7, 1, Kind::Committed),
        ]);
        let t2 = Trace::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(4, 0, Kind::TxCommit),
            a(5, 0, Kind::Committed),
            a(2, 1, Kind::TxBegin),
            a(3, 1, Kind::Ok),
            a(6, 1, Kind::TxCommit),
            a(7, 1, Kind::Committed),
        ]);
        assert!(observationally_equivalent(&t1, &t2));
    }

    #[test]
    fn ntx_reorder_not_equivalent() {
        let t1 = Trace::new(vec![
            a(0, 0, Kind::Write(Reg(0), 1)),
            a(1, 0, Kind::RetUnit),
            a(2, 1, Kind::Write(Reg(1), 2)),
            a(3, 1, Kind::RetUnit),
        ]);
        let t2 = Trace::new(vec![
            a(2, 1, Kind::Write(Reg(1), 2)),
            a(3, 1, Kind::RetUnit),
            a(0, 0, Kind::Write(Reg(0), 1)),
            a(1, 0, Kind::RetUnit),
        ]);
        assert!(!observationally_equivalent(&t1, &t2));
    }

    #[test]
    fn rearrange_produces_witness_history_and_equivalent_trace() {
        // Trace: t0 prim, txn(t0) and txn(t1) interleaved, prims interspersed.
        let tr = Trace::new(vec![
            a(100, 0, Kind::Prim(PrimTag(1))),
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 1, Kind::TxBegin),
            a(3, 1, Kind::Ok),
            a(101, 1, Kind::Prim(PrimTag(2))),
            a(4, 0, Kind::TxCommit),
            a(5, 0, Kind::Committed),
            a(6, 1, Kind::TxCommit),
            a(7, 1, Kind::Committed),
            a(102, 0, Kind::Prim(PrimTag(3))),
        ]);
        // Witness: t1's txn first, then t0's.
        let s = History::new(vec![
            a(2, 1, Kind::TxBegin),
            a(3, 1, Kind::Ok),
            a(6, 1, Kind::TxCommit),
            a(7, 1, Kind::Committed),
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(4, 0, Kind::TxCommit),
            a(5, 0, Kind::Committed),
        ]);
        let rs = rearrange(&tr, &s);
        assert_eq!(rs.history().actions(), s.actions());
        assert!(observationally_equivalent(&tr, &rs));
    }

    #[test]
    fn project_nontx_excludes_fences_and_txn_actions() {
        let tr = Trace::new(vec![
            a(0, 0, Kind::FBegin),
            a(1, 0, Kind::FEnd),
            a(2, 0, Kind::Write(Reg(0), 1)),
            a(3, 0, Kind::RetUnit),
            a(4, 1, Kind::TxBegin),
            a(5, 1, Kind::Ok),
            a(6, 1, Kind::Read(Reg(0))),
            a(7, 1, Kind::RetVal(1)),
            a(8, 1, Kind::TxCommit),
            a(9, 1, Kind::Committed),
        ]);
        let p = project_nontx(&tr);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].id, ActionId(2));
        assert_eq!(p[1].id, ActionId(3));
    }
}
