//! Traces and their well-formedness conditions (paper Def 2.1 / Def A.1).

use crate::action::{Action, Kind};
use crate::ids::{ActionId, ThreadId, V_INIT};
use std::collections::HashSet;
use std::fmt;
use std::ops::Deref;

/// A finite sequence of actions. Invariants (Def A.1) are *checked*, not
/// enforced by construction; producers (the language explorer, the STM
/// recorder) are tested to only emit well-formed traces.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Trace {
    actions: Vec<Action>,
}

/// A trace containing only TM interface actions (no primitive actions).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct History {
    actions: Vec<Action>,
}

/// A violation of one of the well-formedness clauses of Def A.1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WfError {
    /// Clause 1: duplicate action identifier.
    DuplicateId { id: ActionId },
    /// Clause 3: a write value is repeated or equals `v_init`.
    NonUniqueWrite { index: usize },
    /// Clause 4: a request is immediately followed (in thread order) by a
    /// primitive action.
    PrimAfterRequest { index: usize },
    /// Clause 5: request/response actions are not properly matched.
    BadMatching { thread: ThreadId, index: usize },
    /// Clause 6: txbegin / committed / aborted actions do not alternate.
    BadTxnBracketing { thread: ThreadId, index: usize },
    /// Clause 7: a non-transactional access is not immediately followed by
    /// its response (non-transactional accesses execute atomically).
    NonAtomicNtxAccess { index: usize },
    /// Clause 8: a non-transactional access was aborted.
    NtxAborted { index: usize },
    /// Clause 9: a fence action occurs inside a transaction.
    FenceInsideTxn { index: usize },
    /// Clause 10: a transaction spans a complete fence.
    TxnSpansFence {
        txbegin: usize,
        fbegin: usize,
        fend: usize,
    },
}

impl Trace {
    pub fn new(actions: Vec<Action>) -> Self {
        Trace { actions }
    }

    pub fn push(&mut self, a: Action) {
        self.actions.push(a);
    }

    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    pub fn into_actions(self) -> Vec<Action> {
        self.actions
    }

    /// `history(τ)`: the projection onto TM interface actions.
    pub fn history(&self) -> History {
        History {
            actions: self
                .actions
                .iter()
                .copied()
                .filter(|a| a.kind.is_tm_interface())
                .collect(),
        }
    }

    /// `τ|t`: the projection onto the actions of thread `t`.
    pub fn per_thread(&self, t: ThreadId) -> Vec<Action> {
        self.actions
            .iter()
            .copied()
            .filter(|a| a.thread == t)
            .collect()
    }

    /// Validate all mechanically checkable clauses of Def A.1.
    ///
    /// Clause 2 (primitive commands only touch the executing thread's local
    /// variables) is structural in the language layer: `tm-lang` programs
    /// cannot name another thread's variables, so it cannot be violated.
    pub fn validate(&self) -> Result<(), WfError> {
        validate_actions(&self.actions)
    }
}

impl History {
    /// Build a history; panics if a primitive action is present (histories
    /// contain only TM interface actions by definition).
    pub fn new(actions: Vec<Action>) -> Self {
        assert!(
            actions.iter().all(|a| a.kind.is_tm_interface()),
            "histories contain only TM interface actions"
        );
        History { actions }
    }

    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    pub fn into_actions(self) -> Vec<Action> {
        self.actions
    }

    pub fn per_thread(&self, t: ThreadId) -> Vec<Action> {
        self.actions
            .iter()
            .copied()
            .filter(|a| a.thread == t)
            .collect()
    }

    pub fn validate(&self) -> Result<(), WfError> {
        validate_actions(&self.actions)
    }

    /// Prefix of the first `n` actions.
    pub fn prefix(&self, n: usize) -> History {
        History {
            actions: self.actions[..n].to_vec(),
        }
    }
}

impl Deref for Trace {
    type Target = [Action];
    fn deref(&self) -> &[Action] {
        &self.actions
    }
}

impl Deref for History {
    type Target = [Action];
    fn deref(&self) -> &[Action] {
        &self.actions
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Trace[")?;
        for (i, a) in self.actions.iter().enumerate() {
            writeln!(f, "  {i:3}: {a:?}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Debug for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "History[")?;
        for (i, a) in self.actions.iter().enumerate() {
            writeln!(f, "  {i:3}: {a:?}")?;
        }
        write!(f, "]")
    }
}

/// Per-thread scanning state used by the validator.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TxnPhase {
    /// Outside any transaction.
    Outside,
    /// Inside a transaction (after txbegin, before committed/aborted).
    Inside,
}

fn validate_actions(actions: &[Action]) -> Result<(), WfError> {
    let max_tid = actions.iter().map(|a| a.thread.0).max().unwrap_or(0) as usize;
    let nthreads = max_tid + 1;

    // Clause 1: unique identifiers.
    let mut ids = HashSet::with_capacity(actions.len());
    for a in actions {
        if !ids.insert(a.id) {
            return Err(WfError::DuplicateId { id: a.id });
        }
    }

    // Clause 3: unique write values, distinct from v_init.
    let mut written = HashSet::new();
    for (i, a) in actions.iter().enumerate() {
        if let Kind::Write(_, v) = a.kind {
            if v == V_INIT || !written.insert(v) {
                return Err(WfError::NonUniqueWrite { index: i });
            }
        }
    }

    // Per-thread scans: clauses 4, 5, 6 and transaction phase tracking for
    // clauses 7, 8, 9, 10.
    let mut pending_req: Vec<Option<(usize, Kind)>> = vec![None; nthreads];
    let mut phase = vec![TxnPhase::Outside; nthreads];
    // Clause 10 bookkeeping: for each thread, index of the txbegin of its
    // currently open transaction (if any).
    let mut open_txbegin: Vec<Option<usize>> = vec![None; nthreads];
    // Fences currently executing: (thread, fbegin index, set of transactions
    // open at fbegin that must complete before fend).
    let mut open_fences: Vec<(ThreadId, usize, Vec<usize>)> = Vec::new();

    for (i, a) in actions.iter().enumerate() {
        let t = a.thread.idx();
        match a.kind {
            Kind::Prim(_) => {
                // Clause 4: no primitive action directly after a request in τ|t.
                if pending_req[t].is_some() {
                    return Err(WfError::PrimAfterRequest { index: i });
                }
            }
            k if k.is_request() => {
                // Clause 5: no nested requests per thread.
                if pending_req[t].is_some() {
                    return Err(WfError::BadMatching {
                        thread: a.thread,
                        index: i,
                    });
                }
                match k {
                    Kind::TxBegin => {
                        // Clause 6: txbegin only outside a transaction.
                        if phase[t] == TxnPhase::Inside {
                            return Err(WfError::BadTxnBracketing {
                                thread: a.thread,
                                index: i,
                            });
                        }
                    }
                    Kind::FBegin => {
                        // Clause 9: fences only outside transactions.
                        if phase[t] == TxnPhase::Inside {
                            return Err(WfError::FenceInsideTxn { index: i });
                        }
                        // Clause 10: record transactions open right now.
                        let open: Vec<usize> = open_txbegin.iter().filter_map(|o| *o).collect();
                        open_fences.push((a.thread, i, open));
                    }
                    Kind::Read(_) | Kind::Write(..) => {
                        // Clause 7 is checked when we look at the next action.
                    }
                    Kind::TxCommit => {
                        if phase[t] == TxnPhase::Outside {
                            return Err(WfError::BadTxnBracketing {
                                thread: a.thread,
                                index: i,
                            });
                        }
                    }
                    _ => unreachable!(),
                }
                pending_req[t] = Some((i, k));
                // Clause 7: a non-transactional access must be immediately
                // followed (globally) by its response.
                if matches!(k, Kind::Read(_) | Kind::Write(..)) && phase[t] == TxnPhase::Outside {
                    match actions.get(i + 1) {
                        Some(next) if next.thread == a.thread && k.matches_response(next.kind) => {}
                        // A trailing pending non-transactional access (end of
                        // trace) is tolerated: prefixes of well-formed traces
                        // may cut between request and response only at the
                        // very end of the trace.
                        None => {}
                        Some(_) => return Err(WfError::NonAtomicNtxAccess { index: i }),
                    }
                }
            }
            k => {
                // Response action. Clause 5: must match the pending request.
                let Some((req_i, req_k)) = pending_req[t].take() else {
                    return Err(WfError::BadMatching {
                        thread: a.thread,
                        index: i,
                    });
                };
                if !req_k.matches_response(k) {
                    return Err(WfError::BadMatching {
                        thread: a.thread,
                        index: i,
                    });
                }
                match k {
                    Kind::Ok => {
                        phase[t] = TxnPhase::Inside;
                        open_txbegin[t] = Some(req_i);
                    }
                    Kind::Committed => {
                        phase[t] = TxnPhase::Outside;
                        open_txbegin[t] = None;
                        complete_txn(&mut open_fences, req_i, &actions[..=i], t);
                    }
                    Kind::Aborted => {
                        // Clause 8: non-transactional accesses never abort.
                        // `aborted` in response to txbegin ends the (empty)
                        // transaction immediately.
                        if phase[t] == TxnPhase::Outside && !matches!(req_k, Kind::TxBegin) {
                            return Err(WfError::NtxAborted { index: i });
                        }
                        phase[t] = TxnPhase::Outside;
                        open_txbegin[t] = None;
                        complete_txn(&mut open_fences, req_i, &actions[..=i], t);
                    }
                    Kind::FEnd => {
                        // Clause 10: all transactions open at fbegin must have
                        // completed by now (they were removed from the list on
                        // completion).
                        let pos = open_fences
                            .iter()
                            .position(|(th, _, _)| *th == a.thread)
                            .expect("fend matches an open fence");
                        let (_, fbegin, still_open) = open_fences.swap_remove(pos);
                        if let Some(&txb) = still_open.first() {
                            return Err(WfError::TxnSpansFence {
                                txbegin: txb,
                                fbegin,
                                fend: i,
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

/// A transaction of thread `t` completed; drop its txbegin from every open
/// fence's wait set. `req_i` is the index of the request that got the
/// committed/aborted response; walk back per-thread to find the txbegin.
fn complete_txn(
    open_fences: &mut [(ThreadId, usize, Vec<usize>)],
    req_i: usize,
    prefix: &[Action],
    t: usize,
) {
    // Find the txbegin of the transaction that just completed.
    let txb = prefix[..=req_i]
        .iter()
        .enumerate()
        .rev()
        .find(|(_, a)| a.thread.idx() == t && a.kind == Kind::TxBegin)
        .map(|(i, _)| i);
    if let Some(txb) = txb {
        for (_, _, open) in open_fences.iter_mut() {
            open.retain(|&b| b != txb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Reg;

    fn a(id: u64, t: u32, kind: Kind) -> Action {
        Action::new(id, ThreadId(t), kind)
    }

    /// A committed single-write transaction by thread `t`, ids starting at `base`.
    fn txn_write(base: u64, t: u32, x: Reg, v: u64) -> Vec<Action> {
        vec![
            a(base, t, Kind::TxBegin),
            a(base + 1, t, Kind::Ok),
            a(base + 2, t, Kind::Write(x, v)),
            a(base + 3, t, Kind::RetUnit),
            a(base + 4, t, Kind::TxCommit),
            a(base + 5, t, Kind::Committed),
        ]
    }

    #[test]
    fn valid_simple_history() {
        let mut v = txn_write(0, 0, Reg(0), 1);
        v.extend([a(10, 1, Kind::Read(Reg(0))), a(11, 1, Kind::RetVal(1))]);
        let h = History::new(v);
        assert_eq!(h.validate(), Ok(()));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let v = vec![a(0, 0, Kind::TxBegin), a(0, 0, Kind::Ok)];
        assert_eq!(
            Trace::new(v).validate(),
            Err(WfError::DuplicateId { id: ActionId(0) })
        );
    }

    #[test]
    fn duplicate_write_values_rejected() {
        let mut v = txn_write(0, 0, Reg(0), 7);
        v.extend(txn_write(20, 1, Reg(1), 7));
        assert!(matches!(
            Trace::new(v).validate(),
            Err(WfError::NonUniqueWrite { .. })
        ));
    }

    #[test]
    fn write_of_vinit_rejected() {
        let v = txn_write(0, 0, Reg(0), V_INIT);
        assert!(matches!(
            Trace::new(v).validate(),
            Err(WfError::NonUniqueWrite { .. })
        ));
    }

    #[test]
    fn prim_after_request_rejected() {
        use crate::action::PrimTag;
        // Inside a transaction so the non-transactional-atomicity clause does
        // not fire first.
        let v = vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Read(Reg(0))),
            a(3, 0, Kind::Prim(PrimTag(0))),
            a(4, 0, Kind::RetVal(0)),
        ];
        assert!(matches!(
            Trace::new(v).validate(),
            Err(WfError::PrimAfterRequest { index: 3 })
        ));
    }

    #[test]
    fn mismatched_response_rejected() {
        let v = vec![a(0, 0, Kind::TxBegin), a(1, 0, Kind::Committed)];
        assert!(matches!(
            Trace::new(v).validate(),
            Err(WfError::BadMatching { .. })
        ));
    }

    #[test]
    fn nontx_access_must_be_atomic() {
        // Another thread's action slipped between request and response.
        let v = vec![
            a(0, 0, Kind::Read(Reg(0))),
            a(1, 1, Kind::TxBegin),
            a(2, 0, Kind::RetVal(0)),
            a(3, 1, Kind::Ok),
        ];
        assert!(matches!(
            Trace::new(v).validate(),
            Err(WfError::NonAtomicNtxAccess { index: 0 })
        ));
    }

    #[test]
    fn nontx_abort_rejected() {
        let v = vec![a(0, 0, Kind::Read(Reg(0))), a(1, 0, Kind::Aborted)];
        assert!(matches!(
            Trace::new(v).validate(),
            Err(WfError::NtxAborted { index: 1 })
        ));
    }

    #[test]
    fn aborted_txbegin_is_fine() {
        let v = vec![a(0, 0, Kind::TxBegin), a(1, 0, Kind::Aborted)];
        assert_eq!(Trace::new(v).validate(), Ok(()));
    }

    #[test]
    fn fence_inside_txn_rejected() {
        let v = vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::FBegin),
        ];
        assert!(matches!(
            Trace::new(v).validate(),
            Err(WfError::FenceInsideTxn { index: 2 })
        ));
    }

    #[test]
    fn txn_spanning_fence_rejected() {
        // t0 opens a transaction; t1 runs a complete fence while it is open.
        let v = vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 1, Kind::FBegin),
            a(3, 1, Kind::FEnd),
        ];
        assert!(matches!(
            Trace::new(v).validate(),
            Err(WfError::TxnSpansFence { .. })
        ));
    }

    #[test]
    fn fence_waits_for_txn_ok() {
        // The open transaction completes before fend: allowed.
        let v = vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 1, Kind::FBegin),
            a(3, 0, Kind::TxCommit),
            a(4, 0, Kind::Committed),
            a(5, 1, Kind::FEnd),
        ];
        assert_eq!(Trace::new(v).validate(), Ok(()));
    }

    #[test]
    fn txn_beginning_after_fbegin_need_not_complete() {
        // Transaction begins after fbegin: the fence need not wait for it.
        let v = vec![
            a(0, 1, Kind::FBegin),
            a(1, 0, Kind::TxBegin),
            a(2, 0, Kind::Ok),
            a(3, 1, Kind::FEnd),
        ];
        assert_eq!(Trace::new(v).validate(), Ok(()));
    }

    #[test]
    fn history_projection_drops_prims() {
        use crate::action::PrimTag;
        let v = vec![
            a(0, 0, Kind::Prim(PrimTag(1))),
            a(1, 0, Kind::Read(Reg(0))),
            a(2, 0, Kind::RetVal(0)),
        ];
        let t = Trace::new(v);
        let h = t.history();
        assert_eq!(h.len(), 2);
        assert!(h.actions().iter().all(|x| x.kind.is_tm_interface()));
    }

    #[test]
    fn commit_outside_txn_rejected() {
        let v = vec![a(0, 0, Kind::TxCommit), a(1, 0, Kind::Committed)];
        assert!(matches!(
            Trace::new(v).validate(),
            Err(WfError::BadTxnBracketing { .. })
        ));
    }
}
