//! Basic identifier types shared across the trace model.

use std::fmt;

/// Identifier of a thread, `t ∈ ThreadID = {0, …, N-1}`.
///
/// The paper numbers threads from 1; we use zero-based indices throughout.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

/// Identifier of a shared register object, `x ∈ Reg`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

/// Unique identifier of an action in a trace (`a ∈ ActionId`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActionId(pub u64);

/// Values stored in registers.
///
/// The paper assumes integer-valued registers where every write in an
/// execution writes a unique value distinct from [`V_INIT`] (Def 2.1).
pub type Value = u64;

/// The initial value `v_init` of every register.
pub const V_INIT: Value = 0;

impl ThreadId {
    /// Index usable for `Vec` addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl Reg {
    /// Index usable for `Vec` addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Debug for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(ThreadId(3).to_string(), "t3");
        assert_eq!(Reg(7).to_string(), "x7");
        assert_eq!(format!("{:?}", ActionId(9)), "a9");
    }

    #[test]
    fn idx_roundtrip() {
        assert_eq!(ThreadId(5).idx(), 5);
        assert_eq!(Reg(11).idx(), 11);
    }
}
