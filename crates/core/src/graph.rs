//! Opacity graphs (Def 6.3) and their fenced extension (Def B.5), including
//! visibility/write-order selection strategies, anti-dependency derivation,
//! acyclicity, and the Theorem 6.6 small-cycle premise.

use crate::action::Kind;
use crate::bitrel::BitRel;
use crate::history::{HistoryIndex, TxnStatus};
use crate::ids::{Reg, V_INIT};
use crate::relations::HbBuilder;
use crate::trace::History;

/// A node of the opacity graph: a transaction or a non-transactional access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Node {
    Txn(usize),
    Ntx(usize),
}

/// The opacity graph `G = (N, vis, HB, WR, WW, RW)`.
pub struct OpacityGraph {
    /// Nodes: transactions first, then non-transactional accesses.
    pub nodes: Vec<Node>,
    /// Visibility predicate per node.
    pub vis: Vec<bool>,
    /// Node-level happens-before (lifted from hb(H)).
    pub hb: BitRel,
    /// Read-dependencies: (from, to, register) — `to` reads from `from`.
    pub wr: Vec<(usize, usize, Reg)>,
    /// Per register: the chosen total order over visible writer nodes.
    pub ww: Vec<Vec<usize>>,
    /// Anti-dependencies derived from WR and WW per Def 6.3.
    pub rw: Vec<(usize, usize, Reg)>,
}

/// How to order visible writers of each register (the WW component).
#[derive(Clone, Debug)]
pub enum WwStrategy {
    /// Order by completion position: a transaction's last action index, a
    /// non-transactional access's response index. Matches write-back-at-
    /// commit TMs such as TL2.
    CompletionOrder,
    /// Order by first write-request index. Matches in-place TMs.
    FirstWriteOrder,
    /// Explicit per-transaction keys (e.g. TL2 write timestamps), with
    /// non-transactional accesses keyed by a position scaled to interleave:
    /// key = `ntx_key[access]` when provided, else completion position.
    TxnKeys { txn_key: Vec<Option<u64>> },
    /// Fully explicit orders: for each register, the visible writer nodes in
    /// WW order. Used by the checker's brute-force fallback.
    Explicit(Vec<Vec<usize>>),
}

impl OpacityGraph {
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Index of the node owning a transaction / ntx access.
    pub fn txn_node(&self, t: usize) -> usize {
        t
    }
    pub fn ntx_node(&self, ix: &HistoryIndex, a: usize) -> usize {
        ix.txns.len() + a
    }

    /// All dependency edges (WR ∪ WW ∪ RW) as pairs.
    pub fn dep_edges(&self) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = self.wr.iter().map(|&(a, b, _)| (a, b)).collect();
        for order in &self.ww {
            for w in order.windows(2) {
                out.push((w[0], w[1]));
            }
        }
        out.extend(self.rw.iter().map(|&(a, b, _)| (a, b)));
        out
    }

    /// Combined digraph HB ∪ WR ∪ WW ∪ RW over nodes.
    pub fn combined(&self) -> BitRel {
        let mut g = self.hb.clone();
        for (a, b) in self.dep_edges() {
            if a != b {
                g.add(a, b);
            }
        }
        g
    }

    /// Is the graph acyclic (`acyclic(G)`)?
    pub fn is_acyclic(&self) -> bool {
        !self.combined().has_cycle()
    }

    /// Theorem 6.6 premise: `(HB ; (WR ∪ WW ∪ RW))` is irreflexive, i.e. no
    /// dependency edge directly opposes a happens-before edge.
    pub fn small_cycle_premise(&self) -> bool {
        self.dep_edges().iter().all(|&(u, v)| !self.hb.has(v, u))
    }
}

/// First/last action index of a node.
fn node_span(ix: &HistoryIndex, n: Node) -> (usize, usize) {
    match n {
        Node::Txn(t) => (ix.txns[t].first(), ix.txns[t].last()),
        Node::Ntx(a) => {
            let acc = &ix.ntx[a];
            (acc.req, acc.last())
        }
    }
}

/// Does node `n` write to register `x` non-locally (i.e., is it a "writer"
/// for WW purposes)? For transactions this means: contains any write to `x`
/// (the last one is non-local by definition).
fn node_writes(h: &History, ix: &HistoryIndex, n: Node, x: Reg) -> bool {
    match n {
        Node::Txn(t) => ix.txns[t]
            .actions
            .iter()
            .any(|&i| matches!(h.actions()[i].kind, Kind::Write(y, _) if y == x)),
        Node::Ntx(a) => ix.ntx[a].reg == x && ix.ntx[a].is_write(),
    }
}

/// Build the opacity graph for a history given a visibility choice for
/// commit-pending transactions and a WW strategy.
///
/// `pending_vis[k]` gives visibility for the k-th commit-pending transaction
/// (in transaction order). Committed transactions and ntx accesses are always
/// visible; aborted and live transactions never are (Def 6.3).
pub fn build_graph(
    h: &History,
    ix: &HistoryIndex,
    hb_actions: &BitRel,
    pending_vis: &[bool],
    strategy: &WwStrategy,
) -> OpacityGraph {
    let ntxn = ix.txns.len();
    let nnodes = ntxn + ix.ntx.len();
    let mut nodes = Vec::with_capacity(nnodes);
    for t in 0..ntxn {
        nodes.push(Node::Txn(t));
    }
    for a in 0..ix.ntx.len() {
        nodes.push(Node::Ntx(a));
    }

    // Visibility.
    let mut vis = vec![false; nnodes];
    let mut pk = 0;
    for (t, txn) in ix.txns.iter().enumerate() {
        vis[t] = match txn.status {
            TxnStatus::Committed => true,
            TxnStatus::Aborted | TxnStatus::Live => false,
            TxnStatus::CommitPending => {
                let v = pending_vis.get(pk).copied().unwrap_or(false);
                pk += 1;
                v
            }
        };
    }
    for a in 0..ix.ntx.len() {
        vis[ntxn + a] = true;
    }

    // Node-level HB: n -> n' iff some action of n happens-before some action
    // of n'. Since hb respects execution order we only need to test pairs of
    // actions once; node action lists are short.
    let mut hb = BitRel::new(nnodes);
    let node_actions: Vec<Vec<usize>> = nodes
        .iter()
        .map(|&n| match n {
            Node::Txn(t) => ix.txns[t].actions.clone(),
            Node::Ntx(a) => {
                let acc = &ix.ntx[a];
                match acc.resp {
                    Some(r) => vec![acc.req, r],
                    None => vec![acc.req],
                }
            }
        })
        .collect();
    for i in 0..nnodes {
        for j in 0..nnodes {
            if i == j {
                continue;
            }
            'outer: for &ai in &node_actions[i] {
                for &aj in &node_actions[j] {
                    if hb_actions.has(ai, aj) {
                        hb.add(i, j);
                        break 'outer;
                    }
                }
            }
        }
    }

    // WR edges at node level from the action-level read dependencies.
    let rd = HbBuilder::build(h, ix).read_deps;
    let owner_node = |i: usize| -> Option<usize> {
        match ix.owner[i] {
            crate::history::Owner::Txn(t) => Some(t),
            crate::history::Owner::Ntx(a) => Some(ntxn + a),
            crate::history::Owner::Fence(_) => None,
        }
    };
    let mut wr = Vec::new();
    for &(wi, rj, x) in &rd.edges {
        let (Some(nw), Some(nr)) = (owner_node(wi), owner_node(rj)) else {
            continue;
        };
        if nw != nr {
            wr.push((nw, nr, x));
        }
    }

    // WW: per register, the visible writers in the strategy's order.
    let nregs = ix.nregs;
    let mut ww: Vec<Vec<usize>> = Vec::with_capacity(nregs);
    for xr in 0..nregs {
        let x = Reg(xr as u32);
        let mut writers: Vec<usize> = (0..nnodes)
            .filter(|&n| vis[n] && node_writes(h, ix, nodes[n], x))
            .collect();
        match strategy {
            WwStrategy::Explicit(orders) => {
                let order = &orders[xr];
                debug_assert_eq!(order.len(), writers.len());
                writers = order.clone();
            }
            _ => writers.sort_by_key(|&n| ww_key(ix, nodes[n], strategy)),
        }
        ww.push(writers);
    }

    // RW derivation (Def 6.3):
    //   n -RWx-> n'  iff  n ≠ n' ∧ ( (∃n''. n'' -WWx-> n' ∧ n'' -WRx-> n)
    //                              ∨ (vis(n') ∧ n' writes x ∧ n read v_init from x) )
    let mut rw = Vec::new();
    let mut seen = std::collections::HashSet::new();
    // Indexing by register keeps the Def 6.3 transcription literal.
    #[allow(clippy::needless_range_loop)]
    for xr in 0..nregs {
        let x = Reg(xr as u32);
        let order = &ww[xr];
        let pos_in_ww = |n: usize| order.iter().position(|&m| m == n);
        // First disjunct: for each WR edge n''->n on x, n gets RW to every
        // writer after n'' in WWx.
        for &(nw, nr, xx) in &wr {
            if xx != x {
                continue;
            }
            if let Some(p) = pos_in_ww(nw) {
                for &later in &order[p + 1..] {
                    if later != nr && seen.insert((nr, later, xr)) {
                        rw.push((nr, later, x));
                    }
                }
            }
        }
        // Second disjunct: nodes that read v_init from x anti-depend on every
        // visible writer of x.
        for (n, acts) in node_actions.iter().enumerate() {
            // Does node n contain a read of x returning v_init? The request
            // directly precedes its response in the node's action list.
            let reads_init = acts.windows(2).any(|w| {
                h.actions()[w[1]].kind == Kind::RetVal(V_INIT)
                    && matches!(h.actions()[w[0]].kind, Kind::Read(y) if y == x)
            });
            if !reads_init {
                continue;
            }
            for &w in order {
                if w != n && seen.insert((n, w, xr)) {
                    rw.push((n, w, x));
                }
            }
        }
    }

    OpacityGraph {
        nodes,
        vis,
        hb,
        wr,
        ww,
        rw,
    }
}

fn ww_key(ix: &HistoryIndex, n: Node, strategy: &WwStrategy) -> (u64, u64) {
    match strategy {
        WwStrategy::Explicit(_) => unreachable!("explicit orders bypass keying"),
        WwStrategy::CompletionOrder => match n {
            Node::Txn(t) => (ix.txns[t].last() as u64, 0),
            Node::Ntx(a) => (ix.ntx[a].last() as u64, 0),
        },
        WwStrategy::FirstWriteOrder => match n {
            Node::Txn(t) => (ix.txns[t].first() as u64, 0),
            Node::Ntx(a) => (ix.ntx[a].req as u64, 0),
        },
        WwStrategy::TxnKeys { txn_key } => match n {
            // Transactions with keys sort by (key); ones without and ntx
            // accesses fall back to completion position. The secondary
            // component keeps the sort total and deterministic.
            Node::Txn(t) => match txn_key.get(t).copied().flatten() {
                Some(k) => (k, ix.txns[t].last() as u64),
                None => (ix.txns[t].last() as u64, 1),
            },
            Node::Ntx(a) => (ix.ntx[a].last() as u64, 1),
        },
    }
}

/// A node of the fenced graph (Def B.5): graph nodes plus individual fence
/// actions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FNode {
    Graph(usize),
    FBegin(usize),
    FEnd(usize),
}

/// The fenced opacity graph: used to linearize a witness history including
/// fence actions.
pub struct FencedGraph {
    pub fnodes: Vec<FNode>,
    pub edges: BitRel,
}

/// Build the fenced graph: nodes are the opacity-graph nodes plus each fence
/// action; edges are the lifted hb plus the graph's dependency edges. The
/// node list is sorted by first-action position so that the deterministic
/// topological sort stays close to the original history order.
pub fn build_fenced(ix: &HistoryIndex, g: &OpacityGraph, hb_actions: &BitRel) -> FencedGraph {
    let mut fnodes: Vec<FNode> = (0..g.node_count()).map(FNode::Graph).collect();
    for (f, fence) in ix.fences.iter().enumerate() {
        fnodes.push(FNode::FBegin(f));
        if fence.fend.is_some() {
            fnodes.push(FNode::FEnd(f));
        }
    }
    // Sort by position of first action.
    let pos = |fnode: &FNode| -> usize {
        match *fnode {
            FNode::Graph(n) => node_span(ix, g.nodes[n]).0,
            FNode::FBegin(f) => ix.fences[f].fbegin,
            FNode::FEnd(f) => ix.fences[f].fend.unwrap(),
        }
    };
    fnodes.sort_by_key(pos);
    let rev: std::collections::HashMap<FNode, usize> =
        fnodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();

    let actions_of = |fnode: &FNode| -> Vec<usize> {
        match *fnode {
            FNode::Graph(n) => match g.nodes[n] {
                Node::Txn(t) => ix.txns[t].actions.clone(),
                Node::Ntx(a) => {
                    let acc = &ix.ntx[a];
                    match acc.resp {
                        Some(r) => vec![acc.req, r],
                        None => vec![acc.req],
                    }
                }
            },
            FNode::FBegin(f) => vec![ix.fences[f].fbegin],
            FNode::FEnd(f) => vec![ix.fences[f].fend.unwrap()],
        }
    };

    let n = fnodes.len();
    let mut edges = BitRel::new(n);
    let all_actions: Vec<Vec<usize>> = fnodes.iter().map(actions_of).collect();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            'outer: for &ai in &all_actions[i] {
                for &aj in &all_actions[j] {
                    if hb_actions.has(ai, aj) {
                        edges.add(i, j);
                        break 'outer;
                    }
                }
            }
        }
    }
    // Dependency edges between graph nodes.
    for (u, v) in g.dep_edges() {
        if u != v {
            let (ui, vi) = (rev[&FNode::Graph(u)], rev[&FNode::Graph(v)]);
            edges.add(ui, vi);
        }
    }
    FencedGraph { fnodes, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::ids::ThreadId;

    fn a(id: u64, t: u32, kind: Kind) -> Action {
        Action::new(id, ThreadId(t), kind)
    }

    /// Committed writer, then a reader transaction: WR edge, no RW, acyclic.
    #[test]
    fn simple_wr_graph() {
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Write(Reg(0), 1)),
            a(3, 0, Kind::RetUnit),
            a(4, 0, Kind::TxCommit),
            a(5, 0, Kind::Committed),
            a(6, 1, Kind::TxBegin),
            a(7, 1, Kind::Ok),
            a(8, 1, Kind::Read(Reg(0))),
            a(9, 1, Kind::RetVal(1)),
            a(10, 1, Kind::TxCommit),
            a(11, 1, Kind::Committed),
        ]);
        let ix = HistoryIndex::new(&h);
        let hb = HbBuilder::build(&h, &ix).closure();
        let g = build_graph(&h, &ix, &hb, &[], &WwStrategy::CompletionOrder);
        assert_eq!(g.nodes.len(), 2);
        assert!(g.vis[0] && g.vis[1]);
        assert_eq!(g.wr, vec![(0, 1, Reg(0))]);
        assert!(g.rw.is_empty());
        assert!(g.is_acyclic());
        assert!(g.small_cycle_premise());
    }

    /// Reader of v_init anti-depends on the later visible writer; still
    /// acyclic when the read happened before the write committed.
    #[test]
    fn vinit_antidependency() {
        let h = History::new(vec![
            a(0, 1, Kind::TxBegin),
            a(1, 1, Kind::Ok),
            a(2, 1, Kind::Read(Reg(0))),
            a(3, 1, Kind::RetVal(0)),
            a(4, 1, Kind::TxCommit),
            a(5, 1, Kind::Committed),
            a(6, 0, Kind::TxBegin),
            a(7, 0, Kind::Ok),
            a(8, 0, Kind::Write(Reg(0), 1)),
            a(9, 0, Kind::RetUnit),
            a(10, 0, Kind::TxCommit),
            a(11, 0, Kind::Committed),
        ]);
        let ix = HistoryIndex::new(&h);
        let hb = HbBuilder::build(&h, &ix).closure();
        let g = build_graph(&h, &ix, &hb, &[], &WwStrategy::CompletionOrder);
        // txn 0 in history = t1's reader (created first), txn 1 = t0's writer.
        assert!(g.rw.contains(&(0, 1, Reg(0))));
        assert!(g.is_acyclic());
    }

    /// Write-write conflict ordering: two committed writers are totally
    /// ordered by WW; a reader of the first writer anti-depends on the second.
    #[test]
    fn ww_and_derived_rw() {
        let h = History::new(vec![
            // T0 writes 1 and commits.
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Write(Reg(0), 1)),
            a(3, 0, Kind::RetUnit),
            a(4, 0, Kind::TxCommit),
            a(5, 0, Kind::Committed),
            // T1 reads 1.
            a(6, 1, Kind::TxBegin),
            a(7, 1, Kind::Ok),
            a(8, 1, Kind::Read(Reg(0))),
            a(9, 1, Kind::RetVal(1)),
            a(10, 1, Kind::TxCommit),
            a(11, 1, Kind::Committed),
            // T2 writes 2 and commits.
            a(12, 2, Kind::TxBegin),
            a(13, 2, Kind::Ok),
            a(14, 2, Kind::Write(Reg(0), 2)),
            a(15, 2, Kind::RetUnit),
            a(16, 2, Kind::TxCommit),
            a(17, 2, Kind::Committed),
        ]);
        let ix = HistoryIndex::new(&h);
        let hb = HbBuilder::build(&h, &ix).closure();
        let g = build_graph(&h, &ix, &hb, &[], &WwStrategy::CompletionOrder);
        assert_eq!(g.ww[0], vec![0, 2]); // T0 before T2
        assert!(g.rw.contains(&(1, 2, Reg(0)))); // reader T1 -> overwriter T2
        assert!(g.is_acyclic());
    }

    /// An aborted transaction is never visible and never in WW.
    #[test]
    fn aborted_not_visible() {
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Write(Reg(0), 1)),
            a(3, 0, Kind::RetUnit),
            a(4, 0, Kind::TxCommit),
            a(5, 0, Kind::Aborted),
        ]);
        let ix = HistoryIndex::new(&h);
        let hb = HbBuilder::build(&h, &ix).closure();
        let g = build_graph(&h, &ix, &hb, &[], &WwStrategy::CompletionOrder);
        assert!(!g.vis[0]);
        assert!(g.ww[0].is_empty());
    }

    /// Commit-pending visibility is caller-controlled.
    #[test]
    fn pending_vis_choice() {
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Write(Reg(0), 1)),
            a(3, 0, Kind::RetUnit),
            a(4, 0, Kind::TxCommit),
        ]);
        let ix = HistoryIndex::new(&h);
        let hb = HbBuilder::build(&h, &ix).closure();
        let g0 = build_graph(&h, &ix, &hb, &[false], &WwStrategy::CompletionOrder);
        assert!(!g0.vis[0]);
        let g1 = build_graph(&h, &ix, &hb, &[true], &WwStrategy::CompletionOrder);
        assert!(g1.vis[0]);
        assert_eq!(g1.ww[0], vec![0]);
    }
}
