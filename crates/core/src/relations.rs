//! The relations of Sec 3 over the actions of a history, and the real-time
//! order of Sec 4. All relations are represented by *generator* edge sets
//! whose transitive closure equals the closure of the paper's relations —
//! exactness matters: an over-approximate happens-before hides data races,
//! an under-approximate one rejects DRF programs.

use crate::action::Kind;
use crate::bitrel::BitRel;
use crate::history::HistoryIndex;
use crate::ids::Value;
use crate::trace::History;
use std::collections::HashMap;

/// Read-dependency `wr_x`: pairs (write-request index, read-response index)
/// where the read returns the value the write wrote. Because writes are
/// unique (Def 2.1), value equality identifies the writer.
#[derive(Clone, Debug, Default)]
pub struct ReadDeps {
    /// (write request idx, read response idx, register).
    pub edges: Vec<(usize, usize, crate::ids::Reg)>,
}

/// Generator edges for `hb(H)` (Def 3.4) plus diagnostics.
pub struct HbBuilder<'h> {
    pub history: &'h History,
    pub index: &'h HistoryIndex,
    pub read_deps: ReadDeps,
    /// Generator edge set; closure = hb(H).
    pub generators: BitRel,
}

/// Compute `wr_x` for all registers: match each read response returning
/// `v ≠ v_init` with the unique write request of `v` on the same register.
pub fn read_dependencies(h: &History, ix: &HistoryIndex) -> ReadDeps {
    let acts = h.actions();
    // value -> (write request index, register)
    let mut writer_of: HashMap<Value, (usize, crate::ids::Reg)> = HashMap::new();
    for (i, a) in acts.iter().enumerate() {
        if let Kind::Write(x, v) = a.kind {
            writer_of.insert(v, (i, x));
        }
    }
    // Invert resp_of to map each response back to its request.
    let mut req_of: Vec<Option<usize>> = vec![None; acts.len()];
    for (req, resp) in ix.resp_of.iter().enumerate() {
        if let Some(r) = *resp {
            req_of[r] = Some(req);
        }
    }
    let mut edges = Vec::new();
    for (j, a) in acts.iter().enumerate() {
        let Kind::RetVal(v) = a.kind else { continue };
        if v == crate::ids::V_INIT {
            continue;
        }
        let Some(&(wi, wx)) = writer_of.get(&v) else {
            continue;
        };
        // The response j matches a read request on the same register and the
        // write precedes the response in execution order.
        if let Some(ri) = req_of[j] {
            if let Kind::Read(rx) = acts[ri].kind {
                if rx == wx && wi < j {
                    edges.push((wi, j, wx));
                }
            }
        }
    }
    ReadDeps { edges }
}

impl<'h> HbBuilder<'h> {
    /// Build the generators of `hb(H)`:
    ///
    /// * `po`: per-thread successor chain;
    /// * `cl`: successor chain over *non-transactional* actions (all TM
    ///   interface actions outside transactions, including fence actions);
    /// * `af`: `fbegin → txbegin` for every txbegin after the fbegin;
    /// * `bf`: `committed/aborted → fend` for every fend after it;
    /// * `xpo ; txwr_x`: edge `p → read-response`, where `p` is the last
    ///   same-thread action *before* the `txbegin` of the writing
    ///   transaction. Composing with po-closure yields exactly
    ///   `xpo(H) ; txwr_x(H)` (the txbegin itself is *not* related, matching
    ///   the strict "a txbegin between α and α′" side condition).
    pub fn build(h: &'h History, ix: &'h HistoryIndex) -> Self {
        let acts = h.actions();
        let n = acts.len();
        let mut g = BitRel::new(n);

        // po chains.
        let mut last_of_thread: Vec<Option<usize>> = vec![None; ix.nthreads];
        for (i, a) in acts.iter().enumerate() {
            let t = a.thread.idx();
            if let Some(p) = last_of_thread[t] {
                g.add(p, i);
            }
            last_of_thread[t] = Some(i);
        }

        // cl chain over non-transactional actions.
        let mut last_ntx: Option<usize> = None;
        for i in 0..n {
            if ix.is_nontransactional(i) {
                if let Some(p) = last_ntx {
                    g.add(p, i);
                }
                last_ntx = Some(i);
            }
        }

        // af: fbegin → every later txbegin.
        for f in &ix.fences {
            for txn in &ix.txns {
                let b = txn.first();
                if f.fbegin < b {
                    g.add(f.fbegin, b);
                }
            }
        }

        // bf: committed/aborted → every later fend.
        for txn in &ix.txns {
            if !txn.is_completed() {
                continue;
            }
            let end = txn.last();
            for f in &ix.fences {
                if let Some(fe) = f.fend {
                    if end < fe {
                        g.add(end, fe);
                    }
                }
            }
        }

        // xpo ; txwr.
        let read_deps = read_dependencies(h, ix);
        for &(wi, rj, _x) in &read_deps.edges {
            // Both endpoints must be transactional for txwr.
            let (Some(wt), Some(rt)) = (ix.txn_of(wi), ix.txn_of(rj)) else {
                continue;
            };
            if wt == rt {
                continue; // same transaction: not a synchronization edge
            }
            let wtxn = &ix.txns[wt];
            let b = wtxn.first();
            // p = last action of the writer's thread strictly before txbegin.
            let thread = wtxn.thread;
            let p = (0..b).rev().find(|&k| acts[k].thread == thread);
            if let Some(p) = p {
                if p < rj {
                    g.add(p, rj);
                }
            }
        }

        HbBuilder {
            history: h,
            index: ix,
            read_deps,
            generators: g,
        }
    }

    /// The happens-before relation as a closed bit matrix.
    pub fn closure(&self) -> BitRel {
        self.generators.closure_forward()
    }
}

/// Real-time order `rt(H)` on actions (Sec 4): `committed/aborted → txbegin`
/// pairs in execution order. Lifted to transactions by [`rt_txns`].
pub fn rt_txns(ix: &HistoryIndex) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, ti) in ix.txns.iter().enumerate() {
        if !ti.is_completed() {
            continue;
        }
        let end = ti.last();
        for (j, tj) in ix.txns.iter().enumerate() {
            if i != j && end < tj.first() {
                out.push((i, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::ids::{Reg, ThreadId};

    fn a(id: u64, t: u32, kind: Kind) -> Action {
        Action::new(id, ThreadId(t), kind)
    }

    /// Fig 5(a): transaction begins after the fence begins → af edge.
    #[test]
    fn af_edge_fig5a() {
        let h = History::new(vec![
            a(0, 0, Kind::FBegin),
            a(1, 1, Kind::TxBegin),
            a(2, 1, Kind::Ok),
            a(3, 1, Kind::TxCommit),
            a(4, 1, Kind::Committed),
            a(5, 0, Kind::FEnd),
        ]);
        let ix = HistoryIndex::new(&h);
        let hb = HbBuilder::build(&h, &ix).closure();
        // fbegin (0) happens-before txbegin (1).
        assert!(hb.has(0, 1));
    }

    /// Fig 5(b): transaction ends before the fence does → bf edge.
    #[test]
    fn bf_edge_fig5b() {
        let h = History::new(vec![
            a(0, 1, Kind::TxBegin),
            a(1, 1, Kind::Ok),
            a(2, 0, Kind::FBegin),
            a(3, 1, Kind::TxCommit),
            a(4, 1, Kind::Committed),
            a(5, 0, Kind::FEnd),
        ]);
        let ix = HistoryIndex::new(&h);
        let hb = HbBuilder::build(&h, &ix).closure();
        // committed (4) happens-before fend (5).
        assert!(hb.has(4, 5));
        // and hence txbegin (0) → fend (5) via po;bf.
        assert!(hb.has(0, 5));
    }

    #[test]
    fn po_and_cl_chains() {
        let h = History::new(vec![
            a(0, 0, Kind::Write(Reg(0), 1)),
            a(1, 0, Kind::RetUnit),
            a(2, 1, Kind::Read(Reg(0))),
            a(3, 1, Kind::RetVal(1)),
        ]);
        let ix = HistoryIndex::new(&h);
        let hb = HbBuilder::build(&h, &ix).closure();
        // po within threads.
        assert!(hb.has(0, 1));
        assert!(hb.has(2, 3));
        // cl across threads (both accesses non-transactional).
        assert!(hb.has(0, 2));
        assert!(hb.has(1, 3));
        assert!(!hb.has(3, 0));
    }

    /// Publication (Fig 2 shape): ν ; T1 writes flag ; T2 reads flag. The
    /// write in ν must happen-before T2's actions via xpo;txwr.
    #[test]
    fn xpo_txwr_publication() {
        let h = History::new(vec![
            // ν: t0 writes x1 := 42 non-transactionally.
            a(0, 0, Kind::Write(Reg(1), 42)),
            a(1, 0, Kind::RetUnit),
            // T1 (t0): writes flag x0 := 7 transactionally, commits.
            a(2, 0, Kind::TxBegin),
            a(3, 0, Kind::Ok),
            a(4, 0, Kind::Write(Reg(0), 7)),
            a(5, 0, Kind::RetUnit),
            a(6, 0, Kind::TxCommit),
            a(7, 0, Kind::Committed),
            // T2 (t1): reads flag x0 = 7, then reads x1.
            a(8, 1, Kind::TxBegin),
            a(9, 1, Kind::Ok),
            a(10, 1, Kind::Read(Reg(0))),
            a(11, 1, Kind::RetVal(7)),
            a(12, 1, Kind::Read(Reg(1))),
            a(13, 1, Kind::RetVal(42)),
            a(14, 1, Kind::TxCommit),
            a(15, 1, Kind::Committed),
        ]);
        let ix = HistoryIndex::new(&h);
        let b = HbBuilder::build(&h, &ix);
        // txwr on flag: write req 4 → read resp 11.
        assert!(b.read_deps.edges.contains(&(4, 11, Reg(0))));
        let hb = b.closure();
        // ν's write (0) happens-before the flag read response (11):
        // 0 <po 1 <gen 11 (generator from po-predecessor of txbegin 2).
        assert!(hb.has(0, 11));
        assert!(hb.has(1, 11));
        // The txbegin itself is NOT xpo-related... but po+txwr generator puts
        // edge from action 1 (predecessor of txbegin 2). txbegin (2) must not
        // reach 11 through the xpo;txwr generator alone; the paper's hb does
        // not include it (footnote 2: writes may be flushed in any order).
        assert!(!hb.has(2, 10) || hb.has(2, 10) == hb.has(2, 11));
    }

    /// Within-transaction reads do not generate synchronization edges.
    #[test]
    fn same_txn_read_no_edge() {
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Write(Reg(0), 5)),
            a(3, 0, Kind::RetUnit),
            a(4, 0, Kind::Read(Reg(0))),
            a(5, 0, Kind::RetVal(5)),
            a(6, 0, Kind::TxCommit),
            a(7, 0, Kind::Committed),
        ]);
        let ix = HistoryIndex::new(&h);
        let b = HbBuilder::build(&h, &ix);
        // wr edge exists (2 → 5) but contributes nothing beyond po.
        assert!(b.read_deps.edges.contains(&(2, 5, Reg(0))));
        let hb = b.closure();
        assert!(hb.has(0, 7)); // po only
    }

    #[test]
    fn rt_on_txns() {
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::TxCommit),
            a(3, 0, Kind::Committed),
            a(4, 1, Kind::TxBegin),
            a(5, 1, Kind::Ok),
        ]);
        let ix = HistoryIndex::new(&h);
        assert_eq!(rt_txns(&ix), vec![(0, 1)]);
    }

    /// A read of v_init produces no read dependency.
    #[test]
    fn vinit_read_no_dep() {
        let h = History::new(vec![a(0, 0, Kind::Read(Reg(0))), a(1, 0, Kind::RetVal(0))]);
        let ix = HistoryIndex::new(&h);
        let b = HbBuilder::build(&h, &ix);
        assert!(b.read_deps.edges.is_empty());
    }
}
