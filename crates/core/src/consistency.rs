//! History consistency (Defs 6.1 and 6.2): local accesses and the basic
//! read-dependency sanity every opaque history must satisfy.

use crate::action::Kind;
use crate::history::{HistoryIndex, TxnStatus};
use crate::ids::{Reg, Value, V_INIT};
use crate::trace::History;

/// Why a history is inconsistent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inconsistency {
    /// A local read did not return the transaction's most recent write.
    LocalReadWrongValue { read_resp: usize },
    /// A non-local read returned a value whose (unique) write is local,
    /// missing, or inside an aborted/live transaction.
    BadReadSource { read_resp: usize },
}

/// Is the write request at `i` *local* to its transaction (Def 6.1): is it
/// followed by another write to the same register in the same transaction?
pub fn write_is_local(h: &History, ix: &HistoryIndex, i: usize) -> bool {
    let Kind::Write(x, _) = h.actions()[i].kind else {
        return false;
    };
    let Some(t) = ix.txn_of(i) else {
        return false; // non-transactional writes are never local
    };
    ix.txns[t]
        .actions
        .iter()
        .any(|&j| j > i && matches!(h.actions()[j].kind, Kind::Write(y, _) if y == x))
}

/// Is the read request at `i` local (Def 6.1): preceded by a write to the
/// same register in the same transaction?
pub fn read_is_local(h: &History, ix: &HistoryIndex, i: usize) -> bool {
    let Kind::Read(x) = h.actions()[i].kind else {
        return false;
    };
    let Some(t) = ix.txn_of(i) else {
        return false;
    };
    ix.txns[t]
        .actions
        .iter()
        .any(|&j| j < i && matches!(h.actions()[j].kind, Kind::Write(y, _) if y == x))
}

/// The most recent write to `x` before index `i` in transaction `t`.
fn last_own_write(h: &History, ix: &HistoryIndex, t: usize, x: Reg, i: usize) -> Option<Value> {
    ix.txns[t]
        .actions
        .iter()
        .rev()
        .filter(|&&j| j < i)
        .find_map(|&j| match h.actions()[j].kind {
            Kind::Write(y, v) if y == x => Some(v),
            _ => None,
        })
}

/// Check `cons(H)` (Def 6.2). Every matched read request/response must be
/// consistent:
///
/// * local reads return the transaction's most recent preceding write;
/// * non-local reads return either `v_init` or a value written by a
///   *non-local* write that is not inside an aborted or live transaction.
///
/// Commit-pending writers are permitted sources (cf. Sec 2.4's treatment of
/// commit-pending transactions).
pub fn check_consistency(h: &History, ix: &HistoryIndex) -> Result<(), Inconsistency> {
    let acts = h.actions();
    // value -> write request index (writes are unique).
    let mut writer_of = std::collections::HashMap::new();
    for (i, a) in acts.iter().enumerate() {
        if let Kind::Write(_, v) = a.kind {
            writer_of.insert(v, i);
        }
    }
    for (req, resp) in ix.resp_of.iter().enumerate() {
        let Some(resp) = *resp else { continue };
        let Kind::Read(x) = acts[req].kind else {
            continue;
        };
        let Kind::RetVal(v) = acts[resp].kind else {
            continue;
        };

        if read_is_local(h, ix, req) {
            let t = ix.txn_of(req).unwrap();
            let expected = last_own_write(h, ix, t, x, req).unwrap();
            if v != expected {
                return Err(Inconsistency::LocalReadWrongValue { read_resp: resp });
            }
        } else if v != V_INIT {
            let Some(&wi) = writer_of.get(&v) else {
                return Err(Inconsistency::BadReadSource { read_resp: resp });
            };
            // The write must be on the same register, non-local, and not in
            // an aborted or live transaction.
            let same_reg = matches!(acts[wi].kind, Kind::Write(y, _) if y == x);
            let nonlocal = !write_is_local(h, ix, wi);
            let status_ok = match ix.txn_of(wi) {
                None => true,
                Some(t) => matches!(
                    ix.txns[t].status,
                    TxnStatus::Committed | TxnStatus::CommitPending
                ),
            };
            if !(same_reg && nonlocal && status_ok) {
                return Err(Inconsistency::BadReadSource { read_resp: resp });
            }
        }
        // Non-local reads of v_init are always consistent at this level;
        // stale-initial-value reads are ruled out by anti-dependency edges in
        // the opacity graph, not by cons(H).
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::ids::ThreadId;

    fn a(id: u64, t: u32, kind: Kind) -> Action {
        Action::new(id, ThreadId(t), kind)
    }

    #[test]
    fn locality() {
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Write(Reg(0), 1)), // local (overwritten at 6)
            a(3, 0, Kind::RetUnit),
            a(4, 0, Kind::Read(Reg(0))), // local (preceded by write at 2)
            a(5, 0, Kind::RetVal(1)),
            a(6, 0, Kind::Write(Reg(0), 2)), // non-local (last write)
            a(7, 0, Kind::RetUnit),
            a(8, 0, Kind::Read(Reg(1))), // non-local (no write to x1)
            a(9, 0, Kind::RetVal(0)),
            a(10, 0, Kind::TxCommit),
            a(11, 0, Kind::Committed),
        ]);
        let ix = HistoryIndex::new(&h);
        assert!(write_is_local(&h, &ix, 2));
        assert!(!write_is_local(&h, &ix, 6));
        assert!(read_is_local(&h, &ix, 4));
        assert!(!read_is_local(&h, &ix, 8));
        assert_eq!(check_consistency(&h, &ix), Ok(()));
    }

    #[test]
    fn local_read_must_see_latest_own_write() {
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Write(Reg(0), 1)),
            a(3, 0, Kind::RetUnit),
            a(4, 0, Kind::Write(Reg(0), 2)),
            a(5, 0, Kind::RetUnit),
            a(6, 0, Kind::Read(Reg(0))),
            a(7, 0, Kind::RetVal(1)), // stale: should be 2
            a(8, 0, Kind::TxCommit),
            a(9, 0, Kind::Committed),
        ]);
        let ix = HistoryIndex::new(&h);
        assert_eq!(
            check_consistency(&h, &ix),
            Err(Inconsistency::LocalReadWrongValue { read_resp: 7 })
        );
    }

    #[test]
    fn read_from_aborted_txn_inconsistent() {
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Write(Reg(0), 5)),
            a(3, 0, Kind::RetUnit),
            a(4, 0, Kind::TxCommit),
            a(5, 0, Kind::Aborted),
            a(6, 1, Kind::Read(Reg(0))),
            a(7, 1, Kind::RetVal(5)),
        ]);
        let ix = HistoryIndex::new(&h);
        assert_eq!(
            check_consistency(&h, &ix),
            Err(Inconsistency::BadReadSource { read_resp: 7 })
        );
    }

    #[test]
    fn read_from_commit_pending_ok() {
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Write(Reg(0), 5)),
            a(3, 0, Kind::RetUnit),
            a(4, 0, Kind::TxCommit),
            a(6, 1, Kind::Read(Reg(0))),
            a(7, 1, Kind::RetVal(5)),
        ]);
        let ix = HistoryIndex::new(&h);
        assert_eq!(check_consistency(&h, &ix), Ok(()));
    }

    #[test]
    fn read_of_local_write_from_other_txn_inconsistent() {
        // t0's write of 1 is local (overwritten by 2); t1 must not read 1.
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Write(Reg(0), 1)),
            a(3, 0, Kind::RetUnit),
            a(4, 0, Kind::Write(Reg(0), 2)),
            a(5, 0, Kind::RetUnit),
            a(6, 0, Kind::TxCommit),
            a(7, 0, Kind::Committed),
            a(8, 1, Kind::Read(Reg(0))),
            a(9, 1, Kind::RetVal(1)),
        ]);
        let ix = HistoryIndex::new(&h);
        assert_eq!(
            check_consistency(&h, &ix),
            Err(Inconsistency::BadReadSource { read_resp: 9 })
        );
    }

    #[test]
    fn vinit_read_consistent_even_after_writes() {
        // cons(H) does not rule this out; the opacity graph does.
        let h = History::new(vec![
            a(0, 0, Kind::Write(Reg(0), 3)),
            a(1, 0, Kind::RetUnit),
            a(2, 1, Kind::Read(Reg(0))),
            a(3, 1, Kind::RetVal(0)),
        ]);
        let ix = HistoryIndex::new(&h);
        assert_eq!(check_consistency(&h, &ix), Ok(()));
    }
}
