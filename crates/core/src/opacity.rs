//! End-to-end strong-opacity checking (Defs 4.1–4.2, Theorem 6.5, Lemma 6.4).
//!
//! Given a history `H`, the checker (a) verifies `cons(H)`, (b) searches for
//! an acyclic opacity graph over candidate visibility choices and WW
//! strategies, (c) linearizes the fenced graph into a witness history `S`,
//! and (d) *re-verifies* everything Lemma 6.4 promises: `S` is a permutation
//! of `H` preserving `hb(H)` (i.e., `H ⊑ S`) and `S ∈ H_atomic`. Nothing is
//! trusted: a bug in graph construction shows up as a verification failure,
//! not a wrong verdict.

use crate::action::Action;
use crate::atomic_tm::in_atomic_tm;
use crate::bitrel::BitRel;
use crate::consistency::{check_consistency, Inconsistency};
use crate::graph::{build_fenced, build_graph, FNode, Node, OpacityGraph, WwStrategy};
use crate::history::{HistoryIndex, TxnStatus};
use crate::relations::HbBuilder;
use crate::trace::History;
use std::collections::HashMap;

/// A verified witness for strong opacity of a history.
pub struct Witness {
    /// The non-interleaved history `S ∈ H_atomic` with `H ⊑ S`.
    pub sequential: History,
    /// `theta[i]` = position in `S` of `H`'s i-th action.
    pub theta: Vec<usize>,
    /// Whether the Theorem 6.6 small-cycle premise held for the graph used.
    pub small_cycle_premise: bool,
}

/// Why strong opacity could not be established.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpacityError {
    /// `cons(H)` fails (Def 6.2).
    Inconsistent(Inconsistency),
    /// No candidate graph was acyclic.
    NoAcyclicGraph,
    /// A topological witness existed but failed re-verification (would
    /// indicate a checker bug; surfaced for defense in depth).
    WitnessRejected(&'static str),
}

/// Options controlling the search.
pub struct CheckOptions {
    /// Per-transaction WW keys (e.g. TL2 write timestamps), tried first if
    /// provided.
    pub txn_ww_keys: Option<Vec<Option<u64>>>,
    /// Maximum number of commit-pending transactions to enumerate visibility
    /// choices for (2^k candidates).
    pub max_pending_enumeration: u32,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            txn_ww_keys: None,
            max_pending_enumeration: 10,
        }
    }
}

/// Check the strong opacity relation `H1 ⊑ H2` (Def 4.1) directly: `H2` must
/// be a permutation of `H1` (matching actions by identity) such that
/// `hb(H1)`-related actions keep their relative order.
pub fn in_opacity_relation(h1: &History, h2: &History) -> Result<Vec<usize>, &'static str> {
    if h1.len() != h2.len() {
        return Err("different lengths");
    }
    // Map actions of h2 by (id, thread, kind) — ids are unique.
    let mut pos_in_h2: HashMap<Action, usize> = HashMap::with_capacity(h2.len());
    for (j, &a) in h2.actions().iter().enumerate() {
        if pos_in_h2.insert(a, j).is_some() {
            return Err("duplicate action in h2");
        }
    }
    let mut theta = Vec::with_capacity(h1.len());
    for &a in h1.actions() {
        match pos_in_h2.get(&a) {
            Some(&j) => theta.push(j),
            None => return Err("h2 is not a permutation of h1"),
        }
    }
    // hb preservation.
    let ix = HistoryIndex::new(h1);
    let hb = HbBuilder::build(h1, &ix).closure();
    for i in 0..h1.len() {
        for j in hb.succs(i) {
            if theta[i] >= theta[j] {
                return Err("hb not preserved");
            }
        }
    }
    Ok(theta)
}

/// Strong-opacity check for one history. On success returns a fully verified
/// witness. Callers enforcing the TM contract (`H|DRF ⊑ H_atomic`) should
/// first establish DRF; racy histories need no witness.
pub fn check_strong_opacity(h: &History, opts: &CheckOptions) -> Result<Witness, OpacityError> {
    let ix = HistoryIndex::new(h);
    check_consistency(h, &ix).map_err(OpacityError::Inconsistent)?;
    let hb = HbBuilder::build(h, &ix).closure();

    let pending: Vec<usize> = ix
        .txns
        .iter()
        .enumerate()
        .filter(|(_, t)| t.status == TxnStatus::CommitPending)
        .map(|(i, _)| i)
        .collect();
    let k = pending.len().min(opts.max_pending_enumeration as usize);

    // Candidate strategies in order of preference.
    let mut strategies: Vec<WwStrategy> = Vec::new();
    if let Some(keys) = &opts.txn_ww_keys {
        strategies.push(WwStrategy::TxnKeys {
            txn_key: keys.clone(),
        });
    }
    strategies.push(WwStrategy::CompletionOrder);
    strategies.push(WwStrategy::FirstWriteOrder);

    // Visibility candidates: prefer "pending transactions that are read from
    // are visible, others invisible", then enumerate.
    let mut vis_candidates: Vec<Vec<bool>> = Vec::new();
    {
        let rd = HbBuilder::build(h, &ix).read_deps;
        let mut read_from = vec![false; ix.txns.len()];
        for &(wi, rj, _) in &rd.edges {
            if let (Some(wt), Some(rt)) = (ix.txn_of(wi), ix.txn_of(rj)) {
                if wt != rt {
                    read_from[wt] = true;
                }
            } else if let Some(wt) = ix.txn_of(wi) {
                read_from[wt] = true;
            }
        }
        let preferred: Vec<bool> = pending.iter().map(|&t| read_from[t]).collect();
        vis_candidates.push(preferred);
        for mask in 0u32..(1u32 << k) {
            let cand: Vec<bool> = (0..pending.len())
                .map(|i| i < k && mask & (1 << i) != 0)
                .collect();
            if !vis_candidates.contains(&cand) {
                vis_candidates.push(cand);
            }
        }
    }

    let mut saw_acyclic = false;
    for strategy in &strategies {
        for pv in &vis_candidates {
            let g = build_graph(h, &ix, &hb, pv, strategy);
            if !g.is_acyclic() {
                continue;
            }
            saw_acyclic = true;
            match linearize_and_verify(h, &ix, &hb, &g) {
                Ok(w) => return Ok(w),
                Err(_) => continue,
            }
        }
    }

    // Brute-force fallback: the canonical WW orders can be wrong for
    // recorded concurrent histories (a commit response may be logged after
    // a later writer's), so enumerate per-register writer permutations when
    // the search space is small.
    for pv in &vis_candidates {
        let base = build_graph(h, &ix, &hb, pv, &WwStrategy::CompletionOrder);
        if let Some(w) = brute_force_ww(h, &ix, &hb, pv, &base, &mut saw_acyclic) {
            return Ok(w);
        }
    }

    if saw_acyclic {
        Err(OpacityError::WitnessRejected(
            "acyclic graph found but no witness verified",
        ))
    } else {
        Err(OpacityError::NoAcyclicGraph)
    }
}

/// Enumerate WW orders (per-register permutations of visible writers) up to
/// a bounded product of candidates; return the first verified witness.
fn brute_force_ww(
    h: &History,
    ix: &HistoryIndex,
    hb: &BitRel,
    pv: &[bool],
    base: &OpacityGraph,
    saw_acyclic: &mut bool,
) -> Option<Witness> {
    const MAX_WRITERS: usize = 6;
    const MAX_CANDIDATES: usize = 20_000;

    let per_reg: Vec<Vec<usize>> = base.ww.clone();
    let mut total: usize = 1;
    for ws in &per_reg {
        if ws.len() > MAX_WRITERS {
            return None;
        }
        total = total.saturating_mul(factorial(ws.len()).max(1));
        if total > MAX_CANDIDATES {
            return None;
        }
    }

    let perms_per_reg: Vec<Vec<Vec<usize>>> = per_reg.iter().map(|ws| permutations(ws)).collect();
    let mut idx = vec![0usize; perms_per_reg.len()];
    loop {
        let orders: Vec<Vec<usize>> = perms_per_reg
            .iter()
            .zip(&idx)
            .map(|(ps, &i)| ps.get(i).cloned().unwrap_or_default())
            .collect();
        let g = build_graph(h, ix, hb, pv, &WwStrategy::Explicit(orders));
        if g.is_acyclic() {
            *saw_acyclic = true;
            if let Ok(w) = linearize_and_verify(h, ix, hb, &g) {
                return Some(w);
            }
        }
        // Next multi-index.
        let mut k = 0;
        loop {
            if k == idx.len() {
                return None;
            }
            idx[k] += 1;
            if idx[k] < perms_per_reg[k].len().max(1) {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

fn factorial(n: usize) -> usize {
    (1..=n).product()
}

fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}

/// Topologically sort the fenced graph, emit the witness history, and verify
/// all of Lemma 6.4's conclusions.
fn linearize_and_verify(
    h: &History,
    ix: &HistoryIndex,
    hb: &BitRel,
    g: &OpacityGraph,
) -> Result<Witness, OpacityError> {
    let fg = build_fenced(ix, g, hb);
    let Some(order) = fg.edges.topo_sort() else {
        return Err(OpacityError::WitnessRejected("fenced graph cyclic"));
    };

    let mut seq: Vec<Action> = Vec::with_capacity(h.len());
    for &oi in &order {
        match fg.fnodes[oi] {
            FNode::Graph(n) => match g.nodes[n] {
                Node::Txn(t) => {
                    for &i in &ix.txns[t].actions {
                        seq.push(h.actions()[i]);
                    }
                }
                Node::Ntx(a) => {
                    let acc = &ix.ntx[a];
                    seq.push(h.actions()[acc.req]);
                    if let Some(r) = acc.resp {
                        seq.push(h.actions()[r]);
                    }
                }
            },
            FNode::FBegin(f) => seq.push(h.actions()[ix.fences[f].fbegin]),
            FNode::FEnd(f) => seq.push(h.actions()[ix.fences[f].fend.unwrap()]),
        }
    }
    if seq.len() != h.len() {
        return Err(OpacityError::WitnessRejected("witness dropped actions"));
    }
    let s = History::new(seq);

    // Verify H ⊑ S.
    let theta = in_opacity_relation(h, &s).map_err(OpacityError::WitnessRejected)?;
    // Verify S ∈ H_atomic.
    if in_atomic_tm(&s).is_err() {
        return Err(OpacityError::WitnessRejected("witness not in H_atomic"));
    }
    Ok(Witness {
        sequential: s,
        theta,
        small_cycle_premise: g.small_cycle_premise(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Kind;
    use crate::ids::{Reg, ThreadId};

    fn a(id: u64, t: u32, kind: Kind) -> Action {
        Action::new(id, ThreadId(t), kind)
    }

    /// Two interleaved transactions on disjoint registers: strongly opaque;
    /// the witness serializes them.
    #[test]
    fn disjoint_interleaving_opaque() {
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 1, Kind::TxBegin),
            a(3, 1, Kind::Ok),
            a(4, 0, Kind::Write(Reg(0), 1)),
            a(5, 0, Kind::RetUnit),
            a(6, 1, Kind::Write(Reg(1), 2)),
            a(7, 1, Kind::RetUnit),
            a(8, 0, Kind::TxCommit),
            a(9, 0, Kind::Committed),
            a(10, 1, Kind::TxCommit),
            a(11, 1, Kind::Committed),
        ]);
        let w = check_strong_opacity(&h, &CheckOptions::default()).unwrap();
        assert!(in_atomic_tm(&w.sequential).is_ok());
        assert!(w.small_cycle_premise);
    }

    /// The delayed-commit anomaly (Fig 1(a) without a fence): T2 read the
    /// flag as unprivatized, ν wrote x non-transactionally, then T2's commit
    /// overwrote ν. The resulting history has a WR/WW/RW cycle with hb and is
    /// NOT strongly opaque. (It is racy, so TMs need not justify it — this
    /// test documents that the checker detects the anomaly shape.)
    #[test]
    fn delayed_commit_not_opaque() {
        // Registers: x0 = flag, x1 = data.
        // t1 (T2): reads flag=0, writes x1=42 (buffered), commit-pending,
        //          but its write lands AFTER ν.
        // t0: T1 privatizes flag=1, commits; ν writes x1=7 non-tx; then a
        //     non-transactional read of x1 sees 42 (T2's overwrite).
        let h = History::new(vec![
            a(0, 1, Kind::TxBegin),
            a(1, 1, Kind::Ok),
            a(2, 1, Kind::Read(Reg(0))),
            a(3, 1, Kind::RetVal(0)),
            a(4, 1, Kind::Write(Reg(1), 42)),
            a(5, 1, Kind::RetUnit),
            a(6, 0, Kind::TxBegin),
            a(7, 0, Kind::Ok),
            a(8, 0, Kind::Write(Reg(0), 1)),
            a(9, 0, Kind::RetUnit),
            a(10, 0, Kind::TxCommit),
            a(11, 0, Kind::Committed),
            a(12, 0, Kind::Write(Reg(1), 7)),
            a(13, 0, Kind::RetUnit),
            a(14, 1, Kind::TxCommit),
            a(15, 1, Kind::Committed),
            // The observable damage: x1 is now 42, not 7.
            a(16, 0, Kind::Read(Reg(1))),
            a(17, 0, Kind::RetVal(42)),
        ]);
        let r = check_strong_opacity(&h, &CheckOptions::default());
        assert!(r.is_err(), "delayed commit must not be strongly opaque");
    }

    /// Publication (Fig 2): ν ; T1 ; T2 sequential — trivially opaque, and
    /// the witness preserves the hb edge from ν to T2.
    #[test]
    fn publication_opaque() {
        let h = History::new(vec![
            a(0, 0, Kind::Write(Reg(1), 42)),
            a(1, 0, Kind::RetUnit),
            a(2, 0, Kind::TxBegin),
            a(3, 0, Kind::Ok),
            a(4, 0, Kind::Write(Reg(0), 1)),
            a(5, 0, Kind::RetUnit),
            a(6, 0, Kind::TxCommit),
            a(7, 0, Kind::Committed),
            a(8, 1, Kind::TxBegin),
            a(9, 1, Kind::Ok),
            a(10, 1, Kind::Read(Reg(0))),
            a(11, 1, Kind::RetVal(1)),
            a(12, 1, Kind::Read(Reg(1))),
            a(13, 1, Kind::RetVal(42)),
            a(14, 1, Kind::TxCommit),
            a(15, 1, Kind::Committed),
        ]);
        let w = check_strong_opacity(&h, &CheckOptions::default()).unwrap();
        // ν must stay before T2's read of x1 in the witness.
        assert!(w.theta[0] < w.theta[12]);
    }

    /// in_opacity_relation rejects non-permutations and hb violations.
    #[test]
    fn opacity_relation_checks() {
        let h1 = History::new(vec![
            a(0, 0, Kind::Write(Reg(0), 1)),
            a(1, 0, Kind::RetUnit),
            a(2, 1, Kind::Write(Reg(1), 2)),
            a(3, 1, Kind::RetUnit),
        ]);
        // Identity permutation works.
        assert!(in_opacity_relation(&h1, &h1).is_ok());
        // Reordering the two ntx accesses breaks cl ⊆ hb.
        let h2 = History::new(vec![
            a(2, 1, Kind::Write(Reg(1), 2)),
            a(3, 1, Kind::RetUnit),
            a(0, 0, Kind::Write(Reg(0), 1)),
            a(1, 0, Kind::RetUnit),
        ]);
        assert_eq!(in_opacity_relation(&h1, &h2), Err("hb not preserved"));
        // Different multiset of actions.
        let h3 = History::new(vec![
            a(0, 0, Kind::Write(Reg(0), 1)),
            a(1, 0, Kind::RetUnit),
            a(9, 1, Kind::Write(Reg(1), 3)),
            a(3, 1, Kind::RetUnit),
        ]);
        assert!(in_opacity_relation(&h1, &h3).is_err());
    }

    /// A commit-pending transaction that was read from must be treated as
    /// visible; the checker finds the right completion.
    #[test]
    fn pending_read_from_opaque() {
        let h = History::new(vec![
            a(0, 0, Kind::TxBegin),
            a(1, 0, Kind::Ok),
            a(2, 0, Kind::Write(Reg(0), 5)),
            a(3, 0, Kind::RetUnit),
            a(4, 0, Kind::TxCommit),
            // commit-pending; t1 reads its value non-transactionally? No —
            // keep it transactional to stay in the TM-mediated world.
            a(5, 1, Kind::TxBegin),
            a(6, 1, Kind::Ok),
            a(7, 1, Kind::Read(Reg(0))),
            a(8, 1, Kind::RetVal(5)),
            a(9, 1, Kind::TxCommit),
            a(10, 1, Kind::Committed),
        ]);
        let w = check_strong_opacity(&h, &CheckOptions::default()).unwrap();
        assert!(in_atomic_tm(&w.sequential).is_ok());
    }
}
