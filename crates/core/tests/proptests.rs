//! Property-based tests for the tm-core machinery.
//!
//! A seeded generator produces *phased, serialized* executions: rounds of
//! random committed/aborted transactions by all threads, then a fence by an
//! owner thread, then a non-transactional burst by that owner, then another
//! fence. Such histories are well-formed, DRF (every mixed conflict is
//! ordered through po/cl/af/bf), members of `H_atomic`, and strongly opaque
//! — which exercises every relation of Def 3.4 plus the full checker
//! pipeline on thousands of distinct inputs. A second generator interleaves
//! transaction bodies (keeping commit order) to exercise the witness
//! reordering machinery.

// Index-based loops below transcribe Floyd–Warshall and per-thread script
// interleaving literally.
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use tm_core::atomic_tm::in_atomic_tm;
use tm_core::bitrel::BitRel;
use tm_core::consistency::check_consistency;
use tm_core::equiv::{observationally_equivalent, rearrange};
use tm_core::hb::{analyze, is_drf};
use tm_core::history::HistoryIndex;
use tm_core::opacity::{check_strong_opacity, in_opacity_relation, CheckOptions};
use tm_core::prelude::*;
use tm_core::textio;
use tm_core::trace::Trace;

/// Deterministic RNG (splitmix64).
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

struct Gen {
    actions: Vec<Action>,
    next_id: u64,
    next_val: u64,
    /// Committed value per register (for legal read generation).
    regs: Vec<u64>,
}

impl Gen {
    fn new(nregs: usize) -> Self {
        Gen {
            actions: Vec::new(),
            next_id: 0,
            next_val: 1,
            regs: vec![0; nregs],
        }
    }
    fn emit(&mut self, t: u32, kind: Kind) {
        self.actions
            .push(Action::new(self.next_id, ThreadId(t), kind));
        self.next_id += 1;
    }
    fn fresh_val(&mut self) -> u64 {
        let v = self.next_val;
        self.next_val += 1;
        v
    }

    /// A complete serialized transaction by thread `t`: random reads (legal
    /// values) and buffered writes; commits or aborts at the end.
    fn txn(&mut self, rng: &mut Rng, t: u32, nregs: usize, commit: bool) {
        self.emit(t, Kind::TxBegin);
        self.emit(t, Kind::Ok);
        let mut buffered: Vec<(usize, u64)> = Vec::new();
        let ops = 1 + rng.below(4);
        for _ in 0..ops {
            let x = rng.below(nregs as u64) as usize;
            if rng.below(2) == 0 {
                // Read: own buffer first, then committed state.
                let v = buffered
                    .iter()
                    .rev()
                    .find(|&&(r, _)| r == x)
                    .map(|&(_, v)| v)
                    .unwrap_or(self.regs[x]);
                self.emit(t, Kind::Read(Reg(x as u32)));
                self.emit(t, Kind::RetVal(v));
            } else {
                let v = self.fresh_val();
                self.emit(t, Kind::Write(Reg(x as u32), v));
                self.emit(t, Kind::RetUnit);
                buffered.push((x, v));
            }
        }
        self.emit(t, Kind::TxCommit);
        if commit {
            for (x, v) in buffered {
                self.regs[x] = v;
            }
            self.emit(t, Kind::Committed);
        } else {
            self.emit(t, Kind::Aborted);
        }
    }

    fn fence(&mut self, t: u32) {
        self.emit(t, Kind::FBegin);
        self.emit(t, Kind::FEnd);
    }

    fn ntx_burst(&mut self, rng: &mut Rng, t: u32, nregs: usize) {
        let ops = 1 + rng.below(3);
        for _ in 0..ops {
            let x = rng.below(nregs as u64) as usize;
            if rng.below(2) == 0 {
                self.emit(t, Kind::Read(Reg(x as u32)));
                self.emit(t, Kind::RetVal(self.regs[x]));
            } else {
                let v = self.fresh_val();
                self.emit(t, Kind::Write(Reg(x as u32), v));
                self.emit(t, Kind::RetUnit);
                self.regs[x] = v;
            }
        }
    }
}

/// Phased serialized history: always DRF, atomic, opaque.
fn phased_history(seed: u64, nthreads: u32, nregs: usize, rounds: u32) -> History {
    let mut rng = Rng(seed);
    let mut g = Gen::new(nregs);
    for _ in 0..rounds {
        // Transaction phase: every thread runs one transaction.
        for t in 0..nthreads {
            let commit = rng.below(4) != 0;
            g.txn(&mut rng, t, nregs, commit);
        }
        // Privatization phase by a random owner: fence, ntx burst, fence.
        let owner = rng.below(nthreads as u64) as u32;
        g.fence(owner);
        g.ntx_burst(&mut rng, owner, nregs);
        g.fence(owner);
    }
    History::new(g.actions)
}

/// Interleaved variant: bodies of one transaction per thread are shuffled
/// together (no ntx accesses), with commits happening in a serial order —
/// serializable, hence opaque, but heavily interleaved.
fn interleaved_history(seed: u64, nthreads: u32, nregs: usize) -> History {
    let mut rng = Rng(seed);
    let mut g = Gen::new(nregs);
    // Pre-generate per-thread scripts: writes only (disjoint values), reads
    // of the initial state (v_init) — consistent regardless of interleaving.
    let mut scripts: Vec<Vec<Kind>> = Vec::new();
    let mut buffered: Vec<Vec<(usize, u64)>> = vec![Vec::new(); nthreads as usize];
    for t in 0..nthreads as usize {
        let mut script = vec![Kind::TxBegin];
        let ops = 1 + rng.below(3);
        for _ in 0..ops {
            // Each thread touches its own register partition.
            let x = t * nregs + rng.below(nregs as u64) as usize;
            let v = g.next_val;
            g.next_val += 1;
            script.push(Kind::Write(Reg(x as u32), v));
            buffered[t].push((x, v));
        }
        script.push(Kind::TxCommit);
        scripts.push(script);
    }
    // Interleave.
    let mut pos = vec![0usize; nthreads as usize];
    loop {
        let live: Vec<usize> = (0..nthreads as usize)
            .filter(|&t| pos[t] < scripts[t].len())
            .collect();
        if live.is_empty() {
            break;
        }
        let t = live[rng.below(live.len() as u64) as usize];
        let kind = scripts[t][pos[t]];
        pos[t] += 1;
        match kind {
            Kind::TxBegin => {
                g.emit(t as u32, Kind::TxBegin);
                g.emit(t as u32, Kind::Ok);
            }
            Kind::Write(x, v) => {
                g.emit(t as u32, Kind::Write(x, v));
                g.emit(t as u32, Kind::RetUnit);
            }
            Kind::TxCommit => {
                g.emit(t as u32, Kind::TxCommit);
                g.emit(t as u32, Kind::Committed);
            }
            _ => unreachable!(),
        }
    }
    History::new(g.actions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Phased histories are well-formed, consistent, DRF, in H_atomic, and
    /// strongly opaque with a verified witness.
    #[test]
    fn phased_histories_fully_check(seed in any::<u64>(),
                                    nthreads in 1u32..4,
                                    nregs in 1usize..4,
                                    rounds in 1u32..4) {
        let h = phased_history(seed, nthreads, nregs, rounds);
        prop_assert_eq!(h.validate(), Ok(()));
        let ix = HistoryIndex::new(&h);
        prop_assert_eq!(check_consistency(&h, &ix), Ok(()));
        prop_assert!(is_drf(&h), "phased history racy:\n{}", textio::to_text(&h));
        prop_assert!(in_atomic_tm(&h).is_ok());
        let w = check_strong_opacity(&h, &CheckOptions::default());
        prop_assert!(w.is_ok(), "not opaque: {:?}\n{}", w.err(), textio::to_text(&h));
        let w = w.unwrap();
        // Re-verify via public APIs.
        prop_assert!(in_opacity_relation(&h, &w.sequential).is_ok());
        prop_assert!(in_atomic_tm(&w.sequential).is_ok());
    }

    /// Interleaved disjoint-write histories are opaque; their witnesses
    /// reorder whole transactions.
    #[test]
    fn interleaved_histories_opaque(seed in any::<u64>(), nthreads in 2u32..4, nregs in 1usize..3) {
        let h = interleaved_history(seed, nthreads, nregs);
        prop_assert_eq!(h.validate(), Ok(()));
        let w = check_strong_opacity(&h, &CheckOptions::default());
        prop_assert!(w.is_ok(), "not opaque: {:?}\n{}", w.err(), textio::to_text(&h));
        let s = w.unwrap().sequential;
        prop_assert!(in_atomic_tm(&s).is_ok());
        // Witness preserves per-thread order.
        let max_t = h.actions().iter().map(|a| a.thread.0).max().unwrap();
        for t in 0..=max_t {
            prop_assert_eq!(h.per_thread(ThreadId(t)), s.per_thread(ThreadId(t)));
        }
    }

    /// hb is contained in execution order and irreflexive; reported races
    /// are conflicting and hb-unordered.
    #[test]
    fn hb_respects_execution_order(seed in any::<u64>()) {
        let h = phased_history(seed, 3, 3, 2);
        let ix = HistoryIndex::new(&h);
        let an = analyze(&h, &ix);
        for i in 0..h.len() {
            prop_assert!(!an.hb.has(i, i));
            for j in an.hb.succs(i) {
                prop_assert!(i < j, "hb edge against execution order: {i} -> {j}");
            }
        }
    }

    /// Text serialization round-trips.
    #[test]
    fn textio_roundtrip(seed in any::<u64>()) {
        let h = phased_history(seed, 2, 3, 2);
        let h2 = textio::from_text(&textio::to_text(&h)).unwrap();
        prop_assert_eq!(h.actions(), h2.actions());
    }

    /// Rearranging a trace along the checker's witness yields an
    /// observationally equivalent trace with exactly the witness history.
    #[test]
    fn rearrangement_along_witness(seed in any::<u64>(), nthreads in 2u32..4) {
        let h = interleaved_history(seed, nthreads, 2);
        // Sprinkle primitive actions after each response to build a trace.
        let mut rng = Rng(seed ^ 0xABCD);
        let mut acts = Vec::new();
        let mut next_id = 10_000u64;
        for &a in h.actions() {
            acts.push(a);
            if a.kind.is_response() && rng.below(2) == 0 {
                acts.push(Action::new(next_id, a.thread, Kind::Prim(PrimTag(rng.next()))));
                next_id += 1;
            }
        }
        let tr = Trace::new(acts);
        let tr_hist = tr.history();
        prop_assert_eq!(tr_hist.actions(), h.actions());
        let w = check_strong_opacity(&h, &CheckOptions::default()).unwrap();
        let ts = rearrange(&tr, &w.sequential);
        let ts_hist = ts.history();
        prop_assert_eq!(ts_hist.actions(), w.sequential.actions());
        prop_assert!(observationally_equivalent(&tr, &ts));
    }

    /// BitRel closure agrees with naive Floyd–Warshall on forward DAGs.
    #[test]
    fn closure_matches_naive(edges in proptest::collection::vec((0usize..12, 0usize..12), 0..40)) {
        let n = 12;
        let mut r = BitRel::new(n);
        let mut naive = vec![vec![false; n]; n];
        for (a, b) in edges {
            let (a, b) = if a < b { (a, b) } else if b < a { (b, a) } else { continue };
            r.add(a, b);
            naive[a][b] = true;
        }
        let c = r.closure_forward();
        // Floyd–Warshall.
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    if naive[i][k] && naive[k][j] {
                        naive[i][j] = true;
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(c.has(i, j), naive[i][j], "({}, {})", i, j);
            }
        }
    }
}
